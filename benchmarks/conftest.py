"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one element of the paper's demonstration
(claims C1–C3, the GUI figures, or a parameter-scaling note) — see
EXPERIMENTS.md for the experiment index.  Sizes are chosen so that the whole
harness runs in a few minutes on a laptop: the populations are in the 10^2
range (like the demo, which uses "on the order of 10^3 participants rather
than 10^6"), and costs at larger scales are extrapolated by the cost model
exactly as the demo does.

Run with ``pytest benchmarks/ --benchmark-only -s`` to also see the printed
tables and series.
"""

from __future__ import annotations

import pytest

from repro.config import ChiaroscuroConfig
from repro.datasets import generate_cer_like, generate_gaussian_clusters, generate_numed_like


@pytest.fixture(scope="session")
def cer_collection():
    """CER-like electricity consumption day profiles (24 half-hour slots)."""
    return generate_cer_like(n_households=120, n_days=1, readings_per_day=24, seed=101)


@pytest.fixture(scope="session")
def numed_collection():
    """NUMED-like tumor-growth series over twenty weeks (the demo's use-case)."""
    return generate_numed_like(n_patients=120, n_weeks=20, seed=102)


@pytest.fixture(scope="session")
def gaussian_collection():
    """Controlled synthetic collection with known ground-truth clusters."""
    return generate_gaussian_clusters(
        n_series=120, series_length=24, n_clusters=4, noise_std=0.05, seed=103
    )


@pytest.fixture(scope="session")
def bench_config():
    """Protocol configuration shared by the quality benchmarks."""
    return ChiaroscuroConfig().with_overrides(
        kmeans={"n_clusters": 4, "max_iterations": 6},
        privacy={"epsilon": 2.0, "noise_shares": 32},
        gossip={"cycles_per_aggregation": 10},
        crypto={"threshold": 3, "n_key_shares": 6},
        simulation={"n_participants": 120, "seed": 7},
    )


def run_once(benchmark, function, *args, **kwargs):
    """Run *function* exactly once under pytest-benchmark timing.

    Protocol runs take seconds, so the usual repeated-measurement strategy of
    pytest-benchmark would multiply the harness duration without adding
    information.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
