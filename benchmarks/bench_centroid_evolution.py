"""E6 — evolution of participants' closest centroid along iterations (Fig. 3, panel 4).

The demo GUI shows, "for the first use-case (tumor-growth time-series over
twenty weeks), the graphs showing for a random subset of four participants
the evolution of their closest centroid along the iterations".  This
benchmark regenerates the underlying data from the execution log: the
per-iteration assignment of the tracked participants and the per-iteration
displacement of the centroid set.

Expected shape: assignments stabilise after the first few iterations and the
centroid displacement decreases, which is what the slide-bar animation of the
GUI conveys.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import format_series, format_table
from repro.core import run_chiaroscuro


def test_centroid_evolution_numed(benchmark, numed_collection, bench_config):
    config = bench_config.with_overrides(
        kmeans={"n_clusters": 4, "max_iterations": 8},
        privacy={"epsilon": 10.0},
    )
    result = run_once(benchmark, run_chiaroscuro, numed_collection, config)
    history = result.log.tracked_assignment_history()
    rows = [
        {"participant": participant,
         **{f"iter_{i + 1}": cluster for i, cluster in enumerate(assignments)}}
        for participant, assignments in sorted(history.items())
    ]
    print()
    print(format_table(
        rows,
        title="E6 - closest centroid of 4 tracked patients along iterations (NUMED-like)",
    ))
    print()
    print(format_series(
        result.log.displacements(),
        label="E6 - centroid displacement per iteration",
    ))
    assert len(history) >= 1
    # Every tracked participant has one recorded assignment per logged iteration.
    for assignments in history.values():
        assert len(assignments) == len(result.log)
        assert all(0 <= cluster < 4 for cluster in assignments)
    # The centroid set settles down: the smallest displacement observed is well
    # below the initial one (this is the visual message of the GUI slide bar;
    # individual assignments may still flip between similar noisy profiles).
    displacements = result.log.displacements()
    assert min(displacements) <= displacements[0]


def test_profiles_stay_recognisable_across_participants(benchmark, numed_collection,
                                                        bench_config):
    """All participants end up with (nearly) the same final profiles —
    the property that makes the demo able to show "the" resulting centroids."""
    import numpy as np

    config = bench_config.with_overrides(privacy={"epsilon": 5.0})
    result = run_once(benchmark, run_chiaroscuro, numed_collection, config)
    deviations = [
        float(np.linalg.norm(profiles - result.profiles))
        for profiles in result.per_participant_profiles.values()
    ]
    rows = [{
        "max_deviation": max(deviations),
        "mean_deviation": sum(deviations) / len(deviations),
        "profile_norm": float(np.linalg.norm(result.profiles)),
    }]
    print()
    print(format_table(rows, title="E6 - spread of per-participant final profiles"))
    assert max(deviations) < float(np.linalg.norm(result.profiles))
