"""Live-runner saturation: sequential vs concurrent stepping over the wire.

The live runner's sequential stepping replays the cycle engine's scheduler
stream one node at a time — every step is a full coordinator round-trip, so
N worker processes buy zero wall-clock parallelism.  Concurrent stepping
(``runtime.stepping="concurrent"``) drops that barrier: the coordinator
only enforces iteration epochs while every worker drives its whole shard
with many exchanges in flight.  This benchmark measures what that buys —
exchanges/sec and bytes/sec across process counts, for both modes — and
what it costs: the committed JSON also carries the nondeterminism envelope
(profile distance, assignment churn, byte spread vs the deterministic
cycle-mode reference) of a concurrent run.

Run as a script, it writes the datapoints to ``BENCH_live_throughput.json``::

    PYTHONPATH=src python benchmarks/bench_live_throughput.py \
        --process-counts 1 2 4 --out BENCH_live_throughput.json

Each measurement runs in a forked subprocess so one run's worker processes
and sockets cannot leak into the next.  Timing rows run with
``runtime.envelope="off"`` — the envelope's cycle-mode reference run is an
analysis step, not part of the live run's wall clock.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import time

from conftest import run_once

from repro.analysis import format_table

#: The smoke scenario every row runs: small enough for CI, enough gossip
#: work in flight that dropping the per-step barrier is visible.
SCENARIO = {
    "participants": 20,
    "clusters": 2,
    "iterations": 3,
    "gossip_cycles": 4,
    "noise_shares": 8,
    "seed": 0,
}


def _live_probe(connection, processes: int, stepping: str,
                envelope: str, scenario: dict) -> None:
    """Subprocess body: one live run, timed, throughput counters attached."""
    from repro.config import ChiaroscuroConfig
    from repro.core.runner import run_chiaroscuro
    from repro.datasets import load_dataset_for_population

    try:
        collection = load_dataset_for_population(
            "gaussian", scenario["participants"], scenario["seed"],
            n_clusters=scenario["clusters"], noise_std=0.05,
        )
        config = ChiaroscuroConfig().with_overrides(
            simulation={"n_participants": scenario["participants"],
                        "seed": scenario["seed"]},
            kmeans={"n_clusters": scenario["clusters"],
                    "max_iterations": scenario["iterations"]},
            privacy={"epsilon": 2.0, "noise_shares": scenario["noise_shares"]},
            gossip={"cycles_per_aggregation": scenario["gossip_cycles"]},
            crypto={"threshold": 3, "n_key_shares": 6},
            runtime={"mode": "live", "processes": processes,
                     "stepping": stepping, "envelope": envelope,
                     "run_timeout": 240.0},
        )
        started = time.perf_counter()
        result = run_chiaroscuro(collection, config)
        wall_clock = time.perf_counter() - started
        # One exchange = one accounted request/reply frame pair, so the
        # exchange count is half the charged message count.
        exchanges = result.costs.messages_sent / 2.0
        row = {
            "stepping": stepping,
            "processes": processes,
            "wall_clock_seconds": wall_clock,
            "exchanges": exchanges,
            "bytes_sent": result.costs.bytes_sent,
            "exchanges_per_second": exchanges / max(wall_clock, 1e-9),
            "bytes_per_second": result.costs.bytes_sent / max(wall_clock, 1e-9),
            "cycles_run": result.metadata["live"]["cycles_run"],
            "n_iterations": result.n_iterations,
        }
        if result.costs.envelope is not None:
            row["envelope"] = dict(result.costs.envelope)
        connection.send(row)
    except Exception as error:  # pragma: no cover - surfaced by the parent
        connection.send({"error": f"{type(error).__name__}: {error}"})
    finally:
        connection.close()


def measure_live(processes: int, stepping: str, envelope: str = "off",
                 scenario: dict | None = None) -> dict:
    """Time one live run in a forked subprocess (isolated workers/sockets)."""
    context = multiprocessing.get_context("fork")
    parent, child = context.Pipe()
    worker = context.Process(
        target=_live_probe,
        args=(child, processes, stepping, envelope, scenario or dict(SCENARIO)),
    )
    worker.start()
    child.close()
    payload = parent.recv()
    worker.join()
    parent.close()
    if "error" in payload:
        raise RuntimeError(
            f"{stepping} live run at processes={processes} failed: "
            f"{payload['error']}"
        )
    return payload


def measure_saturation(process_counts: list[int],
                       scenario: dict | None = None) -> list[dict]:
    """Sequential vs concurrent stepping over growing process counts.

    Concurrent rows carry ``speedup`` — the sequential wall clock at the
    same process count divided by theirs.
    """
    rows: list[dict] = []
    for processes in process_counts:
        sequential = measure_live(processes, "sequential", scenario=scenario)
        concurrent = measure_live(processes, "concurrent", scenario=scenario)
        concurrent["speedup"] = (
            sequential["wall_clock_seconds"]
            / max(concurrent["wall_clock_seconds"], 1e-9)
        )
        rows.extend([sequential, concurrent])
    return rows


def test_concurrent_stepping_outruns_sequential(benchmark):
    """Dropping the per-step barrier must pay off at 4 worker processes.

    The CI bench-smoke assertion behind the tentpole claim: on the smoke
    scenario, ``--stepping concurrent`` at 4 processes beats sequential
    wall-clock.  The committed BENCH_live_throughput.json shows the full
    process-count sweep.
    """
    rows = run_once(benchmark, measure_saturation, [4])
    print()
    print(format_table(
        rows,
        columns=["stepping", "processes", "wall_clock_seconds",
                 "exchanges_per_second", "bytes_per_second", "cycles_run"],
        title="live throughput: sequential vs concurrent, 4 processes",
    ))
    sequential, concurrent = rows
    assert concurrent["wall_clock_seconds"] < sequential["wall_clock_seconds"], rows
    assert concurrent["n_iterations"] > 0


def main(argv=None) -> int:
    """Write the BENCH_live_throughput.json saturation datapoints."""
    parser = argparse.ArgumentParser(
        description="Measure live-runner throughput (sequential vs concurrent "
                    "stepping) and write BENCH_live_throughput.json"
    )
    parser.add_argument("--process-counts", type=int, nargs="+",
                        default=[1, 2, 4])
    parser.add_argument("--assert-speedup", type=float, default=None,
                        help="fail unless concurrent stepping beats sequential "
                             "by this factor at the largest process count")
    parser.add_argument("--out", default="BENCH_live_throughput.json")
    args = parser.parse_args(argv)
    rows = measure_saturation(args.process_counts)
    # One extra concurrent run with the envelope enabled: the committed
    # datapoint quantifies the nondeterminism the speedup buys.  Kept out
    # of the timing rows — its wall clock includes the cycle reference.
    envelope_run = measure_live(
        max(args.process_counts), "concurrent", envelope="auto"
    )
    payload = {
        "benchmark": "live_throughput",
        "scenario": dict(SCENARIO),
        "rows": rows,
        "envelope": envelope_run.get("envelope"),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(format_table(
        rows,
        columns=["stepping", "processes", "wall_clock_seconds",
                 "exchanges_per_second", "bytes_per_second", "speedup"],
        title=f"live throughput saturation (written to {args.out})",
    ))
    if payload["envelope"] is not None:
        print(format_table(
            [payload["envelope"]],
            columns=["profile_distance_relative", "assignment_churn",
                     "byte_spread"],
            title="nondeterminism envelope of the concurrent run",
        ))
    if args.assert_speedup is not None:
        largest = max(args.process_counts)
        candidates = [row for row in rows
                      if row["stepping"] == "concurrent"
                      and row["processes"] == largest]
        slow = [row for row in candidates
                if row["speedup"] < args.assert_speedup]
        if slow:
            print(f"FAIL: concurrent speedup below {args.assert_speedup}x "
                  f"at {largest} processes: {slow}")
            return 1
        print(f"concurrent stepping >= {args.assert_speedup}x faster than "
              f"sequential at {largest} processes")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
