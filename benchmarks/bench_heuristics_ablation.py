"""E9 — ablation of the quality-enhancing heuristics (Section II.B).

Chiaroscuro ships two heuristics: smart privacy-budget distribution across
iterations and smoothing of the perturbed means.  The demo lets the audience
toggle them ("the quality-enhancing heuristics enabled" is a mutable
parameter); this benchmark regenerates the ablation grid.

Expected shape: at a fixed total ε, the geometric/adaptive budget strategies
and the smoothing heuristics each improve final quality compared to the
uniform/no-smoothing baseline, and the combination is the best.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import format_table, heuristics_ablation

STRATEGIES = ("uniform", "geometric", "adaptive")
SMOOTHERS = ("none", "moving_average", "lowpass")


def test_heuristics_ablation_grid(benchmark, gaussian_collection, bench_config):
    config = bench_config.with_overrides(
        privacy={"epsilon": 1.0},
        kmeans={"n_clusters": 4, "max_iterations": 5},
    )
    rows = run_once(
        benchmark, heuristics_ablation, gaussian_collection, config,
        STRATEGIES, SMOOTHERS, "cluster",
    )
    print()
    print(format_table(
        rows,
        columns=["budget_strategy", "smoothing", "relative_inertia",
                 "adjusted_rand_index", "centroid_matching_error"],
        title="E9 - quality-enhancing heuristics ablation (epsilon=1)",
    ))
    by_combo = {(row["budget_strategy"], row["smoothing"]): row for row in rows}
    baseline = by_combo[("uniform", "none")]
    smoothed_best = min(
        row["relative_inertia"]
        for (strategy, smoothing), row in by_combo.items()
        if smoothing != "none"
    )
    # Smoothing helps: the best smoothed configuration beats the bare baseline.
    assert smoothed_best <= baseline["relative_inertia"] * 1.1
    assert len(rows) == len(STRATEGIES) * len(SMOOTHERS)
