"""E8 — Bob's closest-profile sub-sequence search (Fig. 3, panel 6).

The last GUI screen lets an individual ("Bob") select a sub-sequence of his
own time-series and find the closest resulting profiles.  This benchmark
regenerates that interaction on the profiles produced by a run, and measures
how often the privacy noise changes the answer Bob would get (top-1 recall
against the noise-free profiles).

Expected shape: the search itself is interactive-speed (milliseconds) and the
recall stays high at moderate ε — the profiles remain useful to individuals
despite the perturbation, which is the demo's closing argument.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.analysis import closest_profiles, format_table, profile_recall
from repro.baselines import centralized_kmeans
from repro.core import run_chiaroscuro
from repro.core.runner import normalize_collection
from repro.timeseries import TimeSeriesCollection


def _reference_profiles(collection, config):
    data, _transform = normalize_collection(collection, config.privacy.value_bound)
    normalised = TimeSeriesCollection.from_matrix(data)
    return centralized_kmeans(normalised, config.kmeans, seed=0, n_restarts=3).centroids, data


def test_bob_profile_search(benchmark, numed_collection, bench_config):
    config = bench_config.with_overrides(privacy={"epsilon": 5.0})
    result = run_chiaroscuro(numed_collection, config)
    reference_profiles, data = _reference_profiles(numed_collection, config)
    bob = data[0]
    query = bob[5:15]  # Bob selects weeks 6-15 of his own trajectory

    matches = run_once(benchmark, closest_profiles, result.profiles, query, 3)
    print()
    print(format_table(
        [match.as_dict() for match in matches],
        title="E8 - profiles closest to Bob's selected sub-sequence (perturbed profiles)",
    ))
    reference_matches = closest_profiles(reference_profiles, query, top=3)
    print(format_table(
        [match.as_dict() for match in reference_matches],
        title="E8 - same query against the noise-free centralized profiles",
    ))
    assert len(matches) == 3
    assert matches[0].distance <= matches[-1].distance


def test_profile_search_recall_vs_epsilon(benchmark, numed_collection, bench_config):
    """How often the perturbed profiles point Bob at the same profile."""
    reference_profiles, data = _reference_profiles(numed_collection, bench_config)
    rng = np.random.default_rng(31)
    queries = np.vstack([
        data[int(rng.integers(0, len(data)))][3:15] for _ in range(12)
    ])

    def sweep():
        rows = []
        for epsilon in (0.5, 2.0, 8.0):
            config = bench_config.with_overrides(
                privacy={"epsilon": epsilon},
                kmeans={"n_clusters": 4, "max_iterations": 5},
            )
            result = run_chiaroscuro(numed_collection, config)
            rows.append({
                "epsilon": epsilon,
                "top1_recall": profile_recall(result.profiles, reference_profiles, queries,
                                              top=1),
                "top2_recall": profile_recall(result.profiles, reference_profiles, queries,
                                              top=2),
            })
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, title="E8 - profile-search recall vs privacy budget"))
    for row in rows:
        assert row["top2_recall"] >= row["top1_recall"]
    # With a generous budget Bob is pointed at a sensible profile most of the time.
    assert rows[-1]["top2_recall"] >= 0.5
