"""E7 — impact of the noise on the centroids along iterations (Fig. 3, panel 5).

The demo GUI illustrates "the impact of the noise on four random centroids
along the iterations".  This benchmark regenerates the quantity behind that
panel — the distance between the disclosed perturbed means and the noise-free
means the iteration would have produced — and shows how the smoothing
heuristic reduces it at an unchanged privacy level.

Expected shape: the noise magnitude scales with 1/ε; smoothing (moving
average or low-pass) reduces it substantially compared to no smoothing.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.analysis import format_series, format_table
from repro.core import run_chiaroscuro


def test_noise_magnitude_per_iteration(benchmark, cer_collection, bench_config):
    config = bench_config.with_overrides(privacy={"epsilon": 2.0})
    result = run_once(benchmark, run_chiaroscuro, cer_collection, config)
    magnitudes = result.log.noise_magnitudes()
    print()
    print(format_series(
        magnitudes,
        label="E7 - ||perturbed means - noise-free means|| per iteration (epsilon=2)",
    ))
    assert len(magnitudes) >= 1
    assert all(np.isfinite(magnitude) for magnitude in magnitudes)


def test_noise_decreases_with_epsilon(benchmark, cer_collection, bench_config):
    def sweep():
        rows = []
        for epsilon in (0.5, 2.0, 8.0):
            config = bench_config.with_overrides(
                privacy={"epsilon": epsilon}, kmeans={"n_clusters": 4, "max_iterations": 4},
            )
            result = run_chiaroscuro(cer_collection, config)
            magnitudes = result.log.noise_magnitudes()
            rows.append({
                "epsilon": epsilon,
                "mean_noise_magnitude": float(np.mean(magnitudes)),
                "last_noise_magnitude": magnitudes[-1],
            })
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, title="E7 - noise magnitude vs privacy budget"))
    assert rows[-1]["mean_noise_magnitude"] < rows[0]["mean_noise_magnitude"]


def test_smoothing_reduces_noise_impact(benchmark, cer_collection, bench_config):
    """The smoothing heuristic recovers centroid quality at equal ε."""
    def sweep():
        rows = []
        for method in ("none", "moving_average", "lowpass"):
            config = bench_config.with_overrides(
                smoothing={"method": method},
                privacy={"epsilon": 1.0},
                kmeans={"n_clusters": 4, "max_iterations": 4},
            )
            result = run_chiaroscuro(cer_collection, config)
            rows.append({
                "smoothing": method,
                "mean_noise_magnitude": float(np.mean(result.log.noise_magnitudes())),
                "inertia": result.inertia,
            })
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, title="E7 - smoothing heuristic vs noise impact (epsilon=1)"))
    none_row = next(row for row in rows if row["smoothing"] == "none")
    smoothed_rows = [row for row in rows if row["smoothing"] != "none"]
    assert min(row["mean_noise_magnitude"] for row in smoothed_rows) < \
        none_row["mean_noise_magnitude"]
