"""E5 — gossip approximation error vs number of exchanges (Section III.B, item 3).

The demo keeps "the approximation error of gossip algorithms ... similar to a
context with a larger population by decreasing the number of messages per
participant"; the underlying fact is the exponential convergence of gossip
aggregation (Kempe et al., FOCS 2003).  This benchmark regenerates the error
curve: maximum relative error across participants as a function of the number
of gossip cycles, for the cleartext protocol and for the encrypted one.

Expected shape: the error decreases exponentially (roughly halving per
cycle), for both the cleartext and the encrypted variants, and for both
population sizes.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.analysis import format_series, format_table
from repro.crypto.backends import PlainBackend
from repro.gossip import encrypted_gossip_average, gossip_average, max_relative_error


def test_cleartext_convergence_curve(benchmark):
    values = np.random.default_rng(5).uniform(0.0, 1.0, size=(256, 8))

    def run():
        _estimates, history = gossip_average(values, cycles=20, seed=5, return_history=True)
        return history

    history = run_once(benchmark, run)
    print()
    print(format_series(history, label="E5 - max relative error per gossip cycle (n=256)"))
    # Exponential convergence: after 20 cycles the error collapsed by >10^3.
    assert history[-1] < history[0] * 1e-3
    # Roughly monotone decrease.
    assert history[-1] == min(history)


def test_convergence_vs_population(benchmark):
    def run():
        rows = []
        for population in (64, 256, 1024):
            values = np.random.default_rng(7).uniform(0.0, 1.0, size=(population, 4))
            _estimates, history = gossip_average(values, cycles=16, seed=7,
                                                 return_history=True)
            rows.append({
                "n_participants": population,
                "error_after_4": history[3],
                "error_after_8": history[7],
                "error_after_16": history[15],
            })
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="E5 - gossip error vs cycles and population size"))
    for row in rows:
        assert row["error_after_16"] < row["error_after_4"]


def test_push_sum_matches_push_pull(benchmark):
    values = np.random.default_rng(9).uniform(0.0, 1.0, size=(128, 4))

    def run():
        _e1, push_pull = gossip_average(values, cycles=16, seed=9, return_history=True)
        _e2, push_sum = gossip_average(values, cycles=16, seed=9, protocol="push_sum",
                                       return_history=True)
        return push_pull, push_sum

    push_pull, push_sum = run_once(benchmark, run)
    print()
    print(format_table(
        [{"cycle": index + 1, "push_pull": pp, "push_sum": ps}
         for index, (pp, ps) in enumerate(zip(push_pull, push_sum))],
        title="E5 - push-pull vs push-sum error per cycle (n=128)",
    ))
    assert push_pull[-1] < 1e-3
    assert push_sum[-1] < 1e-2


def test_encrypted_gossip_convergence(benchmark):
    """The same exponential behaviour holds for the encrypted primitive."""
    backend = PlainBackend(threshold=2, n_shares=4, encoding_scale=10**6)
    values = np.random.default_rng(11).uniform(0.0, 1.0, size=(64, 6))

    def run():
        rows = []
        for cycles in (2, 4, 8, 12):
            estimates = encrypted_gossip_average(backend, values, cycles=cycles, seed=11)
            rows.append({
                "cycles": cycles,
                "max_relative_error": max_relative_error(estimates, values.mean(axis=0)),
            })
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="E5 - encrypted gossip averaging error vs cycles (n=64)"))
    assert rows[-1]["max_relative_error"] < rows[0]["max_relative_error"] / 10
