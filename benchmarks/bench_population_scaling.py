"""E10 — noise-magnitude / population-size scaling and the realised guarantee (claim C1).

Section III.B of the paper explains that the demo "scales the differential
privacy level to obtain the same 'noise magnitude / population size' ratio"
as a full-scale deployment.  This benchmark regenerates both directions:

* at a fixed ε, quality improves as the population grows (the noise is
  amortised over more contributions);
* following the demo's recipe, scaling ε so that the noise-to-population
  ratio stays constant keeps quality roughly constant across population
  sizes;
* the realised probabilistic guarantee (ε', δ) is reported for each run
  (claim C1: "a high level of privacy can be reached").

Since PR 5 the sweeps are thin wrappers over the experiment subsystem: each
direction is an :class:`~repro.experiments.ExperimentSpec` (the correlated
population/ε direction uses explicit ``cells``, the rest a ``sweep`` axis)
executed by the parallel runner — the same machinery behind
``repro experiment run --spec examples/scenarios/population_scaling.json``.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import (
    ExperimentSpec,
    ResultStore,
    comparison_rows,
    run_experiment,
)

POPULATIONS = [40, 80, 160]

_BASE = {
    "kmeans": {"n_clusters": 4, "max_iterations": 5},
    "privacy": {"epsilon": 2.0, "noise_shares": 32},
    "gossip": {"cycles_per_aggregation": 10},
    "crypto": {"threshold": 3, "n_key_shares": 6},
}

_DATASET_PARAMS = {"n_clusters": 4, "noise_std": 0.05}


def _sweep(spec: ExperimentSpec, store_path, metrics: list[str]) -> list[dict]:
    store = ResultStore(store_path)
    progress = run_experiment(spec, store, jobs=2)
    assert progress.failed == 0, progress.failures
    return comparison_rows(spec, store, metrics=metrics)


def test_quality_vs_population_at_fixed_epsilon(benchmark, tmp_path):
    spec = ExperimentSpec(
        name="bench_population_scaling_fixed_epsilon",
        dataset="gaussian",
        dataset_params=dict(_DATASET_PARAMS),
        participants=POPULATIONS[0],
        base=_BASE,
        sweep={"participants": POPULATIONS},
        base_seed=300,
        metrics={"label_key": "cluster"},
    )
    rows = run_once(
        benchmark, _sweep, spec, tmp_path / "e10a.jsonl",
        ["relative_inertia", "adjusted_rand_index", "effective_epsilon", "delta"],
    )
    print()
    print(format_table(
        rows, title="E10a - quality vs population size at fixed epsilon=2",
    ))
    # More participants amortise the same noise: quality improves (or at least
    # does not degrade) as the population grows.
    assert rows[-1]["relative_inertia"] <= rows[0]["relative_inertia"] * 1.2


def test_packed_ciphertexts_cut_costs_without_changing_results(benchmark, tmp_path):
    """Packing is a pure cost optimisation: identical output, fewer bigint ops.

    The packed run must produce bit-identical profiles (the fixed-point
    arithmetic is exact in both layouts) while the operation counters and the
    network volume drop by roughly the slot count.  The identity check reads
    the ``profiles_digest`` the result store records for every cell.
    """
    spec = ExperimentSpec(
        name="bench_population_scaling_packing",
        dataset="gaussian",
        dataset_params=dict(_DATASET_PARAMS),
        participants=POPULATIONS[0],
        base=_BASE,
        sweep={"crypto.packing": ["off", "auto"]},
        base_seed=300,
        metrics={"label_key": "cluster", "reference": False},
    )
    rows = run_once(
        benchmark, _sweep, spec, tmp_path / "e10c.jsonl",
        ["profiles_digest", "encryptions", "messages_sent", "bytes_sent"],
    )
    print()
    print(format_table(
        rows,
        columns=["crypto.packing", "encryptions", "messages_sent", "bytes_sent"],
        title="E10c - packed ciphertexts: identical quality, smaller costs",
    ))
    off, auto = rows[0], rows[1]
    assert off["profiles_digest"] == auto["profiles_digest"]
    assert auto["encryptions"] * 4 <= off["encryptions"]
    assert auto["bytes_sent"] * 2 <= off["bytes_sent"]


def test_demo_scaling_rule_keeps_quality_constant(benchmark, tmp_path):
    """Scale ε with 1/population to keep the noise/population ratio constant."""
    base_population = POPULATIONS[0]
    base_epsilon = 4.0
    spec = ExperimentSpec(
        name="bench_population_scaling_demo_rule",
        dataset="gaussian",
        dataset_params=dict(_DATASET_PARAMS),
        participants=base_population,
        base=_BASE,
        # The demo's rule correlates the two axes, which a cartesian sweep
        # cannot express: enumerate the (population, ε) pairs explicitly.
        cells=[
            {"participants": population,
             "privacy.epsilon": base_epsilon * base_population / population}
            for population in POPULATIONS
        ],
        base_seed=300,
        metrics={"label_key": "cluster"},
    )
    rows = run_once(
        benchmark, _sweep, spec, tmp_path / "e10b.jsonl",
        ["relative_inertia", "effective_epsilon", "delta"],
    )
    print()
    print(format_table(
        rows,
        title="E10b - demo scaling rule: epsilon ~ 1/population keeps noise ratio constant",
    ))
    inertias = [row["relative_inertia"] for row in rows]
    # The scaling rule keeps quality in the same ballpark across populations.
    assert max(inertias) <= min(inertias) * 3.0
