"""E10 — noise-magnitude / population-size scaling and the realised guarantee (claim C1).

Section III.B of the paper explains that the demo "scales the differential
privacy level to obtain the same 'noise magnitude / population size' ratio"
as a full-scale deployment.  This benchmark regenerates both directions:

* at a fixed ε, quality improves as the population grows (the noise is
  amortised over more contributions);
* following the demo's recipe, scaling ε so that the noise-to-population
  ratio stays constant keeps quality roughly constant across population
  sizes;
* the realised probabilistic guarantee (ε', δ) is reported for each run
  (claim C1: "a high level of privacy can be reached").
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import centralized_reference, evaluate_result, format_table
from repro.core import run_chiaroscuro
from repro.datasets import generate_gaussian_clusters

POPULATIONS = [40, 80, 160]


def _collection(n: int):
    return generate_gaussian_clusters(
        n_series=n, series_length=24, n_clusters=4, noise_std=0.05, seed=300,
    )


def test_quality_vs_population_at_fixed_epsilon(benchmark, bench_config):
    def sweep():
        rows = []
        for population in POPULATIONS:
            collection = _collection(population)
            config = bench_config.with_overrides(
                simulation={"n_participants": population},
                privacy={"epsilon": 2.0},
                kmeans={"n_clusters": 4, "max_iterations": 5},
            )
            result = run_chiaroscuro(collection, config)
            reference = centralized_reference(collection, config)
            report = evaluate_result(collection, config, result, reference, "cluster")
            rows.append({
                "n_participants": population,
                "relative_inertia": report["relative_inertia"],
                "adjusted_rand_index": report.get("adjusted_rand_index", float("nan")),
                "effective_epsilon": result.guarantee.effective_epsilon,
                "delta": result.guarantee.delta,
            })
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(
        rows, title="E10a - quality vs population size at fixed epsilon=2",
    ))
    # More participants amortise the same noise: quality improves (or at least
    # does not degrade) as the population grows.
    assert rows[-1]["relative_inertia"] <= rows[0]["relative_inertia"] * 1.2


def test_packed_ciphertexts_cut_costs_without_changing_results(benchmark, bench_config):
    """Packing is a pure cost optimisation: identical output, fewer bigint ops.

    The packed run must produce bit-identical profiles (the fixed-point
    arithmetic is exact in both layouts) while the operation counters and the
    network volume drop by roughly the slot count.
    """
    collection = _collection(POPULATIONS[0])

    def sweep():
        rows = []
        results = {}
        for packing in ("off", "auto"):
            config = bench_config.with_overrides(
                simulation={"n_participants": POPULATIONS[0]},
                privacy={"epsilon": 2.0},
                kmeans={"n_clusters": 4, "max_iterations": 5},
                crypto={"packing": packing},
            )
            result = run_chiaroscuro(collection, config)
            results[packing] = result
            rows.append({
                "packing": packing,
                "slots": result.metadata["packing"]["slots"],
                "encryptions": result.costs.encryptions,
                "homomorphic_additions": result.costs.homomorphic_additions,
                "bytes_sent": result.costs.bytes_sent,
                "messages_sent": result.costs.messages_sent,
            })
        assert (results["off"].profiles == results["auto"].profiles).all()
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(
        rows, title="E10c - packed ciphertexts: identical quality, smaller costs",
    ))
    off, auto = rows[0], rows[1]
    assert auto["encryptions"] * 4 <= off["encryptions"]
    assert auto["bytes_sent"] * 2 <= off["bytes_sent"]


def test_demo_scaling_rule_keeps_quality_constant(benchmark, bench_config):
    """Scale ε with 1/population to keep the noise/population ratio constant."""
    base_population = POPULATIONS[0]
    base_epsilon = 4.0

    def sweep():
        rows = []
        for population in POPULATIONS:
            collection = _collection(population)
            epsilon = base_epsilon * base_population / population
            config = bench_config.with_overrides(
                simulation={"n_participants": population},
                privacy={"epsilon": epsilon},
                kmeans={"n_clusters": 4, "max_iterations": 5},
            )
            result = run_chiaroscuro(collection, config)
            reference = centralized_reference(collection, config)
            report = evaluate_result(collection, config, result, reference, "cluster")
            rows.append({
                "n_participants": population,
                "epsilon": epsilon,
                "relative_inertia": report["relative_inertia"],
                "effective_epsilon": result.guarantee.effective_epsilon,
                "delta": result.guarantee.delta,
            })
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(
        rows,
        title="E10b - demo scaling rule: epsilon ~ 1/population keeps noise ratio constant",
    ))
    inertias = [row["relative_inertia"] for row in rows]
    # The scaling rule keeps quality in the same ballpark across populations.
    assert max(inertias) <= min(inertias) * 3.0
