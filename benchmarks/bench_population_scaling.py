"""E10 — noise-magnitude / population-size scaling and the realised guarantee (claim C1).

Section III.B of the paper explains that the demo "scales the differential
privacy level to obtain the same 'noise magnitude / population size' ratio"
as a full-scale deployment.  This benchmark regenerates both directions:

* at a fixed ε, quality improves as the population grows (the noise is
  amortised over more contributions);
* following the demo's recipe, scaling ε so that the noise-to-population
  ratio stays constant keeps quality roughly constant across population
  sizes;
* the realised probabilistic guarantee (ε', δ) is reported for each run
  (claim C1: "a high level of privacy can be reached").

Since PR 5 the sweeps are thin wrappers over the experiment subsystem: each
direction is an :class:`~repro.experiments.ExperimentSpec` (the correlated
population/ε direction uses explicit ``cells``, the rest a ``sweep`` axis)
executed by the parallel runner — the same machinery behind
``repro experiment run --spec examples/scenarios/population_scaling.json``.

Run as a script, this module races the object engine against the slab
engine (``runtime.engine``) over growing populations and writes the
wall-clock / peak-RSS datapoints to ``BENCH_population_scaling.json``::

    PYTHONPATH=src python benchmarks/bench_population_scaling.py \
        --populations 1000 10000 100000 --out BENCH_population_scaling.json

Each measurement runs in a forked subprocess so peak RSS is attributed per
run.  The slab engine executes the real crypto pipeline on a sampled node
subset (``--sample-fraction``) and extrapolates the rest — that *is* the
optimisation under test, not an unfair shortcut: both engines produce a
full quality result over all N nodes.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import resource
import time

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import (
    ExperimentSpec,
    ResultStore,
    comparison_rows,
    run_experiment,
)

POPULATIONS = [40, 80, 160]

_BASE = {
    "kmeans": {"n_clusters": 4, "max_iterations": 5},
    "privacy": {"epsilon": 2.0, "noise_shares": 32},
    "gossip": {"cycles_per_aggregation": 10},
    "crypto": {"threshold": 3, "n_key_shares": 6},
}

_DATASET_PARAMS = {"n_clusters": 4, "noise_std": 0.05}


def _sweep(spec: ExperimentSpec, store_path, metrics: list[str]) -> list[dict]:
    store = ResultStore(store_path)
    progress = run_experiment(spec, store, jobs=2)
    assert progress.failed == 0, progress.failures
    return comparison_rows(spec, store, metrics=metrics)


def test_quality_vs_population_at_fixed_epsilon(benchmark, tmp_path):
    spec = ExperimentSpec(
        name="bench_population_scaling_fixed_epsilon",
        dataset="gaussian",
        dataset_params=dict(_DATASET_PARAMS),
        participants=POPULATIONS[0],
        base=_BASE,
        sweep={"participants": POPULATIONS},
        base_seed=300,
        metrics={"label_key": "cluster"},
    )
    rows = run_once(
        benchmark, _sweep, spec, tmp_path / "e10a.jsonl",
        ["relative_inertia", "adjusted_rand_index", "effective_epsilon", "delta"],
    )
    print()
    print(format_table(
        rows, title="E10a - quality vs population size at fixed epsilon=2",
    ))
    # More participants amortise the same noise: quality improves (or at least
    # does not degrade) as the population grows.
    assert rows[-1]["relative_inertia"] <= rows[0]["relative_inertia"] * 1.2


def test_packed_ciphertexts_cut_costs_without_changing_results(benchmark, tmp_path):
    """Packing is a pure cost optimisation: identical output, fewer bigint ops.

    The packed run must produce bit-identical profiles (the fixed-point
    arithmetic is exact in both layouts) while the operation counters and the
    network volume drop by roughly the slot count.  The identity check reads
    the ``profiles_digest`` the result store records for every cell.
    """
    spec = ExperimentSpec(
        name="bench_population_scaling_packing",
        dataset="gaussian",
        dataset_params=dict(_DATASET_PARAMS),
        participants=POPULATIONS[0],
        base=_BASE,
        sweep={"crypto.packing": ["off", "auto"]},
        base_seed=300,
        metrics={"label_key": "cluster", "reference": False},
    )
    rows = run_once(
        benchmark, _sweep, spec, tmp_path / "e10c.jsonl",
        ["profiles_digest", "encryptions", "messages_sent", "bytes_sent"],
    )
    print()
    print(format_table(
        rows,
        columns=["crypto.packing", "encryptions", "messages_sent", "bytes_sent"],
        title="E10c - packed ciphertexts: identical quality, smaller costs",
    ))
    off, auto = rows[0], rows[1]
    assert off["profiles_digest"] == auto["profiles_digest"]
    assert auto["encryptions"] * 4 <= off["encryptions"]
    assert auto["bytes_sent"] * 2 <= off["bytes_sent"]


# ---------------------------------------------------------------- engine race
def _engine_probe(connection, n_participants: int, engine: str,
                  sample_fraction: float, iterations: int, seed: int,
                  slab_options: dict | None = None) -> None:
    """Subprocess body: one engine run, timed, with its own peak RSS.

    ``slab_options`` selects the out-of-core layout (``slab_dtype``,
    ``slab_backing``, ``slab_chunk_rows``) and whether the dataset is
    generated matrix-backed — one dense matrix instead of N Python series
    objects, mandatory above ~10^6 where the object-per-series dataset
    alone would dwarf the slabs being measured.
    """
    from repro.config import ChiaroscuroConfig
    from repro.core.runner import run_chiaroscuro
    from repro.datasets import load_dataset_for_population

    slab_options = slab_options or {}
    try:
        dataset_params = {"n_clusters": 4, "noise_std": 0.05}
        if slab_options.get("matrix_backed"):
            dataset_params["matrix_backed"] = True
            dataset_params["dtype"] = slab_options.get("slab_dtype", "float64")
        collection = load_dataset_for_population(
            "gaussian", n_participants, seed, **dataset_params
        )
        runtime = {
            "engine": engine,
            "crypto_sample_fraction":
                sample_fraction if engine == "slab" else 1.0,
        }
        for knob in ("slab_dtype", "slab_backing", "slab_chunk_rows"):
            if knob in slab_options:
                runtime[knob] = slab_options[knob]
        config = ChiaroscuroConfig().with_overrides(
            simulation={"n_participants": n_participants, "seed": seed},
            kmeans={"n_clusters": 4, "max_iterations": iterations},
            privacy={"epsilon": 2.0, "noise_shares": 32},
            gossip={"cycles_per_aggregation": 6},
            crypto={"threshold": 3, "n_key_shares": 6},
            runtime=runtime,
        )
        started = time.perf_counter()
        result = run_chiaroscuro(collection, config)
        wall_clock = time.perf_counter() - started
        row = {
            "engine": engine,
            "n_participants": n_participants,
            "wall_clock_seconds": wall_clock,
            "peak_rss_mib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            / 1024.0,
            "n_iterations": result.n_iterations,
            "inertia": result.inertia,
        }
        if engine == "slab" and slab_options:
            row["slab_options"] = dict(slab_options)
        if engine == "slab" and result.costs.phase_seconds is not None:
            row["phase_seconds"] = {
                phase: round(seconds, 4)
                for phase, seconds in result.costs.phase_seconds.items()
            }
        connection.send(row)
    except Exception as error:  # pragma: no cover - surfaced by the parent
        connection.send({"error": f"{type(error).__name__}: {error}"})
    finally:
        connection.close()


def measure_engine(n_participants: int, engine: str,
                   sample_fraction: float = 0.01, iterations: int = 3,
                   seed: int = 7, slab_options: dict | None = None) -> dict:
    """Time one engine run in a forked subprocess (isolated peak RSS)."""
    context = multiprocessing.get_context("fork")
    parent, child = context.Pipe()
    worker = context.Process(
        target=_engine_probe,
        args=(child, n_participants, engine, sample_fraction, iterations,
              seed, slab_options),
    )
    worker.start()
    child.close()
    payload = parent.recv()
    worker.join()
    parent.close()
    if "error" in payload:
        raise RuntimeError(
            f"{engine} run at N={n_participants} failed: {payload['error']}"
        )
    return payload


def measure_engine_race(populations: list[int], sample_fraction: float = 0.01,
                        iterations: int = 3, seed: int = 7,
                        object_max: int | None = None,
                        huge_threshold: int | None = None,
                        slab_options: dict | None = None,
                        sample_max_nodes: int | None = None) -> list[dict]:
    """Object-vs-slab wall clock and peak RSS over growing populations.

    Populations above ``object_max`` run the slab engine only: the object
    engine holds every node as a live Python object (~1 MiB/node with the
    plain backend's bigint estimates), so at N=10^5 its resident set blows
    past 100 GiB and the probe would be OOM-killed before finishing.  Those
    rows carry ``object_skipped: "exceeds memory"`` instead of a speedup.

    Populations at or above ``huge_threshold`` additionally switch to the
    out-of-core layout in ``slab_options`` (chunked float32 slab on a
    memory-mapped file, matrix-backed dataset) — the N=10^7 configuration;
    smaller populations keep the dense bit-exact float64 layout so the
    committed speedup rows stay comparable across refreshes.
    ``sample_max_nodes`` caps the sampled crypto sub-run size so huge
    populations do not drag 10^5 object-engine nodes along.
    """
    rows = []
    for n_participants in populations:
        fraction = sample_fraction
        if sample_max_nodes is not None:
            fraction = min(fraction, sample_max_nodes / n_participants)
        options = None
        if huge_threshold is not None and n_participants >= huge_threshold:
            options = dict(slab_options or {})
            options.setdefault("matrix_backed", True)
        slab_row = measure_engine(n_participants, "slab",
                                  sample_fraction=fraction,
                                  iterations=iterations, seed=seed,
                                  slab_options=options)
        if object_max is not None and n_participants > object_max:
            slab_row["object_skipped"] = "exceeds memory"
            rows.append(slab_row)
            continue
        object_row = measure_engine(n_participants, "object",
                                    iterations=iterations, seed=seed)
        slab_row["speedup"] = (object_row["wall_clock_seconds"]
                               / max(slab_row["wall_clock_seconds"], 1e-9))
        rows.extend([object_row, slab_row])
    return rows


# ---------------------------------------------------------------- RSS gate
def measure_rss_ratio(n_participants: int, sample_fraction: float = 0.01,
                      iterations: int = 3, seed: int = 7,
                      slab_options: dict | None = None) -> dict:
    """Peak RSS of the out-of-core slab layout relative to the dense one.

    Both probes run the same slab workload at the same N; the dense side
    uses the default in-memory float64 slab and per-object dataset, the
    chunked side the full out-of-core stack (chunked slab on a memory-mapped
    file, float32, matrix-backed dataset).  The ratio is the CI gate that
    keeps the memory win from regressing.
    """
    dense = measure_engine(n_participants, "slab",
                           sample_fraction=sample_fraction,
                           iterations=iterations, seed=seed)
    chunked_options = {
        "slab_dtype": "float32",
        "slab_backing": "mmap:/tmp",
        # Smaller than the canonical reduce block: the pair-averaging
        # gathers are the dominant transient at gate scale.
        "slab_chunk_rows": 16384,
        "matrix_backed": True,
    }
    chunked_options.update(slab_options or {})
    chunked = measure_engine(n_participants, "slab",
                             sample_fraction=sample_fraction,
                             iterations=iterations, seed=seed,
                             slab_options=chunked_options)
    dense["layout"] = "dense"
    chunked["layout"] = "chunked"
    ratio = chunked["peak_rss_mib"] / max(dense["peak_rss_mib"], 1e-9)
    return {"rows": [dense, chunked], "rss_ratio": ratio}


def test_slab_engine_outruns_object_engine(benchmark):
    """The slab engine's vectorised gossip beats per-object simulation.

    A small-N smoke of the committed BENCH_population_scaling.json race: at
    N=2000 the struct-of-arrays path must already win by a wide margin (the
    committed datapoints show >=10x at N=10^4).
    """
    rows = run_once(benchmark, measure_engine_race, [2000])
    print()
    print(format_table(
        rows,
        columns=["engine", "n_participants", "wall_clock_seconds",
                 "peak_rss_mib", "n_iterations"],
        title="E10d - object vs slab engine wall clock, N=2000",
    ))
    object_row, slab_row = rows
    assert object_row["n_iterations"] == slab_row["n_iterations"]
    assert slab_row["speedup"] >= 5.0, rows


def main(argv=None) -> int:
    """Write the BENCH_population_scaling.json perf-trajectory datapoint."""
    parser = argparse.ArgumentParser(
        description="Race the object vs slab engines and write "
                    "BENCH_population_scaling.json"
    )
    parser.add_argument("--populations", type=int, nargs="+",
                        default=[1000, 10_000, 100_000])
    parser.add_argument("--sample-fraction", type=float, default=0.01)
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--assert-speedup", type=float, default=None,
                        help="fail unless the slab engine beats the object "
                             "engine by this factor at every population")
    parser.add_argument("--object-max", type=int, default=None,
                        help="largest population the object engine is raced "
                             "at; beyond it only the slab engine runs (the "
                             "object engine needs ~1 MiB per node and is "
                             "OOM-killed near N=10^5 on a 128 GiB machine)")
    parser.add_argument("--huge-threshold", type=int, default=1_000_000,
                        help="populations at or above this switch to the "
                             "out-of-core slab layout (chunked float32 slab "
                             "on a memory-mapped file, matrix-backed dataset)")
    parser.add_argument("--slab-dtype", default="float32",
                        choices=["float64", "float32"],
                        help="slab dtype of the out-of-core (huge) rows")
    parser.add_argument("--slab-backing", default="mmap:/tmp",
                        help="slab backing of the out-of-core (huge) rows")
    parser.add_argument("--slab-chunk-rows", type=int, default=65536,
                        help="row-block size of the out-of-core (huge) rows")
    parser.add_argument("--sample-max-nodes", type=int, default=None,
                        help="cap on sampled crypto sub-run size: the "
                             "effective fraction at population N is "
                             "min(sample-fraction, cap/N)")
    parser.add_argument("--assert-rss-ratio", type=float, default=None,
                        help="run the RSS gate instead of the race: fail "
                             "unless the chunked slab's peak RSS is at most "
                             "this fraction of the dense slab's at "
                             "--rss-population")
    parser.add_argument("--rss-population", type=int, default=100_000,
                        help="population of the --assert-rss-ratio probes")
    parser.add_argument("--out", default="BENCH_population_scaling.json")
    args = parser.parse_args(argv)
    slab_options = {
        "slab_dtype": args.slab_dtype,
        "slab_backing": args.slab_backing,
        "slab_chunk_rows": args.slab_chunk_rows,
    }
    if args.assert_rss_ratio is not None:
        # The gate always compares against its canonical chunked layout;
        # the --slab-* knobs only shape the huge rows of the engine race.
        comparison = measure_rss_ratio(
            args.rss_population, sample_fraction=args.sample_fraction,
            iterations=args.iterations, seed=args.seed,
        )
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump({
                "benchmark": "population_scaling_rss",
                "population": args.rss_population,
                "iterations": args.iterations,
                "sample_fraction": args.sample_fraction,
                "seed": args.seed,
                **comparison,
            }, handle, indent=2)
            handle.write("\n")
        print(format_table(
            comparison["rows"],
            columns=["layout", "n_participants", "wall_clock_seconds",
                     "peak_rss_mib"],
            title=f"chunked vs dense slab peak RSS, N={args.rss_population}",
        ))
        ratio = comparison["rss_ratio"]
        if ratio > args.assert_rss_ratio:
            print(f"FAIL: chunked/dense RSS ratio {ratio:.3f} exceeds "
                  f"{args.assert_rss_ratio}")
            return 1
        print(f"chunked slab peak RSS is {ratio:.3f}x the dense slab's "
              f"(gate: <= {args.assert_rss_ratio}x)")
        return 0
    rows = measure_engine_race(
        args.populations, sample_fraction=args.sample_fraction,
        iterations=args.iterations, seed=args.seed,
        object_max=args.object_max,
        huge_threshold=args.huge_threshold,
        slab_options=slab_options,
        sample_max_nodes=args.sample_max_nodes,
    )
    payload = {
        "benchmark": "population_scaling_engines",
        "iterations": args.iterations,
        "sample_fraction": args.sample_fraction,
        "seed": args.seed,
        "object_max": args.object_max,
        "huge_threshold": args.huge_threshold,
        "huge_slab_options": slab_options,
        "sample_max_nodes": args.sample_max_nodes,
        "config": {
            "n_clusters": 4,
            "epsilon": 2.0,
            "noise_shares": 32,
            "cycles_per_aggregation": 6,
            "threshold": 3,
            "backend": "plain",
        },
        "rows": rows,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(format_table(
        rows,
        columns=["engine", "n_participants", "wall_clock_seconds",
                 "peak_rss_mib", "speedup"],
        title=f"object vs slab engine race (written to {args.out})",
    ))
    if args.assert_speedup is not None:
        slab_rows = [row for row in rows
                     if row["engine"] == "slab" and "speedup" in row]
        slow = [row for row in slab_rows
                if row["speedup"] < args.assert_speedup]
        if slow:
            print(f"FAIL: slab speedup below {args.assert_speedup}x: {slow}")
            return 1
        print(f"slab engine >= {args.assert_speedup}x faster at every "
              f"population")
    return 0


def test_demo_scaling_rule_keeps_quality_constant(benchmark, tmp_path):
    """Scale ε with 1/population to keep the noise/population ratio constant."""
    base_population = POPULATIONS[0]
    base_epsilon = 4.0
    spec = ExperimentSpec(
        name="bench_population_scaling_demo_rule",
        dataset="gaussian",
        dataset_params=dict(_DATASET_PARAMS),
        participants=base_population,
        base=_BASE,
        # The demo's rule correlates the two axes, which a cartesian sweep
        # cannot express: enumerate the (population, ε) pairs explicitly.
        cells=[
            {"participants": population,
             "privacy.epsilon": base_epsilon * base_population / population}
            for population in POPULATIONS
        ],
        base_seed=300,
        metrics={"label_key": "cluster"},
    )
    rows = run_once(
        benchmark, _sweep, spec, tmp_path / "e10b.jsonl",
        ["relative_inertia", "effective_epsilon", "delta"],
    )
    print()
    print(format_table(
        rows,
        title="E10b - demo scaling rule: epsilon ~ 1/population keeps noise ratio constant",
    ))
    inertias = [row["relative_inertia"] for row in rows]
    # The scaling rule keeps quality in the same ballpark across populations.
    assert max(inertias) <= min(inertias) * 3.0


if __name__ == "__main__":
    import sys

    sys.exit(main())
