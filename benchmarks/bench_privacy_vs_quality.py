"""E1 — privacy vs quality trade-off (demonstration claim C2, mutable ε).

Regenerates the demo's headline trade-off: the quality of Chiaroscuro's
perturbed centroids (relative intra-cluster inertia against a centralised
k-means, plus the adjusted Rand index against the generator's ground truth)
as the total differential-privacy budget ε varies.

Expected shape: quality degrades as ε decreases; for moderate-to-large ε the
relative inertia approaches the centralised reference (claim C2).  Absolute
numbers differ from the paper (population 10^2 here vs 10^3-10^6 there), but
the monotone trend is the reproduced result.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import format_table, privacy_quality_tradeoff

EPSILONS = [0.5, 1.0, 2.0, 5.0, 10.0]


def test_privacy_vs_quality_cer(benchmark, cer_collection, bench_config):
    """ε sweep on the electricity-consumption use-case."""
    rows = run_once(
        benchmark, privacy_quality_tradeoff, cer_collection, bench_config, EPSILONS,
        label_key="archetype",
    )
    print()
    print(format_table(
        rows,
        columns=["epsilon", "relative_inertia", "adjusted_rand_index",
                 "centroid_matching_error", "n_iterations"],
        title="E1a - privacy vs quality (CER-like, relative to centralized k-means)",
    ))
    benchmark.extra_info["rows"] = [
        {key: row[key] for key in ("epsilon", "relative_inertia")} for row in rows
    ]
    # Reproduced shape: more budget never hurts quality by more than noise.
    assert rows[-1]["relative_inertia"] <= rows[0]["relative_inertia"] * 1.5


def test_privacy_vs_quality_numed(benchmark, numed_collection, bench_config):
    """ε sweep on the tumor-growth use-case (the demo's first GUI scenario)."""
    rows = run_once(
        benchmark, privacy_quality_tradeoff, numed_collection, bench_config, EPSILONS,
        label_key="archetype",
    )
    print()
    print(format_table(
        rows,
        columns=["epsilon", "relative_inertia", "adjusted_rand_index",
                 "centroid_matching_error", "n_iterations"],
        title="E1b - privacy vs quality (NUMED-like, relative to centralized k-means)",
    ))
    assert rows[-1]["relative_inertia"] <= rows[0]["relative_inertia"] * 1.5
