"""E1 — privacy vs quality trade-off (demonstration claim C2, mutable ε).

Regenerates the demo's headline trade-off: the quality of Chiaroscuro's
perturbed centroids (relative intra-cluster inertia against a centralised
k-means, plus the adjusted Rand index against the generator's ground truth)
as the total differential-privacy budget ε varies.

Since PR 5 this benchmark is a thin wrapper over the experiment subsystem
(:mod:`repro.experiments`): it declares the ε sweep as an
:class:`~repro.experiments.ExperimentSpec`, executes the scenario matrix
through the parallel sweep runner into a throw-away result store, and reads
the comparison rows back — the same machinery behind
``repro experiment run --spec examples/scenarios/privacy_vs_quality.json``.

Expected shape: quality degrades as ε decreases; for moderate-to-large ε the
relative inertia approaches the centralised reference (claim C2).  Absolute
numbers differ from the paper (population 10^2 here vs 10^3-10^6 there), but
the monotone trend is the reproduced result.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import (
    ExperimentSpec,
    ResultStore,
    comparison_rows,
    run_experiment,
)

EPSILONS = [0.5, 1.0, 2.0, 5.0, 10.0]


def _spec(dataset: str, label_key: str, **dataset_params) -> ExperimentSpec:
    """The ε-sweep experiment on one dataset (mirrors the bench_config)."""
    return ExperimentSpec(
        name=f"bench_privacy_vs_quality_{dataset}",
        dataset=dataset,
        dataset_params=dict(dataset_params),
        participants=120,
        base={
            "kmeans": {"n_clusters": 4, "max_iterations": 6},
            "privacy": {"noise_shares": 32},
            "gossip": {"cycles_per_aggregation": 10},
            "crypto": {"threshold": 3, "n_key_shares": 6},
        },
        sweep={"privacy.epsilon": EPSILONS},
        base_seed=7,
        metrics={"label_key": label_key},
    )


def _sweep(spec: ExperimentSpec, store_path) -> list[dict]:
    store = ResultStore(store_path)
    progress = run_experiment(spec, store, jobs=2)
    assert progress.failed == 0, progress.failures
    return comparison_rows(spec, store, metrics=[
        "relative_inertia", "adjusted_rand_index", "centroid_matching_error",
        "n_iterations",
    ])


def test_privacy_vs_quality_cer(benchmark, tmp_path):
    """ε sweep on the electricity-consumption use-case."""
    spec = _spec("cer", "archetype")
    rows = run_once(benchmark, _sweep, spec, tmp_path / "e1a.jsonl")
    print()
    print(format_table(
        rows,
        columns=["privacy.epsilon", "relative_inertia", "adjusted_rand_index",
                 "centroid_matching_error", "n_iterations"],
        title="E1a - privacy vs quality (CER-like, relative to centralized k-means)",
    ))
    benchmark.extra_info["rows"] = [
        {"epsilon": row["privacy.epsilon"], "relative_inertia": row["relative_inertia"]}
        for row in rows
    ]
    # Reproduced shape: more budget never hurts quality by more than noise.
    assert rows[-1]["relative_inertia"] <= rows[0]["relative_inertia"] * 1.5


def test_privacy_vs_quality_numed(benchmark, tmp_path):
    """ε sweep on the tumor-growth use-case (the demo's first GUI scenario)."""
    spec = _spec("numed", "archetype")
    rows = run_once(benchmark, _sweep, spec, tmp_path / "e1b.jsonl")
    print()
    print(format_table(
        rows,
        columns=["privacy.epsilon", "relative_inertia", "adjusted_rand_index",
                 "centroid_matching_error", "n_iterations"],
        title="E1b - privacy vs quality (NUMED-like, relative to centralized k-means)",
    ))
    assert rows[-1]["relative_inertia"] <= rows[0]["relative_inertia"] * 1.5
