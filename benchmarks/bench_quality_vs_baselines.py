"""E2 — quality of Chiaroscuro against its baselines (claim C2).

Regenerates the comparison the demo GUI displays: the perturbed profiles
versus the centralised k-means reference, with the centralised DP (trusted
curator) baseline, the non-private distributed (plain gossip) baseline and a
random clustering as anchors.

Expected shape: centralized <= distributed_plain << random, with chiaroscuro
and centralized_dp in between (both pay the differential-privacy noise at the
same ε); chiaroscuro stays in the same quality regime as the trusted-curator
DP baseline even though it removes the trusted curator entirely.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import compare_with_baselines, format_comparison

COLUMNS = ["relative_inertia", "adjusted_rand_index", "centroid_matching_error"]


def _check_ordering(reports):
    assert reports["centralized"]["relative_inertia"] <= 1.0 + 1e-6
    assert reports["distributed_plain"]["relative_inertia"] < 2.0
    assert reports["random"]["relative_inertia"] >= reports["distributed_plain"]["relative_inertia"]
    assert reports["chiaroscuro"]["relative_inertia"] < reports["random"]["relative_inertia"] * 2


def test_baselines_cer(benchmark, cer_collection, bench_config):
    reports = run_once(
        benchmark, compare_with_baselines, cer_collection, bench_config,
        label_key="archetype",
    )
    print()
    print(format_comparison(
        reports, columns=COLUMNS,
        title="E2a - Chiaroscuro vs baselines (CER-like, epsilon=2)",
    ))
    _check_ordering(reports)


def test_baselines_numed(benchmark, numed_collection, bench_config):
    reports = run_once(
        benchmark, compare_with_baselines, numed_collection, bench_config,
        label_key="archetype",
    )
    print()
    print(format_comparison(
        reports, columns=COLUMNS,
        title="E2b - Chiaroscuro vs baselines (NUMED-like, epsilon=2)",
    ))
    _check_ordering(reports)


def test_baselines_gaussian_ground_truth(benchmark, gaussian_collection, bench_config):
    """Controlled dataset where the true partition is known by construction."""
    reports = run_once(
        benchmark, compare_with_baselines, gaussian_collection, bench_config,
        label_key="cluster",
    )
    print()
    print(format_comparison(
        reports, columns=COLUMNS,
        title="E2c - Chiaroscuro vs baselines (synthetic ground truth, epsilon=2)",
    ))
    _check_ordering(reports)
    assert reports["centralized"]["adjusted_rand_index"] > 0.9
