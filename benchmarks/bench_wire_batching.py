"""On-socket savings of batched & compressed wire records in the live runner.

The live runner's decrypt rounds send the *same* request frame to every
committee helper; with ``network.batching`` the helpers hosted on one
worker share a single :class:`~repro.gossip.messages.BatchEnvelope` socket
record, and ``network.compression`` additionally zlib-compresses the
batched section (identical frames compress almost to one).  Protocol byte
accounting is untouched by design — a batched run charges exactly the
per-recipient frame bytes an unbatched run charges — so the win shows up
only where it physically happens: the runner-level socket statistics.

This benchmark runs the same seeded live scenario three ways (unbatched,
batched, batched+zlib), checks the clustering results and protocol
accounting are identical, and reports on-socket bytes per gossip exchange
for each mode.  Run as a script, it writes ``BENCH_wire_batching.json``::

    PYTHONPATH=src python benchmarks/bench_wire_batching.py \
        --assert-reduction 1.0 --out BENCH_wire_batching.json

Each measurement runs in a forked subprocess so one run's worker processes
and sockets cannot leak into the next.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing

from conftest import run_once

from repro.analysis import format_table

#: The smoke scenario every row runs: 2 workers and a 3-helper committee,
#: so every decrypt round from the second worker's nodes batches 3 frames.
SCENARIO = {
    "participants": 20,
    "clusters": 2,
    "iterations": 3,
    "gossip_cycles": 4,
    "noise_shares": 8,
    "threshold": 3,
    "n_key_shares": 6,
    "processes": 2,
    "seed": 0,
}


def _live_probe(connection, batching: bool, compression: bool,
                scenario: dict) -> None:
    """Subprocess body: one live run, socket + protocol byte counters."""
    from repro.config import ChiaroscuroConfig
    from repro.core.runner import run_chiaroscuro
    from repro.datasets import load_dataset_for_population

    try:
        collection = load_dataset_for_population(
            "gaussian", scenario["participants"], scenario["seed"],
            n_clusters=scenario["clusters"], noise_std=0.05,
        )
        config = ChiaroscuroConfig().with_overrides(
            simulation={"n_participants": scenario["participants"],
                        "seed": scenario["seed"]},
            kmeans={"n_clusters": scenario["clusters"],
                    "max_iterations": scenario["iterations"]},
            privacy={"epsilon": 2.0, "noise_shares": scenario["noise_shares"]},
            gossip={"cycles_per_aggregation": scenario["gossip_cycles"]},
            crypto={"threshold": scenario["threshold"],
                    "n_key_shares": scenario["n_key_shares"]},
            network={"batching": batching, "compression": compression},
            runtime={"mode": "live", "processes": scenario["processes"],
                     "run_timeout": 240.0},
        )
        result = run_chiaroscuro(collection, config)
        socket = result.metadata["live"]["socket"]
        exchanges = result.costs.messages_sent / 2.0
        connection.send({
            "mode": ("batched+zlib" if compression
                     else "batched" if batching else "unbatched"),
            "socket_bytes_sent": socket["bytes_sent"],
            "socket_records_sent": socket["records_sent"],
            "batched_records": socket["batched_records"],
            "batched_frames": socket["batched_frames"],
            "socket_bytes_per_exchange": socket["bytes_sent"] / max(exchanges, 1e-9),
            "exchanges": exchanges,
            "protocol_bytes_sent": result.costs.bytes_sent,
            "protocol_messages_sent": result.costs.messages_sent,
            "inertia": result.inertia,
            "n_iterations": result.n_iterations,
        })
    except Exception as error:  # pragma: no cover - surfaced by the parent
        connection.send({"error": f"{type(error).__name__}: {error}"})
    finally:
        connection.close()


def measure_live(batching: bool, compression: bool,
                 scenario: dict | None = None) -> dict:
    """One live run in a forked subprocess (isolated workers/sockets)."""
    context = multiprocessing.get_context("fork")
    parent, child = context.Pipe()
    worker = context.Process(
        target=_live_probe,
        args=(child, batching, compression, scenario or dict(SCENARIO)),
    )
    worker.start()
    child.close()
    payload = parent.recv()
    worker.join()
    parent.close()
    if "error" in payload:
        raise RuntimeError(
            f"live run (batching={batching}, compression={compression}) "
            f"failed: {payload['error']}"
        )
    return payload


def measure_modes(scenario: dict | None = None) -> list[dict]:
    """Unbatched vs batched vs batched+zlib rows on the same seeded scenario.

    Verifies the equal-quality / equal-accounting contract before reporting
    the socket-byte comparison, and attaches ``socket_reduction`` — the
    unbatched on-socket bytes divided by this row's — to the batched rows.
    """
    unbatched = measure_live(batching=False, compression=False, scenario=scenario)
    batched = measure_live(batching=True, compression=False, scenario=scenario)
    compressed = measure_live(batching=True, compression=True, scenario=scenario)
    for row in (batched, compressed):
        if (row["inertia"] != unbatched["inertia"]
                or row["n_iterations"] != unbatched["n_iterations"]):
            raise RuntimeError(f"batched run changed the results: {row}")
        if (row["protocol_bytes_sent"] != unbatched["protocol_bytes_sent"]
                or row["protocol_messages_sent"]
                != unbatched["protocol_messages_sent"]):
            raise RuntimeError(f"batched run changed the accounting: {row}")
        row["socket_reduction"] = (
            unbatched["socket_bytes_sent"] / max(row["socket_bytes_sent"], 1e-9)
        )
    unbatched["socket_reduction"] = 1.0
    return [unbatched, batched, compressed]


def test_batching_reduces_online_socket_bytes(benchmark):
    """The CI bench-smoke gate: batched+compressed must move strictly fewer
    on-socket bytes per gossip exchange than the unbatched runner, at
    bit-identical clustering results and protocol accounting (checked
    inside :func:`measure_modes`)."""
    rows = run_once(benchmark, measure_modes)
    print()
    print(format_table(
        rows,
        columns=["mode", "socket_bytes_sent", "batched_records",
                 "socket_bytes_per_exchange", "socket_reduction"],
        title="on-socket bytes: unbatched vs batched vs batched+zlib",
    ))
    unbatched, batched, compressed = rows
    assert batched["batched_records"] > 0
    assert batched["socket_bytes_per_exchange"] \
        < unbatched["socket_bytes_per_exchange"], rows
    assert compressed["socket_bytes_per_exchange"] \
        < batched["socket_bytes_per_exchange"], rows


def main(argv=None) -> int:
    """Write the BENCH_wire_batching.json comparison datapoints."""
    parser = argparse.ArgumentParser(
        description="Measure on-socket bytes of the live runner with wire "
                    "batching/compression and write BENCH_wire_batching.json"
    )
    parser.add_argument("--assert-reduction", type=float, default=None,
                        help="fail unless batched+zlib moves this many times "
                             "fewer on-socket bytes than unbatched")
    parser.add_argument("--out", default="BENCH_wire_batching.json")
    args = parser.parse_args(argv)
    rows = measure_modes()
    payload = {
        "benchmark": "wire_batching",
        "scenario": dict(SCENARIO),
        "rows": rows,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(format_table(
        rows,
        columns=["mode", "socket_bytes_sent", "socket_records_sent",
                 "batched_records", "batched_frames",
                 "socket_bytes_per_exchange", "socket_reduction"],
        title=f"wire batching on-socket savings (written to {args.out})",
    ))
    if args.assert_reduction is not None:
        compressed = rows[-1]
        if compressed["socket_reduction"] < args.assert_reduction:
            print(f"FAIL: batched+zlib reduction "
                  f"{compressed['socket_reduction']:.3f}x below "
                  f"{args.assert_reduction}x")
            return 1
        print(f"batched+zlib moves {compressed['socket_reduction']:.3f}x "
              f"fewer on-socket bytes than unbatched")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
