"""E4 — network costs per participant (claim C3).

Runs the protocol at several population sizes and reports the per-participant
message and byte counts measured by the simulated network, split by run.

Expected shape: the per-participant traffic is essentially independent of the
population size — it depends on k, the series length, the number of gossip
exchanges and the decryption threshold — which is what makes the design
scale to the 10^6 devices the paper targets.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import format_table
from repro.core import run_chiaroscuro
from repro.datasets import generate_gaussian_clusters

POPULATIONS = [40, 80, 160]


def _run_population(bench_config, n_participants: int):
    collection = generate_gaussian_clusters(
        n_series=n_participants, series_length=24, n_clusters=4, noise_std=0.05, seed=200,
    )
    config = bench_config.with_overrides(
        simulation={"n_participants": n_participants},
        kmeans={"n_clusters": 4, "max_iterations": 4},
    )
    result = run_chiaroscuro(collection, config)
    return {
        "n_participants": n_participants,
        "n_iterations": result.n_iterations,
        "messages_per_participant": result.costs.messages_per_participant,
        "kbytes_per_participant": result.costs.bytes_per_participant / 1024,
        "messages_total": result.costs.messages_sent,
        "kbytes_total": result.costs.bytes_sent / 1024,
    }


def test_network_cost_vs_population(benchmark, bench_config):
    def sweep():
        return [_run_population(bench_config, population) for population in POPULATIONS]

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(
        rows,
        title="E4 - per-participant network cost vs population size (plain backend)",
    ))
    per_participant = [row["kbytes_per_participant"] / row["n_iterations"] for row in rows]
    # Per-participant, per-iteration traffic stays within a factor ~2 across a
    # 4x population increase: it does not grow with the population.
    assert max(per_participant) <= min(per_participant) * 2.0


def test_network_cost_vs_gossip_exchanges(benchmark, bench_config, gaussian_collection):
    """Traffic grows linearly with the number of gossip cycles per aggregation."""
    def sweep():
        rows = []
        for cycles in (5, 10, 20):
            config = bench_config.with_overrides(
                gossip={"cycles_per_aggregation": cycles},
                kmeans={"n_clusters": 4, "max_iterations": 3},
            )
            result = run_chiaroscuro(gaussian_collection, config)
            rows.append({
                "gossip_cycles": cycles,
                "n_iterations": result.n_iterations,
                "messages_per_participant": result.costs.messages_per_participant,
                "kbytes_per_participant": result.costs.bytes_per_participant / 1024,
            })
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, title="E4 - network cost vs gossip cycles per aggregation"))
    assert rows[-1]["kbytes_per_participant"] > rows[0]["kbytes_per_participant"]
