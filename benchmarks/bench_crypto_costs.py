"""E3 — encryption costs and their extrapolation (claim C3, "privacy vs performance").

The demo measures the Damgård–Jurik operation times beforehand and displays
the overhead that real homomorphic operations would add at full scale.  This
benchmark reproduces both halves: the per-operation timings as a function of
key size and degree, and the per-participant cost prediction of a complete
run for populations from 10^3 to 10^6.

Expected shape: per-operation cost grows roughly cubically with the key size;
the per-participant compute time is independent of the population size (the
gossip design's whole point) and stays in the "seconds to minutes per
iteration" range the paper calls affordable for personal devices.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import run_once

from repro.analysis import CostModel, ProtocolWorkload, format_table, measure_crypto_costs
from repro.crypto import damgard_jurik as dj
from repro.crypto.backends import DamgardJurikBackend, PlainBackend
from repro.gossip.encrypted_sum import average_estimates, fresh_estimate

KEY_SIZES = [256, 512, 1024]


@pytest.mark.parametrize("key_bits", KEY_SIZES)
def test_per_operation_costs_vs_key_size(benchmark, key_bits):
    """Measured per-operation times for increasing key sizes."""
    profile = run_once(
        benchmark, measure_crypto_costs, key_bits=key_bits, degree=1,
        threshold=3, n_shares=5, repetitions=3,
    )
    print()
    print(format_table(
        [profile.as_dict()],
        columns=["key_bits", "encryption_seconds", "addition_seconds",
                 "partial_decryption_seconds", "combination_seconds", "ciphertext_bytes"],
        title=f"E3 - Damgard-Jurik per-operation cost, {key_bits}-bit key",
    ))
    benchmark.extra_info.update(profile.as_dict())
    assert profile.encryption_seconds > profile.addition_seconds


def test_degree_two_costs(benchmark):
    """Degree s=2 doubles the plaintext space and increases per-op cost."""
    profile = run_once(
        benchmark, measure_crypto_costs, key_bits=512, degree=2,
        threshold=3, n_shares=5, repetitions=3,
    )
    print()
    print(format_table([profile.as_dict()],
                       title="E3 - Damgard-Jurik per-operation cost, 512-bit key, degree 2"))
    assert profile.ciphertext_bytes > 512 // 8 * 2


def test_encryption_throughput_single_op(benchmark):
    """Raw single-encryption latency with a realistic 1024-bit key."""
    public, _private = dj.generate_keypair(key_bits=1024, s=1)
    benchmark(dj.encrypt, public, 123456789)


@pytest.mark.parametrize("packing", ["off", "auto"])
def test_packed_gossip_exchange_costs(benchmark, packing):
    """Operation counts and wall clock of gossip exchanges, packed vs off.

    The plain backend widens its simulated plaintext to the 2048-bit space of
    a 4096-bit degree-1 ciphertext when packing is on; the counters then show
    the ≥ 4× (here ~30×) cut in bigint operations that the packed layer buys
    on a 64-point series.
    """
    backend = PlainBackend(threshold=3, n_shares=5, packing=packing)
    series = np.linspace(0.0, 1.0, 64)

    def exchanges():
        backend.counter.reset()
        first = fresh_estimate(backend, series)
        second = fresh_estimate(backend, series[::-1])
        for _ in range(50):
            averaged = average_estimates(backend, first, second)
            first, second = second, averaged
        return backend.counter.as_dict()

    counts = benchmark(exchanges)
    row = {"packing": packing, "slots": backend.packing.slots if backend.is_packed else 1}
    row.update(counts)
    print()
    print(format_table([row], title=f"E3 - gossip exchange crypto ops, packing={packing}"))
    benchmark.extra_info.update(row)
    if packing == "auto":
        assert counts["encryptions"] * 4 <= 2 * 64
        assert counts["additions"] * 4 <= 50 * 3 * 64


@pytest.mark.parametrize("packing", ["off", "auto"])
def test_packed_real_encryption_walltime(benchmark, packing):
    """Wall-clock win of packing with *real* Damgård–Jurik encryption.

    Packing a 64-point series into ~2048-bit plaintext slots divides the
    number of modular exponentiations by the slot count, which is the whole
    point of the packed cipher layer.
    """
    backend = DamgardJurikBackend(
        key_bits=512, degree=1, threshold=3, n_shares=5, packing=packing,
        packing_weight_bits=30,
    )
    series = np.linspace(0.0, 1.0, 64)
    vector = benchmark(backend.encrypt_vector, series)
    print()
    print(format_table(
        [{"packing": packing, "ciphertexts": vector.n_ciphertexts,
          "encryptions_counted": backend.counter.encryptions}],
        title=f"E3 - real 512-bit encryption of a 64-point series, packing={packing}",
    ))
    if packing == "auto":
        assert vector.n_ciphertexts * 4 <= 64


def test_extrapolated_run_costs(benchmark):
    """Per-participant cost of a full run, extrapolated to 10^3..10^6 devices."""
    profile = measure_crypto_costs(key_bits=1024, degree=1, threshold=3, n_shares=5,
                                   repetitions=3)
    workload = ProtocolWorkload(
        n_clusters=5, series_length=48, iterations=10,
        gossip_cycles=12, exchanges_per_cycle=1, threshold=3,
    )
    model = CostModel(profile)
    rows = run_once(benchmark, model.sweep_population, workload,
                    [10**3, 10**4, 10**5, 10**6])
    print()
    print(format_table(
        rows,
        columns=["n_participants", "encryption_seconds", "addition_seconds",
                 "decryption_seconds", "total_compute_seconds", "bytes_sent",
                 "messages_sent", "aggregate_bytes"],
        title="E3 - extrapolated per-participant cost of a full run (1024-bit key, k=5, T=48)",
    ))
    # Per-participant cost must not depend on the population size.
    assert rows[0]["total_compute_seconds"] == rows[-1]["total_compute_seconds"]
    # "Affordable": less than an hour of compute per device for the whole run.
    assert rows[0]["total_compute_seconds"] < 3600
