"""E3 — encryption costs and their extrapolation (claim C3, "privacy vs performance").

The demo measures the Damgård–Jurik operation times beforehand and displays
the overhead that real homomorphic operations would add at full scale.  This
benchmark reproduces both halves: the per-operation timings as a function of
key size and degree, and the per-participant cost prediction of a complete
run for populations from 10^3 to 10^6.

Expected shape: per-operation cost grows roughly cubically with the key size;
the per-participant compute time is independent of the population size (the
gossip design's whole point) and stays in the "seconds to minutes per
iteration" range the paper calls affordable for personal devices.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np
import pytest
from conftest import run_once

from repro.analysis import CostModel, ProtocolWorkload, format_table, measure_crypto_costs
from repro.crypto import damgard_jurik as dj
from repro.crypto.backends import DamgardJurikBackend, PlainBackend
from repro.crypto.fastmath import BlinderPool, PrecomputedKey
from repro.crypto.threshold import (
    combine_partial_decryptions,
    generate_threshold_keypair,
    partial_decrypt,
)
from repro.gossip.encrypted_sum import average_estimates, fresh_estimate

KEY_SIZES = [256, 512, 1024]


@pytest.mark.parametrize("key_bits", KEY_SIZES)
def test_per_operation_costs_vs_key_size(benchmark, key_bits):
    """Measured per-operation times for increasing key sizes."""
    profile = run_once(
        benchmark, measure_crypto_costs, key_bits=key_bits, degree=1,
        threshold=3, n_shares=5, repetitions=3,
    )
    print()
    print(format_table(
        [profile.as_dict()],
        columns=["key_bits", "encryption_seconds", "addition_seconds",
                 "partial_decryption_seconds", "combination_seconds", "ciphertext_bytes"],
        title=f"E3 - Damgard-Jurik per-operation cost, {key_bits}-bit key",
    ))
    benchmark.extra_info.update(profile.as_dict())
    assert profile.encryption_seconds > profile.addition_seconds


def test_degree_two_costs(benchmark):
    """Degree s=2 doubles the plaintext space and increases per-op cost."""
    profile = run_once(
        benchmark, measure_crypto_costs, key_bits=512, degree=2,
        threshold=3, n_shares=5, repetitions=3,
    )
    print()
    print(format_table([profile.as_dict()],
                       title="E3 - Damgard-Jurik per-operation cost, 512-bit key, degree 2"))
    assert profile.ciphertext_bytes > 512 // 8 * 2


def test_encryption_throughput_single_op(benchmark):
    """Raw single-encryption latency with a realistic 1024-bit key."""
    public, _private = dj.generate_keypair(key_bits=1024, s=1)
    benchmark(dj.encrypt, public, 123456789)


@pytest.mark.parametrize("packing", ["off", "auto"])
def test_packed_gossip_exchange_costs(benchmark, packing):
    """Operation counts and wall clock of gossip exchanges, packed vs off.

    The plain backend widens its simulated plaintext to the 2048-bit space of
    a 4096-bit degree-1 ciphertext when packing is on; the counters then show
    the ≥ 4× (here ~30×) cut in bigint operations that the packed layer buys
    on a 64-point series.
    """
    backend = PlainBackend(threshold=3, n_shares=5, packing=packing)
    series = np.linspace(0.0, 1.0, 64)

    def exchanges():
        backend.counter.reset()
        first = fresh_estimate(backend, series)
        second = fresh_estimate(backend, series[::-1])
        for _ in range(50):
            averaged = average_estimates(backend, first, second)
            first, second = second, averaged
        return backend.counter.as_dict()

    counts = benchmark(exchanges)
    row = {"packing": packing, "slots": backend.packing.slots if backend.is_packed else 1}
    row.update(counts)
    print()
    print(format_table([row], title=f"E3 - gossip exchange crypto ops, packing={packing}"))
    benchmark.extra_info.update(row)
    if packing == "auto":
        assert counts["encryptions"] * 4 <= 2 * 64
        assert counts["additions"] * 4 <= 50 * 3 * 64


@pytest.mark.parametrize("packing", ["off", "auto"])
def test_packed_real_encryption_walltime(benchmark, packing):
    """Wall-clock win of packing with *real* Damgård–Jurik encryption.

    Packing a 64-point series into ~2048-bit plaintext slots divides the
    number of modular exponentiations by the slot count, which is the whole
    point of the packed cipher layer.
    """
    backend = DamgardJurikBackend(
        key_bits=512, degree=1, threshold=3, n_shares=5, packing=packing,
        packing_weight_bits=30,
    )
    series = np.linspace(0.0, 1.0, 64)
    vector = benchmark(backend.encrypt_vector, series)
    print()
    print(format_table(
        [{"packing": packing, "ciphertexts": vector.n_ciphertexts,
          "encryptions_counted": backend.counter.encryptions}],
        title=f"E3 - real 512-bit encryption of a 64-point series, packing={packing}",
    ))
    if packing == "auto":
        assert vector.n_ciphertexts * 4 <= 64


@pytest.mark.parametrize("fastmath", ["off", "auto"])
def test_fastmath_decryption_speedup(benchmark, fastmath):
    """CRT decryption (half-width moduli, half-size exponents) vs full pow.

    At 1024 bits the CRT split is already a multiple; the committed
    BENCH_crypto.json records the ≥3× figure at the paper's 2048-bit keys.
    """
    public, private = dj.generate_keypair(key_bits=1024, s=1)
    precomputed = PrecomputedKey.from_private_key(private) if fastmath == "auto" else None
    ciphertext = dj.encrypt(public, 123456789)
    plaintext = benchmark(dj.decrypt, private, ciphertext, precomputed)
    assert plaintext == 123456789
    benchmark.extra_info["fastmath"] = fastmath


@pytest.mark.parametrize("fastmath", ["off", "auto"])
def test_fastmath_pooled_encrypt_speedup(benchmark, fastmath):
    """Hot-path encryption: one multiply with a pooled blinder vs one pow."""
    public, private = dj.generate_keypair(key_bits=1024, s=1)
    precomputed = pool = None
    if fastmath == "auto":
        precomputed = PrecomputedKey.from_private_key(private)
        pool = BlinderPool(precomputed, batch_size=512)
        pool.refill(4096)  # amortized: filled outside the hot path

    ciphertext = benchmark(dj.encrypt, public, 123456789, None, precomputed, pool)
    assert dj.decrypt(private, ciphertext) == 123456789
    benchmark.extra_info["fastmath"] = fastmath


def _time_op(operation, repetitions: int) -> float:
    start = time.perf_counter()
    for _ in range(repetitions):
        operation()
    return (time.perf_counter() - start) / repetitions


def collect_fastmath_baseline(
    key_bits: int = 2048,
    degree: int = 1,
    threshold: int = 3,
    n_shares: int = 5,
    repetitions: int = 5,
    pooled_repetitions: int = 2000,
) -> dict:
    """Ops/sec of every hot operation with and without fastmath.

    This is the machine-readable perf baseline (BENCH_crypto.json): encrypt
    and rerandomize contrast the fresh exponentiation against the amortized
    pool, decrypt and the threshold share contrast full-width ``pow``
    against the CRT split, halve exercises the recurring
    ``2^{-1} mod n^s`` exponent, and combine contrasts the per-share pow
    loop against Straus multi-exponentiation.

    These are *simulation wall-clock* figures for the library's hot loop,
    where the in-process backend legitimately holds the dealer key (CRT).
    Device-cost extrapolation uses
    :func:`repro.analysis.costs.measure_crypto_costs`, which deliberately
    restricts itself to participant-achievable accelerations.
    """
    public, shares, private = generate_threshold_keypair(
        key_bits=key_bits, s=degree, threshold=threshold, n_shares=n_shares
    )
    plain_public = public.public_key
    precomputed = PrecomputedKey.from_private_key(private)
    pool = BlinderPool(precomputed, batch_size=pooled_repetitions)
    pool.refill(2 * pooled_repetitions)  # amortized: filled outside the hot path
    message = 123456789 % plain_public.plaintext_modulus
    ciphertext = dj.encrypt(plain_public, message)
    partials = [
        partial_decrypt(public, share, ciphertext, precomputed=precomputed)
        for share in shares[:threshold]
    ]

    operations = {
        "encrypt": (
            lambda: dj.encrypt(plain_public, message),
            lambda: dj.encrypt(plain_public, message, precomputed=precomputed, pool=pool),
        ),
        "rerandomize": (
            lambda: dj.rerandomize(plain_public, ciphertext),
            lambda: dj.rerandomize(plain_public, ciphertext, pool=pool),
        ),
        "decrypt": (
            lambda: dj.decrypt(private, ciphertext),
            lambda: dj.decrypt(private, ciphertext, precomputed=precomputed),
        ),
        "halve": (
            lambda: dj.halve_plaintext(plain_public, ciphertext),
            lambda: dj.halve_plaintext(plain_public, ciphertext, precomputed=precomputed),
        ),
        "threshold_share": (
            lambda: partial_decrypt(public, shares[0], ciphertext),
            lambda: partial_decrypt(public, shares[0], ciphertext, precomputed=precomputed),
        ),
        "combine": (
            lambda: combine_partial_decryptions(public, partials, multiexp=False),
            lambda: combine_partial_decryptions(public, partials, multiexp=True),
        ),
    }
    rows = {}
    for name, (off_operation, fast_operation) in operations.items():
        # Pool-served operations are microseconds each; use more repetitions
        # so the timer resolution does not dominate.
        fast_repetitions = (
            pooled_repetitions if name in ("encrypt", "rerandomize") else repetitions
        )
        off_seconds = _time_op(off_operation, repetitions)
        fast_seconds = _time_op(fast_operation, fast_repetitions)
        rows[name] = {
            "off_seconds": off_seconds,
            "fastmath_seconds": fast_seconds,
            "off_ops_per_sec": 1.0 / off_seconds,
            "fastmath_ops_per_sec": 1.0 / fast_seconds,
            "speedup": off_seconds / fast_seconds,
        }
    return {
        "benchmark": "crypto_fastmath",
        "key_bits": key_bits,
        "degree": degree,
        "threshold": threshold,
        "repetitions": repetitions,
        "operations": rows,
    }


def main(argv=None) -> int:
    """Write the BENCH_crypto.json perf-trajectory datapoint."""
    parser = argparse.ArgumentParser(
        description="Measure fastmath on/off ops/sec and write BENCH_crypto.json"
    )
    parser.add_argument("--key-bits", type=int, default=2048)
    parser.add_argument("--degree", type=int, default=1)
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--pooled-repetitions", type=int, default=2000)
    parser.add_argument("--out", default="BENCH_crypto.json")
    args = parser.parse_args(argv)
    baseline = collect_fastmath_baseline(
        key_bits=args.key_bits,
        degree=args.degree,
        repetitions=args.repetitions,
        pooled_repetitions=args.pooled_repetitions,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(format_table(
        [
            {"operation": name, **row}
            for name, row in baseline["operations"].items()
        ],
        columns=["operation", "off_ops_per_sec", "fastmath_ops_per_sec", "speedup"],
        title=f"fastmath baseline, {args.key_bits}-bit key (written to {args.out})",
    ))
    return 0


def test_extrapolated_run_costs(benchmark):
    """Per-participant cost of a full run, extrapolated to 10^3..10^6 devices."""
    profile = measure_crypto_costs(key_bits=1024, degree=1, threshold=3, n_shares=5,
                                   repetitions=3)
    workload = ProtocolWorkload(
        n_clusters=5, series_length=48, iterations=10,
        gossip_cycles=12, exchanges_per_cycle=1, threshold=3,
    )
    model = CostModel(profile)
    rows = run_once(benchmark, model.sweep_population, workload,
                    [10**3, 10**4, 10**5, 10**6])
    print()
    print(format_table(
        rows,
        columns=["n_participants", "encryption_seconds", "addition_seconds",
                 "decryption_seconds", "total_compute_seconds", "bytes_sent",
                 "messages_sent", "aggregate_bytes"],
        title="E3 - extrapolated per-participant cost of a full run (1024-bit key, k=5, T=48)",
    ))
    # Per-participant cost must not depend on the population size.
    assert rows[0]["total_compute_seconds"] == rows[-1]["total_compute_seconds"]
    # "Affordable": less than an hour of compute per device for the whole run.
    assert rows[0]["total_compute_seconds"] < 3600


if __name__ == "__main__":
    import sys

    sys.exit(main())
