"""Setuptools shim.

The build environment used for this reproduction has no ``wheel`` package and
no network access, so PEP 517/660 editable builds (which require building a
wheel) are unavailable.  Keeping a ``setup.py`` lets ``pip install -e .`` fall
back to the legacy ``setup.py develop`` code path, which works offline.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
