"""Concurrent stepping in the live runner: speed without silent drift.

Three contracts pinned down here:

* **sequential stays exact** — ``stepping="sequential"`` (the default)
  remains bit-identical to cycle mode; adding the concurrent path changed
  nothing about the deterministic one.
* **the envelope is measured, not assumed** — a concurrent run reports its
  divergence from the deterministic reference (profile distance, assignment
  churn, byte spread) in ``costs.envelope``, and across seeds those metrics
  stay inside loose but meaningful bounds: the interleaving jitters the
  gossip averages, it does not change what the protocol computes.
* **backpressure engages** — a writer racing ahead of a slow reader parks
  in ``drain()`` at the configured high-water mark instead of buffering
  records without bound.

Live runs here are kept tiny (8 participants, 2 workers, plain backend) so
the file stays in CI-smoke territory.
"""

from __future__ import annotations

import asyncio
import socket

import numpy as np
import pytest

from repro.analysis.envelope import align_profiles, nondeterminism_envelope
from repro.config import ChiaroscuroConfig
from repro.core.result import CostSummary
from repro.core.runner import run_chiaroscuro
from repro.datasets import load_dataset
from repro.exceptions import ReproError
from repro.net import DEFAULT_WRITE_BUFFER_LIMIT, KIND_CONTROL, Envelope

#: Bounds the envelope metrics must respect on the smoke scenario, across
#: seeds.  Observed values sit well inside (relative distance ~0.02-0.09,
#: churn 0, byte spread ~0.02-0.08); the bounds leave headroom for
#: scheduler jitter while still failing on real divergence.
MAX_PROFILE_DISTANCE_RELATIVE = 0.5
MAX_ASSIGNMENT_CHURN = 0.5
MAX_BYTE_SPREAD = 0.5


def _config(mode: str, seed: int = 0, **runtime) -> ChiaroscuroConfig:
    return ChiaroscuroConfig().with_overrides(
        kmeans={"n_clusters": 2, "max_iterations": 3},
        privacy={"epsilon": 2.0, "noise_shares": 4},
        gossip={"cycles_per_aggregation": 4},
        crypto={"backend": "plain", "threshold": 3, "n_key_shares": 4},
        simulation={"n_participants": 8, "seed": seed},
        runtime={"mode": mode, "processes": 2, "run_timeout": 120.0, **runtime},
    )


def _collection(seed: int = 3):
    return load_dataset("gaussian", n_series=8, series_length=6, n_clusters=2,
                        seed=seed)


class TestConcurrentStepping:
    @pytest.fixture(scope="class")
    def runs(self):
        cycle = run_chiaroscuro(_collection(), _config("cycle"))
        concurrent = run_chiaroscuro(
            _collection(), _config("live", stepping="concurrent"))
        return cycle, concurrent

    def test_envelope_metrics_within_bounds(self, runs):
        cycle, concurrent = runs
        envelope = concurrent.costs.envelope
        assert envelope is not None
        assert envelope["profile_distance_relative"] \
            <= MAX_PROFILE_DISTANCE_RELATIVE
        assert envelope["assignment_churn"] <= MAX_ASSIGNMENT_CHURN
        assert envelope["byte_spread"] <= MAX_BYTE_SPREAD
        assert envelope["reference_bytes_sent"] == cycle.costs.bytes_sent
        assert envelope["reference_iterations"] == cycle.n_iterations

    def test_concurrent_metadata_reports_the_mode(self, runs):
        _, concurrent = runs
        meta = concurrent.metadata["live"]
        assert meta["stepping"] == "concurrent"
        assert meta["concurrency"] == 8
        assert meta["cycles_run"] >= concurrent.n_iterations
        assert concurrent.n_iterations > 0

    def test_envelope_survives_the_cost_dict(self, runs):
        _, concurrent = runs
        view = concurrent.costs.as_dict()
        assert view["envelope"] == dict(concurrent.costs.envelope)

    def test_envelope_off_skips_the_reference_run(self):
        result = run_chiaroscuro(
            _collection(), _config("live", stepping="concurrent",
                                   envelope="off"))
        assert result.costs.envelope is None
        assert "envelope" not in result.costs.as_dict()

    @pytest.mark.parametrize("seed", [2, 5, 7])
    def test_envelope_bounded_across_seeds(self, seed):
        """The headline nondeterminism claim: on any seed, the concurrent
        interleaving stays inside the documented envelope.

        Seeds are chosen to produce well-separated clusters: with nearly
        coincident centroids the greedy alignment (and the cluster labels
        themselves) are arbitrary, so churn against a reference would
        measure label noise, not protocol divergence."""
        result = run_chiaroscuro(
            _collection(seed), _config("live", seed=seed,
                                       stepping="concurrent"))
        envelope = result.costs.envelope
        assert envelope["profile_distance_relative"] \
            <= MAX_PROFILE_DISTANCE_RELATIVE
        assert envelope["assignment_churn"] <= MAX_ASSIGNMENT_CHURN
        assert envelope["byte_spread"] <= MAX_BYTE_SPREAD


class TestSequentialStaysExact:
    def test_sequential_is_bit_identical_to_cycle(self):
        """Adding the concurrent path must not perturb the deterministic
        one: explicit ``stepping="sequential"`` still replays the scheduler
        stream into bit-identical results, and carries no envelope."""
        cycle = run_chiaroscuro(_collection(), _config("cycle"))
        live = run_chiaroscuro(
            _collection(), _config("live", stepping="sequential"))
        assert np.array_equal(cycle.profiles, live.profiles)
        assert np.array_equal(cycle.assignments, live.assignments)
        assert live.costs.bytes_sent == cycle.costs.bytes_sent
        assert live.costs.messages_sent == cycle.costs.messages_sent
        assert live.costs.envelope is None
        assert live.metadata["live"]["stepping"] == "sequential"

    def test_sequential_is_the_default(self):
        assert ChiaroscuroConfig().runtime.stepping == "sequential"


class TestEnvelopeMath:
    def test_align_identity(self):
        profiles = np.arange(12, dtype=float).reshape(3, 4)
        assert np.array_equal(align_profiles(profiles, profiles),
                              np.arange(3))

    def test_align_recovers_a_permutation(self):
        reference = np.array([[0.0, 0.0], [10.0, 10.0], [20.0, 20.0]])
        shuffled = reference[[2, 0, 1]] + 0.01
        perm = align_profiles(shuffled, reference)
        assert np.allclose(shuffled[perm], reference, atol=0.02)

    def test_align_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            align_profiles(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_align_with_an_empty_cluster_row(self):
        """Regression: a cluster that ended a run empty carries a NaN
        profile row; NaN distances must not let argmin steal the real
        rows' matches."""
        reference = np.array([[0.0, 0.0], [10.0, 10.0], [20.0, 20.0]])
        shuffled = np.array([[20.0, 20.0], [np.nan, np.nan], [0.0, 0.0]])
        perm = align_profiles(shuffled, reference)
        # Real reference rows 0 and 2 claim their exact matches; the NaN
        # row pairs with the starved reference row, keeping a permutation.
        assert perm[0] == 2 and perm[2] == 0 and perm[1] == 1
        assert sorted(perm) == [0, 1, 2]

    def test_align_all_nan_still_returns_a_permutation(self):
        reference = np.full((3, 2), np.nan)
        perm = align_profiles(np.full((3, 2), np.nan), reference)
        assert sorted(perm) == [0, 1, 2]

    def test_self_envelope_is_zero(self):
        result = run_chiaroscuro(_collection(), _config("cycle"))
        envelope = nondeterminism_envelope(result, result)
        assert envelope["profile_distance"] == 0.0
        assert envelope["assignment_churn"] == 0.0
        assert envelope["byte_spread"] == 0.0

    def test_cost_summary_omits_absent_envelope(self):
        costs = CostSummary(n_participants=4, n_iterations=1,
                            messages_sent=8, bytes_sent=100, encryptions=4,
                            homomorphic_additions=2, partial_decryptions=2,
                            combinations=1)
        assert "envelope" not in costs.as_dict()
        tagged = CostSummary(n_participants=4, n_iterations=1,
                             messages_sent=8, bytes_sent=100, encryptions=4,
                             homomorphic_additions=2, partial_decryptions=2,
                             combinations=1, envelope={"byte_spread": 0.1})
        assert tagged.as_dict()["envelope"] == {"byte_spread": 0.1}


class TestConcurrentConfigValidation:
    def test_stepping_choices(self):
        ChiaroscuroConfig().with_overrides(runtime={"stepping": "concurrent"})
        with pytest.raises(ReproError):
            ChiaroscuroConfig().with_overrides(runtime={"stepping": "warp"})

    def test_envelope_choices(self):
        ChiaroscuroConfig().with_overrides(runtime={"envelope": "off"})
        with pytest.raises(ReproError):
            ChiaroscuroConfig().with_overrides(runtime={"envelope": "maybe"})

    def test_positive_integers(self):
        with pytest.raises(ReproError):
            ChiaroscuroConfig().with_overrides(runtime={"concurrency": 0})
        with pytest.raises(ReproError):
            ChiaroscuroConfig().with_overrides(
                runtime={"write_buffer_limit": 0})


class TestBackpressure:
    def test_slow_reader_engages_drain(self):
        """A writer outrunning a slow reader must park in ``drain()`` once
        the transport buffer crosses the high-water mark — observable as
        ``drain_waits`` ticks — and every record must still arrive whole."""
        from repro.net.live import FrameConnection, SocketStats

        n_records, payload = 128, bytes(8192)

        async def scenario():
            received = bytearray()
            release = asyncio.Event()
            done = asyncio.Event()

            async def handle(reader, writer):
                await release.wait()
                while True:
                    chunk = await reader.read(1 << 16)
                    if not chunk:
                        break
                    received.extend(chunk)
                writer.close()
                done.set()

            # Tiny kernel buffers so the writer hits the transport's
            # user-space buffer (and its high-water mark) quickly.
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            listener.bind(("127.0.0.1", 0))
            server = await asyncio.start_server(handle, sock=listener)
            port = server.sockets[0].getsockname()[1]

            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.get_extra_info("socket").setsockopt(
                socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
            stats = SocketStats()
            connection = FrameConnection(reader, writer, stats,
                                         write_buffer_limit=1 << 12)

            async def release_soon():
                await asyncio.sleep(0.05)
                release.set()

            releaser = asyncio.ensure_future(release_soon())
            for index in range(n_records):
                await connection.write(Envelope(
                    kind=KIND_CONTROL, correlation_id=index + 1,
                    payload=payload))
            connection.close()
            await asyncio.wait_for(done.wait(), timeout=30.0)
            await releaser
            server.close()
            await server.wait_closed()
            return stats, bytes(received)

        stats, received = asyncio.run(
            asyncio.wait_for(scenario(), timeout=60.0))
        assert stats.drain_waits > 0
        assert stats.records_sent == n_records
        assert len(received) == stats.bytes_sent

    def test_default_limit_is_the_envelope_constant(self):
        assert ChiaroscuroConfig().runtime.write_buffer_limit \
            == DEFAULT_WRITE_BUFFER_LIMIT
