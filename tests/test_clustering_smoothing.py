"""Tests of the centroid-smoothing heuristics (quality-enhancing heuristic #2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import noise_reduction_ratio, smooth_centroids, smooth_series
from repro.config import SmoothingConfig
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def smooth_signal():
    grid = np.linspace(0, 2 * np.pi, 48)
    return np.vstack([np.sin(grid), 0.5 + 0.3 * np.cos(2 * grid)])


class TestSmoothSeries:
    def test_none_is_identity(self, smooth_signal):
        config = SmoothingConfig(method="none")
        assert np.allclose(smooth_series(smooth_signal[0], config), smooth_signal[0])

    @pytest.mark.parametrize("method", ["moving_average", "lowpass", "exponential"])
    def test_output_shape_preserved(self, smooth_signal, method):
        config = SmoothingConfig(method=method)
        assert smooth_series(smooth_signal[0], config).shape == smooth_signal[0].shape

    def test_rejects_2d_input(self, smooth_signal):
        with pytest.raises(ValidationError):
            smooth_series(smooth_signal, SmoothingConfig(method="moving_average"))


class TestSmoothCentroids:
    def test_none_returns_copy(self, smooth_signal):
        config = SmoothingConfig(method="none")
        out = smooth_centroids(smooth_signal, config)
        assert np.allclose(out, smooth_signal)
        out[0, 0] = 99.0
        assert smooth_signal[0, 0] != 99.0

    @pytest.mark.parametrize("method", ["moving_average", "lowpass", "exponential"])
    def test_reduces_additive_noise(self, smooth_signal, method):
        """Smoothing must bring noisy centroids closer to the clean ones."""
        rng = np.random.default_rng(0)
        noisy = smooth_signal + rng.laplace(0, 0.2, size=smooth_signal.shape)
        config = SmoothingConfig(method=method, window=5, lowpass_cutoff=0.2, alpha=0.3)
        smoothed = smooth_centroids(noisy, config)
        error_before = np.linalg.norm(noisy - smooth_signal)
        error_after = np.linalg.norm(smoothed - smooth_signal)
        assert error_after < error_before

    def test_barely_distorts_clean_centroids(self, smooth_signal):
        config = SmoothingConfig(method="moving_average", window=3)
        smoothed = smooth_centroids(smooth_signal, config)
        relative_distortion = np.linalg.norm(smoothed - smooth_signal) / np.linalg.norm(
            smooth_signal
        )
        assert relative_distortion < 0.05


class TestNoiseReductionRatio:
    def test_perfect_recovery_is_one(self, smooth_signal):
        noisy = smooth_signal + 1.0
        assert noise_reduction_ratio(smooth_signal, noisy, smooth_signal) == pytest.approx(1.0)

    def test_no_improvement_is_zero(self, smooth_signal):
        noisy = smooth_signal + 1.0
        assert noise_reduction_ratio(smooth_signal, noisy, noisy) == pytest.approx(0.0)

    def test_degradation_is_negative(self, smooth_signal):
        noisy = smooth_signal + 0.1
        worse = smooth_signal + 1.0
        assert noise_reduction_ratio(smooth_signal, noisy, worse) < 0.0

    def test_zero_noise_handled(self, smooth_signal):
        assert noise_reduction_ratio(smooth_signal, smooth_signal, smooth_signal) == 0.0

    def test_shape_mismatch(self, smooth_signal):
        with pytest.raises(ValidationError):
            noise_reduction_ratio(smooth_signal, smooth_signal, smooth_signal[:1])

    def test_typical_laplace_noise_reduction_is_substantial(self, smooth_signal):
        """The heuristic's reason to exist: white Laplace noise on smooth
        centroids is reduced by a clear margin (demo's noise-impact screen)."""
        rng = np.random.default_rng(1)
        noisy = smooth_signal + rng.laplace(0, 0.3, size=smooth_signal.shape)
        config = SmoothingConfig(method="lowpass", lowpass_cutoff=0.15)
        smoothed = smooth_centroids(noisy, config)
        assert noise_reduction_ratio(smooth_signal, noisy, smoothed) > 0.4
