"""The transport seam: loopback equivalence, envelopes, byte accounting.

The refactor that pulled :class:`~repro.net.transport.LoopbackTransport` out
of the cycle engine must be invisible: identical delivery semantics and —
the regression this file pins down with golden numbers — identical byte
accounting.  The accounting rule ("one authoritative byte-count site in the
transport") is exercised at both the unit level (``account_send`` /
``account_receive`` split) and end to end (a seeded run's byte totals are
frozen against the pre-refactor values).
"""

from __future__ import annotations

import pytest

from repro.config import ChiaroscuroConfig
from repro.core.runner import run_chiaroscuro
from repro.datasets import load_dataset
from repro.exceptions import SimulationError
from repro.net.envelope import (
    KIND_CONTROL,
    KIND_FRAME,
    Envelope,
    EnvelopeError,
    decode_envelope,
    encode_envelope,
    read_length_prefix,
)
from repro.net.transport import LoopbackTransport, Transport
from repro.simulation.engine import CycleEngine
from repro.simulation.network import Message, Network
from repro.simulation.node import Node


class _EchoNode(Node):
    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.received: list = []

    def next_cycle(self, engine, cycle) -> None:  # pragma: no cover - unused
        pass

    def receive(self, engine, message) -> None:
        self.received.append(message)


def _tiny_config(wire: str = "auto") -> ChiaroscuroConfig:
    return ChiaroscuroConfig().with_overrides(
        kmeans={"n_clusters": 2, "max_iterations": 3},
        privacy={"epsilon": 2.0, "noise_shares": 4},
        gossip={"cycles_per_aggregation": 4},
        crypto={"backend": "plain", "threshold": 3, "n_key_shares": 4},
        simulation={"n_participants": 8, "seed": 0},
        network={"wire": wire},
    )


def _tiny_collection():
    return load_dataset("gaussian", n_series=8, series_length=6, n_clusters=2, seed=3)


class TestLoopbackTransport:
    def test_engine_delegates_to_a_loopback_transport(self):
        engine = CycleEngine([_EchoNode(0), _EchoNode(1)], seed=0)
        assert isinstance(engine.transport, Transport)
        assert isinstance(engine.transport, LoopbackTransport)
        assert engine.transport.network is engine.network

    def test_send_and_transmit_deliver_and_account(self):
        nodes = [_EchoNode(0), _EchoNode(1)]
        engine = CycleEngine(nodes, seed=0)
        assert engine.send(0, 1, "ping", {"x": 1}, size_bytes=10) is True
        frame = b"\x01\x02\x03\x04"
        assert engine.transmit(0, 1, "frame", frame, modelled_bytes=3) == frame
        assert len(nodes[1].received) == 2
        stats = engine.transport.stats_for(0)
        assert stats.messages_sent == 2
        assert stats.bytes_sent == 10 + len(frame)
        assert stats.bytes_modelled == 10 + 3
        assert engine.transport.total.messages_received == 2

    def test_transmit_rejects_object_payloads(self):
        engine = CycleEngine([_EchoNode(0), _EchoNode(1)], seed=0)
        with pytest.raises(SimulationError):
            engine.transmit(0, 1, "frame", {"not": "bytes"})  # type: ignore[arg-type]

    def test_offline_recipient_counts_as_sent_not_delivered(self):
        nodes = [_EchoNode(0), _EchoNode(1)]
        engine = CycleEngine(nodes, seed=0)
        nodes[1].online = False
        assert engine.send(0, 1, "ping", None, size_bytes=5) is False
        assert engine.transmit(0, 1, "frame", b"abc") is None
        assert nodes[1].received == []
        assert engine.network.stats_for(0).messages_sent == 2
        # Reception was accounted (the network delivered; the node was off).
        assert engine.network.total.messages_received == 2


class TestAccountingSplit:
    """``Network.send`` is now ``account_send`` + ``account_receive``."""

    def test_send_composes_the_two_halves(self):
        network = Network(n_nodes=2)
        message = Message(sender=0, recipient=1, kind="x", payload=None,
                          size_bytes=7, modelled_bytes=5)
        assert network.send(message) is True
        assert network.stats_for(0).bytes_sent == 7
        assert network.stats_for(0).bytes_modelled == 5
        assert network.stats_for(1).bytes_received == 7
        assert network.total.messages_sent == network.total.messages_received == 1

    def test_account_send_alone_never_touches_the_recipient(self):
        network = Network(n_nodes=2)
        message = Message(sender=0, recipient=1, kind="x", payload=None,
                          size_bytes=7)
        assert network.account_send(message) is True
        assert network.stats_for(1).bytes_received == 0
        assert network.total.messages_received == 0

    def test_account_receive_alone_never_touches_the_sender(self):
        network = Network(n_nodes=2)
        message = Message(sender=0, recipient=1, kind="x", payload=None,
                          size_bytes=7)
        network.account_receive(message)
        assert network.stats_for(0).bytes_sent == 0
        assert network.stats_for(1).bytes_received == 7


class TestGoldenByteAccounting:
    """Cycle-mode byte totals are frozen against the pre-transport refactor.

    These constants were measured on the seed tree (before the transport
    seam existed); the refactor — and every future transport change — must
    keep cycle mode bit-identical to them.
    """

    GOLDEN = {
        "auto": {"messages_sent": 318, "bytes_sent": 520428,
                 "bytes_sent_modelled": 511680},
        "off": {"messages_sent": 318, "bytes_sent": 511680,
                "bytes_sent_modelled": 511680},
    }

    @pytest.mark.parametrize("wire", ["auto", "off"])
    def test_cycle_mode_byte_totals_unchanged_vs_seed(self, wire):
        result = run_chiaroscuro(_tiny_collection(), _tiny_config(wire))
        golden = self.GOLDEN[wire]
        assert result.costs.messages_sent == golden["messages_sent"]
        assert result.costs.bytes_sent == golden["bytes_sent"]
        assert result.costs.bytes_sent_modelled == golden["bytes_sent_modelled"]
        # The numeric protocol outcome is part of the same freeze.
        assert result.n_iterations == 3
        assert float(result.inertia) == pytest.approx(11.749138868081523, abs=0)


class TestEnvelope:
    def test_round_trip(self):
        envelope = Envelope(
            kind=KIND_FRAME, correlation_id=42,
            header={"op": "diptych-exchange", "sender": 3, "recipient": 1},
            payload=b"CW\x01...", is_reply=True,
        )
        record = encode_envelope(envelope)
        length = read_length_prefix(record[:4])
        assert length == len(record) - 4
        assert decode_envelope(record[4:]) == envelope

    def test_empty_header_and_payload(self):
        envelope = Envelope(kind=KIND_CONTROL, correlation_id=0)
        record = encode_envelope(envelope)
        assert decode_envelope(record[4:]) == envelope

    def test_batch_flag_round_trips(self):
        envelope = Envelope(kind=KIND_FRAME, correlation_id=7,
                            header={"op": "decrypt-request"},
                            payload=b"CW\x01...", is_batch=True)
        record = encode_envelope(envelope)
        decoded = decode_envelope(record[4:])
        assert decoded.is_batch is True
        assert decoded == envelope

    def test_batch_flag_off_keeps_the_record_byte_identical(self):
        """With batching disabled the flag bit is never set, so records are
        the exact bytes earlier runner versions produced."""
        plain = Envelope(kind=KIND_FRAME, correlation_id=7,
                         header={"op": "x"}, payload=b"f")
        assert encode_envelope(plain)[13] == 0x00
        assert decode_envelope(encode_envelope(plain)[4:]).is_batch is False

    def test_floats_round_trip_exactly(self):
        values = [0.1, 1e-17, 65536.8515625, -3.141592653589793]
        envelope = Envelope(kind=KIND_CONTROL, correlation_id=1,
                            header={"values": values})
        decoded = decode_envelope(encode_envelope(envelope)[4:])
        assert decoded.header["values"] == values

    def test_bad_kind_rejected(self):
        with pytest.raises(EnvelopeError):
            Envelope(kind=0x7F, correlation_id=0)
        record = bytearray(encode_envelope(Envelope(kind=KIND_CONTROL,
                                                    correlation_id=0)))
        record[4] = 0x7F
        with pytest.raises(EnvelopeError):
            decode_envelope(bytes(record[4:]))

    def test_header_length_beyond_record_rejected(self):
        record = bytearray(encode_envelope(Envelope(kind=KIND_CONTROL,
                                                    correlation_id=0)))
        record[14:18] = (1 << 20).to_bytes(4, "big")
        with pytest.raises(EnvelopeError):
            decode_envelope(bytes(record[4:]))

    def test_non_object_header_rejected(self):
        record = bytearray(encode_envelope(Envelope(kind=KIND_CONTROL,
                                                    correlation_id=0)))
        # Overwrite the header "{}" with "[]" (same length, not an object).
        assert bytes(record[-2:]) == b"{}"
        record[-2:] = b"[]"
        with pytest.raises(EnvelopeError):
            decode_envelope(bytes(record[4:]))

    def test_length_prefix_bounds(self):
        with pytest.raises(EnvelopeError):
            read_length_prefix(b"\x00\x00")
        with pytest.raises(EnvelopeError):
            read_length_prefix((1 << 31).to_bytes(4, "big"))
        with pytest.raises(EnvelopeError):
            read_length_prefix(b"\x00\x00\x00\x01")
