"""Tests of the TimeSeries value object."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TimeSeriesError, ValidationError
from repro.timeseries import TimeSeries


class TestConstruction:
    def test_values_are_copied_to_float(self):
        series = TimeSeries([1, 2, 3], series_id="a")
        assert series.values.dtype == float
        assert len(series) == 3

    def test_values_are_read_only(self):
        series = TimeSeries([1.0, 2.0])
        with pytest.raises(ValueError):
            series.values[0] = 5.0

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            TimeSeries([])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            TimeSeries([1.0, float("nan")])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            TimeSeries(np.zeros((2, 3)))

    def test_metadata_is_copied(self):
        meta = {"archetype": "family"}
        series = TimeSeries([1.0], metadata=meta)
        meta["archetype"] = "changed"
        assert series.metadata["archetype"] == "family"


class TestBehaviour:
    def test_equality_and_hash(self):
        a = TimeSeries([1.0, 2.0], series_id="x")
        b = TimeSeries([1.0, 2.0], series_id="x")
        c = TimeSeries([1.0, 2.5], series_id="x")
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a series"

    def test_iteration_and_indexing(self, tiny_series):
        assert list(tiny_series)[:2] == [0.0, 1.0]
        assert tiny_series[2] == 2.0
        assert np.array_equal(tiny_series[1:3], np.array([1.0, 2.0]))

    def test_array_protocol(self, tiny_series):
        array = np.asarray(tiny_series)
        assert array.shape == (6,)
        array[0] = 100.0  # the copy must not affect the original
        assert tiny_series[0] == 0.0

    def test_statistics(self, tiny_series):
        assert tiny_series.min() == 0.0
        assert tiny_series.max() == 3.0
        assert tiny_series.mean() == pytest.approx(1.5)
        assert tiny_series.std() == pytest.approx(np.std([0, 1, 2, 3, 2, 1]))

    def test_subsequence(self, tiny_series):
        sub = tiny_series.subsequence(1, 4)
        assert np.array_equal(sub.values, np.array([1.0, 2.0, 3.0]))
        assert sub.series_id == tiny_series.series_id

    def test_subsequence_invalid_bounds(self, tiny_series):
        with pytest.raises(TimeSeriesError):
            tiny_series.subsequence(4, 2)
        with pytest.raises(TimeSeriesError):
            tiny_series.subsequence(0, 100)

    def test_copy_with_merges_metadata(self, tiny_series):
        copy = tiny_series.copy_with(note="hello")
        assert copy.metadata["note"] == "hello"
        assert copy.metadata["archetype"] == "test"
        assert copy == tiny_series or copy.values is not tiny_series.values


class TestNormalization:
    def test_minmax(self):
        series = TimeSeries([0.0, 5.0, 10.0]).normalized("minmax")
        assert np.allclose(series.values, [0.0, 0.5, 1.0])

    def test_minmax_constant_series(self):
        series = TimeSeries([3.0, 3.0]).normalized("minmax")
        assert np.allclose(series.values, [0.5, 0.5])

    def test_zscore(self):
        series = TimeSeries([1.0, 2.0, 3.0]).normalized("zscore")
        assert series.mean() == pytest.approx(0.0)
        assert series.std() == pytest.approx(1.0)

    def test_zscore_constant_series(self):
        series = TimeSeries([4.0, 4.0]).normalized("zscore")
        assert np.allclose(series.values, [0.0, 0.0])

    def test_unit(self):
        series = TimeSeries([-2.0, 1.0]).normalized("unit")
        assert np.allclose(series.values, [-1.0, 0.5])

    def test_unknown_method(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries([1.0]).normalized("bogus")

    def test_clipped(self):
        series = TimeSeries([-1.0, 0.5, 2.0]).clipped(0.0, 1.0)
        assert np.allclose(series.values, [0.0, 0.5, 1.0])

    def test_clipped_invalid_bounds(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries([1.0]).clipped(2.0, 1.0)


class TestSerialisation:
    def test_round_trip(self, tiny_series):
        payload = tiny_series.to_dict()
        restored = TimeSeries.from_dict(payload)
        assert restored == tiny_series
        assert restored.metadata == tiny_series.metadata
