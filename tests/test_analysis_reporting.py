"""Tests of the text-report formatting helpers."""

from __future__ import annotations

import pytest

from repro.analysis import format_comparison, format_series, format_table, format_value
from repro.exceptions import AnalysisError


class TestFormatValue:
    def test_floats_rounded(self):
        assert format_value(3.14159265, precision=3) == "3.142"

    def test_extreme_floats_use_scientific_notation(self):
        assert "e" in format_value(1.23e-7)
        assert "e" in format_value(4.5e9)

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_bool_and_str(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value("abc") == "abc"

    def test_int_passthrough(self):
        assert format_value(42) == "42"


class TestFormatTable:
    def test_basic_structure(self):
        rows = [
            {"epsilon": 0.1, "inertia": 12.3456, "converged": True},
            {"epsilon": 1.0, "inertia": 3.21, "converged": False},
        ]
        table = format_table(rows, title="E1")
        lines = table.splitlines()
        assert lines[0] == "E1"
        assert "epsilon" in lines[1] and "inertia" in lines[1]
        assert len(lines) == 2 + 1 + 2  # title + header + separator + 2 rows

    def test_column_selection_and_missing_values(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        table = format_table(rows, columns=["a", "b"])
        assert "2" in table
        assert table.count("\n") == 3

    def test_empty_rows_rejected(self):
        with pytest.raises(AnalysisError):
            format_table([])

    def test_alignment_is_consistent(self):
        rows = [{"name": "x", "value": 1.0}, {"name": "longer-name", "value": 123456.0}]
        table = format_table(rows)
        header, separator, *body = table.splitlines()
        assert len(header) == len(separator)
        assert all(len(line) <= len(separator) + 1 for line in body)


class TestFormatSeries:
    def test_one_line_per_point(self):
        output = format_series([1.0, 2.0, 3.0], label="noise")
        lines = output.splitlines()
        assert lines[0] == "noise"
        assert len(lines) == 4

    def test_bars_scale_with_magnitude(self):
        output = format_series([1.0, 2.0], label="series", width=10)
        lines = output.splitlines()
        assert lines[1].count("#") < lines[2].count("#")

    def test_all_zero_series(self):
        output = format_series([0.0, 0.0])
        assert "#" not in output

    def test_empty_series_rejected(self):
        with pytest.raises(AnalysisError):
            format_series([])


class TestFormatComparison:
    def test_method_column_added(self):
        reports = {
            "centralized": {"inertia": 1.0},
            "chiaroscuro": {"inertia": 2.0},
        }
        table = format_comparison(reports, columns=["inertia"])
        assert "method" in table.splitlines()[0]
        assert "chiaroscuro" in table
