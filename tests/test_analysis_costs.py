"""Tests of the cost model and the measured crypto cost profile."""

from __future__ import annotations

import pytest

from repro.analysis import CostModel, CryptoCostProfile, ProtocolWorkload, measure_crypto_costs
from repro.exceptions import AnalysisError, ValidationError


@pytest.fixture(scope="module")
def measured_profile():
    # Small key keeps the measurement fast; the model only needs the constants.
    return measure_crypto_costs(key_bits=160, degree=1, threshold=2, n_shares=3, repetitions=3)


@pytest.fixture()
def workload():
    return ProtocolWorkload(
        n_clusters=5, series_length=48, iterations=10,
        gossip_cycles=12, exchanges_per_cycle=1, threshold=3,
    )


class TestMeasurement:
    def test_all_timings_positive(self, measured_profile):
        profile = measured_profile.as_dict()
        for key in ("keygen_seconds", "encryption_seconds", "addition_seconds",
                    "partial_decryption_seconds", "combination_seconds"):
            assert profile[key] > 0.0

    def test_addition_cheaper_than_encryption(self, measured_profile):
        assert measured_profile.addition_seconds < measured_profile.encryption_seconds

    def test_ciphertext_size_reported(self, measured_profile):
        # A degree-1 ciphertext lives modulo n^2, i.e. roughly twice the key size.
        assert measured_profile.ciphertext_bytes >= (2 * 160) // 8 - 2


class TestWorkload:
    def test_operation_counts(self, workload):
        assert workload.components_per_estimate == 49
        assert workload.encryptions_per_iteration == 2 * 5 * 49
        assert workload.partial_decryptions_per_iteration == 3 * 5 * 49
        assert workload.combinations_per_iteration == 5 * 49
        assert workload.messages_per_iteration == 2 * 12 + 2 * 3

    def test_additions_grow_with_gossip_cycles(self):
        few = ProtocolWorkload(3, 24, 5, gossip_cycles=4, exchanges_per_cycle=1, threshold=3)
        many = ProtocolWorkload(3, 24, 5, gossip_cycles=16, exchanges_per_cycle=1, threshold=3)
        assert many.additions_per_iteration > few.additions_per_iteration

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            ProtocolWorkload(0, 24, 5, 4, 1, 3)


class TestCostModel:
    def test_estimate_components_add_up(self, measured_profile, workload):
        model = CostModel(measured_profile)
        estimate = model.estimate(workload)
        assert estimate.total_compute_seconds == pytest.approx(
            estimate.encryption_seconds + estimate.addition_seconds
            + estimate.decryption_seconds
        )
        assert estimate.bytes_sent > 0
        assert estimate.messages_sent == workload.iterations * workload.messages_per_iteration

    def test_per_participant_cost_is_population_independent(self, measured_profile, workload):
        model = CostModel(measured_profile)
        rows = model.sweep_population(workload, [10**3, 10**6])
        assert rows[0]["total_compute_seconds"] == rows[1]["total_compute_seconds"]
        assert rows[0]["bytes_sent"] == rows[1]["bytes_sent"]

    def test_aggregate_cost_scales_linearly(self, measured_profile, workload):
        model = CostModel(measured_profile)
        rows = model.sweep_population(workload, [10**3, 10**6])
        assert rows[1]["aggregate_bytes"] == pytest.approx(rows[0]["aggregate_bytes"] * 1000)

    def test_empty_population_list_rejected(self, measured_profile, workload):
        with pytest.raises(AnalysisError):
            CostModel(measured_profile).sweep_population(workload, [])

    def test_synthetic_profile_usable_without_measurement(self, workload):
        profile = CryptoCostProfile(
            key_bits=2048, degree=1, keygen_seconds=1.0, encryption_seconds=0.01,
            addition_seconds=1e-4, partial_decryption_seconds=0.02,
            combination_seconds=0.03, ciphertext_bytes=512,
        )
        estimate = CostModel(profile).estimate(workload)
        # 10 iterations * 2*5*49 encryptions * 10 ms each = 49 s of encryption time.
        assert estimate.encryption_seconds == pytest.approx(10 * 2 * 5 * 49 * 0.01)


class TestPhaseSplit:
    """Offline/online phase attribution of pool-served operations."""

    @pytest.fixture()
    def pooled_profile(self):
        return CryptoCostProfile(
            key_bits=2048, degree=1, keygen_seconds=1.0, encryption_seconds=0.01,
            addition_seconds=1e-4, partial_decryption_seconds=0.02,
            combination_seconds=0.03, ciphertext_bytes=512,
            fastmath="auto", pooled_encryption_seconds=0.001,
        )

    def test_rerandomizations_are_charged_the_pooled_cost(self, pooled_profile):
        """Regression: a rerandomization draws a blinder from the same pool
        as a pooled encryption and is one multiplication on the hot path —
        it must never be billed a full fresh exponentiation online."""
        counts = {"pooled_encryptions": 10, "rerandomizations": 5}
        assert pooled_profile.seconds_for_counts(counts) \
            == pytest.approx(15 * 0.001)

    def test_offline_charges_one_exponentiation_per_pool_draw(self, pooled_profile):
        counts = {"pooled_encryptions": 10, "rerandomizations": 5,
                  "additions": 100}
        assert pooled_profile.offline_seconds_for_counts(counts) \
            == pytest.approx(15 * 0.01)

    def test_phases_sum_to_the_total(self, pooled_profile):
        counts = {"encryptions": 3, "pooled_encryptions": 10,
                  "rerandomizations": 5, "additions": 100,
                  "partial_decryptions": 7, "combinations": 2}
        phases = pooled_profile.phase_seconds_for_counts(counts)
        assert phases["total_seconds"] == pytest.approx(
            phases["offline_seconds"] + phases["online_seconds"]
        )
        assert phases["offline_seconds"] > 0

    def test_without_a_pool_everything_is_online(self, workload):
        profile = CryptoCostProfile(
            key_bits=2048, degree=1, keygen_seconds=1.0, encryption_seconds=0.01,
            addition_seconds=1e-4, partial_decryption_seconds=0.02,
            combination_seconds=0.03, ciphertext_bytes=512,
        )
        counts = {"pooled_encryptions": 10, "rerandomizations": 5}
        assert profile.offline_seconds_for_counts(counts) == 0.0
        # With no pool the full exponentiation happens on the hot path.
        assert profile.seconds_for_counts(counts) == pytest.approx(15 * 0.01)


class TestByteAccounting:
    def test_modelled_bytes_match_cost_model(self, measured_profile, workload):
        estimate = CostModel(measured_profile).estimate(workload)
        per_iteration = workload.modelled_bytes_per_iteration(
            measured_profile.ciphertext_bytes
        )
        assert estimate.bytes_sent == workload.iterations * per_iteration

    def test_wire_bytes_exceed_modelled_by_frame_overhead(self, workload):
        modelled = workload.modelled_bytes_per_iteration(512)
        wired = workload.wire_bytes_per_iteration(512)
        assert wired > modelled
        # The overhead is exactly the per-message/per-estimate constants.
        from repro.analysis.costs import (
            WIRE_ESTIMATE_OVERHEAD_BYTES,
            WIRE_FRAME_OVERHEAD_BYTES,
        )
        gossip_messages = 2 * workload.gossip_cycles * workload.exchanges_per_cycle
        decrypt_messages = 2 * workload.threshold
        expected = (
            (gossip_messages + decrypt_messages) * WIRE_FRAME_OVERHEAD_BYTES
            + (2 * gossip_messages + decrypt_messages)
            * workload.n_clusters * WIRE_ESTIMATE_OVERHEAD_BYTES
        )
        assert wired - modelled == expected

    def test_byte_accounting_totals(self, workload):
        from repro.analysis import ByteAccounting

        accounting = workload.byte_accounting(512)
        assert isinstance(accounting, ByteAccounting)
        assert accounting.bytes_modelled == (
            workload.iterations * workload.modelled_bytes_per_iteration(512)
        )
        assert accounting.bytes_measured == (
            workload.iterations * workload.wire_bytes_per_iteration(512)
        )
        assert 0 < accounting.overhead_fraction < 0.10
        as_dict = accounting.as_dict()
        assert set(as_dict) == {"bytes_modelled", "bytes_measured",
                                "overhead_fraction"}

    def test_overhead_fraction_zero_when_unknown(self):
        from repro.analysis import ByteAccounting

        assert ByteAccounting(0.0, 100.0).overhead_fraction == 0.0

    def test_from_traffic(self):
        from repro.analysis import ByteAccounting
        from repro.simulation.network import TrafficStats

        stats = TrafficStats(bytes_sent=1050, bytes_modelled=1000)
        accounting = ByteAccounting.from_traffic(stats)
        assert accounting.bytes_measured == 1050.0
        assert accounting.bytes_modelled == 1000.0
        assert accounting.overhead_fraction == pytest.approx(0.05)
