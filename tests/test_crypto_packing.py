"""Tests of the packed-ciphertext crypto layer.

Three levels are covered:

* :class:`~repro.crypto.encoding.PackedCodec` in isolation — Hypothesis
  round-trip properties (encode → pack → add → unpack → decode exact up to
  quantisation), negative values at slot boundaries, weight headroom, and
  overflow raising :class:`~repro.exceptions.EncodingOverflowError`;
* the backends with packing enabled — round trips, homomorphic operations,
  operation counters and the acceptance ratio (≥ 4× fewer bigint operations
  with a 2048-bit key on a 64-point series);
* the protocol — a packed run must be *bit-identical* to an unpacked run
  (the arithmetic is exact in both layouts) while costing measurably fewer
  encryptions, homomorphic additions and bytes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ChiaroscuroConfig, CryptoConfig
from repro.core import run_chiaroscuro
from repro.crypto.backends import (
    DamgardJurikBackend,
    EncryptedVector,
    PlainBackend,
    make_backend,
    normalize_packing,
)
from repro.crypto.encoding import PackedCodec
from repro.datasets import generate_gaussian_clusters
from repro.exceptions import (
    ConfigurationError,
    CryptoError,
    EncodingOverflowError,
    ValidationError,
)
from repro.gossip.encrypted_sum import (
    average_estimates,
    decode_estimate,
    encrypted_gossip_average,
    estimate_payload_bytes,
    fresh_estimate,
)

SCALE = 10**6
MODULUS = 1 << 512


def small_codec(value_bound: float = 10.0, weight_bits: int = 20,
                slots: int | None = None) -> PackedCodec:
    codec = PackedCodec.plan(MODULUS, SCALE, value_bound=value_bound,
                             weight_bits=weight_bits, slots=slots)
    assert codec is not None
    return codec


values_strategy = st.lists(
    st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False),
    min_size=0, max_size=40,
)


class TestPackedCodecRoundTrip:
    @given(values=values_strategy)
    @settings(max_examples=100, deadline=None)
    def test_pack_unpack_round_trip(self, values):
        codec = small_codec()
        packed = codec.pack_vector(values)
        assert len(packed) == codec.n_ciphertexts(len(values))
        decoded = codec.unpack_vector(packed, len(values), weight=1)
        assert np.allclose(decoded, values, atol=0.5 / SCALE + 1e-12)

    @given(values=st.lists(st.integers(min_value=-(10 * SCALE - 1), max_value=10 * SCALE - 1),
                           min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_integer_pack_unpack_exact(self, values):
        codec = small_codec()
        packed = codec.pack_integer_vector(values)
        decoded = codec.unpack_vector(packed, len(values), weight=1, integer=True)
        assert decoded.tolist() == [float(v) for v in values]

    @given(
        first=st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False,
                                 allow_infinity=False), min_size=1, max_size=25),
        second=st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False,
                                  allow_infinity=False), min_size=1, max_size=25),
    )
    @settings(max_examples=100, deadline=None)
    def test_packed_addition_is_slotwise(self, first, second):
        """Integer addition of packed plaintexts adds every slot independently."""
        length = min(len(first), len(second))
        first, second = first[:length], second[:length]
        codec = small_codec()
        packed_sum = [a + b for a, b in zip(codec.pack_vector(first),
                                            codec.pack_vector(second))]
        decoded = codec.unpack_vector(packed_sum, length, weight=2)
        expected = np.asarray(first) + np.asarray(second)
        assert np.allclose(decoded, expected, atol=1.0 / SCALE + 1e-12)

    def test_negative_values_at_slot_boundaries(self):
        """The extreme encodable magnitudes survive in every slot position."""
        codec = small_codec()
        edge = (codec.offset - 1) / SCALE
        values = [-edge, edge] * codec.slots  # spans two plaintexts
        packed = codec.pack_vector(values)
        decoded = codec.unpack_vector(packed, len(values), weight=1)
        assert np.allclose(decoded, values, atol=0.5 / SCALE)

    def test_unpack_rejects_wrong_ciphertext_count(self):
        codec = small_codec()
        packed = codec.pack_vector([1.0] * 5)
        with pytest.raises(ValidationError):
            codec.unpack_vector(packed, 5 + codec.slots, weight=1)


class TestPackedCodecHeadroom:
    def test_max_halvings_headroom(self):
        """Doubling the weight up to max_weight keeps decoding exact."""
        codec = small_codec(weight_bits=12)
        values = [-3.25, 7.5, -0.125]
        packed = codec.pack_vector(values)
        weight = 1
        while weight < codec.max_weight:
            packed = [2 * p for p in packed]
            weight *= 2
            # the slot now holds weight * value; dividing recovers the value
            decoded = codec.unpack_vector(packed, len(values), weight=weight)
            assert np.allclose(decoded / weight, values, atol=1.0 / SCALE)

    def test_weight_above_headroom_raises(self):
        codec = small_codec(weight_bits=8)
        with pytest.raises(EncodingOverflowError):
            codec.check_weight(codec.max_weight + 1)
        packed = codec.pack_vector([1.0])
        with pytest.raises(EncodingOverflowError):
            codec.unpack_vector(packed, 1, weight=codec.max_weight * 2)

    def test_slot_overflow_raises(self):
        codec = small_codec(value_bound=1.0)
        with pytest.raises(EncodingOverflowError):
            codec.pack_vector([codec.max_absolute_value + 1.0])

    def test_plan_respects_slot_cap(self):
        assert small_codec(slots=4).slots == 4

    def test_plan_falls_back_when_space_too_small(self):
        assert PackedCodec.plan(1 << 64, SCALE, value_bound=10.0, weight_bits=40) is None

    def test_plan_layout_formula(self):
        codec = small_codec()
        assert codec.slots * codec.slot_bits <= MODULUS.bit_length() - 2
        assert codec.slot_bits == codec.value_bits + 20


class TestNormalizePacking:
    def test_choices(self):
        assert normalize_packing("auto") == "auto"
        assert normalize_packing("off") == "off"
        assert normalize_packing(8) == 8
        assert normalize_packing("8") == 8

    @pytest.mark.parametrize("bad", ["always", 0, -3, 1.5, True, None])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ValidationError):
            normalize_packing(bad)

    def test_config_validates_packing(self):
        assert CryptoConfig(packing="off").packing == "off"
        assert CryptoConfig(packing=16).packing == 16
        with pytest.raises(ConfigurationError):
            CryptoConfig(packing="sometimes")


@pytest.fixture(scope="module")
def packed_plain() -> PlainBackend:
    return PlainBackend(threshold=2, n_shares=4, encoding_scale=10**6, packing="auto",
                        packing_value_bound=4.0)


@pytest.fixture(scope="module")
def packed_dj() -> DamgardJurikBackend:
    return DamgardJurikBackend(
        key_bits=192, degree=1, threshold=2, n_shares=4, encoding_scale=10**4,
        packing="auto", packing_value_bound=4.0, packing_weight_bits=20,
    )


class TestPackedBackends:
    @pytest.fixture(params=["plain", "damgard_jurik"])
    def backend(self, request, packed_plain, packed_dj):
        return packed_plain if request.param == "plain" else packed_dj

    def test_backend_reports_packing(self, backend):
        assert backend.is_packed
        assert backend.packing.slots >= 2
        assert backend.plaintext_capacity_bits == backend.packing.slot_bits

    def test_round_trip(self, backend):
        values = np.array([0.5, -1.25, 0.0, 2.5, -0.75, 1.125, 3.0, -2.0])
        vector = backend.encrypt_vector(values)
        assert len(vector) == values.size
        assert vector.n_ciphertexts == backend.packing.n_ciphertexts(values.size)
        assert vector.n_ciphertexts < values.size
        decoded = backend.decrypt_with_shares(vector, [1, 2])
        assert np.allclose(decoded, values, atol=1e-3)

    def test_integer_round_trip(self, backend):
        vector = backend.encrypt_integer_vector([0, 1, 5, -17, 123])
        decoded = backend.decrypt_with_shares(vector, [1, 2], integer=True)
        assert np.allclose(decoded, [0, 1, 5, -17, 123])

    def test_zero_vector(self, backend):
        vector = backend.encrypt_zero_vector(7)
        assert np.allclose(backend.decrypt_with_shares(vector, [1, 2]), 0.0)

    def test_addition_tracks_weight(self, backend):
        a = backend.encrypt_vector([1.0, -2.0, 3.0, 0.5])
        b = backend.encrypt_vector([0.5, 2.0, -1.0, -0.25])
        summed = backend.add(a, b)
        assert summed.weight == 2
        decoded = backend.decrypt_with_shares(summed, [1, 2])
        assert np.allclose(decoded, [1.5, 0.0, 2.0, 0.25], atol=1e-3)

    def test_scalar_multiplication_tracks_weight(self, backend):
        vector = backend.encrypt_vector([0.5, -1.0, 0.25])
        scaled = backend.multiply_scalar(vector, 4)
        assert scaled.weight == 4
        decoded = backend.decrypt_with_shares(scaled, [1, 2])
        assert np.allclose(decoded, [2.0, -4.0, 1.0], atol=1e-2)

    def test_zero_factor_rejected_when_packed(self, backend):
        vector = backend.encrypt_vector([1.0])
        with pytest.raises(CryptoError):
            backend.multiply_scalar(vector, 0)

    def test_unpacked_vector_rejected(self, backend):
        foreign = EncryptedVector(payload=(1, 2, 3), backend_name=backend.name)
        with pytest.raises(CryptoError):
            backend.add(foreign, foreign)

    def test_counters_count_ciphertexts_not_coordinates(self, backend):
        backend.counter.reset()
        vector = backend.encrypt_vector(np.linspace(-1.0, 1.0, 8))
        backend.add(vector, vector)
        counted = backend.counter.as_dict()
        assert counted["encryptions"] == vector.n_ciphertexts
        assert counted["additions"] == vector.n_ciphertexts
        backend.counter.reset()


class TestPackedGossip:
    def test_average_estimates_packed(self, packed_plain):
        first = fresh_estimate(packed_plain, [1.0, 3.0, -1.0])
        second = fresh_estimate(packed_plain, [3.0, 1.0, 2.0])
        averaged = average_estimates(packed_plain, first, second)
        decoded = decode_estimate(packed_plain, averaged, [1, 2])
        assert np.allclose(decoded, [2.0, 2.0, 0.5], atol=1e-5)

    def test_payload_bytes_shrink(self, packed_plain):
        unpacked = PlainBackend(threshold=2, n_shares=4, encoding_scale=10**6)
        values = np.linspace(0.0, 1.0, 64)
        packed_estimate = fresh_estimate(packed_plain, values)
        plain_estimate = fresh_estimate(unpacked, values)
        assert estimate_payload_bytes(packed_plain, packed_estimate) < (
            estimate_payload_bytes(unpacked, plain_estimate) / 4
        )

    def test_gossip_average_matches_unpacked(self):
        rng = np.random.default_rng(11)
        values = rng.uniform(0.0, 1.0, size=(8, 6))
        packed = PlainBackend(threshold=2, n_shares=4, packing="auto")
        unpacked = PlainBackend(threshold=2, n_shares=4)
        averaged_packed = encrypted_gossip_average(packed, values, cycles=5, seed=3)
        averaged_plain = encrypted_gossip_average(unpacked, values, cycles=5, seed=3)
        assert np.array_equal(averaged_packed, averaged_plain)
        assert np.allclose(averaged_packed, values.mean(axis=0), atol=0.2)


class TestAcceptanceRatio:
    def test_packed_2048_bit_key_cuts_operations_at_least_4x(self):
        """ISSUE acceptance: 64-point series, 2048-bit key, ≥ 4× fewer ops.

        The plain backend with packing widens its simulated plaintext to the
        2048-bit space of a 4096-bit degree-1 ciphertext, i.e. exactly the
        layout a 2048-bit-modulus real deployment would use.
        """
        series = np.linspace(0.0, 1.0, 64)
        packed = PlainBackend(threshold=2, n_shares=4, packing="auto")
        unpacked = PlainBackend(threshold=2, n_shares=4)
        assert packed.codec.modulus.bit_length() - 1 == 2048

        for backend in (packed, unpacked):
            backend.counter.reset()
            first = fresh_estimate(backend, series)
            second = fresh_estimate(backend, series[::-1])
            average_estimates(backend, first, second)
        packed_ops = packed.counter.as_dict()
        unpacked_ops = unpacked.counter.as_dict()
        assert packed_ops["encryptions"] * 4 <= unpacked_ops["encryptions"]
        assert packed_ops["additions"] * 4 <= unpacked_ops["additions"]

    def test_packed_dj_round_trip_through_gossip(self, packed_dj):
        """Real packed Damgård–Jurik survives averaging + threshold decryption."""
        first = fresh_estimate(packed_dj, [0.5, -1.5, 2.0, 0.0, 1.0])
        second = fresh_estimate(packed_dj, [1.5, 0.5, -1.0, 2.0, 0.0])
        averaged = average_estimates(packed_dj, first, second)
        decoded = decode_estimate(packed_dj, averaged, [1, 2])
        assert np.allclose(decoded, [1.0, -0.5, 0.5, 1.0, 0.5], atol=1e-3)


class TestPackedProtocolRun:
    @pytest.fixture(scope="class")
    def runs(self):
        collection = generate_gaussian_clusters(
            n_series=30, series_length=12, n_clusters=3, noise_std=0.05, seed=7
        )
        base = ChiaroscuroConfig().with_overrides(
            kmeans={"n_clusters": 3, "max_iterations": 3},
            privacy={"epsilon": 2.0, "noise_shares": 16},
            gossip={"cycles_per_aggregation": 6},
            simulation={"n_participants": 30},
        )
        return {
            mode: run_chiaroscuro(
                collection, base.with_overrides(crypto={"packing": mode})
            )
            for mode in ("off", "auto")
        }

    def test_packed_run_bit_identical_to_unpacked(self, runs):
        off, auto = runs["off"], runs["auto"]
        assert np.array_equal(off.profiles, auto.profiles)
        assert np.array_equal(off.assignments, auto.assignments)
        assert off.n_iterations == auto.n_iterations
        assert off.epsilon_spent == auto.epsilon_spent

    def test_packed_run_costs_less(self, runs):
        off, auto = runs["off"], runs["auto"]
        assert auto.metadata["packing"]["enabled"]
        assert auto.metadata["packing"]["slots"] >= 4
        assert auto.costs.encryptions * 4 <= off.costs.encryptions
        assert auto.costs.homomorphic_additions * 4 <= off.costs.homomorphic_additions
        assert auto.costs.bytes_sent * 2 <= off.costs.bytes_sent
        # batched committee round-trips: strictly fewer messages as well
        assert auto.costs.messages_sent < off.costs.messages_sent

    def test_unpacked_run_messages_match_seed_pattern(self, runs):
        """Packing off keeps the historical per-cluster decryption traffic."""
        assert not runs["off"].metadata["packing"]["enabled"]
        assert runs["off"].costs.messages_sent > runs["auto"].costs.messages_sent


class TestPlainSlabArithmetic:
    """The plain backend's vectorised slab has two regimes: int64 for small
    moduli, object arrays otherwise.  Both must agree with the scalar maths."""

    @pytest.fixture()
    def small_modulus_backend(self) -> PlainBackend:
        # 48-bit modulus: additions and small-factor multiplications take the
        # int64 fast path.
        return PlainBackend(threshold=2, n_shares=4, encoding_scale=10**6,
                            modulus_bits=48)

    def test_int64_addition_round_trip(self, small_modulus_backend):
        backend = small_modulus_backend
        a = backend.encrypt_vector([1.5, -2.25, 0.0, 3.0])
        b = backend.encrypt_vector([-0.5, 2.25, -1.0, 0.125])
        decoded = backend.decrypt_with_shares(backend.add(a, b), [1, 2])
        assert np.allclose(decoded, [1.0, 0.0, -1.0, 3.125], atol=1e-5)

    def test_int64_small_factor_multiplication(self, small_modulus_backend):
        backend = small_modulus_backend
        vector = backend.encrypt_vector([0.5, -1.0])
        decoded = backend.decrypt_with_shares(backend.multiply_scalar(vector, 8), [1, 2])
        assert np.allclose(decoded, [4.0, -8.0], atol=1e-5)

    def test_large_factor_falls_back_to_object_path(self, small_modulus_backend):
        backend = small_modulus_backend
        # factor bits + modulus bits > 62: must route through the object-array
        # path and still wrap correctly modulo 2^48.
        vector = backend.encrypt_integer_vector([3])
        scaled = backend.multiply_scalar(vector, 1 << 20)
        decoded = backend.decrypt_with_shares(scaled, [1, 2], integer=True)
        assert decoded.tolist() == [float(3 << 20)]


class TestMakeBackendPacking:
    def test_factory_passes_packing_through(self):
        backend = make_backend("plain", packing="auto")
        assert backend.is_packed
        backend = make_backend("plain", packing="off")
        assert not backend.is_packed

    def test_small_key_falls_back_to_unpacked(self):
        backend = make_backend(
            "damgard_jurik", key_bits=64, threshold=2, n_shares=3,
            encoding_scale=10**6, packing="auto",
        )
        assert not backend.is_packed

    def test_explicit_slot_cap(self):
        backend = make_backend("plain", packing=2)
        assert backend.is_packed
        assert backend.packing.slots == 2
