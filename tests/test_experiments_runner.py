"""End-to-end tests of the parallel sweep runner: caching, determinism, faults.

The two headline guarantees pinned down here:

* **resumable caching** — re-running an unchanged spec with ``resume=True``
  executes zero cells (every key is already in the store);
* **cross-process determinism** — the same spec produces identical store
  rows (everything except the recorded wall-clock timing) whether the
  matrix runs sequentially or on four workers, and a single cell's row is
  bit-identical to an equivalent standalone :func:`run_chiaroscuro`.
"""

from __future__ import annotations

import pytest

from repro.config import ChiaroscuroConfig
from repro.core.runner import run_chiaroscuro
from repro.datasets import load_dataset_for_population
from repro.exceptions import ExperimentError
from repro.experiments import ExperimentSpec, ResultStore, run_experiment
from repro.experiments.store import profiles_digest


def _spec(**overrides) -> ExperimentSpec:
    payload = dict(
        name="runner-unit",
        dataset="gaussian",
        dataset_params={"n_clusters": 2, "noise_std": 0.05},
        participants=14,
        base={
            "kmeans": {"n_clusters": 2, "max_iterations": 2},
            "privacy": {"epsilon": 4.0, "noise_shares": 6},
            "gossip": {"cycles_per_aggregation": 3},
            "crypto": {"threshold": 2, "n_key_shares": 3},
        },
        sweep={"privacy.epsilon": [2.0, 4.0]},
        repeats=2,
        base_seed=1,
        metrics={"reference": False},
    )
    payload.update(overrides)
    return ExperimentSpec(**payload)


def _deterministic(rows: list[dict]) -> list[dict]:
    """Store rows with the (intentionally nondeterministic) timing removed."""
    stripped = []
    for row in rows:
        row = dict(row)
        row.pop("timing", None)
        stripped.append(row)
    return stripped


class TestRunAndResume:
    def test_full_run_writes_one_ok_row_per_cell(self, tmp_path):
        spec = _spec()
        store = ResultStore(tmp_path / "results.jsonl")
        progress = run_experiment(spec, store, jobs=2)
        assert progress.executed == 4
        assert progress.failed == 0
        assert progress.skipped == 0
        rows = store.rows()
        assert [row["key"] for row in rows] == spec.cell_keys()
        assert all(row["status"] == "ok" for row in rows)
        assert all(row["experiment"] == "runner-unit" for row in rows)

    def test_resume_executes_zero_cells(self, tmp_path):
        spec = _spec()
        store = ResultStore(tmp_path / "results.jsonl")
        run_experiment(spec, store, jobs=2)
        before = store.path.read_text(encoding="utf-8")
        progress = run_experiment(spec, store, jobs=2, resume=True)
        assert progress.executed == 0
        assert progress.skipped == 4
        # The cache hit leaves the store byte-identical: nothing re-ran.
        assert store.path.read_text(encoding="utf-8") == before

    def test_resume_runs_only_new_cells_after_a_spec_edit(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        run_experiment(_spec(), store, jobs=2)
        widened = _spec(sweep={"privacy.epsilon": [2.0, 4.0, 8.0]})
        progress = run_experiment(widened, store, jobs=2, resume=True)
        assert progress.skipped == 4
        assert progress.executed == 2
        assert store.completed_keys() >= set(widened.cell_keys())

    def test_without_resume_everything_reruns(self, tmp_path):
        spec = _spec(repeats=1)
        store = ResultStore(tmp_path / "results.jsonl")
        run_experiment(spec, store)
        progress = run_experiment(spec, store)
        assert progress.executed == 2
        assert progress.skipped == 0

    def test_invalid_arguments_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        with pytest.raises(ExperimentError):
            run_experiment(_spec(), store, jobs=0)
        with pytest.raises(ExperimentError):
            run_experiment(_spec(), store, timeout=0.0)


class TestDeterminism:
    def test_jobs_1_and_jobs_4_produce_identical_rows(self, tmp_path):
        spec = _spec()
        sequential = ResultStore(tmp_path / "jobs1.jsonl")
        parallel = ResultStore(tmp_path / "jobs4.jsonl")
        run_experiment(spec, sequential, jobs=1)
        run_experiment(spec, parallel, jobs=4)
        assert _deterministic(sequential.rows()) == _deterministic(parallel.rows())

    def test_single_cell_row_matches_a_standalone_run(self, tmp_path):
        """The acceptance contract: a cell's stored row is bit-identical to
        what an equivalent standalone run produces."""
        spec = _spec(sweep={}, repeats=1, base_seed=3)
        store = ResultStore(tmp_path / "one.jsonl")
        progress = run_experiment(spec, store, jobs=1)
        assert progress.executed == 1 and progress.failed == 0
        (row,) = store.rows()

        cell = spec.expand()[0]
        collection = load_dataset_for_population(
            "gaussian", 14, seed=3, n_clusters=2, noise_std=0.05,
        )
        config = ChiaroscuroConfig().with_overrides(
            kmeans={"n_clusters": 2, "max_iterations": 2},
            privacy={"epsilon": 4.0, "noise_shares": 6},
            gossip={"cycles_per_aggregation": 3},
            crypto={"threshold": 2, "n_key_shares": 3},
            simulation={"n_participants": 14, "seed": 3},
        )
        assert cell.config() == config
        result = run_chiaroscuro(collection, config)
        assert row["result"]["profiles_digest"] == profiles_digest(result.profiles)
        assert row["result"]["summary"] == _jsonable(result.summary())
        # The stored costs are the summary totals; the per-iteration series
        # is stored once, under iteration_costs.
        expected_costs = {
            key: value for key, value in result.costs.as_dict().items()
            if not key.startswith("iteration_")
        }
        assert row["result"]["costs"] == _jsonable(expected_costs)
        assert row["result"]["iteration_costs"] == _jsonable(
            [record.costs for record in result.log]
        )
        assert row["result"]["guarantee"] == _jsonable(result.guarantee.as_dict())


def _jsonable(payload):
    """Round-trip through JSON the way the store does (exact for floats)."""
    import json

    return json.loads(json.dumps(payload))


class TestFailures:
    def test_invalid_cell_becomes_an_error_row(self, tmp_path):
        # threshold > participants fails configuration validation inside the
        # worker; the sweep must record the failure and keep going.
        spec = _spec(
            sweep={},
            repeats=1,
            cells=[{"crypto.threshold": 50}, {"privacy.epsilon": 2.0}],
        )
        store = ResultStore(tmp_path / "results.jsonl")
        progress = run_experiment(spec, store, jobs=2)
        assert progress.executed == 2
        assert progress.failed == 1
        rows = store.rows()
        assert [row["status"] for row in rows] == ["error", "ok"]
        assert "ConfigurationError" in rows[0]["error"]

    def test_resume_retries_failed_cells(self, tmp_path):
        spec = _spec(sweep={}, repeats=1, cells=[{"crypto.threshold": 50}])
        store = ResultStore(tmp_path / "results.jsonl")
        run_experiment(spec, store)
        progress = run_experiment(spec, store, resume=True)
        # The error row is not a cache hit: the cell runs (and fails) again.
        assert progress.executed == 1
        assert progress.failed == 1

    def test_per_cell_timeout_is_enforced(self, tmp_path):
        spec = _spec(
            participants=80,
            sweep={},
            repeats=1,
            base={
                "kmeans": {"n_clusters": 3, "max_iterations": 6},
                "privacy": {"epsilon": 2.0, "noise_shares": 16},
                "gossip": {"cycles_per_aggregation": 10},
            },
        )
        store = ResultStore(tmp_path / "results.jsonl")
        progress = run_experiment(spec, store, timeout=0.05)
        assert progress.executed == 1
        assert progress.failed == 1
        (row,) = store.rows()
        assert row["status"] == "timeout"
        assert "timeout" in row["error"]


class TestLivePortSlots:
    """Concurrent live cells with fixed ports must not collide on the bind.

    Each scheduler slot shifts the cell's port block by
    ``slot * (processes + 1)``; slot 0 and every non-live or ephemeral-port
    cell pass through untouched, so single-job sweeps are unchanged.
    """

    def _live_config(self, base_port: int, processes: int = 2):
        return ChiaroscuroConfig().with_overrides(
            crypto={"backend": "plain", "threshold": 2, "n_key_shares": 3},
            runtime={"mode": "live", "processes": processes,
                     "base_port": base_port},
        )

    def test_cycle_and_slot_zero_pass_through(self):
        from repro.experiments.runner import _cell_runtime_ports

        cycle = ChiaroscuroConfig()
        assert _cell_runtime_ports(cycle, 3) is cycle
        live = self._live_config(base_port=43210)
        assert _cell_runtime_ports(live, 0) is live
        ephemeral = self._live_config(base_port=0)
        assert _cell_runtime_ports(ephemeral, 3) is ephemeral

    def test_slots_get_disjoint_port_blocks(self):
        from repro.experiments.runner import _cell_runtime_ports

        live = self._live_config(base_port=43210, processes=2)
        shifted_1 = _cell_runtime_ports(live, 1)
        shifted_2 = _cell_runtime_ports(live, 2)
        # A cell binds base_port .. base_port + processes: blocks of
        # (processes + 1) ports, disjoint across slots.
        assert shifted_1.runtime.base_port == 43210 + 3
        assert shifted_2.runtime.base_port == 43210 + 6

    def test_port_range_overflow_falls_back_to_ephemeral(self):
        from repro.experiments.runner import _cell_runtime_ports

        live = self._live_config(base_port=65530, processes=2)
        # Slot 1 still fits (top of the block is exactly 65535)...
        assert _cell_runtime_ports(live, 1).runtime.base_port == 65533
        # ...slot 2 would run past the range, so it goes ephemeral instead.
        assert _cell_runtime_ports(live, 2).runtime.base_port == 0

    def test_parallel_live_cells_share_a_fixed_base_port(self, tmp_path):
        """The collision regression: two live cells in flight at once with
        the same nonzero ``base_port`` used to race for the same sockets."""
        spec = _spec(
            participants=8,
            base={
                "kmeans": {"n_clusters": 2, "max_iterations": 2},
                "privacy": {"epsilon": 2.0, "noise_shares": 4},
                "gossip": {"cycles_per_aggregation": 3},
                "crypto": {"backend": "plain", "threshold": 2,
                           "n_key_shares": 3},
                "runtime": {"mode": "live", "processes": 2,
                            "base_port": 44100, "run_timeout": 120.0},
            },
            sweep={"privacy.epsilon": [2.0, 4.0]},
            repeats=1,
        )
        store = ResultStore(tmp_path / "live.jsonl")
        progress = run_experiment(spec, store, jobs=2)
        assert progress.executed == 2
        assert progress.failed == 0
        rows = store.rows()
        assert all(row["status"] == "ok" for row in rows)
        # The slot shift is applied inside the worker, after keying: the
        # stored cell keys are exactly the spec's (resume-compatible).
        assert [row["key"] for row in rows] == spec.cell_keys()


class TestQualityMetrics:
    def test_label_metrics_survive_without_the_reference(self, tmp_path):
        """metrics.reference and metrics.label_key are independent: disabling
        the centralised reference keeps the label-based metrics (ARI)."""
        spec = _spec(
            sweep={}, repeats=1,
            metrics={"reference": False, "label_key": "cluster"},
        )
        store = ResultStore(tmp_path / "results.jsonl")
        progress = run_experiment(spec, store)
        assert progress.failed == 0
        (row,) = store.rows()
        quality = row["result"]["quality"]
        assert "adjusted_rand_index" in quality
        assert "relative_inertia" not in quality  # needs the reference

    def test_no_labels_no_reference_stores_empty_quality(self, tmp_path):
        spec = _spec(
            sweep={}, repeats=1,
            metrics={"reference": False, "label_key": None},
        )
        store = ResultStore(tmp_path / "results.jsonl")
        run_experiment(spec, store)
        (row,) = store.rows()
        assert row["result"]["quality"] == {}


class TestProgressReporting:
    def test_progress_callback_sees_every_cell(self, tmp_path):
        spec = _spec(repeats=1)
        store = ResultStore(tmp_path / "results.jsonl")
        lines: list[str] = []
        run_experiment(spec, store, progress=lines.append)
        assert sum(1 for line in lines if line.startswith("running")) == 2
        assert sum(1 for line in lines if line.startswith("done")) == 2
        run_experiment(spec, store, resume=True, progress=lines.append)
        assert sum(1 for line in lines if line.startswith("cached")) == 2
