"""Tests of the threshold (collaborative) Damgård–Jurik decryption."""

from __future__ import annotations

import pytest

from repro.crypto import damgard_jurik as dj
from repro.crypto.threshold import (
    KeyShare,
    PartialDecryption,
    combine_partial_decryptions,
    generate_threshold_keypair,
    partial_decrypt,
    threshold_decrypt,
)
from repro.exceptions import KeyGenerationError, ThresholdError


@pytest.fixture(scope="module")
def threshold_setup():
    public, shares, dealer = generate_threshold_keypair(
        key_bits=160, s=1, threshold=3, n_shares=6
    )
    return public, shares, dealer


class TestKeyGeneration:
    def test_share_count_and_indices(self, threshold_setup):
        _public, shares, _dealer = threshold_setup
        assert len(shares) == 6
        assert [share.index for share in shares] == [1, 2, 3, 4, 5, 6]

    def test_rejects_threshold_above_shares(self):
        with pytest.raises(KeyGenerationError):
            generate_threshold_keypair(key_bits=128, threshold=5, n_shares=3)

    def test_share_index_must_be_positive(self):
        with pytest.raises(KeyGenerationError):
            KeyShare(index=0, value=1)

    def test_dealer_key_still_decrypts(self, threshold_setup):
        public, _shares, dealer = threshold_setup
        ciphertext = dj.encrypt(public.public_key, 321)
        assert dj.decrypt(dealer, ciphertext) == 321


class TestThresholdDecryption:
    def test_exact_threshold_subset(self, threshold_setup):
        public, shares, _dealer = threshold_setup
        plaintext = 123456
        ciphertext = dj.encrypt(public.public_key, plaintext)
        assert threshold_decrypt(public, shares[:3], ciphertext) == plaintext

    def test_any_subset_works(self, threshold_setup):
        public, shares, _dealer = threshold_setup
        plaintext = 999
        ciphertext = dj.encrypt(public.public_key, plaintext)
        for subset in (shares[1:4], shares[3:6], [shares[0], shares[2], shares[5]]):
            assert threshold_decrypt(public, subset, ciphertext) == plaintext

    def test_more_than_threshold_works(self, threshold_setup):
        public, shares, _dealer = threshold_setup
        ciphertext = dj.encrypt(public.public_key, 5555)
        assert threshold_decrypt(public, shares, ciphertext) == 5555

    def test_fewer_than_threshold_fails(self, threshold_setup):
        public, shares, _dealer = threshold_setup
        ciphertext = dj.encrypt(public.public_key, 1)
        partials = [partial_decrypt(public, share, ciphertext) for share in shares[:2]]
        with pytest.raises(ThresholdError):
            combine_partial_decryptions(public, partials)

    def test_duplicate_shares_do_not_count_twice(self, threshold_setup):
        public, shares, _dealer = threshold_setup
        ciphertext = dj.encrypt(public.public_key, 1)
        partial = partial_decrypt(public, shares[0], ciphertext)
        with pytest.raises(ThresholdError):
            combine_partial_decryptions(public, [partial, partial, partial])

    def test_conflicting_partials_rejected(self, threshold_setup):
        public, shares, _dealer = threshold_setup
        ciphertext = dj.encrypt(public.public_key, 1)
        good = partial_decrypt(public, shares[0], ciphertext)
        bad = PartialDecryption(index=good.index, value=(good.value + 1))
        others = [partial_decrypt(public, share, ciphertext) for share in shares[1:3]]
        with pytest.raises(ThresholdError):
            combine_partial_decryptions(public, [good, bad, *others])

    def test_mapping_input_accepted(self, threshold_setup):
        public, shares, _dealer = threshold_setup
        plaintext = 777
        ciphertext = dj.encrypt(public.public_key, plaintext)
        partials = {
            share.index: partial_decrypt(public, share, ciphertext).value
            for share in shares[:3]
        }
        assert combine_partial_decryptions(public, partials) == plaintext

    def test_homomorphic_sum_then_threshold_decrypt(self, threshold_setup):
        """The protocol's actual usage: gossip-summed ciphertext, then committee decryption."""
        public, shares, _dealer = threshold_setup
        values = [11, 22, 33, 44]
        ciphertexts = [dj.encrypt(public.public_key, value) for value in values]
        total = dj.add_ciphertexts(public.public_key, *ciphertexts)
        assert threshold_decrypt(public, shares[:3], total) == sum(values)

    def test_degree_two_threshold(self):
        public, shares, _dealer = generate_threshold_keypair(
            key_bits=128, s=2, threshold=2, n_shares=4
        )
        plaintext = public.public_key.n + 4242  # exceeds the degree-1 space
        ciphertext = dj.encrypt(public.public_key, plaintext)
        assert threshold_decrypt(public, shares[:2], ciphertext) == plaintext

    def test_empty_partials_rejected(self, threshold_setup):
        public, _shares, _dealer = threshold_setup
        with pytest.raises(ThresholdError):
            combine_partial_decryptions(public, [])
