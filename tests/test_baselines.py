"""Tests of the three baselines (centralised, centralised DP, plain gossip)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    centralized_dp_kmeans,
    centralized_kmeans,
    distributed_plain_kmeans,
)
from repro.clustering import adjusted_rand_index, compute_inertia
from repro.config import GossipConfig, KMeansConfig, PrivacyConfig, SmoothingConfig
from repro.datasets import generate_gaussian_clusters


@pytest.fixture(scope="module")
def collection():
    return generate_gaussian_clusters(
        n_series=60, series_length=16, n_clusters=3, noise_std=0.05, seed=11
    )


@pytest.fixture(scope="module")
def kconfig():
    return KMeansConfig(n_clusters=3, max_iterations=10, convergence_threshold=1e-4)


class TestCentralized:
    def test_recovers_ground_truth(self, collection, kconfig):
        result = centralized_kmeans(collection, kconfig, seed=0, n_restarts=3)
        labels = np.array(collection.labels("cluster"))
        assert adjusted_rand_index(labels, result.assignments) > 0.95
        assert result.converged

    def test_inertia_consistent(self, collection, kconfig):
        result = centralized_kmeans(collection, kconfig, seed=0)
        recomputed = compute_inertia(collection.to_matrix(), result.centroids,
                                     result.assignments)
        assert result.inertia == pytest.approx(recomputed)

    def test_restarts_never_hurt(self, collection, kconfig):
        single = centralized_kmeans(collection, kconfig, seed=2, n_restarts=1)
        multi = centralized_kmeans(collection, kconfig, seed=2, n_restarts=4)
        assert multi.inertia <= single.inertia + 1e-9

    def test_default_config_used_when_omitted(self, collection):
        result = centralized_kmeans(collection)
        assert result.centroids.shape[0] == 5  # library default k


class TestCentralizedDP:
    def test_respects_budget(self, collection, kconfig):
        privacy = PrivacyConfig(epsilon=2.0, budget_strategy="uniform")
        result = centralized_dp_kmeans(collection, kconfig, privacy, seed=0)
        assert result.epsilon_spent <= 2.0 + 1e-9
        assert len(result.per_iteration_epsilon) == result.n_iterations or not result.converged

    def test_quality_improves_with_epsilon(self, collection, kconfig):
        loose = centralized_dp_kmeans(
            collection, kconfig, PrivacyConfig(epsilon=0.05), seed=1
        )
        tight = centralized_dp_kmeans(
            collection, kconfig, PrivacyConfig(epsilon=100.0), seed=1
        )
        assert tight.inertia < loose.inertia

    def test_large_epsilon_approaches_non_private(self, collection, kconfig):
        reference = centralized_kmeans(collection, kconfig, seed=0, n_restarts=3)
        dp_result = centralized_dp_kmeans(
            collection, kconfig, PrivacyConfig(epsilon=10_000.0), seed=0
        )
        assert dp_result.inertia <= reference.inertia * 3.0

    def test_smoothing_config_accepted(self, collection, kconfig):
        result = centralized_dp_kmeans(
            collection, kconfig, PrivacyConfig(epsilon=1.0),
            SmoothingConfig(method="lowpass", lowpass_cutoff=0.3), seed=0,
        )
        assert result.centroids.shape == (3, collection.series_length)

    def test_centroids_respect_value_bound(self, collection, kconfig):
        privacy = PrivacyConfig(epsilon=0.1, value_bound=1.0)
        result = centralized_dp_kmeans(collection, kconfig, privacy, seed=3)
        assert result.centroids.max() <= 1.0 + 1e-9
        assert result.centroids.min() >= -1.0 - 1e-9


class TestDistributedPlain:
    def test_matches_centralized_quality(self, collection, kconfig):
        gossip = GossipConfig(cycles_per_aggregation=20)
        distributed = distributed_plain_kmeans(collection, kconfig, gossip, seed=0)
        centralized = centralized_kmeans(collection, kconfig, seed=0, n_restarts=3)
        # Gossip averaging converges to the exact means, so the distributed
        # run must be within a small factor of the centralised inertia.
        assert distributed.inertia <= centralized.inertia * 1.5 + 1e-9

    def test_recovers_ground_truth(self, collection, kconfig):
        gossip = GossipConfig(cycles_per_aggregation=20)
        result = distributed_plain_kmeans(collection, kconfig, gossip, seed=0)
        labels = np.array(collection.labels("cluster"))
        assert adjusted_rand_index(labels, result.assignments) > 0.9

    def test_gossip_error_recorded_per_iteration(self, collection, kconfig):
        gossip = GossipConfig(cycles_per_aggregation=10)
        result = distributed_plain_kmeans(collection, kconfig, gossip, seed=0)
        assert len(result.gossip_error_history) == result.n_iterations
        assert all(error >= 0 for error in result.gossip_error_history)

    def test_fewer_gossip_cycles_give_larger_error(self, collection, kconfig):
        few = distributed_plain_kmeans(
            collection, kconfig, GossipConfig(cycles_per_aggregation=2), seed=0
        )
        many = distributed_plain_kmeans(
            collection, kconfig, GossipConfig(cycles_per_aggregation=25), seed=0
        )
        assert many.gossip_error_history[0] < few.gossip_error_history[0]
