"""Chunk-boundary, dtype, backing and shard parity of the out-of-core slab.

The determinism contract: ``slab_chunk_rows``, ``slab_backing`` and
``slab_shards`` are pure memory/parallelism knobs — any combination yields
the same bits as the dense single-shard float64 run.  ``slab_dtype=float32``
is the one knowingly lossy knob (halved resident memory for N=10^7); it only
has to complete and cluster, not match bits.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ChiaroscuroConfig
from repro.core.runner import run_chiaroscuro
from repro.core.slab_runner import PHASE_SECONDS_PREFIX, PhaseTimer
from repro.datasets import load_dataset_for_population
from repro.simulation.slab import (
    REDUCE_BLOCK_ROWS,
    ShardCoordinator,
    advise_dontneed,
    advise_random,
    average_pairs_inplace,
    blockwise_assign,
    blockwise_cluster_sums,
    blockwise_inertia,
    canonical_blocks,
    n_canonical_blocks,
    parse_slab_backing,
    slab_numpy_dtype,
)


def make_config(n: int, **runtime) -> ChiaroscuroConfig:
    return ChiaroscuroConfig().with_overrides(
        simulation={"n_participants": n, "seed": 11},
        kmeans={"n_clusters": 3, "max_iterations": 3},
        privacy={"epsilon": 4.0, "noise_shares": 12},
        gossip={"cycles_per_aggregation": 4},
        crypto={"threshold": 2, "n_key_shares": 4},
        runtime={"engine": "slab", "crypto_sample_fraction": 0.25, **runtime},
    )


@pytest.fixture(scope="module")
def collection():
    return load_dataset_for_population("gaussian", 60, 11, n_clusters=3,
                                       noise_std=0.05)


@pytest.fixture(scope="module")
def reference(collection):
    """The dense single-shard float64 run every knob must reproduce."""
    return run_chiaroscuro(collection, make_config(60))


def assert_bit_identical(result, reference):
    assert np.array_equal(result.profiles, reference.profiles)
    assert np.array_equal(result.assignments, reference.assignments)
    assert result.inertia == reference.inertia
    assert result.n_iterations == reference.n_iterations
    assert result.costs.messages_sent == reference.costs.messages_sent
    assert result.costs.bytes_sent == reference.costs.bytes_sent


class TestChunkInvariance:
    @pytest.mark.parametrize("chunk_rows", [1, 7, 60])
    def test_chunked_run_bit_identical(self, collection, reference, chunk_rows):
        result = run_chiaroscuro(
            collection, make_config(60, slab_chunk_rows=chunk_rows)
        )
        assert_bit_identical(result, reference)

    @given(chunk_rows=st.integers(min_value=1, max_value=61))
    @settings(max_examples=8, deadline=None)
    def test_any_chunk_size_bit_identical(self, collection, reference, chunk_rows):
        result = run_chiaroscuro(
            collection, make_config(60, slab_chunk_rows=chunk_rows)
        )
        assert_bit_identical(result, reference)

    @given(chunk_rows=st.integers(min_value=0, max_value=23),
           n_pairs=st.integers(min_value=0, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_pair_averaging_chunk_invariant(self, chunk_rows, n_pairs):
        rng = np.random.default_rng(3)
        estimates = rng.normal(size=(21, 5))
        nodes = rng.permutation(21)[: 2 * n_pairs]
        pairs = nodes.reshape(-1, 2).astype(np.int64)
        dense = estimates.copy()
        average_pairs_inplace(dense, pairs)
        chunked = estimates.copy()
        average_pairs_inplace(chunked, pairs, chunk_rows=chunk_rows)
        assert np.array_equal(dense, chunked)


class TestShardInvariance:
    @pytest.mark.parametrize("shards", [2, 3, 8])
    def test_sharded_run_bit_identical(self, collection, reference, shards):
        result = run_chiaroscuro(
            collection, make_config(60, slab_shards=shards)
        )
        assert_bit_identical(result, reference)

    @given(shards=st.integers(min_value=1, max_value=4))
    @settings(max_examples=4, deadline=None)
    def test_assignment_scatter_means_shard_invariant(self, shards):
        rng = np.random.default_rng(7)
        data = rng.normal(size=(37, 4))
        centroids = rng.normal(size=(3, 4))
        with ShardCoordinator(37, 3 * 5, shards=1, data=data) as one, \
                ShardCoordinator(37, 3 * 5, shards=shards, data=data) as many:
            for coordinator in (one, many):
                coordinator.assign(centroids)
                coordinator.scatter()
            assert np.array_equal(one.assigned, many.assigned)
            assert np.array_equal(one.estimates, many.estimates)
            one_mean, one_count = one.online_mean()
            many_mean, many_count = many.online_mean()
            assert one_count == many_count
            assert np.array_equal(one_mean, many_mean)

    def test_combined_knobs_bit_identical(self, collection, reference, tmp_path):
        result = run_chiaroscuro(
            collection,
            make_config(60, slab_shards=2, slab_chunk_rows=5,
                        slab_backing=f"mmap:{tmp_path}"),
        )
        assert_bit_identical(result, reference)


class TestBacking:
    def test_mmap_backing_bit_identical(self, collection, reference, tmp_path):
        result = run_chiaroscuro(
            collection, make_config(60, slab_backing=f"mmap:{tmp_path}")
        )
        assert_bit_identical(result, reference)

    def test_parse_slab_backing(self):
        assert parse_slab_backing("memory") == ("memory", None)
        assert parse_slab_backing("mmap:/tmp/x") == ("mmap", "/tmp/x")

    def test_advise_helpers_are_noops_for_plain_arrays(self):
        plain = np.ones((8, 3))
        advise_random(plain)
        advise_dontneed(plain)
        advise_dontneed(plain, 2, 6)
        assert np.all(plain == 1.0)

    def test_advise_helpers_preserve_memmap_contents(self, tmp_path):
        path = tmp_path / "slab.bin"
        path.write_bytes(b"\0" * (64 * 5 * 8))
        arr = np.memmap(path, dtype=np.float64, mode="r+", shape=(64, 5))
        advise_random(arr)
        arr[:] = 7.0
        advise_dontneed(arr)
        advise_dontneed(arr, 0, 32)
        assert np.all(arr == 7.0)

    def test_float32_run_completes_and_clusters(self, collection, tmp_path):
        result = run_chiaroscuro(
            collection,
            make_config(60, slab_dtype="float32", slab_chunk_rows=16,
                        slab_backing=f"mmap:{tmp_path}"),
        )
        assert result.profiles.shape == (3, 24)
        assert np.isfinite(result.inertia)
        assert len(np.unique(result.assignments)) > 1
        assert result.metadata["engine"]["slab_dtype"] == "float32"


class TestBlockwiseHelpers:
    def test_canonical_block_partition_covers_everything(self):
        for n in (1, 5, REDUCE_BLOCK_ROWS, REDUCE_BLOCK_ROWS + 1,
                  3 * REDUCE_BLOCK_ROWS + 17):
            blocks = list(canonical_blocks(n))
            assert len(blocks) == n_canonical_blocks(n)
            assert blocks[0][0] == 0
            assert blocks[-1][1] == n
            for (_, end), (start, _) in zip(blocks, blocks[1:]):
                assert end == start

    def test_blockwise_matches_dense_below_one_block(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(200, 6))
        centroids = rng.normal(size=(4, 6))
        assignments = blockwise_assign(data, centroids)
        diffs = data[:, None, :] - centroids[None, :, :]
        dense = np.argmin((diffs * diffs).sum(axis=2), axis=1)
        assert np.array_equal(assignments, dense)
        dense_inertia = float(((data - centroids[assignments]) ** 2).sum())
        assert blockwise_inertia(data, centroids, assignments) == pytest.approx(
            dense_inertia, rel=1e-12
        )
        sums, counts = blockwise_cluster_sums(data, assignments, 4)
        for cluster in range(4):
            mask = assignments == cluster
            assert counts[cluster] == mask.sum()
            assert np.allclose(sums[cluster], data[mask].sum(axis=0))

    def test_slab_numpy_dtype(self):
        assert slab_numpy_dtype("float64") == np.float64
        assert slab_numpy_dtype("float32") == np.float32


class TestPhaseProfiler:
    def test_phase_timer_accumulates(self):
        timer = PhaseTimer()
        timer.start_iteration()
        with timer.phase("averaging"):
            pass
        with timer.phase("averaging"):
            pass
        costs = timer.iteration_costs()
        assert f"{PHASE_SECONDS_PREFIX}averaging" in costs
        assert timer.totals["averaging"] >= costs[f"{PHASE_SECONDS_PREFIX}averaging"] >= 0

    def test_phase_seconds_in_summary_and_log(self, reference):
        phase_seconds = reference.costs.phase_seconds
        assert phase_seconds is not None
        for phase in ("assignment", "scatter", "churn", "pairing",
                      "averaging", "means", "sample"):
            assert phase in phase_seconds
        for record in reference.log:
            keys = [key for key in record.costs if key.startswith(PHASE_SECONDS_PREFIX)]
            assert keys, "every iteration carries its phase profile"
        assert "phase_seconds" in reference.costs.as_dict()

    def test_phases_sum_to_measured_wall_clock(self, collection):
        # A slightly bigger run so fixed per-call overhead stays under 5%.
        big = load_dataset_for_population("gaussian", 2000, 11, n_clusters=3,
                                          noise_std=0.05)
        result = run_chiaroscuro(big, make_config(2000))
        total = sum(result.costs.phase_seconds.values())
        wall = result.metadata["engine"]["slab_wall_seconds"]
        assert total == pytest.approx(wall, rel=0.05)
