"""Tests of the gossip overlay topologies."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import GossipError, ValidationError
from repro.gossip import Overlay, build_overlay


class TestOverlay:
    def test_complete_graph_degrees(self):
        overlay = build_overlay(10, topology="complete")
        assert overlay.n_nodes == 10
        assert all(overlay.degree(i) == 9 for i in range(10))
        assert overlay.is_connected()

    def test_ring_degrees(self):
        overlay = build_overlay(8, topology="ring")
        assert all(overlay.degree(i) == 2 for i in range(8))

    def test_random_regular_degrees(self):
        overlay = build_overlay(20, topology="random_regular", degree=4, seed=1)
        assert all(overlay.degree(i) == 4 for i in range(20))
        assert overlay.is_connected()

    def test_small_world_connected(self):
        overlay = build_overlay(30, topology="small_world", degree=4, seed=2)
        assert overlay.is_connected()

    def test_single_node_overlay(self):
        overlay = build_overlay(1)
        assert overlay.n_nodes == 1
        assert overlay.degree(0) == 0
        assert overlay.is_connected()

    def test_degree_larger_than_population_is_clamped(self):
        overlay = build_overlay(5, topology="random_regular", degree=50, seed=0)
        assert overlay.is_connected()

    def test_unknown_topology(self):
        with pytest.raises(ValidationError):
            build_overlay(5, topology="hypercube")

    def test_custom_graph_requires_dense_ids(self):
        graph = nx.Graph()
        graph.add_edge(0, 2)
        with pytest.raises(GossipError):
            Overlay(graph)

    def test_neighbors_sorted(self):
        overlay = build_overlay(6, topology="ring")
        assert list(overlay.neighbors(0)) == [1, 5]

    def test_node_bounds_checked(self):
        overlay = build_overlay(4)
        with pytest.raises(GossipError):
            overlay.neighbors(10)


class TestNeighborSampling:
    def test_sample_returns_neighbor(self, fresh_rng):
        overlay = build_overlay(10, topology="ring")
        for node in range(10):
            peer = overlay.sample_neighbor(node, fresh_rng)
            assert peer in set(overlay.neighbors(node))

    def test_sample_respects_online_filter(self, fresh_rng):
        overlay = build_overlay(5, topology="complete")
        online = {0, 3}
        for _ in range(10):
            peer = overlay.sample_neighbor(0, fresh_rng, online=online)
            assert peer == 3

    def test_sample_none_when_no_online_neighbor(self, fresh_rng):
        overlay = build_overlay(5, topology="complete")
        assert overlay.sample_neighbor(0, fresh_rng, online={0}) is None

    def test_sampling_is_roughly_uniform(self):
        overlay = build_overlay(4, topology="complete")
        rng = np.random.default_rng(0)
        counts = {1: 0, 2: 0, 3: 0}
        for _ in range(3000):
            counts[overlay.sample_neighbor(0, rng)] += 1
        for count in counts.values():
            assert count == pytest.approx(1000, rel=0.15)
