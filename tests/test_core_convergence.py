"""Tests of the termination criteria."""

from __future__ import annotations

import pytest

from repro.core import TerminationCriteria
from repro.exceptions import ValidationError


class TestBasicCriteria:
    def test_converged_below_threshold(self):
        criteria = TerminationCriteria(convergence_threshold=0.1, max_iterations=10)
        stop, reason = criteria.should_stop(1, 0.05)
        assert stop and reason == "converged"

    def test_continue_above_threshold(self):
        criteria = TerminationCriteria(convergence_threshold=0.1, max_iterations=10,
                                       track_quality=False)
        stop, reason = criteria.should_stop(1, 0.5)
        assert not stop and reason == ""

    def test_max_iterations(self):
        criteria = TerminationCriteria(convergence_threshold=1e-6, max_iterations=3,
                                       track_quality=False)
        stop, reason = criteria.should_stop(3, 1.0)
        assert stop and reason == "max_iterations"

    def test_exact_threshold_counts_as_converged(self):
        criteria = TerminationCriteria(convergence_threshold=0.1, max_iterations=10)
        stop, reason = criteria.should_stop(1, 0.1)
        assert stop and reason == "converged"

    def test_negative_displacement_rejected(self):
        criteria = TerminationCriteria()
        with pytest.raises(ValidationError):
            criteria.should_stop(1, -0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            TerminationCriteria(max_iterations=0)
        with pytest.raises(ValidationError):
            TerminationCriteria(convergence_threshold=-1.0)


class TestQualityPlateau:
    def test_plateau_triggers_after_patience(self):
        criteria = TerminationCriteria(
            convergence_threshold=1e-9, max_iterations=100,
            track_quality=True, quality_patience=2,
        )
        assert criteria.should_stop(1, 0.5) == (False, "")
        assert criteria.should_stop(2, 0.6) == (False, "")   # 1st non-improving
        stop, reason = criteria.should_stop(3, 0.7)           # 2nd non-improving
        assert stop and reason == "quality_plateau"

    def test_improvement_resets_patience(self):
        criteria = TerminationCriteria(
            convergence_threshold=1e-9, max_iterations=100,
            track_quality=True, quality_patience=2,
        )
        criteria.should_stop(1, 0.5)
        criteria.should_stop(2, 0.6)   # non-improving
        criteria.should_stop(3, 0.4)   # improves: patience resets
        stop, _reason = criteria.should_stop(4, 0.45)
        assert not stop

    def test_disabled_plateau_never_triggers(self):
        criteria = TerminationCriteria(
            convergence_threshold=1e-9, max_iterations=100, track_quality=False,
        )
        for iteration in range(1, 20):
            stop, _ = criteria.should_stop(iteration, 1.0)
            assert not stop

    def test_reset_clears_patience_state(self):
        criteria = TerminationCriteria(
            convergence_threshold=1e-9, max_iterations=100,
            track_quality=True, quality_patience=1,
        )
        criteria.should_stop(1, 0.5)
        criteria.should_stop(2, 0.9)
        criteria.reset()
        stop, _ = criteria.should_stop(1, 0.9)
        assert not stop
