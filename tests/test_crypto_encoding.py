"""Tests of the fixed-point codec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.encoding import FixedPointCodec
from repro.exceptions import EncodingOverflowError, ValidationError


@pytest.fixture()
def codec():
    return FixedPointCodec(modulus=2**64, scale=10**6)


class TestScalarRoundTrip:
    @pytest.mark.parametrize("value", [0.0, 1.0, -1.0, 3.141592, -2.718281, 1e-6, 12345.678901])
    def test_round_trip(self, codec, value):
        assert codec.decode(codec.encode(value)) == pytest.approx(value, abs=1e-6)

    def test_quantisation_error_bounded(self, codec):
        value = 0.123456789123
        assert abs(codec.decode(codec.encode(value)) - value) <= 0.5 / codec.scale

    def test_rejects_nan(self, codec):
        with pytest.raises(ValidationError):
            codec.encode(float("nan"))

    def test_rejects_overflow(self, codec):
        with pytest.raises(EncodingOverflowError):
            codec.encode(codec.max_absolute_value * 2)

    def test_integer_round_trip(self, codec):
        for value in (0, 1, -1, 123456, -987654):
            assert codec.decode_integer(codec.encode_integer(value)) == value

    def test_integer_overflow(self, codec):
        with pytest.raises(EncodingOverflowError):
            codec.encode_integer(codec.half_modulus + 1)

    def test_modulus_must_exceed_scale(self):
        with pytest.raises(ValidationError):
            FixedPointCodec(modulus=100, scale=1000)


class TestAdditiveStructure:
    def test_sum_of_encodings_decodes_to_sum(self, codec):
        values = [1.5, -0.25, 3.75, -2.0]
        encoded_sum = sum(codec.encode(value) for value in values) % codec.modulus
        assert codec.decode(encoded_sum) == pytest.approx(sum(values), abs=1e-5)

    def test_negative_sum(self, codec):
        encoded = (codec.encode(-1.5) + codec.encode(-2.5)) % codec.modulus
        assert codec.decode(encoded) == pytest.approx(-4.0, abs=1e-6)

    def test_scaled_encoding_supports_halving_exponents(self, codec):
        # value * 2^e stays decodable as long as it fits, which is what the
        # encrypted gossip averaging relies on.
        value = 0.75
        encoded = codec.encode(value) * (1 << 10) % codec.modulus
        assert codec.decode(encoded) / (1 << 10) == pytest.approx(value, abs=1e-6)


class TestVectors:
    def test_vector_round_trip(self, codec):
        values = np.array([0.5, -1.25, 2.0, 0.0])
        decoded = codec.decode_vector(codec.encode_vector(values))
        assert np.allclose(decoded, values, atol=1e-6)

    def test_capacity_accounting(self, codec):
        capacity = codec.max_safe_terms(value_bound=1.0)
        assert capacity > 1000
        codec.check_sum_capacity(1.0, capacity)
        with pytest.raises(EncodingOverflowError):
            codec.check_sum_capacity(1.0, capacity + 1)

    def test_capacity_requires_positive_bound(self, codec):
        with pytest.raises(ValidationError):
            codec.max_safe_terms(0.0)
