"""Tests of the slab population engine: the vectorised million-node path.

Covers the struct-of-arrays primitives (churn, pairing, averaging, the
shard coordinator) and the cost extrapolation machinery
(``CryptoCostProfile.from_bench_json``, ``bootstrap_extrapolate``).  The
determinism contract under test: the slab churn step consumes its random
stream with exactly the same shapes as ``CycleEngine._apply_churn``, and
shard-count never changes results.  End-to-end slab-vs-object equivalence
lives in ``test_slab_equivalence.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.costs import (
    CryptoCostProfile,
    ExtrapolatedCost,
    bootstrap_extrapolate,
)
from repro.exceptions import AnalysisError, SimulationError
from repro.simulation import (
    CycleEngine,
    Node,
    PopulationSlabs,
    RngRegistry,
    ShardCoordinator,
    average_pairs_inplace,
    pair_online,
    slab_churn_step,
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_crypto.json"


class IdleNode(Node):
    """A node that does nothing — churn parity only needs online flags."""

    def next_cycle(self, engine, cycle) -> None:
        pass

    def receive(self, engine, message) -> None:
        pass


class TestPopulationSlabs:
    def test_allocate_shapes(self):
        data = np.arange(12.0).reshape(4, 3)
        slabs = PopulationSlabs.allocate(data, n_clusters=2)
        assert slabs.estimates.shape == (4, 2 * 4)
        assert slabs.online.all()
        assert slabs.n_nodes == 4
        assert slabs.rng_draws.sum() == 0

    def test_allocate_rejects_bad_estimates_shape(self):
        data = np.zeros((4, 3))
        with pytest.raises(SimulationError):
            PopulationSlabs.allocate(data, 2, estimates=np.zeros((4, 5)))

    def test_allocate_rejects_non_2d_data(self):
        with pytest.raises(SimulationError):
            PopulationSlabs.allocate(np.zeros(4), 2)


class TestSlabChurnParity:
    """slab_churn_step flips the same nodes as CycleEngine._apply_churn."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n_nodes=st.integers(2, 40),
        churn_rate=st.floats(0.0, 1.0),
        rejoin_rate=st.floats(0.0, 1.0),
        cycles=st.integers(1, 8),
    )
    def test_flip_parity_with_engine(self, seed, n_nodes, churn_rate,
                                     rejoin_rate, cycles):
        nodes = [IdleNode(i) for i in range(n_nodes)]
        engine = CycleEngine(nodes, seed=seed, churn_rate=churn_rate,
                             rejoin_rate=rejoin_rate)
        online = np.ones(n_nodes, dtype=bool)
        rng = RngRegistry(seed).stream("engine.churn")
        for cycle in range(cycles):
            engine._apply_churn(cycle)
            slab_churn_step(online, churn_rate, rejoin_rate, rng)
            flags = np.array([node.online for node in nodes])
            assert np.array_equal(online, flags)

    def test_zero_churn_consumes_no_stream(self):
        online = np.ones(10, dtype=bool)
        rng = np.random.default_rng(0)
        reference = np.random.default_rng(0)
        flipped = slab_churn_step(online, 0.0, 0.5, rng)
        assert flipped.size == 0
        assert online.all()
        # The stream was not advanced at all.
        assert rng.random() == reference.random()

    def test_draw_counters_audit_subjects(self):
        online = np.ones(6, dtype=bool)
        online[2] = False
        draws = np.zeros(6, dtype=np.int64)
        # rejoin possible: every node draws once per step.
        slab_churn_step(online, 0.3, 0.4, np.random.default_rng(1), draws)
        assert (draws == 1).all()
        # rejoin impossible: only online nodes draw.
        online = np.ones(6, dtype=bool)
        online[2] = False
        draws = np.zeros(6, dtype=np.int64)
        slab_churn_step(online, 0.3, 0.0, np.random.default_rng(1), draws)
        assert draws[2] == 0
        assert draws.sum() == 5


class TestPairOnline:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), n_nodes=st.integers(0, 60),
           offline=st.sets(st.integers(0, 59)))
    def test_pairs_are_disjoint_and_online(self, seed, n_nodes, offline):
        online = np.ones(n_nodes, dtype=bool)
        for node in offline:
            if node < n_nodes:
                online[node] = False
        pairs = pair_online(online, np.random.default_rng(seed))
        flat = pairs.ravel()
        assert len(set(flat.tolist())) == flat.size  # each node in <= 1 pair
        assert online[flat].all() if flat.size else True
        assert pairs.shape[0] == int(online.sum()) // 2

    def test_deterministic_given_stream(self):
        online = np.ones(20, dtype=bool)
        first = pair_online(online, np.random.default_rng(7))
        second = pair_online(online, np.random.default_rng(7))
        assert np.array_equal(first, second)

    def test_fewer_than_two_online_is_empty(self):
        online = np.zeros(5, dtype=bool)
        online[3] = True
        pairs = pair_online(online, np.random.default_rng(0))
        assert pairs.shape == (0, 2)


class TestAveragePairs:
    def test_both_members_adopt_mean(self):
        estimates = np.array([[2.0, 4.0], [4.0, 8.0], [1.0, 1.0]])
        average_pairs_inplace(estimates, np.array([[0, 1]]))
        assert np.array_equal(estimates[0], [3.0, 6.0])
        assert np.array_equal(estimates[1], [3.0, 6.0])
        assert np.array_equal(estimates[2], [1.0, 1.0])

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), n_nodes=st.integers(2, 50))
    def test_mass_conservation(self, seed, n_nodes):
        rng = np.random.default_rng(seed)
        estimates = rng.normal(size=(n_nodes, 3))
        before = estimates.sum(axis=0).copy()
        pairs = pair_online(np.ones(n_nodes, dtype=bool), rng)
        average_pairs_inplace(estimates, pairs)
        assert np.allclose(estimates.sum(axis=0), before)


class TestShardCoordinator:
    def test_shard_count_invariance_bitwise(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(40, 9))
        pairs = pair_online(np.ones(40, dtype=bool), rng)
        reference = data.copy()
        average_pairs_inplace(reference, pairs)
        for shards in (1, 2, 4):
            with ShardCoordinator(40, 9, shards=shards) as coordinator:
                coordinator.estimates[:] = data
                coordinator.average_pairs(pairs)
                assert np.array_equal(coordinator.estimates, reference), shards

    def test_rounds_accumulate_across_shards(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(30, 4))
        single = data.copy()
        with ShardCoordinator(30, 4, shards=3) as coordinator:
            coordinator.estimates[:] = data
            for _ in range(5):
                pairs = pair_online(np.ones(30, dtype=bool), rng)
                coordinator.average_pairs(pairs)
                sharded = coordinator.estimates.copy()
        rng = np.random.default_rng(5)
        rng.normal(size=(30, 4))  # consume the data draw
        for _ in range(5):
            pairs = pair_online(np.ones(30, dtype=bool), rng)
            average_pairs_inplace(single, pairs)
        assert np.array_equal(single, sharded)

    def test_shards_capped_by_population(self):
        coordinator = ShardCoordinator(3, 2, shards=8)
        try:
            assert coordinator.shards == 1
        finally:
            coordinator.close()

    def test_close_is_idempotent(self):
        coordinator = ShardCoordinator(10, 2, shards=2)
        coordinator.close()
        coordinator.close()


class TestBootstrapExtrapolate:
    def test_full_sample_is_measured_and_exact(self):
        result = bootstrap_extrapolate({"ops": [1.0, 2.0, 3.0]}, population=3)
        assert result.method == "measured"
        estimate, low, high = result.totals["ops"]
        assert estimate == low == high == 6.0

    def test_sampled_totals_bracket_estimate(self):
        rng = np.random.default_rng(0)
        per_node = {"ops": rng.normal(100.0, 5.0, size=50).tolist()}
        result = bootstrap_extrapolate(per_node, population=10_000, seed=1)
        assert result.method == "sampled"
        assert result.sample_size == 50
        estimate, low, high = result.totals["ops"]
        assert low <= estimate <= high
        assert low < high
        # mean ~100 per node, so ~1e6 total.
        assert 0.9e6 < estimate < 1.1e6

    def test_deterministic_given_seed(self):
        per_node = {"ops": [1.0, 5.0, 2.0, 8.0]}
        first = bootstrap_extrapolate(per_node, 100, seed=3)
        second = bootstrap_extrapolate(per_node, 100, seed=3)
        assert first.totals == second.totals

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            bootstrap_extrapolate({"a": [1.0], "b": [1.0, 2.0]}, 10)

    def test_empty_metrics_rejected(self):
        with pytest.raises(AnalysisError):
            bootstrap_extrapolate({"a": []}, 10)

    def test_as_dict_round_trip(self):
        result = bootstrap_extrapolate({"ops": [2.0, 4.0]}, population=2)
        view = result.as_dict()
        assert view["method"] == "measured"
        assert view["population"] == 2
        assert view["totals"]["ops"]["estimate"] == 6.0
        # JSON-serialisable for the result store.
        json.dumps(view)


class TestCryptoCostProfileFromBench:
    def test_reads_committed_bench_file(self):
        payload = json.loads(BENCH_PATH.read_text())
        profile = CryptoCostProfile.from_bench_json(payload)
        assert profile.encryption_seconds > 0
        assert profile.partial_decryption_seconds > 0
        assert profile.combination_seconds > 0
        # 2048-bit modulus, degree 1: ciphertexts live in n^2.
        assert profile.ciphertext_bytes == (2048 // 8) * 2

    def test_fastmath_column_differs(self):
        payload = json.loads(BENCH_PATH.read_text())
        off = CryptoCostProfile.from_bench_json(payload, fastmath="off")
        fast = CryptoCostProfile.from_bench_json(payload, fastmath="auto")
        assert fast.encryption_seconds < off.encryption_seconds

    def test_malformed_payload_rejected(self):
        with pytest.raises(AnalysisError):
            CryptoCostProfile.from_bench_json({"operations": {}})

    def test_seconds_for_counts_weights_counters(self):
        payload = json.loads(BENCH_PATH.read_text())
        profile = CryptoCostProfile.from_bench_json(payload)
        seconds = profile.seconds_for_counts({"encryptions": 10})
        assert seconds == pytest.approx(10 * profile.encryption_seconds)
        assert profile.seconds_for_counts({}) == 0.0


class TestExtrapolatedCost:
    def test_frozen_value_object(self):
        cost = ExtrapolatedCost(population=10, sample_size=2, method="sampled",
                                totals={"ops": (1.0, 0.5, 1.5)})
        with pytest.raises(AttributeError):
            cost.population = 5
