"""Tests of the distributed noise-share construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PrivacyError, ValidationError
from repro.privacy import (
    NoiseShareSpec,
    draw_noise_share,
    effective_scale_with_dropouts,
    reconstructed_variance,
    share_variance,
    sum_of_shares,
)


class TestSpec:
    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValidationError):
            NoiseShareSpec(scale=0.0, n_shares=4, vector_length=3)
        with pytest.raises(ValidationError):
            NoiseShareSpec(scale=1.0, n_shares=0, vector_length=3)
        with pytest.raises(ValidationError):
            NoiseShareSpec(scale=1.0, n_shares=4, vector_length=0)

    def test_variance_formulas(self):
        spec = NoiseShareSpec(scale=2.0, n_shares=8, vector_length=1)
        assert share_variance(spec) == pytest.approx(2 * 4.0 / 8)
        assert reconstructed_variance(spec) == pytest.approx(8.0)


class TestDistribution:
    def test_single_share_shape_and_zero_mean(self, fresh_rng):
        spec = NoiseShareSpec(scale=1.0, n_shares=16, vector_length=5)
        share = draw_noise_share(spec, fresh_rng)
        assert share.shape == (5,)

    def test_share_variance_matches_theory(self):
        spec = NoiseShareSpec(scale=1.5, n_shares=10, vector_length=20_000)
        rng = np.random.default_rng(0)
        share = draw_noise_share(spec, rng)
        assert np.var(share) == pytest.approx(share_variance(spec), rel=0.1)

    def test_sum_of_shares_is_laplace(self):
        """The n-share sum must match Laplace(0, b): same variance, same tails."""
        scale = 2.0
        spec = NoiseShareSpec(scale=scale, n_shares=12, vector_length=20_000)
        rng = np.random.default_rng(1)
        total = sum_of_shares(spec, rng)
        assert np.mean(total) == pytest.approx(0.0, abs=0.1)
        assert np.var(total) == pytest.approx(2 * scale**2, rel=0.1)
        # Laplace kurtosis is 3 (excess), well above the Gaussian 0: check the
        # heavy tails really survive the share decomposition.
        centred = total - total.mean()
        excess_kurtosis = np.mean(centred**4) / np.var(centred) ** 2 - 3.0
        assert excess_kurtosis > 1.0

    def test_sum_with_one_share_is_plain_laplace_difference(self):
        spec = NoiseShareSpec(scale=1.0, n_shares=1, vector_length=10_000)
        total = sum_of_shares(spec, np.random.default_rng(2))
        assert np.var(total) == pytest.approx(2.0, rel=0.15)

    def test_shares_from_different_draws_are_independent(self, fresh_rng):
        spec = NoiseShareSpec(scale=1.0, n_shares=4, vector_length=5_000)
        a = draw_noise_share(spec, fresh_rng)
        b = draw_noise_share(spec, fresh_rng)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.05


class TestDropouts:
    def test_full_delivery_keeps_scale(self):
        spec = NoiseShareSpec(scale=3.0, n_shares=10, vector_length=1)
        assert effective_scale_with_dropouts(spec, 10) == pytest.approx(3.0)

    def test_partial_delivery_shrinks_scale(self):
        spec = NoiseShareSpec(scale=3.0, n_shares=10, vector_length=1)
        assert effective_scale_with_dropouts(spec, 5) == pytest.approx(3.0 * np.sqrt(0.5))

    def test_zero_delivery(self):
        spec = NoiseShareSpec(scale=3.0, n_shares=10, vector_length=1)
        assert effective_scale_with_dropouts(spec, 0) == 0.0

    def test_rejects_invalid_counts(self):
        spec = NoiseShareSpec(scale=1.0, n_shares=4, vector_length=1)
        with pytest.raises(PrivacyError):
            effective_scale_with_dropouts(spec, 5)
        with pytest.raises(PrivacyError):
            effective_scale_with_dropouts(spec, -1)
