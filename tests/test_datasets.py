"""Tests of the dataset generators and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    CERConfig,
    GaussianClustersConfig,
    NUMEDConfig,
    available_datasets,
    claret_tumor_size,
    generate_cer_like,
    generate_constant_series,
    generate_gaussian_clusters,
    generate_numed_like,
    generate_two_level_series,
    dataset_size_parameter,
    load_dataset,
    load_dataset_for_population,
    register_dataset,
)
from repro.exceptions import DatasetError


class TestCER:
    def test_shapes_and_metadata(self):
        collection = generate_cer_like(n_households=20, n_days=2, seed=1)
        assert len(collection) == 20
        assert collection.series_length == 2 * 48
        archetypes = set(collection.labels("archetype"))
        assert archetypes.issubset({a.name for a in CERConfig().archetypes})

    def test_values_are_non_negative(self):
        collection = generate_cer_like(n_households=10, n_days=1, seed=2)
        assert collection.to_matrix().min() >= 0.0

    def test_reproducible_with_seed(self):
        a = generate_cer_like(n_households=5, n_days=1, seed=42)
        b = generate_cer_like(n_households=5, n_days=1, seed=42)
        assert np.array_equal(a.to_matrix(), b.to_matrix())

    def test_different_seeds_differ(self):
        a = generate_cer_like(n_households=5, n_days=1, seed=1)
        b = generate_cer_like(n_households=5, n_days=1, seed=2)
        assert not np.array_equal(a.to_matrix(), b.to_matrix())

    def test_archetypes_are_separable(self):
        # Households of different archetypes should differ more than households
        # of the same archetype on average - this is the cluster structure the
        # protocol is supposed to recover.
        collection = generate_cer_like(n_households=60, n_days=1, noise_std_kw=0.01, seed=3)
        matrix = collection.to_matrix()
        labels = np.array(collection.labels("archetype"))
        same, different = [], []
        for i in range(0, 40):
            for j in range(i + 1, 40):
                distance = np.linalg.norm(matrix[i] - matrix[j])
                (same if labels[i] == labels[j] else different).append(distance)
        assert np.mean(same) < np.mean(different)

    def test_weights_bias_archetype_mix(self):
        config = CERConfig(
            n_households=50, n_days=1, seed=0,
            archetype_weights=(1.0, 0.0, 0.0, 0.0, 0.0, 0.0),
        )
        collection = generate_cer_like(config)
        assert set(collection.labels("archetype")) == {"low_consumer"}

    def test_invalid_weights(self):
        with pytest.raises(DatasetError):
            CERConfig(archetype_weights=(1.0,))
        with pytest.raises(DatasetError):
            CERConfig(archetype_weights=(0.0,) * 6)

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(DatasetError):
            generate_cer_like(CERConfig(), n_households=3)


class TestNUMED:
    def test_shapes_and_metadata(self):
        collection = generate_numed_like(n_patients=15, n_weeks=20, seed=1)
        assert len(collection) == 15
        assert collection.series_length == 20
        assert all(label is not None for label in collection.labels("archetype"))

    def test_tumor_sizes_non_negative(self):
        collection = generate_numed_like(n_patients=10, seed=4)
        assert collection.to_matrix().min() >= 0.0

    def test_reproducible_with_seed(self):
        a = generate_numed_like(n_patients=5, seed=9)
        b = generate_numed_like(n_patients=5, seed=9)
        assert np.array_equal(a.to_matrix(), b.to_matrix())

    def test_responders_shrink_progressives_grow(self):
        collection = generate_numed_like(
            n_patients=80, n_weeks=20, noise_std_mm=0.0, seed=5
        )
        matrix = collection.to_matrix()
        labels = np.array(collection.labels("archetype"))
        responders = matrix[labels == "responder"]
        progressive = matrix[labels == "progressive"]
        if len(responders) and len(progressive):
            assert (responders[:, -1] < responders[:, 0]).mean() > 0.9
            assert (progressive[:, -1] > progressive[:, 0]).mean() > 0.9

    def test_claret_model_closed_form(self):
        times = np.array([0.0, 1.0, 2.0])
        sizes = claret_tumor_size(times, baseline_size=50.0, growth_rate=0.0,
                                  decay_rate=0.0, resistance_rate=0.0)
        assert np.allclose(sizes, 50.0)

    def test_claret_pure_growth(self):
        times = np.array([0.0, 10.0])
        sizes = claret_tumor_size(times, 10.0, growth_rate=0.1, decay_rate=0.0,
                                  resistance_rate=0.0)
        assert sizes[1] == pytest.approx(10.0 * np.exp(1.0))

    def test_claret_rejects_negative_times(self):
        with pytest.raises(DatasetError):
            claret_tumor_size(np.array([-1.0]), 10.0, 0.1, 0.1, 0.1)


class TestSynthetic:
    def test_gaussian_clusters_ground_truth(self):
        collection = generate_gaussian_clusters(
            n_series=30, series_length=10, n_clusters=3, seed=1
        )
        labels = collection.labels("cluster")
        assert set(labels) == {0, 1, 2}

    def test_gaussian_cluster_separation_increases_with_parameter(self):
        near = generate_gaussian_clusters(n_series=40, n_clusters=2, separation=0.1, seed=2)
        far = generate_gaussian_clusters(n_series=40, n_clusters=2, separation=5.0, seed=2)
        assert far.to_matrix().std() > near.to_matrix().std()

    def test_gaussian_rejects_more_clusters_than_series(self):
        with pytest.raises(DatasetError):
            GaussianClustersConfig(n_series=3, n_clusters=5)

    def test_constant_series(self):
        collection = generate_constant_series(4, 6, value=2.0)
        assert np.allclose(collection.to_matrix(), 2.0)

    def test_two_level_series(self):
        collection = generate_two_level_series(10, 4, low=0.0, high=1.0, seed=3)
        matrix = collection.to_matrix()
        assert set(np.unique(matrix)) == {0.0, 1.0}
        labels = np.array(collection.labels("cluster"))
        assert set(labels) == {0, 1}

    def test_two_level_rejects_bad_levels(self):
        with pytest.raises(DatasetError):
            generate_two_level_series(10, 4, low=1.0, high=0.0)


class TestRegistry:
    def test_builtin_datasets_registered(self):
        assert {"cer", "numed", "gaussian"}.issubset(available_datasets())

    def test_load_dataset_by_name(self):
        collection = load_dataset("gaussian", n_series=10, series_length=8, n_clusters=2)
        assert len(collection) == 10

    def test_load_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("does-not-exist")

    def test_register_rejects_duplicates(self):
        with pytest.raises(DatasetError):
            register_dataset("cer", generate_cer_like)

    def test_register_custom_and_overwrite(self):
        register_dataset("custom-test", lambda **kw: generate_constant_series(3, 3),
                         overwrite=True)
        assert len(load_dataset("custom-test")) == 3
        register_dataset("custom-test", lambda **kw: generate_constant_series(4, 3),
                         overwrite=True)
        assert len(load_dataset("custom-test")) == 4


class TestPopulationLoading:
    """load_dataset_for_population: the one place population sizes are set."""

    def test_builtin_datasets_declare_their_size_parameter(self):
        assert dataset_size_parameter("cer") == "n_households"
        assert dataset_size_parameter("numed") == "n_patients"
        assert dataset_size_parameter("gaussian") == "n_series"

    @pytest.mark.parametrize("name", ["cer", "numed", "gaussian"])
    def test_population_is_exact(self, name):
        collection = load_dataset_for_population(name, 13, seed=4)
        assert len(collection) == 13

    def test_matches_the_historical_cli_loading(self):
        """Same generator keywords as the CLI's per-dataset branches used."""
        via_population = load_dataset_for_population("cer", 9, seed=2)
        direct = load_dataset("cer", n_households=9, n_days=1,
                              readings_per_day=24, seed=2)
        assert np.array_equal(via_population.to_matrix(), direct.to_matrix())

    def test_extra_parameters_pass_through(self):
        collection = load_dataset_for_population(
            "gaussian", 10, seed=1, n_clusters=2, noise_std=0.0,
        )
        assert len(collection) == 10
        assert set(collection.labels("cluster")) == {0, 1}

    def test_size_cannot_be_smuggled_in(self):
        with pytest.raises(DatasetError):
            load_dataset_for_population("gaussian", 10, n_series=99)

    def test_non_positive_population_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset_for_population("gaussian", 0)
        with pytest.raises(DatasetError):
            load_dataset_for_population("gaussian", -3)

    def test_dataset_without_size_parameter_rejected(self):
        register_dataset("fixed-size-test",
                         lambda **kw: generate_constant_series(3, 3),
                         overwrite=True)
        with pytest.raises(DatasetError):
            load_dataset_for_population("fixed-size-test", 3)

    def test_size_mismatch_is_detected(self):
        # A factory that ignores its size parameter is caught by the single
        # validation point rather than silently running a different population.
        register_dataset(
            "lying-size-test",
            lambda n_series=0, seed=0, **kw: generate_constant_series(5, 3),
            overwrite=True, size_parameter="n_series",
        )
        with pytest.raises(DatasetError, match="produced 5 series"):
            load_dataset_for_population("lying-size-test", 7)
