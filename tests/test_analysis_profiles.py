"""Tests of the profile-search analysis (the "Bob" use-case)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import closest_profiles, match_subsequence, profile_recall
from repro.exceptions import AnalysisError


@pytest.fixture(scope="module")
def profiles():
    grid = np.linspace(0, 2 * np.pi, 48)
    return np.vstack([
        np.sin(grid) * 0.5 + 0.5,          # profile 0: one slow bump
        np.sin(3 * grid) * 0.5 + 0.5,      # profile 1: three bumps
        np.full(48, 0.2),                  # profile 2: flat low
    ])


class TestMatchSubsequence:
    def test_exact_subsequence_is_found(self, profiles):
        query = profiles[1][10:25]
        matches = match_subsequence(profiles, query)
        assert matches[0].profile_index == 1
        assert matches[0].distance == pytest.approx(0.0, abs=1e-9)
        assert matches[0].offset == 10

    def test_flat_query_matches_flat_profile(self, profiles):
        query = np.full(12, 0.2)
        matches = match_subsequence(profiles, query)
        assert matches[0].profile_index == 2

    def test_all_profiles_ranked(self, profiles):
        matches = match_subsequence(profiles, profiles[0][:20])
        assert len(matches) == 3
        assert [m.distance for m in matches] == sorted(m.distance for m in matches)

    def test_dtw_metric_supported(self, profiles):
        query = profiles[0][5:30]
        matches = match_subsequence(profiles, query, metric="dtw")
        assert matches[0].profile_index == 0

    def test_normalised_matching_ignores_level(self, profiles):
        query = profiles[0][10:30] + 10.0  # same shape, shifted level
        raw = match_subsequence(profiles, query)
        normalised = match_subsequence(profiles, query, normalize_query=True)
        assert normalised[0].profile_index == 0
        assert raw[0].distance > normalised[0].distance

    def test_query_longer_than_profile_rejected(self, profiles):
        with pytest.raises(AnalysisError):
            match_subsequence(profiles, np.zeros(100))

    def test_unknown_metric_rejected(self, profiles):
        with pytest.raises(AnalysisError):
            match_subsequence(profiles, profiles[0][:10], metric="hamming")

    def test_match_as_dict(self, profiles):
        match = match_subsequence(profiles, profiles[0][:10])[0]
        assert set(match.as_dict()) == {"profile_index", "distance", "offset"}


class TestClosestProfiles:
    def test_top_k_limits_results(self, profiles):
        top = closest_profiles(profiles, profiles[0][:15], top=2)
        assert len(top) == 2

    def test_top_must_be_positive(self, profiles):
        with pytest.raises(Exception):
            closest_profiles(profiles, profiles[0][:15], top=0)


class TestProfileRecall:
    def test_identical_profiles_have_full_recall(self, profiles, fresh_rng):
        queries = np.vstack([
            profiles[int(fresh_rng.integers(0, 3))][5:25] for _ in range(10)
        ])
        assert profile_recall(profiles, profiles, queries) == 1.0

    def test_mild_noise_keeps_recall_high(self, profiles, fresh_rng):
        noisy = profiles + fresh_rng.normal(0, 0.02, size=profiles.shape)
        queries = np.vstack([profiles[i % 3][8:28] for i in range(9)])
        assert profile_recall(noisy, profiles, queries) >= 2 / 3

    def test_top_parameter_never_decreases_recall(self, profiles, fresh_rng):
        noisy = profiles + fresh_rng.normal(0, 0.3, size=profiles.shape)
        queries = np.vstack([profiles[i % 3][0:20] for i in range(6)])
        top1 = profile_recall(noisy, profiles, queries, top=1)
        top3 = profile_recall(noisy, profiles, queries, top=3)
        assert top3 >= top1
        assert top3 == 1.0  # with k=3 profiles, top-3 always contains the answer

    def test_shape_mismatch_rejected(self, profiles):
        with pytest.raises(AnalysisError):
            profile_recall(profiles, profiles[:2], np.zeros((2, 10)))
