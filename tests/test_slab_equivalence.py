"""End-to-end slab-vs-object equivalence and sampled-crypto extrapolation.

The acceptance contract of the slab engine: with sampling fraction 1.0 and
one shard on the plain backend, ``engine="slab"`` is bit-identical to
``engine="object"``; below 1.0 it reports population cost totals with
bootstrap confidence intervals; at 0.0 it falls back to the symbolic
workload model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ChiaroscuroConfig
from repro.core.runner import run_chiaroscuro
from repro.datasets import load_dataset_for_population
from repro.exceptions import ConfigurationError


def make_config(n: int, **runtime) -> ChiaroscuroConfig:
    return ChiaroscuroConfig().with_overrides(
        simulation={"n_participants": n, "seed": 5},
        kmeans={"n_clusters": 3, "max_iterations": 3},
        privacy={"epsilon": 4.0, "noise_shares": 12},
        gossip={"cycles_per_aggregation": 4},
        crypto={"threshold": 2, "n_key_shares": 4},
        runtime={"engine": "slab", **runtime},
    )


@pytest.fixture(scope="module")
def collection():
    return load_dataset_for_population("gaussian", 60, 5, n_clusters=3,
                                       noise_std=0.05)


class TestFullSamplingIsObjectMode:
    def test_bit_identical_results(self, collection):
        slab = run_chiaroscuro(collection, make_config(60))
        config = make_config(60).with_overrides(runtime={"engine": "object"})
        obj = run_chiaroscuro(collection, config)
        assert np.array_equal(slab.profiles, obj.profiles)
        assert np.array_equal(slab.assignments, obj.assignments)
        assert slab.n_iterations == obj.n_iterations
        assert slab.epsilon_spent == obj.epsilon_spent
        assert slab.costs.messages_sent == obj.costs.messages_sent
        assert slab.costs.bytes_sent == obj.costs.bytes_sent

    def test_measured_extrapolation_attached(self, collection):
        result = run_chiaroscuro(collection, make_config(60))
        extrapolated = result.costs.extrapolated
        assert extrapolated is not None
        assert extrapolated["method"] == "measured"
        assert extrapolated["population"] == 60
        totals = extrapolated["totals"]
        # Full sampling: intervals are degenerate, totals match the counters.
        assert totals["encryptions"]["estimate"] == result.costs.encryptions
        assert totals["encryptions"]["low"] == totals["encryptions"]["high"]
        assert result.metadata["engine"]["crypto_sample_fraction"] == 1.0


class TestSampledCrypto:
    @pytest.fixture(scope="class")
    def sampled(self, collection):
        return run_chiaroscuro(
            collection, make_config(60, crypto_sample_fraction=0.25)
        )

    def test_extrapolated_totals_with_error_bars(self, sampled):
        extrapolated = sampled.costs.extrapolated
        assert extrapolated["method"] == "sampled"
        assert extrapolated["population"] == 60
        assert 0 < extrapolated["sample_size"] < 60
        for key in ("encryptions", "partial_decryptions", "combinations",
                    "messages_sent", "bytes_sent"):
            entry = extrapolated["totals"][key]
            assert entry["low"] <= entry["estimate"] <= entry["high"]
            assert entry["estimate"] > 0

    def test_phase_split_extrapolates_and_sums(self, sampled):
        """The committed BENCH profile prices the sampled counters, so the
        extrapolated totals carry the offline/online split — and the two
        phases sum to the extrapolated crypto seconds."""
        totals = sampled.costs.extrapolated["totals"]
        assert totals["online_seconds"]["estimate"] > 0
        assert totals["offline_seconds"]["estimate"] >= 0
        assert totals["crypto_seconds"]["estimate"] == pytest.approx(
            totals["online_seconds"]["estimate"]
            + totals["offline_seconds"]["estimate"], rel=1e-6,
        )

    def test_counters_hold_the_sample_only(self, sampled):
        # Executed crypto covers only the sampled sub-run, scaled copies
        # live in the extrapolation.
        assert 0 < sampled.costs.encryptions
        assert (sampled.costs.encryptions
                < sampled.costs.extrapolated["totals"]["encryptions"]["estimate"])

    def test_engine_metadata(self, sampled):
        engine = sampled.metadata["engine"]
        assert engine["name"] == "slab"
        assert engine["population"] == 60
        assert engine["sample_size"] == engine["crypto_sample_fraction"] * 60

    def test_quality_is_reasonable(self, sampled, collection):
        # The bulk slab estimate still clusters the gaussian blobs.
        assert sampled.profiles.shape[0] == 3
        assert np.isfinite(sampled.inertia)
        assert len(np.unique(sampled.assignments)) > 1

    def test_shard_count_does_not_change_results(self, collection, sampled):
        three = run_chiaroscuro(
            collection,
            make_config(60, crypto_sample_fraction=0.25, slab_shards=3),
        )
        assert np.array_equal(three.profiles, sampled.profiles)
        assert np.array_equal(three.assignments, sampled.assignments)


class TestLabelAgreementStream:
    def test_every_iteration_records_label_agreement(self, collection):
        """The bulk slab log carries the reference-free convergence signal:
        the fraction of nodes whose cluster label survived from the
        previous iteration, 1.0 by convention on the first.  (At sampling
        fraction 1.0 the slab engine delegates to the object engine, so
        the stream belongs to the sampled bulk path.)"""
        result = run_chiaroscuro(
            collection, make_config(60, crypto_sample_fraction=0.25)
        )
        series = [record.costs["label_agreement"] for record in result.log]
        assert len(series) == result.n_iterations
        assert series[0] == 1.0
        assert all(0.0 <= value <= 1.0 for value in series)

    def test_agreement_flows_into_iteration_costs(self, collection):
        result = run_chiaroscuro(
            collection, make_config(60, crypto_sample_fraction=0.25)
        )
        for entry in result.costs.iteration_costs:
            assert "label_agreement" in entry


class TestModelledFallback:
    def test_zero_fraction_uses_workload_model(self, collection):
        result = run_chiaroscuro(
            collection, make_config(60, crypto_sample_fraction=0.0)
        )
        extrapolated = result.costs.extrapolated
        assert extrapolated["method"] == "modelled"
        assert extrapolated["sample_size"] == 0
        assert extrapolated["totals"]["encryptions"]["estimate"] > 0
        # Nothing was executed.
        assert result.costs.encryptions == 0


class TestConfigGuards:
    def test_slab_requires_cycle_mode(self):
        with pytest.raises(ConfigurationError):
            ChiaroscuroConfig().with_overrides(
                runtime={"engine": "slab", "mode": "live"}
            )


class TestBulkFaults:
    """Message loss and frame corruption in the sampled bulk path.

    Both used to be rejected at config time; the slab engine now models
    them directly on the pair exchanges (lost/corrupted request drops the
    pair, lost/corrupted reply leaves a half-exchange)."""

    def faulty_config(self, **overrides):
        return make_config(
            60, crypto_sample_fraction=0.25
        ).with_overrides(
            gossip={"drop_probability": 0.1},
            network={"corruption_rate": 0.05},
            **overrides,
        )

    def test_sampled_run_accepts_message_loss(self, collection):
        result = run_chiaroscuro(collection, self.faulty_config())
        engine = result.metadata["engine"]
        assert engine["bulk_dropped_frames"] > 0
        assert engine["bulk_corrupted_frames"] > 0
        assert np.isfinite(result.inertia)

    def test_faults_are_deterministic(self, collection):
        first = run_chiaroscuro(collection, self.faulty_config())
        second = run_chiaroscuro(collection, self.faulty_config())
        assert np.array_equal(first.profiles, second.profiles)
        assert first.costs.messages_sent == second.costs.messages_sent
        assert (first.metadata["engine"]["bulk_dropped_frames"]
                == second.metadata["engine"]["bulk_dropped_frames"])

    def test_faults_reduce_traffic(self, collection):
        clean = run_chiaroscuro(
            collection, make_config(60, crypto_sample_fraction=0.25)
        )
        faulty = run_chiaroscuro(collection, self.faulty_config())
        # Dropped requests suppress their replies, so fewer frames fly.
        assert faulty.costs.messages_sent < clean.costs.messages_sent

    def test_fault_counters_stream_into_iteration_costs(self, collection):
        result = run_chiaroscuro(collection, self.faulty_config())
        for entry in result.costs.iteration_costs:
            assert "dropped_frames" in entry
            assert "corrupted_frames" in entry

    def test_shard_count_invariant_under_faults(self, collection):
        one = run_chiaroscuro(collection, self.faulty_config())
        three = run_chiaroscuro(
            collection, self.faulty_config(runtime={"slab_shards": 3})
        )
        assert np.array_equal(one.profiles, three.profiles)
        assert one.costs.messages_sent == three.costs.messages_sent


class TestSampledChurn:
    """The sampled crypto sub-run sees churn (it used to pin the sample
    population static, biasing the extrapolated cost bars downward)."""

    def test_sample_metadata_records_churn(self, collection):
        result = run_chiaroscuro(
            collection,
            make_config(60, crypto_sample_fraction=0.25).with_overrides(
                simulation={"churn_rate": 0.1, "rejoin_rate": 0.5},
            ),
        )
        assert result.costs.extrapolated["method"] == "sampled"
        assert result.costs.encryptions > 0

    def test_bars_bracket_full_fraction_reference(self, collection):
        churn = {"churn_rate": 0.1, "rejoin_rate": 0.5}
        sampled = run_chiaroscuro(
            collection,
            make_config(60, crypto_sample_fraction=0.5).with_overrides(
                simulation=churn,
            ),
        )
        full = run_chiaroscuro(
            collection, make_config(60).with_overrides(simulation=churn)
        )
        totals = sampled.costs.extrapolated["totals"]
        for key in ("encryptions", "partial_decryptions", "combinations"):
            entry = totals[key]
            reference = getattr(full.costs, key)
            assert entry["low"] <= reference <= entry["high"]
