"""End-to-end slab-vs-object equivalence and sampled-crypto extrapolation.

The acceptance contract of the slab engine: with sampling fraction 1.0 and
one shard on the plain backend, ``engine="slab"`` is bit-identical to
``engine="object"``; below 1.0 it reports population cost totals with
bootstrap confidence intervals; at 0.0 it falls back to the symbolic
workload model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ChiaroscuroConfig
from repro.core.runner import run_chiaroscuro
from repro.datasets import load_dataset_for_population
from repro.exceptions import ConfigurationError


def make_config(n: int, **runtime) -> ChiaroscuroConfig:
    return ChiaroscuroConfig().with_overrides(
        simulation={"n_participants": n, "seed": 5},
        kmeans={"n_clusters": 3, "max_iterations": 3},
        privacy={"epsilon": 4.0, "noise_shares": 12},
        gossip={"cycles_per_aggregation": 4},
        crypto={"threshold": 2, "n_key_shares": 4},
        runtime={"engine": "slab", **runtime},
    )


@pytest.fixture(scope="module")
def collection():
    return load_dataset_for_population("gaussian", 60, 5, n_clusters=3,
                                       noise_std=0.05)


class TestFullSamplingIsObjectMode:
    def test_bit_identical_results(self, collection):
        slab = run_chiaroscuro(collection, make_config(60))
        config = make_config(60).with_overrides(runtime={"engine": "object"})
        obj = run_chiaroscuro(collection, config)
        assert np.array_equal(slab.profiles, obj.profiles)
        assert np.array_equal(slab.assignments, obj.assignments)
        assert slab.n_iterations == obj.n_iterations
        assert slab.epsilon_spent == obj.epsilon_spent
        assert slab.costs.messages_sent == obj.costs.messages_sent
        assert slab.costs.bytes_sent == obj.costs.bytes_sent

    def test_measured_extrapolation_attached(self, collection):
        result = run_chiaroscuro(collection, make_config(60))
        extrapolated = result.costs.extrapolated
        assert extrapolated is not None
        assert extrapolated["method"] == "measured"
        assert extrapolated["population"] == 60
        totals = extrapolated["totals"]
        # Full sampling: intervals are degenerate, totals match the counters.
        assert totals["encryptions"]["estimate"] == result.costs.encryptions
        assert totals["encryptions"]["low"] == totals["encryptions"]["high"]
        assert result.metadata["engine"]["crypto_sample_fraction"] == 1.0


class TestSampledCrypto:
    @pytest.fixture(scope="class")
    def sampled(self, collection):
        return run_chiaroscuro(
            collection, make_config(60, crypto_sample_fraction=0.25)
        )

    def test_extrapolated_totals_with_error_bars(self, sampled):
        extrapolated = sampled.costs.extrapolated
        assert extrapolated["method"] == "sampled"
        assert extrapolated["population"] == 60
        assert 0 < extrapolated["sample_size"] < 60
        for key in ("encryptions", "partial_decryptions", "combinations",
                    "messages_sent", "bytes_sent"):
            entry = extrapolated["totals"][key]
            assert entry["low"] <= entry["estimate"] <= entry["high"]
            assert entry["estimate"] > 0

    def test_phase_split_extrapolates_and_sums(self, sampled):
        """The committed BENCH profile prices the sampled counters, so the
        extrapolated totals carry the offline/online split — and the two
        phases sum to the extrapolated crypto seconds."""
        totals = sampled.costs.extrapolated["totals"]
        assert totals["online_seconds"]["estimate"] > 0
        assert totals["offline_seconds"]["estimate"] >= 0
        assert totals["crypto_seconds"]["estimate"] == pytest.approx(
            totals["online_seconds"]["estimate"]
            + totals["offline_seconds"]["estimate"], rel=1e-6,
        )

    def test_counters_hold_the_sample_only(self, sampled):
        # Executed crypto covers only the sampled sub-run, scaled copies
        # live in the extrapolation.
        assert 0 < sampled.costs.encryptions
        assert (sampled.costs.encryptions
                < sampled.costs.extrapolated["totals"]["encryptions"]["estimate"])

    def test_engine_metadata(self, sampled):
        engine = sampled.metadata["engine"]
        assert engine["name"] == "slab"
        assert engine["population"] == 60
        assert engine["sample_size"] == engine["crypto_sample_fraction"] * 60

    def test_quality_is_reasonable(self, sampled, collection):
        # The bulk slab estimate still clusters the gaussian blobs.
        assert sampled.profiles.shape[0] == 3
        assert np.isfinite(sampled.inertia)
        assert len(np.unique(sampled.assignments)) > 1

    def test_shard_count_does_not_change_results(self, collection, sampled):
        three = run_chiaroscuro(
            collection,
            make_config(60, crypto_sample_fraction=0.25, slab_shards=3),
        )
        assert np.array_equal(three.profiles, sampled.profiles)
        assert np.array_equal(three.assignments, sampled.assignments)


class TestLabelAgreementStream:
    def test_every_iteration_records_label_agreement(self, collection):
        """The bulk slab log carries the reference-free convergence signal:
        the fraction of nodes whose cluster label survived from the
        previous iteration, 1.0 by convention on the first.  (At sampling
        fraction 1.0 the slab engine delegates to the object engine, so
        the stream belongs to the sampled bulk path.)"""
        result = run_chiaroscuro(
            collection, make_config(60, crypto_sample_fraction=0.25)
        )
        series = [record.costs["label_agreement"] for record in result.log]
        assert len(series) == result.n_iterations
        assert series[0] == 1.0
        assert all(0.0 <= value <= 1.0 for value in series)

    def test_agreement_flows_into_iteration_costs(self, collection):
        result = run_chiaroscuro(
            collection, make_config(60, crypto_sample_fraction=0.25)
        )
        for entry in result.costs.iteration_costs:
            assert "label_agreement" in entry


class TestModelledFallback:
    def test_zero_fraction_uses_workload_model(self, collection):
        result = run_chiaroscuro(
            collection, make_config(60, crypto_sample_fraction=0.0)
        )
        extrapolated = result.costs.extrapolated
        assert extrapolated["method"] == "modelled"
        assert extrapolated["sample_size"] == 0
        assert extrapolated["totals"]["encryptions"]["estimate"] > 0
        # Nothing was executed.
        assert result.costs.encryptions == 0


class TestConfigGuards:
    def test_slab_requires_cycle_mode(self):
        with pytest.raises(ConfigurationError):
            ChiaroscuroConfig().with_overrides(
                runtime={"engine": "slab", "mode": "live"}
            )

    def test_sampling_rejects_message_loss(self):
        with pytest.raises(ConfigurationError):
            ChiaroscuroConfig().with_overrides(
                runtime={"engine": "slab", "crypto_sample_fraction": 0.5},
                gossip={"drop_probability": 0.1},
            )
