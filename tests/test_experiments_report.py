"""Tests of the cross-scenario comparison reports."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_markdown_table
from repro.exceptions import AnalysisError
from repro.experiments import (
    ExperimentSpec,
    ResultStore,
    comparison_rows,
    format_report,
    run_experiment,
    scenario_rows,
)
from repro.experiments.report import iteration_cost_rows


@pytest.fixture(scope="module")
def executed():
    """One executed two-scenario, two-repeat experiment in a module store."""
    import tempfile
    from pathlib import Path

    spec = ExperimentSpec(
        name="report-unit",
        dataset="gaussian",
        dataset_params={"n_clusters": 2, "noise_std": 0.05},
        participants=14,
        base={
            "kmeans": {"n_clusters": 2, "max_iterations": 2},
            "privacy": {"epsilon": 4.0, "noise_shares": 6},
            "gossip": {"cycles_per_aggregation": 3},
            "crypto": {"threshold": 2, "n_key_shares": 3},
        },
        sweep={"privacy.epsilon": [2.0, 4.0]},
        repeats=2,
        base_seed=1,
        metrics={"label_key": "cluster"},
    )
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "results.jsonl")
        progress = run_experiment(spec, store, jobs=2)
        assert progress.failed == 0
        yield spec, store


class TestScenarioRows:
    def test_one_row_per_cell_in_expansion_order(self, executed):
        spec, store = executed
        rows = scenario_rows(spec, store)
        assert [row["cell"] for row in rows] == [0, 1, 2, 3]
        assert [row["privacy.epsilon"] for row in rows] == [2.0, 2.0, 4.0, 4.0]
        assert [row["seed"] for row in rows] == [1, 2, 1, 2]

    def test_rows_carry_quality_cost_and_timing(self, executed):
        spec, store = executed
        row = scenario_rows(spec, store)[0]
        assert row["relative_inertia"] > 0
        assert row["bytes_sent"] > 0
        assert row["wall_clock_seconds"] > 0
        assert len(row["iteration_costs"]) >= 1
        assert row["profiles_digest"]

    def test_incomplete_cells_are_absent(self, executed):
        spec, _ = executed
        empty = ResultStore("/nonexistent/never-written.jsonl")
        assert scenario_rows(spec, empty) == []

    def test_rows_carry_the_phase_split(self, executed):
        """The committed BENCH profile prices every stored run, so report
        rows surface the offline/online crypto-second split as columns."""
        spec, store = executed
        for row in scenario_rows(spec, store):
            assert row["online_seconds"] > 0
            assert row["offline_seconds"] >= 0


class TestComparisonRows:
    def test_one_row_per_scenario_with_run_counts(self, executed):
        spec, store = executed
        rows = comparison_rows(spec, store)
        assert len(rows) == 2
        assert [row["privacy.epsilon"] for row in rows] == [2.0, 4.0]
        assert all(row["runs"] == 2 for row in rows)

    def test_repeats_aggregate_by_mean(self, executed):
        spec, store = executed
        flat = scenario_rows(spec, store)
        rows = comparison_rows(spec, store, metrics=["inertia"])
        expected = (flat[0]["inertia"] + flat[1]["inertia"]) / 2
        assert rows[0]["inertia"] == pytest.approx(expected)

    def test_boolean_repeats_aggregate_to_agreement_or_fraction(self):
        from repro.experiments.report import _aggregate

        assert _aggregate([True, True]) is True
        assert _aggregate([False, False]) is False
        assert _aggregate([True, False, False]) == pytest.approx(1 / 3)
        assert _aggregate([True]) is True

    def test_single_run_values_pass_through_unchanged(self, executed):
        spec, store = executed
        solo = ExperimentSpec.from_dict({
            **spec.to_dict(), "repeats": 1, "base_seed": 1,
            "sweep": {"privacy.epsilon": [2.0]},
        })
        flat = scenario_rows(solo, store)
        rows = comparison_rows(solo, store)
        # Mean-of-one must not perturb values or types (ints stay ints).
        assert rows[0]["n_iterations"] == flat[0]["n_iterations"]
        assert isinstance(rows[0]["n_iterations"], type(flat[0]["n_iterations"]))
        # No repeats anywhere ⇒ no spread columns sneak in.
        assert not any(key.endswith((".std", ".min", ".max")) for key in rows[0])

    def test_repeats_gain_spread_columns(self, executed):
        spec, store = executed
        flat = scenario_rows(spec, store)
        rows = comparison_rows(spec, store, metrics=["inertia"])
        values = [flat[0]["inertia"], flat[1]["inertia"]]
        assert rows[0]["inertia.min"] == min(values)
        assert rows[0]["inertia.max"] == max(values)
        mean = sum(values) / 2
        expected_std = (sum((v - mean) ** 2 for v in values) / 1) ** 0.5
        assert rows[0]["inertia.std"] == pytest.approx(expected_std)
        assert rows[0]["inertia.min"] <= rows[0]["inertia"] <= rows[0]["inertia.max"]

    def test_spread_can_be_disabled(self, executed):
        spec, store = executed
        rows = comparison_rows(spec, store, metrics=["inertia"], spread=False)
        assert list(rows[0]) == ["scenario", "privacy.epsilon", "inertia", "runs"]


class TestIterationCosts:
    def test_per_iteration_byte_series(self, executed):
        spec, store = executed
        rows = iteration_cost_rows(spec, store)
        assert rows, "expected at least one iteration"
        assert rows[0]["iteration"] == 1
        labels = [key for key in rows[0] if key != "iteration"]
        assert labels == ["privacy.epsilon=2.0", "privacy.epsilon=4.0"]
        assert all(rows[0][label] > 0 for label in labels)


class TestFormatReport:
    def test_text_report_contains_both_tables(self, executed):
        spec, store = executed
        report = format_report(spec, store)
        assert "experiment: report-unit" in report
        assert "scenario comparison" in report
        assert "per-iteration network cost" in report
        assert "completed=4" in report

    def test_markdown_report(self, executed):
        spec, store = executed
        report = format_report(spec, store, markdown=True)
        assert report.startswith("# Experiment: report-unit")
        assert "| privacy.epsilon |" in report
        assert "| --- |" in report

    def test_empty_store_reports_gracefully(self, executed):
        spec, _ = executed
        report = format_report(spec, ResultStore("/nonexistent/never.jsonl"))
        assert "no completed cells" in report


class TestCrossStoreReport:
    def test_rows_interleave_scenario_major(self, executed):
        from repro.experiments import cross_store_rows

        spec, store = executed
        rows = cross_store_rows(spec, [("left", store), ("right", store)])
        # Two scenarios x two sources, the rows being diffed adjacent.
        assert [row["store"] for row in rows] == ["left", "right"] * 2
        assert [row["scenario"] for row in rows] == [0, 0, 1, 1]
        # Same store under both labels ⇒ the aligned cells agree exactly.
        assert rows[0]["inertia"] == rows[1]["inertia"]
        assert rows[0]["privacy.epsilon"] == rows[1]["privacy.epsilon"] == 2.0

    def test_missing_cells_in_one_store_are_skipped(self, executed):
        from repro.experiments import cross_store_rows

        spec, store = executed
        empty = ResultStore("/nonexistent/never.jsonl")
        rows = cross_store_rows(spec, [("full", store), ("empty", empty)])
        assert [row["store"] for row in rows] == ["full", "full"]

    def test_format_cross_report_renders_both_sources(self, executed):
        from repro.experiments import format_cross_report

        spec, store = executed
        report = format_cross_report(spec, [("a", store), ("b", store)])
        assert "experiment: report-unit (cross-store)" in report
        assert "stores: a, b" in report
        assert "cross-store scenario comparison" in report

    def test_empty_sources_report_gracefully(self, executed):
        from repro.experiments import format_cross_report

        spec, _ = executed
        empty = ResultStore("/nonexistent/never.jsonl")
        report = format_cross_report(spec, [("a", empty)])
        assert "no completed cells" in report


class TestMarkdownTable:
    def test_rows_render_as_pipes(self):
        text = format_markdown_table(
            [{"a": 1, "b": 0.5}, {"a": 2, "b": 1.5}], title="t"
        )
        lines = text.splitlines()
        assert lines[0] == "### t"
        assert lines[2] == "| a | b |"
        assert lines[3] == "| --- | --- |"
        assert lines[4] == "| 1 | 0.5000 |"

    def test_pipes_in_cells_are_escaped(self):
        text = format_markdown_table([{"a": "x|y"}])
        assert "x\\|y" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(AnalysisError):
            format_markdown_table([])
