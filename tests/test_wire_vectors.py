"""Golden wire vectors: byte-for-byte regression of the frame format.

``tests/vectors/wire_v1.json`` holds the serialized frame of one
deterministically-built message per frame type, covering the plain,
Damgård–Jurik and packed payload styles.  The tests assert that today's
encoder reproduces every committed frame byte for byte and that every
committed frame still decodes to the original message — any codec change
that breaks either is an incompatible wire change and must come with a
``WIRE_VERSION`` bump and a *new* vector file (committed vector files are
immutable; CI rejects modifications to existing ``wire_v*.json``).

Regenerate (only ever for a NEW version)::

    PYTHONPATH=src python tests/test_wire_vectors.py vectors/wire_v<N>.json
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.crypto.backends import EncryptedVector, PartialVectorDecryption
from repro.crypto.wire import WIRE_VERSION
from repro.gossip.encrypted_sum import EncryptedEstimate
from repro.gossip.messages import (
    DecryptRequest,
    DecryptResponse,
    DiptychExchange,
    DiptychReply,
    EncryptedAvgReply,
    EncryptedAvgRequest,
    FRAME_MAGIC,
    GossipAvgReply,
    GossipAvgRequest,
    KeyAnnouncement,
    MembershipAnnouncement,
    MESSAGE_TYPES,
    PushSumMessage,
    deserialize,
)

VECTOR_FILE = Path(__file__).parent / "vectors" / f"wire_v{WIRE_VERSION}.json"

# A fixed 384-bit "ciphertext modulus" stand-in for the Damgård–Jurik
# payload style.  The wire format is oblivious to where the integers come
# from (encryption randomness is not reproducible across runs), so the
# golden payloads are deterministic pseudo-ciphertexts below this modulus.
_DJ_MODULUS = (1 << 383) + 1405695061

_DJ_WIDTH = 48  # ceil(384 / 8)
_PLAIN_WIDTH = 8  # 64-bit simulated plaintext space
_PACKED_WIDTH = 64  # 512-bit packed plaintexts


def _pseudo_ciphertexts(count: int, modulus: int, salt: int) -> tuple[int, ...]:
    """Deterministic pseudo-ciphertexts: pow(3, salt + i, modulus)."""
    return tuple(pow(3, 1_000_003 * salt + 17 * i + 5, modulus) for i in range(count))


def _plain_vector(count: int, salt: int) -> EncryptedVector:
    return EncryptedVector(
        payload=_pseudo_ciphertexts(count, 1 << 62, salt),
        backend_name="plain", length=count, packed=False, weight=1,
    )


def _dj_vector(count: int, salt: int, weight: int = 1) -> EncryptedVector:
    return EncryptedVector(
        payload=_pseudo_ciphertexts(count, _DJ_MODULUS, salt),
        backend_name="damgard_jurik", length=count, packed=False, weight=weight,
    )


def _packed_vector(length: int, slots: int, salt: int, weight: int) -> EncryptedVector:
    count = -(-length // slots)
    return EncryptedVector(
        payload=_pseudo_ciphertexts(count, 1 << 511, salt),
        backend_name="plain", length=length, packed=True, weight=weight,
    )


def golden_messages() -> list[tuple[str, object]]:
    """One deterministic message per frame type (three payload styles)."""
    packed_weight = (1 << 66) + 123_456_789  # > 2**64: exercises the bigint path
    return [
        ("encrypted_avg_request_plain", EncryptedAvgRequest(
            estimate=EncryptedEstimate(vector=_plain_vector(5, salt=1), halvings=0),
            ciphertext_bytes=_PLAIN_WIDTH,
        )),
        ("encrypted_avg_reply_dj", EncryptedAvgReply(
            estimate=EncryptedEstimate(
                vector=_dj_vector(4, salt=2, weight=8), halvings=3
            ),
            ciphertext_bytes=_DJ_WIDTH,
        )),
        ("diptych_exchange_packed", DiptychExchange(
            iteration=4,
            data_estimates=(
                EncryptedEstimate(_packed_vector(13, 7, salt=3, weight=packed_weight), 5),
                EncryptedEstimate(_packed_vector(13, 7, salt=4, weight=packed_weight), 5),
            ),
            noise_estimates=(
                EncryptedEstimate(_packed_vector(13, 7, salt=5, weight=packed_weight), 5),
                EncryptedEstimate(_packed_vector(13, 7, salt=6, weight=packed_weight), 5),
            ),
            ciphertext_bytes=_PACKED_WIDTH,
        )),
        ("diptych_reply_dj", DiptychReply(
            iteration=2,
            data_estimates=(EncryptedEstimate(_dj_vector(3, salt=7, weight=4), 2),),
            noise_estimates=(EncryptedEstimate(_dj_vector(3, salt=8, weight=4), 2),),
            ciphertext_bytes=_DJ_WIDTH,
        )),
        ("decrypt_request_packed", DecryptRequest(
            estimates=(
                EncryptedEstimate(_packed_vector(9, 7, salt=9, weight=1 << 20), 11),
                EncryptedEstimate(_packed_vector(9, 7, salt=10, weight=1 << 20), 11),
            ),
            ciphertext_bytes=_PACKED_WIDTH,
        )),
        ("decrypt_response_dj", DecryptResponse(
            partials=(
                PartialVectorDecryption(
                    share_index=1, payload=_pseudo_ciphertexts(3, _DJ_MODULUS, 11),
                    backend_name="damgard_jurik", length=3, packed=False, weight=2,
                ),
                PartialVectorDecryption(
                    share_index=3, payload=_pseudo_ciphertexts(3, _DJ_MODULUS, 12),
                    backend_name="damgard_jurik", length=3, packed=False, weight=2,
                ),
            ),
            ciphertext_bytes=_DJ_WIDTH,
        )),
        ("gossip_avg_request", GossipAvgRequest(
            values=(0.0, 1.0, -2.5, 3.141592653589793, 1e-300),
        )),
        ("gossip_avg_reply", GossipAvgReply(values=(42.0, -0.125))),
        ("push_sum", PushSumMessage(values=(0.5, 0.25, -1.75), weight=0.5)),
        ("membership_announcement", MembershipAnnouncement(
            node_id=1337, online=True, cycle=90,
        )),
        ("key_announcement", KeyAnnouncement(
            modulus=(1 << 192) + 133_333_333, degree=2, threshold=3, n_shares=8,
        )),
    ]


def _load_vectors() -> dict:
    with VECTOR_FILE.open() as handle:
        return json.load(handle)


class TestGoldenVectors:
    def test_vector_file_matches_wire_version(self):
        vectors = _load_vectors()
        assert vectors["version"] == WIRE_VERSION

    def test_every_message_type_is_covered(self):
        vectors = _load_vectors()
        covered = {entry["type"] for entry in vectors["vectors"]}
        # BatchEnvelope postdates wire_v1.json; its golden vectors live in
        # tests/vectors/wire_batch_v1.json (see test_wire_batch_vectors.py).
        expected = {cls.__name__ for cls in MESSAGE_TYPES.values()}
        expected -= {"BatchEnvelope"}
        assert covered == expected

    @pytest.mark.parametrize("name,message", golden_messages(),
                             ids=[name for name, _ in golden_messages()])
    def test_serialization_is_byte_stable(self, name, message):
        vectors = {entry["name"]: entry for entry in _load_vectors()["vectors"]}
        assert name in vectors, f"no committed vector for {name}; regenerate"
        entry = vectors[name]
        frame = message.serialize()
        assert frame.hex() == entry["frame_hex"], (
            f"frame bytes of {name} changed: this is an incompatible wire "
            "change — bump WIRE_VERSION and commit a new vector file"
        )
        assert entry["type"] == type(message).__name__

    @pytest.mark.parametrize("name,message", golden_messages(),
                             ids=[name for name, _ in golden_messages()])
    def test_committed_frames_decode_unchanged(self, name, message):
        vectors = {entry["name"]: entry for entry in _load_vectors()["vectors"]}
        frame = bytes.fromhex(vectors[name]["frame_hex"])
        assert frame[:2] == FRAME_MAGIC
        assert frame[2] == WIRE_VERSION
        assert deserialize(frame) == message

    def test_no_stale_vectors(self):
        vectors = _load_vectors()
        built = {name for name, _ in golden_messages()}
        committed = {entry["name"] for entry in vectors["vectors"]}
        assert committed == built


def _regenerate(path: Path) -> None:
    entries = [
        {
            "name": name,
            "type": type(message).__name__,
            "frame_hex": message.serialize().hex(),
        }
        for name, message in golden_messages()
    ]
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump({"version": WIRE_VERSION, "vectors": entries}, handle, indent=2)
        handle.write("\n")
    print(f"wrote {len(entries)} vectors to {path}")


if __name__ == "__main__":
    import sys

    target = Path(sys.argv[1]) if len(sys.argv) > 1 else VECTOR_FILE
    _regenerate(target)
