"""Tests of the execution log."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExecutionLog, IterationRecord
from repro.exceptions import AnalysisError


def make_record(iteration: int, noise: float = 0.1) -> IterationRecord:
    centroids = np.full((2, 3), float(iteration))
    return IterationRecord(
        iteration=iteration,
        epsilon_spent=0.25,
        centroids_before=centroids - 1,
        perturbed_means=centroids + noise,
        noise_free_means=centroids,
        displacement=0.5 / iteration,
        tracked_assignments={0: iteration % 2, 7: 1},
        costs={"messages_sent": 10.0 * iteration, "bytes_sent": 100.0},
    )


class TestIterationRecord:
    def test_noise_magnitude(self):
        record = make_record(1, noise=0.1)
        assert record.noise_magnitude() == pytest.approx(np.sqrt(6 * 0.01))

    def test_noise_magnitude_requires_both_sides(self):
        record = IterationRecord(iteration=1, perturbed_means=np.zeros((1, 2)))
        with pytest.raises(AnalysisError):
            record.noise_magnitude()

    def test_dict_round_trip(self):
        record = make_record(3)
        restored = IterationRecord.from_dict(record.to_dict())
        assert restored.iteration == 3
        assert np.allclose(restored.perturbed_means, record.perturbed_means)
        assert restored.tracked_assignments == record.tracked_assignments
        assert restored.costs == record.costs

    def test_to_dict_is_json_friendly(self):
        import json

        payload = make_record(2).to_dict()
        json.dumps(payload)  # must not raise


class TestExecutionLog:
    def test_append_and_views(self):
        log = ExecutionLog(metadata={"dataset": "test"})
        for iteration in (1, 2, 3):
            log.append(make_record(iteration))
        assert len(log) == 3
        assert log[1].iteration == 2
        assert len(log.centroid_trajectory()) == 3
        assert len(log.noise_magnitudes()) == 3
        assert log.displacements() == pytest.approx([0.5, 0.25, 0.5 / 3])
        assert log.epsilon_schedule() == [0.25, 0.25, 0.25]

    def test_out_of_order_iterations_rejected(self):
        log = ExecutionLog()
        log.append(make_record(2))
        with pytest.raises(AnalysisError):
            log.append(make_record(1))

    def test_tracked_assignment_history(self):
        log = ExecutionLog()
        log.append(make_record(1))
        log.append(make_record(2))
        history = log.tracked_assignment_history()
        assert history[0] == [1, 0]
        assert history[7] == [1, 1]

    def test_total_costs(self):
        log = ExecutionLog()
        log.append(make_record(1))
        log.append(make_record(2))
        totals = log.total_costs()
        assert totals["messages_sent"] == 30.0
        assert totals["bytes_sent"] == 200.0

    def test_save_and_load_round_trip(self, tmp_path):
        log = ExecutionLog(metadata={"dataset": "cer", "epsilon": 1.0})
        log.append(make_record(1))
        log.append(make_record(2))
        path = log.save(tmp_path / "log.json")
        restored = ExecutionLog.load(path)
        assert restored.metadata["dataset"] == "cer"
        assert len(restored) == 2
        assert np.allclose(
            restored[0].perturbed_means, log[0].perturbed_means
        )

    def test_iteration_over_records(self):
        log = ExecutionLog()
        log.append(make_record(1))
        assert [record.iteration for record in log] == [1]
