"""Targeted (adversarial) corruption mutations — PR 3 follow-up.

The random-bit-flip fault model is covered by the wire fuzz suite; these
tests aim mutations at specific fields — version byte, length varint, CRC,
slot metadata — with the checksum *recomputed* where a man-in-the-middle
could recompute it, and assert that decoding rejects every one of them with
:class:`~repro.exceptions.WireFormatError` and nothing else, on both
transports (the in-process loopback and the live worker's frame handler).
"""

from __future__ import annotations

import pytest

from repro.crypto.backends import EncryptedVector, PartialVectorDecryption
from repro.exceptions import WireFormatError
from repro.gossip.encrypted_sum import EncryptedEstimate
from repro.gossip.messages import (
    DecryptRequest,
    DecryptResponse,
    DiptychExchange,
    EncryptedAvgRequest,
    GossipAvgRequest,
    KeyAnnouncement,
    MembershipAnnouncement,
    PushSumMessage,
    deserialize,
)
from repro.net.faults import TargetedMutation, reframe_body, targeted_mutations
from repro.simulation.engine import CycleEngine
from repro.simulation.node import Node


def _estimate(width: int = 8, length: int = 3, halvings: int = 2) -> EncryptedEstimate:
    bound = (1 << (8 * width)) - 1
    payload = tuple((7919 * (i + 1)) % bound for i in range(length))
    vector = EncryptedVector(payload=payload, backend_name="plain", length=length)
    return EncryptedEstimate(vector=vector, halvings=halvings)


def _partial(width: int = 8, length: int = 3) -> PartialVectorDecryption:
    bound = (1 << (8 * width)) - 1
    payload = tuple((104729 * (i + 1)) % bound for i in range(length))
    return PartialVectorDecryption(share_index=2, payload=payload,
                                   backend_name="plain", length=length)


FRAMES = {
    "encrypted-avg": EncryptedAvgRequest(
        estimate=_estimate(), ciphertext_bytes=8
    ).serialize(),
    "diptych": DiptychExchange(
        iteration=4,
        data_estimates=(_estimate(), _estimate()),
        noise_estimates=(_estimate(), _estimate()),
        ciphertext_bytes=8,
    ).serialize(),
    "decrypt-request": DecryptRequest(
        estimates=(_estimate(),), ciphertext_bytes=8
    ).serialize(),
    "decrypt-response": DecryptResponse(
        partials=(_partial(),), ciphertext_bytes=8
    ).serialize(),
    "gossip-avg": GossipAvgRequest(values=(1.5, -2.25, 0.0)).serialize(),
    "push-sum": PushSumMessage(values=(0.5, 0.75), weight=0.5).serialize(),
    "membership": MembershipAnnouncement(node_id=7, online=True, cycle=3).serialize(),
    "key": KeyAnnouncement(modulus=2**64 + 13, degree=2, threshold=3,
                           n_shares=5).serialize(),
}

ALL_MUTATIONS = [
    (name, mutation)
    for name, frame in FRAMES.items()
    for mutation in targeted_mutations(frame)
]


def _mutation_id(case: tuple[str, TargetedMutation]) -> str:
    return f"{case[0]}-{case[1].target}"


class TestTargetedMutations:
    def test_every_frame_gets_envelope_and_crc_mutations(self):
        for name, frame in FRAMES.items():
            targets = {mutation.target for mutation in targeted_mutations(frame)}
            assert {"magic", "version-bumped", "version-zero", "type-unknown",
                    "length-over", "crc-bit-flip"} <= targets, name
            assert any(m.crc_fixed for m in targeted_mutations(frame)), name

    def test_estimate_frames_get_slot_metadata_mutations(self):
        for name in ("encrypted-avg", "diptych", "decrypt-request",
                     "decrypt-response"):
            targets = {m.target for m in targeted_mutations(FRAMES[name])}
            assert {"slot-width-zero", "slot-width-over-limit",
                    "slot-halvings-over-limit"} <= targets, name

    @pytest.mark.parametrize("case", ALL_MUTATIONS, ids=_mutation_id)
    def test_mutations_differ_from_the_original(self, case):
        name, mutation = case
        assert mutation.frame != FRAMES[name]

    @pytest.mark.parametrize("case", ALL_MUTATIONS, ids=_mutation_id)
    def test_deserialize_rejects_with_wire_format_error_only(self, case):
        _, mutation = case
        with pytest.raises(WireFormatError):
            deserialize(mutation.frame)

    def test_reframe_body_round_trips_a_clean_frame(self):
        """The adversary toolbox itself is sound: re-framing the original
        body reproduces a decodable, equal message."""
        frame = FRAMES["membership"]
        from repro.net.faults import _split_frame

        _, body = _split_frame(frame)
        rebuilt = reframe_body(frame, body)
        assert rebuilt == frame
        assert deserialize(rebuilt) == deserialize(frame)


class _SinkNode(Node):
    """Records whatever the engine delivers (transport conformance probe)."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.received: list[bytes] = []

    def next_cycle(self, engine, cycle) -> None:  # pragma: no cover - unused
        pass

    def receive(self, engine, message) -> None:
        self.received.append(message.payload)


class TestRejectionOnBothTransports:
    @pytest.mark.parametrize("case", ALL_MUTATIONS, ids=_mutation_id)
    def test_loopback_transport_delivers_and_decoder_rejects(self, case):
        """The loopback transport is content-agnostic: the mutated bytes
        arrive verbatim and die in the decoder, nowhere else."""
        _, mutation = case
        nodes = [_SinkNode(0), _SinkNode(1)]
        engine = CycleEngine(nodes, seed=0)
        received = engine.transport.transmit(0, 1, "mutated", mutation.frame)
        assert received == mutation.frame
        assert nodes[1].received == [mutation.frame]
        with pytest.raises(WireFormatError):
            deserialize(received)

    @pytest.mark.parametrize("case", ALL_MUTATIONS, ids=_mutation_id)
    def test_live_worker_handler_degrades_to_loss(self, case):
        """The live transport's frame handler answers an error header (the
        initiator treats it as a loss) and never raises."""
        from repro.config import ChiaroscuroConfig
        from repro.core.runner import build_run_setup
        from repro.datasets import load_dataset
        from repro.net.live import WorkerProtocolHandler

        _, mutation = case
        config = ChiaroscuroConfig().with_overrides(
            kmeans={"n_clusters": 2, "max_iterations": 2},
            privacy={"noise_shares": 2},
            crypto={"backend": "plain", "threshold": 2, "n_key_shares": 2},
            simulation={"n_participants": 4},
        )
        collection = load_dataset("gaussian", n_series=4, series_length=4,
                                  n_clusters=2, seed=0)
        setup = build_run_setup(collection, config)
        participants = {0: setup.make_participant(0)}
        handler = WorkerProtocolHandler(setup, participants)
        header, payload = handler.handle_frame(
            {"op": "diptych-exchange", "sender": 1, "recipient": 0},
            mutation.frame,
        )
        assert header["error"] == "wire_format"
        assert payload == b""
