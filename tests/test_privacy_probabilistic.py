"""Tests of the probabilistic differential-privacy accounting."""

from __future__ import annotations

import pytest

from repro.exceptions import PrivacyError, ValidationError
from repro.privacy import (
    cycles_for_target_delta,
    delta_from_cycles,
    effective_epsilon,
    gossip_relative_error,
    guarantee_for_run,
)


class TestErrorBounds:
    def test_error_decreases_exponentially(self):
        errors = [gossip_relative_error(c) for c in (1, 5, 10, 20)]
        assert all(b < a for a, b in zip(errors, errors[1:]))
        assert gossip_relative_error(10) == pytest.approx(0.5**10)

    def test_contraction_parameter(self):
        assert gossip_relative_error(4, contraction=0.25) == pytest.approx(0.25**4)

    def test_rejects_invalid_arguments(self):
        with pytest.raises(ValidationError):
            gossip_relative_error(0)
        with pytest.raises(ValidationError):
            gossip_relative_error(3, contraction=1.0)


class TestDelta:
    def test_union_bound(self):
        assert delta_from_cycles(10, 100) == pytest.approx(100 * 0.5**10)

    def test_capped_at_one(self):
        assert delta_from_cycles(1, 10**6) == 1.0

    def test_more_cycles_smaller_delta(self):
        assert delta_from_cycles(20, 1000) < delta_from_cycles(10, 1000)


class TestEffectiveEpsilon:
    def test_zero_error_is_identity(self):
        assert effective_epsilon(1.0, 0.0) == 1.0

    def test_inflation(self):
        assert effective_epsilon(1.0, 0.5) == pytest.approx(2.0)

    def test_rejects_error_of_one(self):
        with pytest.raises(PrivacyError):
            effective_epsilon(1.0, 1.0)


class TestGuarantee:
    def test_guarantee_fields(self):
        guarantee = guarantee_for_run(epsilon=1.0, cycles=12, n_participants=1000)
        assert guarantee.epsilon == 1.0
        assert guarantee.effective_epsilon >= 1.0
        assert 0.0 <= guarantee.delta <= 1.0
        assert guarantee.relative_error_bound == pytest.approx(0.5**12)
        as_dict = guarantee.as_dict()
        assert set(as_dict) == {
            "epsilon", "effective_epsilon", "delta", "relative_error_bound",
        }

    def test_more_cycles_tighten_the_guarantee(self):
        loose = guarantee_for_run(1.0, cycles=8, n_participants=1000)
        tight = guarantee_for_run(1.0, cycles=24, n_participants=1000)
        assert tight.delta < loose.delta
        assert tight.effective_epsilon < loose.effective_epsilon


class TestCyclesForTargetDelta:
    def test_round_trip(self):
        for target in (1e-2, 1e-4, 1e-6):
            cycles = cycles_for_target_delta(target, n_participants=1000)
            assert delta_from_cycles(cycles, 1000) <= target
            if cycles > 1:
                assert delta_from_cycles(cycles - 1, 1000) > target

    def test_grows_with_population(self):
        assert cycles_for_target_delta(1e-4, 10**6) > cycles_for_target_delta(1e-4, 10**2)

    def test_rejects_invalid_target(self):
        with pytest.raises(ValidationError):
            cycles_for_target_delta(0.0, 100)
