"""Tests of the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "cer"
        assert args.epsilon == 2.0
        assert args.command == "run"

    def test_compare_options(self):
        args = build_parser().parse_args(
            ["compare", "--dataset", "gaussian", "--epsilon", "5", "--participants", "40"]
        )
        assert args.dataset == "gaussian"
        assert args.epsilon == 5.0
        assert args.participants == 40

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "not-a-dataset"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_crypto_bench_populations(self):
        args = build_parser().parse_args(
            ["crypto-bench", "--populations", "100", "1000"]
        )
        assert args.populations == [100, 1000]

    def test_engine_flags(self):
        args = build_parser().parse_args([
            "run", "--engine", "slab", "--sample-fraction", "0.01",
            "--slab-shards", "4",
        ])
        assert args.engine == "slab"
        assert args.sample_fraction == 0.01
        assert args.slab_shards == 4
        # Defaults reproduce the object engine.
        defaults = build_parser().parse_args(["run"])
        assert defaults.engine == "object"
        assert defaults.sample_fraction == 1.0
        assert defaults.slab_shards == 1

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--engine", "warp"])

    def test_stepping_flags(self):
        args = build_parser().parse_args([
            "run", "--live", "--stepping", "concurrent",
            "--live-concurrency", "4", "--envelope", "off",
        ])
        assert args.stepping == "concurrent"
        assert args.live_concurrency == 4
        assert args.envelope == "off"
        defaults = build_parser().parse_args(["run"])
        assert defaults.stepping == "sequential"
        assert defaults.live_concurrency == 8
        assert defaults.envelope == "auto"

    def test_unknown_stepping_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--stepping", "barrier-free"])


class TestCommands:
    def test_run_command_json(self, capsys):
        exit_code = main([
            "run", "--dataset", "gaussian", "--participants", "24", "--clusters", "2",
            "--iterations", "2", "--noise-shares", "8", "--gossip-cycles", "4",
            "--epsilon", "4", "--json",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["n_clusters"] == 2
        assert payload["summary"]["n_participants"] == 24
        assert payload["guarantee"]["epsilon"] <= 4.0 + 1e-9

    def test_run_command_table_output(self, capsys):
        exit_code = main([
            "run", "--dataset", "gaussian", "--participants", "20", "--clusters", "2",
            "--iterations", "2", "--noise-shares", "6", "--gossip-cycles", "4",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Chiaroscuro run" in output
        assert "realised privacy guarantee" in output

    def test_crypto_bench_command(self, capsys):
        exit_code = main([
            "crypto-bench", "--key-bits", "160", "--repetitions", "2",
            "--clusters", "2", "--series-length", "8", "--iterations", "2",
            "--gossip-cycles", "4", "--populations", "100", "10000", "--json",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 2
        assert payload["rows"][0]["total_compute_seconds"] == pytest.approx(
            payload["rows"][1]["total_compute_seconds"]
        )

    def test_error_reported_as_exit_code_two(self, capsys):
        # 5 clusters but only 4 participants: the library refuses, the CLI
        # must translate that into a non-zero exit code rather than a traceback.
        exit_code = main([
            "run", "--dataset", "gaussian", "--participants", "4", "--clusters", "5",
            "--noise-shares", "2",
        ])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err


class TestExperimentCommands:
    @pytest.fixture()
    def spec_file(self, tmp_path):
        from repro.experiments import ExperimentSpec

        spec = ExperimentSpec(
            name="cli-unit",
            dataset="gaussian",
            dataset_params={"n_clusters": 2, "noise_std": 0.05},
            participants=12,
            base={
                "kmeans": {"n_clusters": 2, "max_iterations": 2},
                "privacy": {"epsilon": 4.0, "noise_shares": 6},
                "gossip": {"cycles_per_aggregation": 3},
                "crypto": {"threshold": 2, "n_key_shares": 3},
            },
            sweep={"privacy.epsilon": [2.0, 4.0]},
            metrics={"reference": False},
        )
        return str(spec.save(tmp_path / "cli_unit.json"))

    def test_experiment_run_and_resume(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "store.jsonl")
        exit_code = main([
            "experiment", "run", "--spec", spec_file, "--store", store,
            "--jobs", "2", "--json",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executed"] == 2
        assert payload["failed"] == 0
        exit_code = main([
            "experiment", "run", "--spec", spec_file, "--store", store,
            "--resume", "--json",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executed"] == 0
        assert payload["skipped"] == 2

    def test_experiment_list_shows_cached_vs_pending(self, spec_file, tmp_path,
                                                     capsys):
        store = str(tmp_path / "store.jsonl")
        exit_code = main([
            "experiment", "list", "--spec", spec_file, "--store", store, "--json",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"cached": 0, "pending": 2,
                                     "error": 0, "timeout": 0}
        assert all(cell["status"] == "pending" for cell in payload["cells"])
        main(["experiment", "run", "--spec", spec_file, "--store", store,
              "--quiet"])
        capsys.readouterr()
        exit_code = main([
            "experiment", "list", "--spec", spec_file, "--store", store, "--json",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["cached"] == 2
        assert payload["counts"]["pending"] == 0
        assert {cell["label"] for cell in payload["cells"]} == {
            "cell 0 | privacy.epsilon=2.0 | seed=0",
            "cell 1 | privacy.epsilon=4.0 | seed=0",
        }
        # Human-readable variant mentions the store and the summary line.
        exit_code = main([
            "experiment", "list", "--spec", spec_file, "--store", store,
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "cached=2" in output
        assert "experiment cli-unit" in output

    def test_experiment_report(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "store.jsonl")
        main(["experiment", "run", "--spec", spec_file, "--store", store, "--quiet"])
        capsys.readouterr()
        exit_code = main([
            "experiment", "report", "--spec", spec_file, "--store", store,
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "experiment: cli-unit" in output
        assert "scenario comparison" in output

    def test_experiment_report_markdown_to_file(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "store.jsonl")
        main(["experiment", "run", "--spec", spec_file, "--store", store, "--quiet"])
        out_file = tmp_path / "report.md"
        exit_code = main([
            "experiment", "report", "--spec", spec_file, "--store", store,
            "--markdown", "--out", str(out_file),
        ])
        assert exit_code == 0
        assert out_file.exists()
        assert "| privacy.epsilon |" in out_file.read_text(encoding="utf-8")

    def test_experiment_report_joins_multiple_stores(self, spec_file, tmp_path,
                                                     capsys):
        """``--store A --store B`` aligns the two sweeps' cells into one
        cross-store comparison table."""
        store_a = str(tmp_path / "left.jsonl")
        store_b = str(tmp_path / "right.jsonl")
        main(["experiment", "run", "--spec", spec_file, "--store", store_a,
              "--quiet"])
        main(["experiment", "run", "--spec", spec_file, "--store", store_b,
              "--quiet"])
        capsys.readouterr()
        exit_code = main([
            "experiment", "report", "--spec", spec_file,
            "--store", store_a, "--store", store_b,
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "cross-store" in output
        assert "stores: left, right" in output

    def test_missing_spec_is_a_cli_error(self, tmp_path, capsys):
        exit_code = main([
            "experiment", "run", "--spec", str(tmp_path / "absent.json"),
        ])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err
