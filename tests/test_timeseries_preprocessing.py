"""Tests of the preprocessing helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.timeseries import (
    add_noise,
    exponential_smoothing,
    lowpass_filter,
    moving_average,
    piecewise_aggregate,
    resample,
    sliding_windows,
)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        values = np.array([1.0, 5.0, 3.0])
        assert np.allclose(moving_average(values, 1), values)

    def test_constant_series_unchanged(self):
        values = np.full(10, 2.5)
        assert np.allclose(moving_average(values, 5), values)

    def test_length_preserved(self):
        values = np.arange(10, dtype=float)
        assert moving_average(values, 3).shape == values.shape

    def test_window_clipped_to_length(self):
        values = np.array([1.0, 2.0])
        out = moving_average(values, 10)
        assert out.shape == values.shape

    def test_reduces_variance_of_noise(self, rng):
        noise = rng.normal(size=200)
        smoothed = moving_average(noise, 7)
        assert smoothed.std() < noise.std()


class TestExponentialSmoothing:
    def test_alpha_one_is_identity(self):
        values = np.array([1.0, 4.0, 2.0])
        assert np.allclose(exponential_smoothing(values, 1.0), values)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValidationError):
            exponential_smoothing(np.ones(3), 0.0)

    def test_first_value_preserved(self):
        out = exponential_smoothing(np.array([5.0, 0.0, 0.0]), 0.5)
        assert out[0] == 5.0
        assert np.all(np.diff(out) <= 0)


class TestLowpass:
    def test_full_cutoff_is_identity(self):
        values = np.sin(np.linspace(0, 4 * np.pi, 32))
        assert np.allclose(lowpass_filter(values, 1.0), values, atol=1e-10)

    def test_removes_high_frequency(self):
        grid = np.linspace(0, 2 * np.pi, 64, endpoint=False)
        low = np.sin(grid)
        high = 0.5 * np.sin(20 * grid)
        filtered = lowpass_filter(low + high, 0.1)
        assert np.linalg.norm(filtered - low) < np.linalg.norm(high)

    def test_rejects_zero_cutoff(self):
        with pytest.raises(ValidationError):
            lowpass_filter(np.ones(8), 0.0)

    def test_length_preserved_odd(self):
        values = np.arange(9, dtype=float)
        assert lowpass_filter(values, 0.5).shape == values.shape


class TestResample:
    def test_same_length_is_copy(self):
        values = np.array([1.0, 2.0, 3.0])
        assert np.allclose(resample(values, 3), values)

    def test_upsample_endpoints(self):
        out = resample(np.array([0.0, 1.0]), 5)
        assert out[0] == 0.0 and out[-1] == 1.0 and len(out) == 5

    def test_downsample_to_one_is_mean(self):
        assert resample(np.array([1.0, 3.0]), 1)[0] == pytest.approx(2.0)


class TestPAA:
    def test_exact_segments(self):
        values = np.array([1.0, 1.0, 3.0, 3.0])
        assert np.allclose(piecewise_aggregate(values, 2), [1.0, 3.0])

    def test_rejects_too_many_segments(self):
        with pytest.raises(ValidationError):
            piecewise_aggregate(np.ones(3), 5)

    def test_mean_preserved_roughly(self, rng):
        values = rng.normal(size=100)
        paa = piecewise_aggregate(values, 10)
        assert paa.mean() == pytest.approx(values.mean(), abs=0.05)


class TestSlidingWindowsAndNoise:
    def test_window_count(self):
        windows = sliding_windows(np.arange(10, dtype=float), width=4, step=2)
        assert windows.shape == (4, 4)

    def test_window_contents(self):
        windows = sliding_windows(np.arange(5, dtype=float), width=2)
        assert np.allclose(windows[0], [0, 1])
        assert np.allclose(windows[-1], [3, 4])

    def test_width_too_large(self):
        with pytest.raises(ValidationError):
            sliding_windows(np.ones(3), width=5)

    def test_add_noise_zero_scale(self, fresh_rng):
        values = np.arange(5, dtype=float)
        assert np.allclose(add_noise(values, 0.0, fresh_rng), values)

    def test_add_noise_changes_values(self, fresh_rng):
        values = np.zeros(100)
        noisy = add_noise(values, 1.0, fresh_rng)
        assert noisy.std() > 0.5

    def test_add_noise_rejects_negative_scale(self, fresh_rng):
        with pytest.raises(ValidationError):
            add_noise(np.ones(3), -1.0, fresh_rng)
