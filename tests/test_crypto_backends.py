"""Tests of the pluggable cipher backends.

Every behavioural test runs against both backends (the real Damgård–Jurik one
and the plain simulated one) through parametrised fixtures: the point of the
backend abstraction is that the protocol cannot tell them apart.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.backends import (
    DamgardJurikBackend,
    EncryptedVector,
    OperationCounter,
    PlainBackend,
    make_backend,
)
from repro.exceptions import CryptoError, ThresholdError, ValidationError


@pytest.fixture(params=["plain", "damgard_jurik"])
def backend(request, plain_backend, dj_backend):
    return plain_backend if request.param == "plain" else dj_backend


class TestEncryptDecrypt:
    def test_vector_round_trip(self, backend):
        values = np.array([0.5, -1.25, 0.0, 2.5])
        vector = backend.encrypt_vector(values)
        decoded = backend.decrypt_with_shares(vector, [1, 2])
        assert np.allclose(decoded, values, atol=1e-3)

    def test_integer_vector_round_trip(self, backend):
        values = [0, 1, 5, 17]
        vector = backend.encrypt_integer_vector(values)
        decoded = backend.decrypt_with_shares(vector, [1, 2], integer=True)
        assert np.allclose(decoded, values)

    def test_zero_vector(self, backend):
        vector = backend.encrypt_zero_vector(3)
        assert np.allclose(backend.decrypt_with_shares(vector, [1, 2]), 0.0)

    def test_addition(self, backend):
        a = backend.encrypt_vector([1.0, -2.0, 3.0])
        b = backend.encrypt_vector([0.5, 2.0, -1.0])
        decoded = backend.decrypt_with_shares(backend.add(a, b), [1, 2])
        assert np.allclose(decoded, [1.5, 0.0, 2.0], atol=1e-3)

    def test_scalar_multiplication(self, backend):
        vector = backend.encrypt_vector([0.5, -1.0])
        decoded = backend.decrypt_with_shares(backend.multiply_scalar(vector, 4), [1, 2])
        assert np.allclose(decoded, [2.0, -4.0], atol=1e-3)

    def test_scalar_multiplication_rejects_negative(self, backend):
        vector = backend.encrypt_vector([1.0])
        with pytest.raises(CryptoError):
            backend.multiply_scalar(vector, -2)

    def test_add_length_mismatch(self, backend):
        with pytest.raises(CryptoError):
            backend.add(backend.encrypt_vector([1.0]), backend.encrypt_vector([1.0, 2.0]))

    def test_vectors_are_backend_tagged(self, backend):
        foreign = EncryptedVector(payload=(1, 2, 3), backend_name="other")
        with pytest.raises(CryptoError):
            backend.add(foreign, foreign)

    def test_threshold_enforced(self, backend):
        vector = backend.encrypt_vector([1.0, 2.0])
        partial = backend.partial_decrypt_vector(1, vector)
        with pytest.raises(ThresholdError):
            backend.combine_vector([partial])

    def test_unknown_share_index(self, backend):
        vector = backend.encrypt_vector([1.0])
        with pytest.raises(ThresholdError):
            backend.partial_decrypt_vector(99, vector)

    def test_empty_combination_rejected(self, backend):
        with pytest.raises(ThresholdError):
            backend.combine_vector([])

    def test_operation_counters_increase(self, backend):
        before = backend.counter.as_dict()
        vector = backend.encrypt_vector([1.0, 2.0, 3.0])
        backend.add(vector, vector)
        backend.decrypt_with_shares(vector, [1, 2])
        after = backend.counter.as_dict()
        assert after["encryptions"] >= before["encryptions"] + 3
        assert after["additions"] >= before["additions"] + 3
        assert after["partial_decryptions"] >= before["partial_decryptions"] + 6
        assert after["combinations"] >= before["combinations"] + 3

    def test_ciphertext_bits_positive(self, backend):
        assert backend.ciphertext_bits > 0


class TestSemanticSecurityOfRealBackend:
    def test_real_ciphertexts_are_randomised(self, dj_backend):
        first = dj_backend.encrypt_vector([0.5])
        second = dj_backend.encrypt_vector([0.5])
        assert first.payload != second.payload

    def test_plain_backend_is_not_randomised(self, plain_backend):
        # This documents the difference: the plain backend is NOT secure, it
        # only simulates the cost structure (exactly like the demo platform
        # with homomorphic operations disabled).
        first = plain_backend.encrypt_vector([0.5])
        second = plain_backend.encrypt_vector([0.5])
        assert first.payload == second.payload


class TestOperationCounter:
    def test_merge_and_reset(self):
        a = OperationCounter(encryptions=1, additions=2, pooled_encryptions=1)
        b = OperationCounter(partial_decryptions=3, combinations=4, rerandomizations=5)
        merged = a.merge(b)
        assert merged.as_dict() == {
            "encryptions": 1, "additions": 2, "partial_decryptions": 3, "combinations": 4,
            "pooled_encryptions": 1, "rerandomizations": 5,
        }
        a.reset()
        assert a.as_dict()["encryptions"] == 0
        assert a.as_dict()["pooled_encryptions"] == 0


class TestFactory:
    def test_make_plain(self):
        assert isinstance(make_backend("plain"), PlainBackend)

    def test_make_paillier_is_degree_one_dj(self):
        backend = make_backend("paillier", key_bits=160, threshold=2, n_shares=3)
        assert isinstance(backend, DamgardJurikBackend)
        assert backend.public_key.s == 1

    def test_make_damgard_jurik_degree(self):
        backend = make_backend("damgard_jurik", key_bits=128, degree=2, threshold=2, n_shares=3)
        assert backend.public_key.s == 2

    def test_unknown_backend(self):
        with pytest.raises(ValidationError):
            make_backend("enigma")

    def test_threshold_validation(self):
        with pytest.raises(ValidationError):
            PlainBackend(threshold=5, n_shares=2)
