"""Tests of the offline precomputation service (crypto/precompute.py).

The service's contract: everything it serves online — pooled blinders,
encryptions of zero, fixed-base tables — is indistinguishable from freshly
generated material, and its persisted pool files are *consumable*: valid
only under the exact key they were generated for, optionally bounded in
age, and deleted on load so no two processes can ever absorb (and hence
serve) the same blinder.
"""

from __future__ import annotations

import json

import pytest

from repro.crypto import damgard_jurik as dj
from repro.crypto.backends import make_backend
from repro.crypto.fastmath import BlinderPool, PrecomputedKey
from repro.crypto.precompute import (
    POOL_FILE_VERSION,
    PoolFileError,
    PrecomputationService,
    key_fingerprint,
)

# Cheap shared keys: generation inside each test would dominate the runtime.
PUBLIC, PRIVATE = dj.generate_keypair(key_bits=128, s=1)
PRECOMPUTED = PrecomputedKey.from_private_key(PRIVATE)
OTHER_PRECOMPUTED = PrecomputedKey.from_private_key(
    dj.generate_keypair(key_bits=128, s=1)[1]
)


def _service(**kwargs) -> PrecomputationService:
    return PrecomputationService(PRECOMPUTED, batch_size=4, **kwargs)


class TestServiceBasics:
    def test_fingerprint_depends_on_the_key(self):
        assert _service().fingerprint == key_fingerprint(PRECOMPUTED)
        assert key_fingerprint(PRECOMPUTED) != key_fingerprint(OTHER_PRECOMPUTED)

    def test_zeros_decrypt_to_zero(self):
        service = _service()
        service.refill(blinders=0, zeros=3)
        assert service.zeros_available() == 3
        for _ in range(3):
            assert dj.decrypt(PRIVATE, service.take_zero()) == 0
        assert service.zeros_available() == 0
        # Exhausted FIFO falls back to fresh generation, still a valid zero.
        assert dj.decrypt(PRIVATE, service.take_zero()) == 0

    def test_refill_charges_the_offline_phase(self):
        service = _service()
        assert service.offline_seconds == 0.0
        service.refill(blinders=4, zeros=2)
        assert service.offline_seconds > 0.0
        assert len(service.pool) >= 4

    def test_tables_are_cached_per_base(self):
        service = _service()
        table = service.table_for(3, max_exponent_bits=64)
        assert service.table_for(3, max_exponent_bits=64) is table
        assert service.table_for(5, max_exponent_bits=64) is not table
        assert table.pow(12345) == pow(3, 12345, PRECOMPUTED.modulus)

    def test_adopts_an_existing_pool(self):
        pool = BlinderPool(PRECOMPUTED, batch_size=2)
        service = PrecomputationService(PRECOMPUTED, pool=pool)
        assert service.pool is pool


class TestPoolFiles:
    def test_save_load_round_trip_consumes_the_file(self, tmp_path):
        path = tmp_path / "pool.json"
        writer = _service()
        summary = writer.save(path, blinders=5, zeros=2)
        assert summary["blinders"] == 5 and summary["zeros"] == 2
        assert path.exists()

        reader = _service()
        loaded = reader.load(path)
        assert loaded["blinders"] == 5 and loaded["zeros"] == 2
        # Consumed: the file is gone before the values are served.
        assert not path.exists()
        assert len(reader.pool) >= 5
        assert reader.zeros_available() == 2
        # Absorbed material is cryptographically sound.
        ciphertext = reader.pool.take() % PRECOMPUTED.modulus
        assert dj.decrypt(PRIVATE, ciphertext) == 0
        assert dj.decrypt(PRIVATE, reader.take_zero()) == 0

    def test_wrong_key_is_rejected_and_not_consumed(self, tmp_path):
        path = tmp_path / "pool.json"
        _service().save(path, blinders=2)
        stranger = PrecomputationService(OTHER_PRECOMPUTED, batch_size=4)
        with pytest.raises(PoolFileError, match="different key"):
            stranger.load(path)
        # A rejected file stays on disk for the rightful owner.
        assert path.exists()
        assert _service().load(path)["blinders"] == 2

    def test_stale_file_is_rejected(self, tmp_path):
        path = tmp_path / "pool.json"
        _service().save(path, blinders=1)
        payload = json.loads(path.read_text())
        payload["created_unix"] -= 3600.0
        path.write_text(json.dumps(payload))
        with pytest.raises(PoolFileError, match="old"):
            _service().load(path, max_age_seconds=60.0)
        assert path.exists()

    def test_bad_version_and_corrupt_files_are_rejected(self, tmp_path):
        path = tmp_path / "pool.json"
        _service().save(path, blinders=1)
        payload = json.loads(path.read_text())
        payload["version"] = POOL_FILE_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(PoolFileError, match="version"):
            _service().load(path)
        path.write_text("{not json")
        with pytest.raises(PoolFileError, match="corrupt"):
            _service().load(path)
        with pytest.raises(PoolFileError, match="cannot read"):
            _service().load(tmp_path / "missing.json")

    def test_values_outside_the_group_are_rejected(self, tmp_path):
        path = tmp_path / "pool.json"
        _service().save(path, blinders=1)
        payload = json.loads(path.read_text())
        payload["blinders"] = [format(PRECOMPUTED.modulus + 1, "x")]
        path.write_text(json.dumps(payload))
        with pytest.raises(PoolFileError, match="ciphertext group"):
            _service().load(path)

    def test_save_validates_counts(self, tmp_path):
        with pytest.raises(PoolFileError):
            _service().save(tmp_path / "pool.json", blinders=-1)

    def test_adopt_pool_file_warms_across_runs(self, tmp_path):
        path = tmp_path / "pool.json"
        first = _service().adopt_pool_file(path, refill_blinders=3)
        assert first["loaded"] is None
        assert first["saved"]["blinders"] == 3
        assert path.exists()

        second_service = _service()
        second = second_service.adopt_pool_file(path, refill_blinders=3)
        assert second["loaded"]["blinders"] == 3
        assert second["saved"]["blinders"] == 3
        assert len(second_service.pool) >= 3
        # The refreshed file is for the *next* run, not this one.
        assert path.exists()

    def test_adopt_treats_an_unusable_file_as_a_cold_start(self, tmp_path):
        """Adopting a path means owning it: a wrong-key file (every CLI run
        generates a fresh keypair, so this is the common case for warm
        starts) is skipped and replaced instead of failing the run."""
        path = tmp_path / "pool.json"
        _service().save(path, blinders=2)
        stranger = PrecomputationService(OTHER_PRECOMPUTED, batch_size=4)
        summary = stranger.adopt_pool_file(path, refill_blinders=3)
        assert summary["loaded"] is None
        assert "different key" in summary["skipped"]
        assert summary["saved"]["blinders"] == 3
        # Nothing foreign was absorbed; the file now belongs to the adopter.
        assert len(stranger.pool) == 0
        payload = json.loads(path.read_text())
        assert payload["key"]["fingerprint"] == stranger.fingerprint

    def test_adopt_replaces_a_stale_file(self, tmp_path):
        path = tmp_path / "pool.json"
        _service().save(path, blinders=1)
        payload = json.loads(path.read_text())
        payload["created_unix"] -= 3600.0
        path.write_text(json.dumps(payload))
        summary = _service().adopt_pool_file(
            path, refill_blinders=2, max_age_seconds=60.0
        )
        assert summary["loaded"] is None and "old" in summary["skipped"]
        assert json.loads(path.read_text())["blinders"]


class TestBackendIntegration:
    def test_backend_exposes_a_service_sharing_its_pool(self):
        backend = make_backend("damgard_jurik", key_bits=128, degree=1,
                               threshold=2, n_shares=3, fastmath="auto")
        backend.configure_pool(4)
        service = backend.precomputation_service()
        assert service is not None
        assert service.pool is backend._pool
        assert backend.precomputation_service() is service

    def test_fastmath_off_backend_has_no_service(self):
        backend = make_backend("damgard_jurik", key_bits=128, degree=1,
                               threshold=2, n_shares=3, fastmath="off")
        assert backend.precomputation_service() is None

    def test_configure_pool_adopts_a_pool_file(self, tmp_path):
        path = tmp_path / "pool.json"
        backend = make_backend("damgard_jurik", key_bits=128, degree=1,
                               threshold=2, n_shares=3, fastmath="auto")
        backend.configure_pool(4, pool_file=str(path))
        # First run found nothing but left a warm file behind.
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["version"] == POOL_FILE_VERSION
        assert payload["key"]["fingerprint"] \
            == key_fingerprint(backend._precomputed)
