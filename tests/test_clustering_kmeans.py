"""Tests of the centralised k-means substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    assign_to_centroids,
    best_of_kmeans,
    centroid_displacement,
    compute_inertia,
    compute_means,
    initialize_centroids,
    kmeans,
    public_initial_centroids,
)
from repro.clustering.kmeans import reseed_centroid
from repro.datasets import generate_two_level_series
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def separable_data():
    collection = generate_two_level_series(40, 6, low=0.0, high=1.0, seed=1)
    return collection.to_matrix(), np.array(collection.labels("cluster"))


class TestInitialization:
    def test_random_init_picks_existing_points(self, separable_data, fresh_rng):
        data, _labels = separable_data
        centroids = initialize_centroids(data, 3, method="random", rng=fresh_rng)
        assert centroids.shape == (3, data.shape[1])
        for centroid in centroids:
            assert any(np.allclose(centroid, row) for row in data)

    def test_kmeanspp_prefers_spread_points(self, separable_data, fresh_rng):
        data, _labels = separable_data
        centroids = initialize_centroids(data, 2, method="kmeans++", rng=fresh_rng)
        # The two seeds should land on the two levels.
        assert abs(centroids[0].mean() - centroids[1].mean()) > 0.5

    def test_kmeanspp_handles_duplicate_points(self, fresh_rng):
        data = np.ones((10, 3))
        centroids = initialize_centroids(data, 2, method="kmeans++", rng=fresh_rng)
        assert centroids.shape == (2, 3)

    def test_public_init_is_data_independent_and_deterministic(self):
        a = public_initial_centroids(3, 10, 0.0, 1.0, seed=5)
        b = public_initial_centroids(3, 10, 0.0, 1.0, seed=5)
        assert np.array_equal(a, b)
        assert a.min() >= 0.0 and a.max() <= 1.0

    def test_public_init_levels_are_spread(self):
        centroids = public_initial_centroids(4, 8, 0.0, 1.0, seed=0)
        levels = sorted(centroids.mean(axis=1))
        assert levels[0] < 0.3 and levels[-1] > 0.7

    def test_public_init_rejects_bad_range(self):
        with pytest.raises(ValidationError):
            public_initial_centroids(2, 5, 1.0, 0.0)

    def test_too_many_clusters_rejected(self, fresh_rng):
        with pytest.raises(ValidationError):
            initialize_centroids(np.zeros((3, 2)), 5, method="random", rng=fresh_rng)

    def test_unknown_method_rejected(self, fresh_rng):
        with pytest.raises(ValidationError):
            initialize_centroids(np.zeros((3, 2)), 2, method="fancy", rng=fresh_rng)


class TestSteps:
    def test_assignment_picks_closest(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]])
        centroids = np.array([[0.1, 0.1], [0.9, 0.9]])
        assert list(assign_to_centroids(data, centroids)) == [0, 1]

    def test_compute_means(self):
        data = np.array([[0.0], [1.0], [10.0]])
        assignments = np.array([0, 0, 1])
        means = compute_means(data, assignments, 2)
        assert means[0, 0] == pytest.approx(0.5)
        assert means[1, 0] == pytest.approx(10.0)

    def test_compute_means_empty_cluster_fallback(self):
        data = np.array([[1.0], [2.0]])
        assignments = np.array([0, 0])
        fallback = np.array([[5.0], [7.0]])
        means = compute_means(data, assignments, 2, fallback_centroids=fallback)
        assert means[1, 0] == 7.0

    def test_compute_means_empty_cluster_without_fallback_uses_overall_mean(self):
        data = np.array([[1.0], [3.0]])
        means = compute_means(data, np.array([0, 0]), 2)
        assert means[1, 0] == pytest.approx(2.0)

    def test_displacement(self):
        a = np.zeros((2, 3))
        b = np.ones((2, 3))
        assert centroid_displacement(a, b) == pytest.approx(np.sqrt(3))
        assert centroid_displacement(a, a) == 0.0

    def test_displacement_shape_mismatch(self):
        with pytest.raises(ValidationError):
            centroid_displacement(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_inertia_zero_for_perfect_centroids(self):
        data = np.array([[0.0, 0.0], [2.0, 2.0]])
        assert compute_inertia(data, data) == pytest.approx(0.0)

    def test_reseed_centroid_is_deterministic_and_clipped(self):
        donor = np.array([0.5, 0.9, 0.1])
        a = reseed_centroid(donor, 1.0, iteration=3, cluster=1, seed=7)
        b = reseed_centroid(donor, 1.0, iteration=3, cluster=1, seed=7)
        c = reseed_centroid(donor, 1.0, iteration=4, cluster=1, seed=7)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert a.min() >= 0.0 and a.max() <= 1.0


class TestFullAlgorithm:
    def test_recovers_two_level_clusters(self, separable_data):
        data, labels = separable_data
        result = kmeans(data, 2, seed=0)
        assert result.converged
        # Centroids must be the two constant levels.
        levels = sorted(result.centroids.mean(axis=1))
        assert levels[0] == pytest.approx(0.0, abs=1e-6)
        assert levels[1] == pytest.approx(1.0, abs=1e-6)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)
        # Assignment must match the ground truth up to label permutation.
        agreement = np.mean(result.assignments == labels)
        assert agreement in (pytest.approx(0.0, abs=1e-12), pytest.approx(1.0, abs=1e-12))

    def test_inertia_never_increases_along_iterations(self, separable_data):
        data, _ = separable_data
        noisy = data + np.random.default_rng(0).normal(0, 0.1, size=data.shape)
        result = kmeans(noisy, 3, seed=1)
        inertias = [entry["inertia"] for entry in result.history]
        assert all(b <= a + 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_max_iterations_respected(self, separable_data):
        data, _ = separable_data
        result = kmeans(data, 2, max_iterations=1, seed=0)
        assert result.n_iterations == 1

    def test_initial_centroids_override(self, separable_data):
        data, _ = separable_data
        start = np.vstack([np.zeros(6), np.ones(6)])
        result = kmeans(data, 2, initial_centroids=start, seed=0)
        assert result.converged
        assert result.n_iterations <= 2

    def test_initial_centroids_shape_checked(self, separable_data):
        data, _ = separable_data
        with pytest.raises(ValidationError):
            kmeans(data, 2, initial_centroids=np.zeros((3, 6)))

    def test_best_of_restarts_not_worse_than_single(self, separable_data):
        data, _ = separable_data
        noisy = data + np.random.default_rng(5).normal(0, 0.3, size=data.shape)
        single = kmeans(noisy, 4, seed=3)
        best = best_of_kmeans(noisy, 4, n_restarts=5, seed=3)
        assert best.inertia <= single.inertia + 1e-9
