"""Tests of the Paillier cryptosystem."""

from __future__ import annotations

import pytest

from repro.crypto import paillier
from repro.exceptions import DecryptionError, EncryptionError, KeyGenerationError


@pytest.fixture(scope="module")
def keypair():
    return paillier.generate_paillier_keypair(key_bits=192)


class TestKeyGeneration:
    def test_modulus_size(self, keypair):
        public, _private = keypair
        assert public.key_bits >= 180  # primes of 96 bits each

    def test_rejects_tiny_keys(self):
        with pytest.raises(KeyGenerationError):
            paillier.generate_paillier_keypair(key_bits=8)


class TestRoundTrip:
    @pytest.mark.parametrize("plaintext", [0, 1, 42, 12345678901234567])
    def test_encrypt_decrypt(self, keypair, plaintext):
        public, private = keypair
        ciphertext = paillier.encrypt(public, plaintext)
        assert paillier.decrypt(private, ciphertext) == plaintext

    def test_encryption_is_randomised(self, keypair):
        public, _private = keypair
        assert paillier.encrypt(public, 7) != paillier.encrypt(public, 7)

    def test_fixed_randomness_is_deterministic(self, keypair):
        public, _private = keypair
        assert paillier.encrypt(public, 7, randomness=12345) == paillier.encrypt(
            public, 7, randomness=12345
        )

    def test_plaintext_out_of_range(self, keypair):
        public, _private = keypair
        with pytest.raises(EncryptionError):
            paillier.encrypt(public, public.n)
        with pytest.raises(EncryptionError):
            paillier.encrypt(public, -1)

    def test_randomness_must_be_coprime(self, keypair):
        public, _private = keypair
        with pytest.raises(EncryptionError):
            paillier.encrypt(public, 1, randomness=0)

    def test_decrypt_rejects_out_of_range(self, keypair):
        public, private = keypair
        with pytest.raises(DecryptionError):
            paillier.decrypt(private, public.n_squared + 1)


class TestHomomorphism:
    def test_addition(self, keypair):
        public, private = keypair
        a, b = 1234, 98765
        total = paillier.add_ciphertexts(
            public, paillier.encrypt(public, a), paillier.encrypt(public, b)
        )
        assert paillier.decrypt(private, total) == a + b

    def test_addition_wraps_modulo_n(self, keypair):
        public, private = keypair
        a = public.n - 1
        total = paillier.add_ciphertexts(
            public, paillier.encrypt(public, a), paillier.encrypt(public, 2)
        )
        assert paillier.decrypt(private, total) == 1

    def test_add_plaintext(self, keypair):
        public, private = keypair
        ciphertext = paillier.add_plaintext(public, paillier.encrypt(public, 10), 32)
        assert paillier.decrypt(private, ciphertext) == 42

    def test_multiply_plaintext(self, keypair):
        public, private = keypair
        ciphertext = paillier.multiply_plaintext(public, paillier.encrypt(public, 21), 2)
        assert paillier.decrypt(private, ciphertext) == 42

    def test_add_requires_arguments(self, keypair):
        public, _private = keypair
        with pytest.raises(EncryptionError):
            paillier.add_ciphertexts(public)

    def test_rerandomize_preserves_plaintext(self, keypair):
        public, private = keypair
        original = paillier.encrypt(public, 77)
        refreshed = paillier.rerandomize(public, original)
        assert refreshed != original
        assert paillier.decrypt(private, refreshed) == 77

    def test_encrypt_zero(self, keypair):
        public, private = keypair
        assert paillier.decrypt(private, paillier.encrypt_zero(public)) == 0
