"""Shared fixtures for the test suite.

Cryptographic fixtures use deliberately small keys (96–192 bits): they are
insecure but exercise exactly the same code paths as realistic keys while
keeping the suite fast.  Session scope is used for the expensive key
generations so they happen once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ChiaroscuroConfig
from repro.crypto.backends import DamgardJurikBackend, PlainBackend
from repro.datasets import generate_gaussian_clusters
from repro.timeseries import TimeSeries, TimeSeriesCollection


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A deterministic random generator shared by tests that only read it."""
    return np.random.default_rng(12345)


@pytest.fixture()
def fresh_rng() -> np.random.Generator:
    """A deterministic generator re-created for every test."""
    return np.random.default_rng(999)


@pytest.fixture(scope="session")
def small_collection() -> TimeSeriesCollection:
    """A small synthetic collection with known cluster structure."""
    return generate_gaussian_clusters(
        n_series=30, series_length=12, n_clusters=3, noise_std=0.05, seed=7
    )


@pytest.fixture(scope="session")
def tiny_series() -> TimeSeries:
    """A short hand-written series used by unit tests."""
    return TimeSeries(np.array([0.0, 1.0, 2.0, 3.0, 2.0, 1.0]), series_id="tiny",
                      metadata={"archetype": "test"})


@pytest.fixture(scope="session")
def plain_backend() -> PlainBackend:
    """Plain (simulated-encryption) backend with a small committee."""
    return PlainBackend(threshold=2, n_shares=4, encoding_scale=10**6)


@pytest.fixture(scope="session")
def dj_backend() -> DamgardJurikBackend:
    """Real Damgård–Jurik backend with a small (insecure, fast) key."""
    return DamgardJurikBackend(
        key_bits=192, degree=1, threshold=2, n_shares=4, encoding_scale=10**4
    )


@pytest.fixture(scope="session")
def fast_config() -> ChiaroscuroConfig:
    """A configuration sized for fast protocol integration tests."""
    return ChiaroscuroConfig().with_overrides(
        kmeans={"n_clusters": 3, "max_iterations": 4, "convergence_threshold": 1e-3},
        privacy={"epsilon": 4.0, "noise_shares": 10},
        gossip={"cycles_per_aggregation": 6},
        crypto={"threshold": 2, "n_key_shares": 4},
        simulation={"n_participants": 40, "seed": 3},
    )
