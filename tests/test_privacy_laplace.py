"""Tests of the Laplace mechanism and the sensitivity model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PrivacyError, ValidationError
from repro.privacy import (
    SensitivityModel,
    expected_absolute_noise,
    laplace_mechanism,
    laplace_tail_probability,
    sample_laplace,
)


class TestSensitivityModel:
    def test_total_sensitivity(self):
        model = SensitivityModel(series_length=48, value_bound=1.0, count_bound=1.0)
        assert model.sum_sensitivity == 48.0
        assert model.count_sensitivity == 1.0
        assert model.total_sensitivity == 49.0

    def test_laplace_scale(self):
        model = SensitivityModel(series_length=10, value_bound=2.0)
        assert model.laplace_scale(epsilon=2.0) == pytest.approx((20.0 + 1.0) / 2.0)

    def test_scale_decreases_with_epsilon(self):
        model = SensitivityModel(series_length=10)
        assert model.laplace_scale(2.0) < model.laplace_scale(0.5)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValidationError):
            SensitivityModel(series_length=0)
        with pytest.raises(ValidationError):
            SensitivityModel(series_length=5, value_bound=-1.0)
        with pytest.raises(ValidationError):
            SensitivityModel(series_length=5).laplace_scale(0.0)


class TestLaplaceSampling:
    def test_shape(self, fresh_rng):
        assert sample_laplace(1.0, (3, 4), fresh_rng).shape == (3, 4)

    def test_empirical_scale(self, fresh_rng):
        samples = sample_laplace(2.0, 20_000, fresh_rng)
        # Var(Laplace(b)) = 2 b^2.
        assert np.var(samples) == pytest.approx(8.0, rel=0.1)
        assert np.mean(samples) == pytest.approx(0.0, abs=0.1)

    def test_rejects_bad_scale(self, fresh_rng):
        with pytest.raises(ValidationError):
            sample_laplace(0.0, 3, fresh_rng)

    def test_mechanism_perturbs_with_expected_magnitude(self, fresh_rng):
        values = np.zeros(20_000)
        noisy = laplace_mechanism(values, sensitivity=1.0, epsilon=0.5, rng=fresh_rng)
        # Scale is 2, so E|noise| = 2.
        assert np.mean(np.abs(noisy)) == pytest.approx(2.0, rel=0.1)

    def test_mechanism_noise_decreases_with_epsilon(self, fresh_rng):
        values = np.zeros(5_000)
        loose = laplace_mechanism(values, 1.0, 0.1, np.random.default_rng(1))
        tight = laplace_mechanism(values, 1.0, 10.0, np.random.default_rng(1))
        assert np.abs(tight).mean() < np.abs(loose).mean()


class TestTailHelpers:
    def test_tail_probability(self):
        assert laplace_tail_probability(0.0, 1.0) == pytest.approx(1.0)
        assert laplace_tail_probability(1.0, 1.0) == pytest.approx(np.exp(-1.0))
        assert laplace_tail_probability(10.0, 1.0) < 1e-4

    def test_tail_probability_empirically(self, fresh_rng):
        scale = 1.5
        samples = sample_laplace(scale, 50_000, fresh_rng)
        threshold = 2.0
        empirical = float(np.mean(np.abs(samples) > threshold))
        assert empirical == pytest.approx(laplace_tail_probability(threshold, scale), abs=0.02)

    def test_tail_rejects_negative_magnitude(self):
        with pytest.raises(PrivacyError):
            laplace_tail_probability(-1.0, 1.0)

    def test_expected_absolute_noise(self):
        assert expected_absolute_noise(3.0) == 3.0
