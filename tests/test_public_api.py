"""Tests of the top-level public API surface."""

from __future__ import annotations

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.baselines
        import repro.clustering
        import repro.core
        import repro.crypto
        import repro.datasets
        import repro.experiments
        import repro.gossip
        import repro.privacy
        import repro.simulation
        import repro.timeseries

        for module in (
            repro.analysis, repro.baselines, repro.clustering, repro.core, repro.crypto,
            repro.datasets, repro.experiments, repro.gossip, repro.privacy,
            repro.simulation, repro.timeseries,
        ):
            assert hasattr(module, "__all__")
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"

    def test_exception_hierarchy(self):
        from repro import exceptions

        for name in dir(exceptions):
            value = getattr(exceptions, name)
            if isinstance(value, type) and issubclass(value, Exception) and name != "ReproError":
                if value.__module__ == "repro.exceptions":
                    assert issubclass(value, exceptions.ReproError)


class TestQuickstartDocstring:
    def test_quickstart_snippet_runs(self):
        """The snippet advertised in the package docstring must keep working."""
        homes = repro.generate_cer_like(n_households=20, n_days=1, seed=1)
        config = repro.ChiaroscuroConfig().with_overrides(
            kmeans={"n_clusters": 2, "max_iterations": 2},
            privacy={"epsilon": 2.0, "noise_shares": 8},
            gossip={"cycles_per_aggregation": 4},
            crypto={"threshold": 2, "n_key_shares": 4},
            simulation={"n_participants": 20},
        )
        result = repro.run_chiaroscuro(homes, config)
        assert result.profiles.shape == (2, 48)

    def test_default_config_exposed(self):
        assert repro.DEFAULT_CONFIG.kmeans.n_clusters == 5
        assert "geometric" in repro.BUDGET_STRATEGIES
