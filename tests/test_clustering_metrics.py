"""Tests of the clustering quality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    adjusted_rand_index,
    centroid_matching_error,
    contingency_table,
    kmeans,
    match_centroids,
    quality_report,
    relative_inertia,
    silhouette_score,
)
from repro.datasets import generate_gaussian_clusters
from repro.exceptions import ValidationError


class TestARI:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_permuted_labels_still_perfect(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 0])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_string_labels_supported(self):
        a = np.array(["x", "x", "y", "y"])
        b = np.array([0, 0, 1, 1])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 3, size=600)
        b = rng.integers(0, 3, size=600)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_single_cluster_against_itself(self):
        labels = np.zeros(5, dtype=int)
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            adjusted_rand_index(np.array([0, 1]), np.array([0, 1, 2]))

    def test_contingency_table(self):
        table = contingency_table(np.array([0, 0, 1]), np.array([1, 1, 0]))
        assert table.tolist() == [[0, 2], [1, 0]]


class TestSilhouette:
    def test_well_separated_clusters_score_high(self):
        collection = generate_gaussian_clusters(
            n_series=60, series_length=8, n_clusters=3, noise_std=0.02, separation=3.0, seed=1
        )
        data = collection.to_matrix()
        labels = np.array(collection.labels("cluster"))
        assert silhouette_score(data, labels) > 0.6

    def test_random_assignment_scores_low(self):
        collection = generate_gaussian_clusters(
            n_series=60, series_length=8, n_clusters=3, noise_std=0.02, separation=3.0, seed=1
        )
        data = collection.to_matrix()
        random_labels = np.random.default_rng(0).integers(0, 3, size=60)
        good_labels = np.array(collection.labels("cluster"))
        assert silhouette_score(data, random_labels) < silhouette_score(data, good_labels)

    def test_single_cluster_returns_zero(self):
        data = np.random.default_rng(0).normal(size=(10, 3))
        assert silhouette_score(data, np.zeros(10, dtype=int)) == 0.0

    def test_sampled_version_close_to_full(self):
        collection = generate_gaussian_clusters(
            n_series=80, series_length=6, n_clusters=2, noise_std=0.05, seed=2
        )
        data = collection.to_matrix()
        labels = np.array(collection.labels("cluster"))
        full = silhouette_score(data, labels)
        sampled = silhouette_score(data, labels, sample_size=40, seed=1)
        assert sampled == pytest.approx(full, abs=0.15)

    def test_assignment_length_checked(self):
        with pytest.raises(ValidationError):
            silhouette_score(np.zeros((4, 2)), np.zeros(3, dtype=int))


class TestCentroidMatching:
    def test_identity_matching(self):
        centroids = np.array([[0.0, 0.0], [1.0, 1.0]])
        pairs = match_centroids(centroids, centroids)
        assert pairs == [(0, 0), (1, 1)]
        assert centroid_matching_error(centroids, centroids) == pytest.approx(0.0)

    def test_permutation_recovered(self):
        reference = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        produced = reference[[2, 0, 1]]
        pairs = dict(match_centroids(reference, produced))
        assert pairs == {0: 1, 1: 2, 2: 0}
        assert centroid_matching_error(reference, produced) == pytest.approx(0.0)

    def test_error_reflects_perturbation(self):
        reference = np.zeros((2, 4))
        produced = reference + 0.5
        assert centroid_matching_error(reference, produced) == pytest.approx(1.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValidationError):
            match_centroids(np.zeros((2, 3)), np.zeros((2, 4)))


class TestReports:
    def test_relative_inertia(self):
        data = np.random.default_rng(1).normal(size=(30, 4))
        result = kmeans(data, 3, seed=0)
        assert relative_inertia(data, result.centroids, result.inertia) == pytest.approx(1.0)
        with pytest.raises(ValidationError):
            relative_inertia(data, result.centroids, 0.0)

    def test_quality_report_keys(self):
        collection = generate_gaussian_clusters(
            n_series=40, series_length=6, n_clusters=2, seed=3
        )
        data = collection.to_matrix()
        reference = kmeans(data, 2, seed=0)
        report = quality_report(
            data,
            reference.centroids,
            reference_centroids=reference.centroids,
            reference_inertia=reference.inertia,
            true_labels=np.array(collection.labels("cluster")),
        )
        assert report["relative_inertia"] == pytest.approx(1.0)
        assert report["centroid_matching_error"] == pytest.approx(0.0, abs=1e-6)
        assert 0.0 <= report["adjusted_rand_index"] <= 1.0
        assert report["n_clusters_used"] == 2.0
