"""Tests of the collaborative decryption inside the simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.collaborative import (
    collaborative_decrypt,
    share_holder_ids,
    share_index_of,
)
from repro.exceptions import ThresholdError
from repro.gossip import fresh_estimate
from repro.simulation import CycleEngine, Node


class IdleNode(Node):
    def next_cycle(self, engine, cycle):  # pragma: no cover - never run in these tests
        pass


def make_engine(n_nodes: int) -> CycleEngine:
    return CycleEngine([IdleNode(i) for i in range(n_nodes)], seed=0)


class TestCommitteeHelpers:
    def test_share_holder_ids(self):
        assert share_holder_ids(4) == [0, 1, 2, 3]

    def test_share_index_of(self):
        assert share_index_of(0, 4) == 1
        assert share_index_of(3, 4) == 4
        assert share_index_of(4, 4) is None
        assert share_index_of(10, 4) is None


class TestCollaborativeDecrypt:
    def test_round_trip(self, plain_backend):
        engine = make_engine(6)
        values = np.array([0.25, -0.5, 1.0])
        estimate = fresh_estimate(plain_backend, values)
        outcome = collaborative_decrypt(engine, requester_id=5, backend=plain_backend,
                                        estimate=estimate)
        assert np.allclose(outcome.values, values, atol=1e-5)
        assert len(outcome.helpers) == plain_backend.threshold
        assert outcome.messages == 2 * plain_backend.threshold

    def test_real_crypto_round_trip(self, dj_backend):
        engine = make_engine(5)
        values = np.array([0.5, -1.5])
        estimate = fresh_estimate(dj_backend, values)
        outcome = collaborative_decrypt(engine, 4, dj_backend, estimate)
        assert np.allclose(outcome.values, values, atol=1e-3)

    def test_exponent_undone(self, plain_backend):
        from repro.gossip import average_estimates

        engine = make_engine(4)
        a = fresh_estimate(plain_backend, [1.0, 0.0])
        b = fresh_estimate(plain_backend, [0.0, 1.0])
        averaged = average_estimates(plain_backend, a, b)
        outcome = collaborative_decrypt(engine, 3, plain_backend, averaged)
        assert np.allclose(outcome.values, [0.5, 0.5], atol=1e-5)

    def test_network_traffic_accounted(self, plain_backend):
        engine = make_engine(4)
        estimate = fresh_estimate(plain_backend, [1.0, 2.0, 3.0])
        before = engine.network.total.bytes_sent
        outcome = collaborative_decrypt(engine, 3, plain_backend, estimate)
        assert engine.network.total.bytes_sent - before == outcome.bytes_transferred
        assert outcome.bytes_transferred > 0

    def test_fails_when_committee_offline(self, plain_backend):
        engine = make_engine(6)
        # Take the whole committee (nodes 0..3) offline except one.
        for node_id in range(3):
            engine.node(node_id).online = False
        estimate = fresh_estimate(plain_backend, [1.0])
        with pytest.raises(ThresholdError):
            collaborative_decrypt(engine, 5, plain_backend, estimate)

    def test_succeeds_with_partial_committee(self, plain_backend):
        engine = make_engine(6)
        engine.node(0).online = False  # 3 committee members remain, threshold is 2
        estimate = fresh_estimate(plain_backend, [0.75])
        outcome = collaborative_decrypt(engine, 5, plain_backend, estimate)
        assert np.allclose(outcome.values, [0.75], atol=1e-5)
        assert 0 not in outcome.helpers
