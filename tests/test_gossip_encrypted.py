"""Tests of the encrypted gossip averaging primitive."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GossipError
from repro.gossip import (
    add_estimates,
    average_estimates,
    check_headroom,
    decode_estimate,
    encrypted_gossip_average,
    estimate_payload_bytes,
    fresh_estimate,
    lift_estimate,
    max_relative_error,
    required_headroom_bits,
    zero_estimate,
)


class TestEstimateAlgebra:
    def test_fresh_estimate_round_trip(self, plain_backend):
        values = np.array([0.5, -0.25, 1.0])
        estimate = fresh_estimate(plain_backend, values)
        assert estimate.halvings == 0
        decoded = decode_estimate(plain_backend, estimate, [1, 2])
        assert np.allclose(decoded, values, atol=1e-5)

    def test_zero_estimate(self, plain_backend):
        estimate = zero_estimate(plain_backend, 4)
        assert np.allclose(decode_estimate(plain_backend, estimate, [1, 2]), 0.0)

    def test_average_of_two_estimates(self, plain_backend):
        a = fresh_estimate(plain_backend, [1.0, 0.0])
        b = fresh_estimate(plain_backend, [0.0, 1.0])
        averaged = average_estimates(plain_backend, a, b)
        assert averaged.halvings == 1
        assert np.allclose(decode_estimate(plain_backend, averaged, [1, 2]), [0.5, 0.5],
                           atol=1e-5)

    def test_average_with_mismatched_exponents(self, plain_backend):
        a = fresh_estimate(plain_backend, [1.0])
        b = fresh_estimate(plain_backend, [0.0])
        once = average_estimates(plain_backend, a, b)          # 0.5 at exponent 1
        again = average_estimates(plain_backend, once, a)      # (0.5 + 1)/2 = 0.75
        assert np.allclose(decode_estimate(plain_backend, again, [1, 2]), [0.75], atol=1e-5)

    def test_repeated_averaging_matches_cleartext(self, plain_backend, fresh_rng):
        values = fresh_rng.uniform(-1, 1, size=(4, 3))
        estimates = [fresh_estimate(plain_backend, row) for row in values]
        clear = [row.copy() for row in values]
        pairs = [(0, 1), (2, 3), (0, 2), (1, 3), (0, 3)]
        for i, j in pairs:
            merged = average_estimates(plain_backend, estimates[i], estimates[j])
            estimates[i] = merged
            estimates[j] = merged
            mean = (clear[i] + clear[j]) / 2
            clear[i] = mean.copy()
            clear[j] = mean.copy()
        for estimate, expected in zip(estimates, clear):
            assert np.allclose(decode_estimate(plain_backend, estimate, [1, 2]), expected,
                               atol=1e-4)

    def test_add_estimates_no_halving(self, plain_backend):
        a = fresh_estimate(plain_backend, [1.0, 2.0])
        b = fresh_estimate(plain_backend, [0.5, -1.0])
        total = add_estimates(plain_backend, a, b)
        assert total.halvings == 0
        assert np.allclose(decode_estimate(plain_backend, total, [1, 2]), [1.5, 1.0], atol=1e-5)

    def test_add_estimates_with_exponents(self, plain_backend):
        a = fresh_estimate(plain_backend, [1.0])
        b = fresh_estimate(plain_backend, [1.0])
        half = average_estimates(plain_backend, a, b)  # value 1.0, exponent 1
        total = add_estimates(plain_backend, half, a)  # 1.0 + 1.0
        assert np.allclose(decode_estimate(plain_backend, total, [1, 2]), [2.0], atol=1e-5)

    def test_lift_cannot_lower_exponent(self, plain_backend):
        a = fresh_estimate(plain_backend, [1.0])
        lifted = lift_estimate(plain_backend, a, 3)
        with pytest.raises(GossipError):
            lift_estimate(plain_backend, lifted, 1)

    def test_lift_preserves_value(self, plain_backend):
        a = fresh_estimate(plain_backend, [0.75, -0.5])
        lifted = lift_estimate(plain_backend, a, 5)
        assert np.allclose(decode_estimate(plain_backend, lifted, [1, 2]), [0.75, -0.5],
                           atol=1e-5)

    def test_length_mismatch_rejected(self, plain_backend):
        with pytest.raises(GossipError):
            average_estimates(
                plain_backend,
                fresh_estimate(plain_backend, [1.0]),
                fresh_estimate(plain_backend, [1.0, 2.0]),
            )

    def test_payload_bytes_positive(self, plain_backend):
        estimate = fresh_estimate(plain_backend, [1.0, 2.0, 3.0])
        assert estimate_payload_bytes(plain_backend, estimate) > 0


class TestHeadroom:
    def test_required_bits_grow_with_halvings(self):
        assert required_headroom_bits(1.0, 10**6, 40) > required_headroom_bits(1.0, 10**6, 10)

    def test_check_headroom_passes_for_large_modulus(self, plain_backend):
        check_headroom(plain_backend, value_bound=1.0, total_halvings=50)

    def test_check_headroom_fails_for_small_key(self):
        from repro.crypto.backends import PlainBackend

        tiny = PlainBackend(threshold=2, n_shares=4, encoding_scale=10**6, modulus_bits=40)
        with pytest.raises(GossipError):
            check_headroom(tiny, value_bound=1.0, total_halvings=30)

    def test_invalid_arguments(self):
        with pytest.raises(GossipError):
            required_headroom_bits(0.0, 10**6, 5)


class TestEncryptedGossipEndToEnd:
    def test_plain_backend_converges(self, plain_backend, fresh_rng):
        values = fresh_rng.uniform(0, 1, size=(20, 4))
        estimates = encrypted_gossip_average(plain_backend, values, cycles=15, seed=2)
        assert max_relative_error(estimates, values.mean(axis=0)) < 5e-3

    def test_real_crypto_backend_converges(self, dj_backend, fresh_rng):
        values = fresh_rng.uniform(0, 1, size=(6, 3))
        estimates = encrypted_gossip_average(dj_backend, values, cycles=6, seed=3)
        assert max_relative_error(estimates, values.mean(axis=0)) < 0.05

    def test_rejects_non_matrix_input(self, plain_backend):
        with pytest.raises(GossipError):
            encrypted_gossip_average(plain_backend, np.ones(5), cycles=2)
