"""Tests of TimeSeriesCollection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TimeSeriesError
from repro.timeseries import TimeSeries, TimeSeriesCollection


def make_collection(n=5, length=4):
    return TimeSeriesCollection(
        [
            TimeSeries(np.full(length, float(i)), series_id=f"s{i}", metadata={"cluster": i % 2})
            for i in range(n)
        ],
        name="test",
    )


class TestConstruction:
    def test_basic_properties(self):
        collection = make_collection()
        assert len(collection) == 5
        assert collection.series_length == 4
        assert collection.series_ids == [f"s{i}" for i in range(5)]

    def test_rejects_empty(self):
        with pytest.raises(TimeSeriesError):
            TimeSeriesCollection([])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(TimeSeriesError):
            TimeSeriesCollection([TimeSeries([1.0, 2.0]), TimeSeries([1.0])])

    def test_from_matrix_round_trip(self):
        matrix = np.arange(12, dtype=float).reshape(3, 4)
        collection = TimeSeriesCollection.from_matrix(matrix, name="m")
        assert np.array_equal(collection.to_matrix(), matrix)
        assert collection[0].series_id == "series-0"

    def test_from_matrix_checks_ids(self):
        with pytest.raises(TimeSeriesError):
            TimeSeriesCollection.from_matrix(np.zeros((2, 3)), ids=["only-one"])

    def test_from_matrix_checks_metadata(self):
        with pytest.raises(TimeSeriesError):
            TimeSeriesCollection.from_matrix(np.zeros((2, 3)), metadata=[{}])

    def test_repr_mentions_size(self):
        assert "n_series=5" in repr(make_collection())


class TestViews:
    def test_to_matrix_is_a_copy(self):
        collection = make_collection()
        matrix = collection.to_matrix()
        matrix[0, 0] = 99.0
        assert collection[0].values[0] == 0.0

    def test_labels(self):
        collection = make_collection()
        assert collection.labels("cluster") == [0, 1, 0, 1, 0]
        assert collection.labels("missing") == [None] * 5

    def test_value_bound(self):
        collection = make_collection()
        assert collection.value_bound() == 4.0


class TestTransforms:
    def test_normalized_per_series(self):
        collection = TimeSeriesCollection([
            TimeSeries([0.0, 2.0]), TimeSeries([1.0, 3.0]),
        ])
        normalised = collection.normalized("minmax")
        assert np.allclose(normalised.to_matrix(), [[0.0, 1.0], [0.0, 1.0]])

    def test_clipped(self):
        collection = make_collection()
        clipped = collection.clipped(0.0, 2.0)
        assert clipped.to_matrix().max() == 2.0

    def test_subset_preserves_order(self):
        collection = make_collection()
        subset = collection.subset([3, 1])
        assert subset.series_ids == ["s3", "s1"]

    def test_subset_rejects_empty(self):
        with pytest.raises(TimeSeriesError):
            make_collection().subset([])

    def test_sample(self, fresh_rng):
        collection = make_collection()
        sample = collection.sample(3, fresh_rng)
        assert len(sample) == 3
        assert len(set(sample.series_ids)) == 3

    def test_sample_rejects_oversize(self, fresh_rng):
        with pytest.raises(TimeSeriesError):
            make_collection().sample(10, fresh_rng)

    def test_split_partitions_everything(self, fresh_rng):
        collection = make_collection(10)
        first, second = collection.split(0.3, fresh_rng)
        assert len(first) + len(second) == 10
        assert set(first.series_ids).isdisjoint(second.series_ids)

    def test_split_rejects_bad_fraction(self, fresh_rng):
        with pytest.raises(TimeSeriesError):
            make_collection().split(1.5, fresh_rng)

    def test_map_applies_transform(self):
        collection = make_collection()
        doubled = collection.map(lambda s: s.copy_with(values=s.values * 2))
        assert np.allclose(doubled.to_matrix(), collection.to_matrix() * 2)


class TestSerialisation:
    def test_dict_round_trip(self):
        collection = make_collection()
        restored = TimeSeriesCollection.from_dicts(collection.to_dicts(), name="test")
        assert np.array_equal(restored.to_matrix(), collection.to_matrix())
        assert restored.labels("cluster") == collection.labels("cluster")
