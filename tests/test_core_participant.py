"""Unit tests of the participant state machine (driven through a tiny engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import public_initial_centroids
from repro.config import ChiaroscuroConfig
from repro.core.participant import ChiaroscuroParticipant, Phase
from repro.exceptions import ProtocolError
from repro.gossip import build_overlay
from repro.simulation import CycleEngine


def make_participants(n=6, length=6, config=None, backend=None):
    config = config if config is not None else ChiaroscuroConfig().with_overrides(
        kmeans={"n_clusters": 2, "max_iterations": 3},
        privacy={"epsilon": 5.0, "noise_shares": 3},
        gossip={"cycles_per_aggregation": 3},
        crypto={"threshold": 2, "n_key_shares": 3},
        simulation={"n_participants": n, "seed": 0},
    )
    if backend is None:
        from repro.crypto.backends import PlainBackend

        backend = PlainBackend(threshold=2, n_shares=3)
    overlay = build_overlay(n, topology="complete")
    centroids = public_initial_centroids(2, length, 0.0, 1.0, seed=0)
    rng = np.random.default_rng(5)
    data = rng.uniform(0.0, 1.0, size=(n, length))
    participants = [
        ChiaroscuroParticipant(
            node_id=i,
            series_values=data[i],
            initial_centroids=centroids,
            config=config,
            backend=backend,
            overlay=overlay,
            noise_contributor=i < 3,
            n_noise_contributors=3,
            seed=i,
        )
        for i in range(n)
    ]
    return participants, config, data


class TestConstruction:
    def test_initial_state(self):
        participants, _config, _data = make_participants()
        participant = participants[0]
        assert participant.phase is Phase.ASSIGN
        assert participant.iteration == 0
        assert not participant.is_done
        assert participant.n_clusters == 2
        assert participant.series_length == 6

    def test_series_must_be_one_dimensional(self):
        participants, config, _data = make_participants()
        with pytest.raises(ProtocolError):
            ChiaroscuroParticipant(
                node_id=0,
                series_values=np.zeros((2, 3)),
                initial_centroids=participants[0].centroids,
                config=config,
                backend=participants[0].backend,
                overlay=participants[0].overlay,
                noise_contributor=False,
                n_noise_contributors=1,
            )

    def test_centroid_length_must_match_series(self):
        participants, config, _data = make_participants()
        with pytest.raises(ProtocolError):
            ChiaroscuroParticipant(
                node_id=0,
                series_values=np.zeros(4),
                initial_centroids=np.zeros((2, 6)),
                config=config,
                backend=participants[0].backend,
                overlay=participants[0].overlay,
                noise_contributor=False,
                n_noise_contributors=1,
            )


class TestStateMachine:
    def test_phase_progression_over_cycles(self):
        participants, config, _data = make_participants()
        engine = CycleEngine(participants, seed=0)
        engine.run_cycle()  # assignment
        assert all(p.phase is Phase.GOSSIP for p in participants)
        assert all(p.iteration == 1 for p in participants)
        assert all(p.assigned_cluster is not None for p in participants)
        engine.run(config.gossip.cycles_per_aggregation)  # gossip cycles
        assert all(p.phase is Phase.DECRYPT for p in participants)
        engine.run_cycle()  # decryption + convergence check
        assert all(p.phase in (Phase.ASSIGN, Phase.DONE) for p in participants)
        assert all(len(p.perturbed_means_history) == 1 for p in participants)

    def test_assignment_picks_closest_centroid(self):
        participants, _config, data = make_participants()
        participant = participants[0]
        participant._assignment_step()
        distances = np.linalg.norm(
            participant.centroids - data[0][None, :], axis=1
        )
        assert participant.assigned_cluster == int(np.argmin(distances))

    def test_noise_contributors_embed_noise(self):
        participants, _config, _data = make_participants()
        contributor = participants[0]       # noise contributor
        bystander = participants[5]         # not a contributor
        assert contributor._draw_noise_shares(1.0) is not None
        assert bystander._draw_noise_shares(1.0) is None

    def test_run_to_completion(self):
        participants, config, _data = make_participants()
        engine = CycleEngine(participants, seed=0)
        engine.run(60, stop_when=lambda eng: all(p.is_done for p in participants))
        assert all(p.is_done for p in participants)
        assert all(p.final_profiles is not None for p in participants)
        assert all(p.stop_reason != "" for p in participants)
        for participant in participants:
            assert participant.accountant.spent_epsilon <= config.privacy.epsilon + 1e-9

    def test_done_participants_stay_done(self):
        participants, _config, _data = make_participants()
        engine = CycleEngine(participants, seed=0)
        engine.run(60, stop_when=lambda eng: all(p.is_done for p in participants))
        profiles_before = [p.final_profiles.copy() for p in participants]
        engine.run(3)
        for before, participant in zip(profiles_before, participants):
            assert np.array_equal(before, participant.final_profiles)

    def test_budget_exhaustion_finishes_participant(self):
        config = ChiaroscuroConfig().with_overrides(
            kmeans={"n_clusters": 2, "max_iterations": 10,
                    "convergence_threshold": 0.0, "track_quality": False},
            privacy={"epsilon": 0.05, "noise_shares": 3, "budget_strategy": "uniform"},
            gossip={"cycles_per_aggregation": 2},
            crypto={"threshold": 2, "n_key_shares": 3},
            simulation={"n_participants": 6, "seed": 0},
        )
        participants, _config, _data = make_participants(config=config)
        engine = CycleEngine(participants, seed=0)
        engine.run(200, stop_when=lambda eng: all(p.is_done for p in participants))
        assert all(p.is_done for p in participants)

    def test_assignment_history_tracks_every_iteration(self):
        participants, _config, _data = make_participants()
        engine = CycleEngine(participants, seed=0)
        engine.run(60, stop_when=lambda eng: all(p.is_done for p in participants))
        for participant in participants:
            assert len(participant.assignment_history) >= 1
            assert len(participant.assignment_history) >= len(
                participant.perturbed_means_history
            ) - 1
