"""Bootstrap over announcement frames: round-trips, late joiners, keys.

The membership/key bootstrap is the part of the live runner that drives the
(previously unused) ``MembershipAnnouncement``/``KeyAnnouncement`` frames;
the directory is transport-free, so everything here runs without sockets.
"""

from __future__ import annotations

import pytest

from repro.crypto.backends import make_backend
from repro.exceptions import ProtocolError, WireFormatError
from repro.gossip.messages import (
    KeyAnnouncement,
    MembershipAnnouncement,
    deserialize,
)
from repro.net.bootstrap import (
    MembershipDirectory,
    key_announcement_for,
    verify_key_announcement,
)


class TestAnnouncementRoundTrip:
    def test_membership_announcement_round_trips(self):
        message = MembershipAnnouncement(node_id=12, online=True, cycle=7)
        assert deserialize(message.serialize()) == message

    def test_key_announcement_round_trips(self):
        message = KeyAnnouncement(modulus=2**128 + 51, degree=2, threshold=3,
                                  n_shares=8)
        assert deserialize(message.serialize()) == message

    def test_directory_announce_emits_decodable_frames(self):
        directory = MembershipDirectory()
        frame = directory.announce(3, online=True, cycle=0,
                                   address=("127.0.0.1", 9000), worker=1)
        decoded = deserialize(frame)
        assert decoded == MembershipAnnouncement(node_id=3, online=True, cycle=0)
        assert directory.address_of(3) == ("127.0.0.1", 9000)
        assert directory.worker_of(3) == 1


class TestMembershipDirectory:
    def test_feed_builds_routing_state(self):
        directory = MembershipDirectory()
        for node_id in range(4):
            frame = MembershipAnnouncement(node_id=node_id, online=True,
                                           cycle=0).serialize()
            directory.feed(frame, address=("127.0.0.1", 9000 + node_id % 2),
                           worker=node_id % 2)
        assert len(directory) == 4
        assert directory.online_ids() == [0, 1, 2, 3]
        assert directory.address_of(2) == ("127.0.0.1", 9000)
        assert directory.worker_of(3) == 1

    def test_leave_announcement_keeps_the_address(self):
        directory = MembershipDirectory()
        directory.announce(5, online=True, cycle=0,
                           address=("127.0.0.1", 9100), worker=0)
        leave = MembershipAnnouncement(node_id=5, online=False,
                                       cycle=3).serialize()
        directory.feed(leave)
        assert directory.online_ids() == []
        assert directory.address_of(5) == ("127.0.0.1", 9100)

    def test_feed_rejects_non_membership_frames(self):
        directory = MembershipDirectory()
        key = KeyAnnouncement(modulus=77, degree=1, threshold=2,
                              n_shares=3).serialize()
        with pytest.raises(ProtocolError):
            directory.feed(key)

    def test_feed_rejects_corrupted_frames(self):
        directory = MembershipDirectory()
        frame = bytearray(MembershipAnnouncement(node_id=1, online=True,
                                                 cycle=0).serialize())
        frame[-1] ^= 0x01
        with pytest.raises(WireFormatError):
            directory.feed(bytes(frame))
        assert len(directory) == 0

    def test_unknown_node_queries_fail_loudly(self):
        directory = MembershipDirectory()
        with pytest.raises(ProtocolError):
            directory.address_of(9)
        directory.feed(MembershipAnnouncement(node_id=9, online=True,
                                              cycle=0).serialize())
        with pytest.raises(ProtocolError):
            directory.address_of(9)  # announced, but without an address


class TestLateJoinerCatchUp:
    def test_replaying_the_snapshot_reproduces_the_directory(self):
        """A late joiner catches up by replaying the membership gossip log."""
        seasoned = MembershipDirectory()
        for node_id in range(6):
            seasoned.announce(node_id, online=True, cycle=0,
                              address=("127.0.0.1", 9000 + node_id % 3),
                              worker=node_id % 3)
        # Some churn history: node 4 left, node 1 left and rejoined.
        seasoned.feed(MembershipAnnouncement(node_id=4, online=False,
                                             cycle=2).serialize())
        seasoned.feed(MembershipAnnouncement(node_id=1, online=False,
                                             cycle=3).serialize())
        seasoned.feed(MembershipAnnouncement(node_id=1, online=True,
                                             cycle=5).serialize())

        late_joiner = MembershipDirectory()
        applied = late_joiner.catch_up(seasoned.snapshot())
        assert applied == 9
        assert len(late_joiner) == len(seasoned)
        assert late_joiner.online_ids() == seasoned.online_ids() == [0, 1, 2, 3, 5]
        for node_id in range(6):
            assert late_joiner.record(node_id) == seasoned.record(node_id)
        # The copy's own snapshot replays again (gossip is transitive).
        third = MembershipDirectory()
        third.catch_up(late_joiner.snapshot())
        assert third.record(1) == seasoned.record(1)


class TestKeyAnnouncements:
    def test_plain_backend_key_announcement_verifies(self):
        backend = make_backend("plain", threshold=2, n_shares=3)
        frame = key_announcement_for(backend).serialize()
        message = verify_key_announcement(frame, backend)
        assert message.threshold == 2
        assert message.n_shares == 3
        assert message.degree == 1

    def test_damgard_jurik_key_announcement_carries_the_modulus(self):
        backend = make_backend("damgard_jurik", key_bits=128, degree=2,
                               threshold=2, n_shares=3)
        announcement = key_announcement_for(backend)
        assert announcement.modulus == backend.public_key.n
        assert announcement.degree == 2
        frame = announcement.serialize()
        assert verify_key_announcement(frame, backend) == announcement

    def test_mismatched_key_is_refused(self):
        ours = make_backend("damgard_jurik", key_bits=128, threshold=2,
                            n_shares=3)
        theirs = make_backend("damgard_jurik", key_bits=128, threshold=2,
                              n_shares=3)
        frame = key_announcement_for(theirs).serialize()
        with pytest.raises(ProtocolError):
            verify_key_announcement(frame, ours)

    def test_membership_frame_is_not_a_key(self):
        backend = make_backend("plain", threshold=2, n_shares=3)
        frame = MembershipAnnouncement(node_id=0, online=True,
                                       cycle=0).serialize()
        with pytest.raises(ProtocolError):
            verify_key_announcement(frame, backend)
