"""Unit tests of the bulk slab fault model (message loss + frame corruption).

Stream parity with the object engine's fault handling: one uniform draw per
sent message decides loss (requests in pair order, then replies for intact
requests), one gate draw per delivered frame decides corruption plus one
bit-position draw per corrupted frame (the frame fails its checksum and is
discarded).  A lost or corrupted request skips the pair; a lost or corrupted
reply leaves a half-exchange where only the requesting side averages.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.slab import (
    PairFaultPlan,
    average_pairs_inplace,
    half_average_pairs_inplace,
    plan_pair_faults,
)


def make_pairs(n_pairs: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    nodes = rng.permutation(2 * n_pairs + 3)[: 2 * n_pairs]
    return nodes.reshape(-1, 2).astype(np.int64)


def plan(pairs, drop=0.0, corrupt=0.0, seed=42):
    rng = np.random.default_rng(seed)
    return plan_pair_faults(
        pairs,
        frame_bits=800,
        drop_probability=drop,
        corruption_rate=corrupt,
        loss_rng=np.random.default_rng(seed),
        corruption_rng=np.random.default_rng(seed + 1),
    )


class TestZeroRatePassthrough:
    def test_zero_rates_draw_nothing_and_keep_all_pairs(self):
        pairs = make_pairs(10)
        loss_rng = np.random.default_rng(1)
        corruption_rng = np.random.default_rng(2)
        result = plan_pair_faults(pairs, frame_bits=800, drop_probability=0.0,
                                  corruption_rate=0.0, loss_rng=loss_rng,
                                  corruption_rng=corruption_rng)
        assert result.full_pairs is pairs
        assert result.half_pairs.shape == (0, 2)
        assert result.messages_sent == 2 * len(pairs)
        assert result.dropped_frames == 0
        assert result.corrupted_frames == 0
        # No draws were consumed: the streams still match fresh generators.
        assert loss_rng.random() == np.random.default_rng(1).random()
        assert corruption_rng.random() == np.random.default_rng(2).random()


class TestFaultSemantics:
    @given(n_pairs=st.integers(min_value=0, max_value=40),
           drop=st.floats(min_value=0.0, max_value=0.9),
           corrupt=st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=50, deadline=None)
    def test_accounting_identities(self, n_pairs, drop, corrupt):
        pairs = make_pairs(n_pairs)
        result = plan(pairs, drop=drop, corrupt=corrupt)
        assert isinstance(result, PairFaultPlan)
        n = len(pairs)
        # Every pair sends a request; replies only follow intact requests.
        assert result.requests_sent == n
        assert 0 <= result.replies_sent <= n
        assert result.messages_sent == result.requests_sent + result.replies_sent
        assert result.dropped_frames + result.corrupted_frames <= result.messages_sent
        # Partition: every pair is fully exchanged, half exchanged, or skipped.
        assert len(result.full_pairs) + len(result.half_pairs) <= n
        # A half-exchange means the request survived (a reply was sent).
        assert len(result.half_pairs) <= result.replies_sent

    def test_determinism(self):
        pairs = make_pairs(30)
        first = plan(pairs, drop=0.2, corrupt=0.1)
        second = plan(pairs, drop=0.2, corrupt=0.1)
        assert np.array_equal(first.full_pairs, second.full_pairs)
        assert np.array_equal(first.half_pairs, second.half_pairs)
        assert first.messages_sent == second.messages_sent
        assert first.dropped_frames == second.dropped_frames
        assert first.corrupted_frames == second.corrupted_frames

    def test_certain_loss_skips_everything(self):
        pairs = make_pairs(12)
        result = plan(pairs, drop=1.0)
        assert len(result.full_pairs) == 0
        assert len(result.half_pairs) == 0
        assert result.replies_sent == 0
        assert result.dropped_frames == 12
        # A dropped request is never delivered, so it cannot also corrupt.
        assert result.corrupted_frames == 0

    def test_certain_corruption_skips_everything(self):
        pairs = make_pairs(12)
        result = plan(pairs, corrupt=1.0)
        assert len(result.full_pairs) == 0
        assert len(result.half_pairs) == 0
        # The corrupted request is discarded at the receiver: no reply.
        assert result.replies_sent == 0
        assert result.dropped_frames == 0
        assert result.corrupted_frames == 12

    def test_faults_subset_of_pairs(self):
        pairs = make_pairs(25)
        result = plan(pairs, drop=0.3, corrupt=0.2)
        as_set = {tuple(pair) for pair in pairs}
        for pair in result.full_pairs:
            assert tuple(pair) in as_set
        for pair in result.half_pairs:
            assert tuple(pair) in as_set
        full = {tuple(pair) for pair in result.full_pairs}
        half = {tuple(pair) for pair in result.half_pairs}
        assert not full & half


class TestHalfExchange:
    def test_half_average_touches_only_requesters(self):
        rng = np.random.default_rng(9)
        estimates = rng.normal(size=(10, 4))
        before = estimates.copy()
        pairs = np.array([[0, 1], [4, 7]], dtype=np.int64)
        half_average_pairs_inplace(estimates, pairs)
        for left, right in pairs:
            expected = 0.5 * (before[left] + before[right])
            assert np.array_equal(estimates[right], expected)
            assert np.array_equal(estimates[left], before[left])
        untouched = [i for i in range(10) if i not in {1, 7}]
        assert np.array_equal(estimates[untouched], before[untouched])

    def test_full_average_touches_both_sides(self):
        rng = np.random.default_rng(9)
        estimates = rng.normal(size=(6, 3))
        before = estimates.copy()
        pairs = np.array([[2, 5]], dtype=np.int64)
        average_pairs_inplace(estimates, pairs)
        expected = 0.5 * (before[2] + before[5])
        assert np.array_equal(estimates[2], expected)
        assert np.array_equal(estimates[5], expected)
