"""Tests of the shared argument-validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro._validation import (
    as_1d_float_array,
    as_2d_float_array,
    check_fraction_open,
    check_in_choices,
    check_non_negative_float,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
    check_same_length,
    require,
)
from repro.exceptions import ReproError, ValidationError


class TestScalarChecks:
    def test_positive_int_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_positive_int_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, "x")

    def test_positive_int_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "x")

    def test_positive_int_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.5, "x")

    def test_non_negative_int_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_non_negative_int_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative_int(-1, "x")

    def test_positive_float_accepts(self):
        assert check_positive_float(0.25, "x") == 0.25

    def test_positive_float_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_float(0.0, "x")

    def test_positive_float_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_positive_float(float("nan"), "x")

    def test_positive_float_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_positive_float(float("inf"), "x")

    def test_positive_float_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_positive_float("abc", "x")  # type: ignore[arg-type]

    def test_non_negative_float_accepts_zero(self):
        assert check_non_negative_float(0.0, "x") == 0.0

    def test_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValidationError):
            check_probability(1.5, "p")

    def test_fraction_open_rejects_one(self):
        with pytest.raises(ValidationError):
            check_fraction_open(1.0, "f")

    def test_fraction_open_accepts_half(self):
        assert check_fraction_open(0.5, "f") == 0.5

    def test_in_choices(self):
        assert check_in_choices("a", ("a", "b"), "x") == "a"
        with pytest.raises(ValidationError):
            check_in_choices("c", ("a", "b"), "x")

    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValidationError, match="broken"):
            require(False, "broken")


class TestArrayChecks:
    def test_1d_conversion(self):
        out = as_1d_float_array([1, 2, 3], "x")
        assert out.dtype == float
        assert out.shape == (3,)

    def test_1d_rejects_2d(self):
        with pytest.raises(ValidationError):
            as_1d_float_array([[1, 2], [3, 4]], "x")

    def test_1d_rejects_empty(self):
        with pytest.raises(ValidationError):
            as_1d_float_array([], "x")

    def test_1d_rejects_nan(self):
        with pytest.raises(ValidationError):
            as_1d_float_array([1.0, float("nan")], "x")

    def test_2d_conversion(self):
        out = as_2d_float_array([[1, 2], [3, 4]], "x")
        assert out.shape == (2, 2)

    def test_2d_rejects_1d(self):
        with pytest.raises(ValidationError):
            as_2d_float_array([1, 2, 3], "x")

    def test_2d_rejects_inf(self):
        with pytest.raises(ValidationError):
            as_2d_float_array([[1.0, float("inf")]], "x")

    def test_same_length(self):
        check_same_length(np.zeros(3), np.ones(3), "pair")
        with pytest.raises(ValidationError):
            check_same_length(np.zeros(3), np.ones(4), "pair")

    def test_validation_error_is_repro_and_value_error(self):
        assert issubclass(ValidationError, ReproError)
        assert issubclass(ValidationError, ValueError)
