"""Integration tests of the full Chiaroscuro protocol run."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ChiaroscuroConfig, run_chiaroscuro
from repro.baselines import centralized_kmeans
from repro.clustering import adjusted_rand_index
from repro.core.runner import denormalize_profiles, normalize_collection
from repro.datasets import generate_gaussian_clusters, generate_numed_like
from repro.exceptions import ConfigurationError, ProtocolError


@pytest.fixture(scope="module")
def collection():
    return generate_gaussian_clusters(
        n_series=40, series_length=12, n_clusters=3, noise_std=0.05, seed=13
    )


@pytest.fixture(scope="module")
def result(collection, fast_config):
    return run_chiaroscuro(collection, fast_config)


class TestNormalization:
    def test_normalize_collection_range(self, collection):
        data, transform = normalize_collection(collection, value_bound=1.0)
        assert data.min() >= 0.0 and data.max() <= 1.0
        assert transform["value_bound"] == 1.0

    def test_denormalize_round_trip(self, collection):
        data, transform = normalize_collection(collection, value_bound=1.0)
        restored = denormalize_profiles(data, transform)
        assert np.allclose(restored, collection.to_matrix(), atol=1e-9)

    def test_constant_collection_handled(self):
        from repro.datasets import generate_constant_series

        constant = generate_constant_series(5, 4, value=3.0)
        data, _transform = normalize_collection(constant, value_bound=1.0)
        assert np.all(np.isfinite(data))

    def test_denormalize_rejects_zero_scale(self):
        with pytest.raises(ProtocolError):
            denormalize_profiles(np.zeros((2, 2)), {"scale": 0.0, "offset": 0.0})


class TestRunOutcome:
    def test_profiles_shape_and_range(self, result, fast_config):
        assert result.profiles.shape == (3, 12)
        assert result.profiles.min() >= 0.0
        assert result.profiles.max() <= fast_config.privacy.value_bound + 1e-9

    def test_every_participant_finished(self, result, collection):
        assert sum(result.stop_reasons.values()) == len(collection)
        assert "unfinished" not in result.stop_reasons
        assert len(result.per_participant_profiles) == len(collection)

    def test_assignments_cover_population(self, result, collection):
        assert result.assignments.shape == (len(collection),)
        assert set(np.unique(result.assignments)).issubset({0, 1, 2})
        assert sum(result.cluster_sizes().values()) == len(collection)

    def test_privacy_budget_respected(self, result, fast_config):
        assert result.epsilon_spent <= fast_config.privacy.epsilon + 1e-9
        assert result.guarantee.effective_epsilon >= result.epsilon_spent
        assert 0.0 <= result.guarantee.delta <= 1.0

    def test_iterations_bounded(self, result, fast_config):
        assert 1 <= result.n_iterations <= fast_config.kmeans.max_iterations

    def test_costs_are_positive_and_consistent(self, result, collection):
        costs = result.costs
        assert costs.n_participants == len(collection)
        assert costs.messages_sent > 0
        assert costs.bytes_sent > 0
        assert costs.encryptions > 0
        assert costs.bytes_per_participant == pytest.approx(
            costs.bytes_sent / len(collection)
        )
        as_dict = costs.as_dict()
        assert as_dict["messages_per_participant"] > 0

    def test_phase_split_attached_from_the_committed_profile(self, result):
        """With BENCH_crypto.json at the repo root every run result carries
        the offline/online phase split, and the phases sum to the total
        modelled crypto seconds."""
        costs = result.costs
        assert costs.offline_seconds is not None
        assert costs.online_seconds is not None
        assert costs.online_seconds > 0.0
        assert costs.offline_seconds >= 0.0
        as_dict = costs.as_dict()
        assert as_dict["online_seconds"] == costs.online_seconds
        assert set(as_dict["phase_ops"]) == {"offline", "online"}
        assert as_dict["phase_ops"]["online"]["encryptions"] == costs.encryptions

    def test_execution_log_populated(self, result):
        assert len(result.log) >= 1
        assert len(result.log) <= result.n_iterations
        record = result.log[0]
        assert record.perturbed_means is not None
        assert record.noise_free_means is not None
        assert record.epsilon_spent > 0
        assert record.costs["messages_sent"] > 0

    def test_tracked_participants_followed(self, result):
        history = result.log.tracked_assignment_history()
        assert len(history) >= 1
        for assignments in history.values():
            assert all(0 <= cluster < 3 for cluster in assignments)

    def test_participant_views_agree(self, result):
        """After convergence every participant's profiles are close to the consensus."""
        for profiles in result.per_participant_profiles.values():
            assert np.linalg.norm(profiles - result.profiles) / max(
                1e-9, np.linalg.norm(result.profiles)
            ) < 0.6

    def test_summary_is_json_friendly(self, result):
        import json

        json.dumps(result.summary())

    def test_profile_accessor_bounds(self, result):
        from repro.exceptions import AnalysisError

        assert result.profile(0).shape == (12,)
        with pytest.raises(AnalysisError):
            result.profile(10)


class TestRunBehaviour:
    def test_deterministic_given_seed(self, collection, fast_config):
        first = run_chiaroscuro(collection, fast_config)
        second = run_chiaroscuro(collection, fast_config)
        assert np.allclose(first.profiles, second.profiles)

    def test_quality_improves_with_epsilon(self, collection, fast_config):
        loose = run_chiaroscuro(
            collection, fast_config.with_overrides(privacy={"epsilon": 0.1})
        )
        tight = run_chiaroscuro(
            collection, fast_config.with_overrides(privacy={"epsilon": 50.0})
        )
        assert tight.inertia < loose.inertia

    def test_high_epsilon_recovers_partition(self, collection, fast_config):
        config = fast_config.with_overrides(
            privacy={"epsilon": 200.0}, kmeans={"n_clusters": 3, "max_iterations": 6}
        )
        result = run_chiaroscuro(collection, config)
        labels = np.array(collection.labels("cluster"))
        assert adjusted_rand_index(labels, result.assignments) > 0.8

    def test_comparable_to_centralized_at_high_epsilon(self, collection, fast_config):
        config = fast_config.with_overrides(privacy={"epsilon": 200.0})
        result = run_chiaroscuro(collection, config)
        data, _ = normalize_collection(collection, 1.0)
        from repro.timeseries import TimeSeriesCollection

        normalised = TimeSeriesCollection.from_matrix(data)
        reference = centralized_kmeans(normalised, config.kmeans, seed=0, n_restarts=3)
        assert result.inertia <= reference.inertia * 10

    def test_budget_exhaustion_stops_early(self, collection, fast_config):
        config = fast_config.with_overrides(
            privacy={"epsilon": 0.2, "budget_strategy": "uniform"},
            kmeans={"n_clusters": 3, "max_iterations": 10},
        )
        result = run_chiaroscuro(collection, config)
        assert result.epsilon_spent <= 0.2 + 1e-9

    def test_churn_does_not_break_the_run(self, collection, fast_config):
        config = fast_config.with_overrides(
            simulation={"churn_rate": 0.05, "rejoin_rate": 0.6, "seed": 4},
        )
        result = run_chiaroscuro(collection, config)
        assert result.profiles.shape == (3, 12)
        assert sum(result.stop_reasons.values()) == len(collection)

    def test_message_drops_do_not_break_the_run(self, collection, fast_config):
        config = fast_config.with_overrides(gossip={"drop_probability": 0.2})
        result = run_chiaroscuro(collection, config)
        assert result.profiles.shape == (3, 12)

    def test_threshold_larger_than_population_rejected(self, fast_config):
        tiny = generate_gaussian_clusters(n_series=3, series_length=6, n_clusters=2, seed=1)
        config = fast_config.with_overrides(
            kmeans={"n_clusters": 2},
            privacy={"noise_shares": 2},
            crypto={"threshold": 4, "n_key_shares": 6},
        )
        with pytest.raises(ConfigurationError):
            run_chiaroscuro(tiny, config)

    def test_more_clusters_than_participants_rejected(self, fast_config):
        tiny = generate_gaussian_clusters(n_series=2, series_length=6, n_clusters=2, seed=1)
        config = fast_config.with_overrides(
            kmeans={"n_clusters": 5}, privacy={"noise_shares": 2},
            crypto={"threshold": 2, "n_key_shares": 4},
        )
        with pytest.raises(ConfigurationError):
            run_chiaroscuro(tiny, config)

    def test_numed_dataset_runs(self, fast_config):
        patients = generate_numed_like(n_patients=30, n_weeks=20, seed=3)
        config = fast_config.with_overrides(kmeans={"n_clusters": 3, "max_iterations": 3})
        result = run_chiaroscuro(patients, config)
        assert result.profiles.shape == (3, 20)

    def test_real_crypto_end_to_end(self):
        """Full protocol with genuine Damgård–Jurik threshold encryption.

        Kept deliberately tiny (8 devices, 6-point series) so the suite stays
        fast while still exercising the complete encrypted code path.
        """
        collection = generate_gaussian_clusters(
            n_series=8, series_length=6, n_clusters=2, noise_std=0.05, seed=21
        )
        config = ChiaroscuroConfig().with_overrides(
            kmeans={"n_clusters": 2, "max_iterations": 2},
            privacy={"epsilon": 20.0, "noise_shares": 4},
            gossip={"cycles_per_aggregation": 3},
            crypto={"backend": "damgard_jurik", "key_bits": 192, "threshold": 2,
                    "n_key_shares": 3, "encoding_scale": 10**4},
            simulation={"n_participants": 8, "seed": 1},
        )
        result = run_chiaroscuro(collection, config)
        assert result.profiles.shape == (2, 6)
        assert result.costs.encryptions > 0
        assert result.costs.partial_decryptions > 0
