"""End-to-end guarantees of the wire format inside the full protocol.

* a complete run with ``network.wire="auto"`` is bit-identical (profiles,
  assignments, execution log, operation counts) to ``wire="off"``, while
  ``bytes_sent`` switches from the modelled formula to measured frame
  lengths — within 5% of the model on the default scenario;
* the cleartext gossip protocols are bit-identical over the wire;
* the corruption fault model degrades but never crashes a run, and every
  undecodable frame is contained as a :class:`WireFormatError`-mediated
  loss;
* forwarded gossip ciphertexts are re-randomized per hop: what travels
  differs from what is stored, yet decrypts identically (unlinkability);
* the fastmath-aware cost sweep measures both modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sweep_crypto_costs
from repro.config import ChiaroscuroConfig
from repro.core import run_chiaroscuro
from repro.exceptions import ConfigurationError
from repro.gossip import (
    build_overlay,
    deserialize,
    encrypted_gossip_average,
    gossip_average,
)
from repro.gossip.encrypted_sum import (
    EncryptedAveragingNode,
    decode_estimate,
    fresh_estimate,
    rerandomize_estimate,
)
from repro.simulation import CycleEngine


@pytest.fixture(scope="module")
def wire_runs(small_collection, fast_config):
    """One protocol run per wire mode on the default (fault-free) scenario."""
    auto = run_chiaroscuro(small_collection, fast_config)
    off = run_chiaroscuro(
        small_collection, fast_config.with_overrides(network={"wire": "off"})
    )
    return auto, off


class TestWireEquivalence:
    def test_results_bit_identical(self, wire_runs):
        auto, off = wire_runs
        assert np.array_equal(auto.profiles, off.profiles)
        assert np.array_equal(auto.assignments, off.assignments)
        assert auto.n_iterations == off.n_iterations
        assert auto.stop_reasons == off.stop_reasons
        assert auto.epsilon_spent == off.epsilon_spent
        for node_id in auto.per_participant_profiles:
            assert np.array_equal(
                auto.per_participant_profiles[node_id],
                off.per_participant_profiles[node_id],
            )

    def test_execution_logs_identical_apart_from_measured_bytes(self, wire_runs):
        auto, off = wire_runs
        records_auto, records_off = list(auto.log), list(off.log)
        assert len(records_auto) == len(records_off)
        for record_a, record_o in zip(records_auto, records_off):
            assert record_a.iteration == record_o.iteration
            assert record_a.epsilon_spent == record_o.epsilon_spent
            assert record_a.displacement == record_o.displacement
            assert np.array_equal(record_a.centroids_before, record_o.centroids_before)
            assert np.array_equal(record_a.perturbed_means, record_o.perturbed_means)
            assert np.array_equal(record_a.noise_free_means, record_o.noise_free_means)
            assert record_a.tracked_assignments == record_o.tracked_assignments
            costs_a = {k: v for k, v in record_a.costs.items() if k != "bytes_sent"}
            costs_o = {k: v for k, v in record_o.costs.items() if k != "bytes_sent"}
            assert costs_a == costs_o

    def test_bytes_switch_from_modelled_to_measured(self, wire_runs):
        auto, off = wire_runs
        # Off: the network accounted the modelled formula, both columns agree.
        assert off.costs.bytes_sent == off.costs.bytes_sent_modelled
        # Auto: measured frame bytes, with the modelled figure still reported.
        assert auto.costs.bytes_sent_modelled == off.costs.bytes_sent
        assert auto.costs.bytes_sent > auto.costs.bytes_sent_modelled
        assert auto.costs.wire == "auto"
        assert off.costs.wire == "off"
        assert auto.costs.messages_sent == off.costs.messages_sent

    def test_measured_within_five_percent_of_modelled(self, wire_runs):
        auto, _ = wire_runs
        assert 0.0 < auto.costs.wire_overhead_fraction < 0.05
        accounting = auto.costs.byte_accounting
        assert accounting.bytes_measured == auto.costs.bytes_sent
        assert accounting.bytes_modelled == auto.costs.bytes_sent_modelled
        assert accounting.overhead_fraction == auto.costs.wire_overhead_fraction

    def test_wire_metadata_recorded(self, wire_runs):
        auto, off = wire_runs
        assert auto.metadata["wire"] == {"mode": "auto", "corruption_rate": 0.0}
        assert off.metadata["wire"]["mode"] == "off"


class TestCleartextGossipEquivalence:
    def test_push_pull_bit_identical(self):
        values = np.random.default_rng(5).normal(size=(16, 6))
        on = gossip_average(values, cycles=8, seed=2, wire="auto")
        off = gossip_average(values, cycles=8, seed=2, wire="off")
        assert np.array_equal(on, off)

    def test_push_sum_bit_identical(self):
        values = np.random.default_rng(6).normal(size=(12, 4))
        on = gossip_average(values, cycles=8, seed=3, protocol="push_sum", wire="auto")
        off = gossip_average(values, cycles=8, seed=3, protocol="push_sum", wire="off")
        assert np.array_equal(on, off)

    def test_encrypted_average_identical(self, plain_backend):
        values = np.random.default_rng(7).uniform(0, 1, size=(10, 5))
        on = encrypted_gossip_average(plain_backend, values, cycles=4, seed=4,
                                      wire="auto")
        off = encrypted_gossip_average(plain_backend, values, cycles=4, seed=4,
                                       wire="off")
        assert np.array_equal(on, off)


class TestCorruptionScenarios:
    def test_protocol_survives_heavy_corruption(self, small_collection, fast_config):
        config = fast_config.with_overrides(network={"corruption_rate": 0.25})
        result = run_chiaroscuro(small_collection, config)
        # The run completes and still clusters; corruption degraded delivery.
        assert result.profiles.shape[0] == config.kmeans.n_clusters
        assert result.n_iterations >= 1

    def test_corrupted_frames_are_counted_and_contained(self):
        from repro.gossip.protocol import PushPullAveragingNode

        values = np.random.default_rng(8).normal(size=(6, 4))
        overlay = build_overlay(6, topology="complete", seed=5)
        nodes = [PushPullAveragingNode(i, values[i], overlay, wire=True)
                 for i in range(6)]
        engine = CycleEngine(nodes, seed=5, corruption_rate=1.0)
        engine.run(3)
        # Every frame was corrupted: counted, rejected by the decoder, and
        # no exchange ever completed — estimates stay exactly the initial
        # values instead of silently averaging damaged payloads.
        assert engine.network.total.messages_corrupted > 0
        assert engine.network.total.messages_corrupted <= \
            engine.network.total.messages_sent
        for node in nodes:
            assert node.exchanges_done == 0
            assert np.array_equal(node.estimate, values[node.node_id])

    def test_push_sum_conserves_mass_under_corruption(self):
        values = np.random.default_rng(9).normal(size=(12, 3))
        estimates = gossip_average(values, cycles=12, seed=6, protocol="push_sum",
                                   wire="auto", corruption_rate=0.3)
        # Mass conservation: estimates still converge towards the average.
        assert np.all(np.isfinite(estimates))

    def test_corruption_requires_wire(self):
        with pytest.raises(ConfigurationError):
            ChiaroscuroConfig().with_overrides(
                network={"wire": "off", "corruption_rate": 0.1}
            )


class TestPerHopRerandomization:
    def test_rerandomized_estimate_differs_but_decrypts_identically(self, dj_backend):
        values = np.array([0.25, -0.75, 0.5])
        estimate = fresh_estimate(dj_backend, values)
        forwarded = rerandomize_estimate(dj_backend, estimate)
        assert forwarded.vector.payload != estimate.vector.payload
        assert forwarded.halvings == estimate.halvings
        shares = [1, 2]
        assert np.array_equal(
            decode_estimate(dj_backend, estimate, shares),
            decode_estimate(dj_backend, forwarded, shares),
        )

    def test_forwarded_frames_are_unlinkable(self, dj_backend):
        """What crosses the wire differs from what either node stores."""
        values = np.array([[0.5, 0.1], [0.3, 0.7]])
        overlay = build_overlay(2, topology="complete", seed=0)
        nodes = [
            EncryptedAveragingNode(i, dj_backend, values[i], overlay, wire=True)
            for i in range(2)
        ]
        engine = CycleEngine(nodes, seed=0)
        before = {node.node_id: node.estimate for node in nodes}
        captured = []
        original_transmit = engine.transmit

        def spy(sender, recipient, kind, frame, modelled_bytes=None):
            captured.append((sender, kind, frame))
            return original_transmit(sender, recipient, kind, frame,
                                     modelled_bytes=modelled_bytes)

        engine.transmit = spy
        nodes[0].next_cycle(engine, 0)  # one full request/reply exchange
        assert [kind for _, kind, _ in captured] == [
            "encrypted-avg-request", "encrypted-avg-reply",
        ]
        shares = [1, 2]
        for sender, _, frame in captured:
            travelled = deserialize(frame).estimate
            stored = before[sender]
            assert travelled.vector.payload != stored.vector.payload
            assert np.array_equal(
                decode_estimate(dj_backend, travelled, shares),
                decode_estimate(dj_backend, stored, shares),
            )

    def test_protocol_run_rerandomizes_forwards(self, small_collection, fast_config):
        result = run_chiaroscuro(small_collection, fast_config)
        totals = result.log.total_costs()
        assert totals.get("rerandomizations", 0) > 0


class TestFastmathSweep:
    @pytest.mark.parametrize("mode", ["auto", "off"])
    def test_measure_smoke_per_mode(self, mode):
        from repro.analysis import measure_crypto_costs

        profile = measure_crypto_costs(key_bits=128, repetitions=1, fastmath=mode)
        assert profile.fastmath == mode
        assert profile.encryption_seconds > 0

    def test_sweep_measures_both_modes(self):
        profiles = sweep_crypto_costs(key_bits=128, repetitions=1)
        assert set(profiles) == {"auto", "off"}
        assert profiles["off"].pooled_encryption_seconds == 0.0
        assert profiles["auto"].pooled_encryption_seconds > 0.0

    def test_cli_sweep_screen(self, capsys):
        from repro.cli import main

        exit_code = main([
            "crypto-bench", "--key-bits", "128", "--repetitions", "1",
            "--fastmath", "sweep", "--populations", "1000", "--json",
        ])
        assert exit_code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert set(payload["profiles"]) == {"auto", "off"}
        assert set(payload["rows"]) == {"auto", "off"}
