"""Tests of the privacy-budget distribution strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PrivacyError
from repro.privacy import (
    AdaptiveBudgetStrategy,
    GeometricBudgetStrategy,
    UniformBudgetStrategy,
    make_budget_strategy,
)


class TestUniform:
    def test_equal_shares(self):
        strategy = UniformBudgetStrategy(total_epsilon=1.0, max_iterations=4)
        schedule = strategy.schedule()
        assert len(schedule) == 4
        assert all(share == pytest.approx(0.25) for share in schedule)

    def test_schedule_sums_to_budget(self):
        strategy = UniformBudgetStrategy(2.0, 7)
        assert sum(strategy.schedule()) == pytest.approx(2.0)

    def test_never_exceeds_remaining(self):
        strategy = UniformBudgetStrategy(1.0, 4)
        assert strategy.epsilon_for_iteration(0, remaining_epsilon=0.1) == pytest.approx(0.1)

    def test_iteration_bounds_checked(self):
        strategy = UniformBudgetStrategy(1.0, 4)
        with pytest.raises(PrivacyError):
            strategy.epsilon_for_iteration(4, 1.0)
        with pytest.raises(PrivacyError):
            strategy.epsilon_for_iteration(-1, 1.0)


class TestGeometric:
    def test_later_iterations_get_more(self):
        strategy = GeometricBudgetStrategy(1.0, 5, ratio=1.5)
        schedule = strategy.schedule()
        assert all(b > a for a, b in zip(schedule, schedule[1:]))

    def test_ratio_below_one_favours_early_iterations(self):
        strategy = GeometricBudgetStrategy(1.0, 5, ratio=0.5)
        schedule = strategy.schedule()
        assert all(b < a for a, b in zip(schedule, schedule[1:]))

    def test_ratio_one_is_uniform(self):
        strategy = GeometricBudgetStrategy(1.0, 5, ratio=1.0)
        assert np.allclose(strategy.schedule(), 0.2)

    def test_schedule_sums_to_budget(self):
        strategy = GeometricBudgetStrategy(3.0, 6, ratio=1.3)
        assert sum(strategy.schedule()) == pytest.approx(3.0)

    def test_weights_are_normalised(self):
        strategy = GeometricBudgetStrategy(1.0, 10, ratio=2.0)
        assert sum(strategy._weights()) == pytest.approx(1.0)


class TestAdaptive:
    def test_no_signal_behaves_like_uniform_on_remaining(self):
        strategy = AdaptiveBudgetStrategy(1.0, 4)
        assert strategy.epsilon_for_iteration(0, 1.0) == pytest.approx(0.25)
        assert strategy.epsilon_for_iteration(2, 0.5) == pytest.approx(0.25)

    def test_fast_progress_front_loads_remaining_budget(self):
        strategy = AdaptiveBudgetStrategy(1.0, 10)
        slow = strategy.epsilon_for_iteration(5, 0.5, progress=0.0)
        fast = strategy.epsilon_for_iteration(5, 0.5, progress=0.95)
        assert fast > slow

    def test_full_progress_spends_all_remaining(self):
        strategy = AdaptiveBudgetStrategy(1.0, 10)
        assert strategy.epsilon_for_iteration(5, 0.4, progress=1.0) == pytest.approx(0.4)

    def test_minimum_fraction_floor(self):
        strategy = AdaptiveBudgetStrategy(1.0, 10, minimum_fraction=0.5)
        # Even with plenty of expected iterations left, the floor applies.
        assert strategy.epsilon_for_iteration(0, 1.0, progress=0.0) >= 0.05

    def test_never_exceeds_remaining(self):
        strategy = AdaptiveBudgetStrategy(1.0, 10)
        assert strategy.epsilon_for_iteration(0, 0.01, progress=1.0) <= 0.01

    def test_invalid_minimum_fraction(self):
        with pytest.raises(PrivacyError):
            AdaptiveBudgetStrategy(1.0, 10, minimum_fraction=0.0)

    def test_dust_budget_is_declared_exhausted(self):
        """A remainder below the floor yields 0, never a sub-floor grant.

        A positive grant below the floor would buy one iteration of uselessly
        large noise — and would violate the minimum_iteration_epsilon() bound
        the packed cipher layer sizes its slots from.
        """
        strategy = AdaptiveBudgetStrategy(1.0, 10)  # floor = 0.025
        assert strategy.epsilon_for_iteration(5, 0.01, progress=1.0) == 0.0
        assert strategy.epsilon_for_iteration(9, 1e-9) == 0.0


class TestMinimumIterationEpsilon:
    @pytest.mark.parametrize("name", ["uniform", "geometric", "adaptive"])
    def test_grants_are_zero_or_at_least_the_minimum(self, name):
        """Simulated spending never produces a positive grant below the bound."""
        strategy = make_budget_strategy(name, 1.0, 8)
        minimum = strategy.minimum_iteration_epsilon()
        assert minimum > 0.0
        rng = np.random.default_rng(1)
        for trial in range(200):
            iteration = int(rng.integers(0, 8))
            remaining = float(rng.uniform(0.0, 1.0)) * float(rng.choice([1.0, 1e-3, 1e-9]))
            epsilon = strategy.epsilon_for_iteration(
                iteration, remaining, progress=float(rng.uniform())
            )
            assert epsilon == 0.0 or epsilon >= min(minimum, remaining) * (1 - 1e-12)
            if name == "adaptive":
                assert epsilon == 0.0 or epsilon >= minimum


class TestFactoryAndInvariants:
    @pytest.mark.parametrize("name", ["uniform", "geometric", "adaptive"])
    def test_factory(self, name):
        strategy = make_budget_strategy(name, 1.0, 5)
        assert strategy.name == name

    def test_factory_unknown(self):
        with pytest.raises(PrivacyError):
            make_budget_strategy("mystery", 1.0, 5)

    @pytest.mark.parametrize("name", ["uniform", "geometric", "adaptive"])
    def test_simulated_run_never_exceeds_budget(self, name):
        """Whatever the strategy, a full run must respect the total budget."""
        total = 1.0
        strategy = make_budget_strategy(name, total, 8)
        remaining = total
        spent = 0.0
        rng = np.random.default_rng(0)
        for iteration in range(8):
            epsilon = strategy.epsilon_for_iteration(
                iteration, remaining, progress=float(rng.uniform())
            )
            assert epsilon <= remaining + 1e-12
            spent += epsilon
            remaining -= epsilon
        assert spent <= total + 1e-9
