"""Integration tests of the quality-analysis helpers (small configurations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    centralized_reference,
    compare_with_baselines,
    evaluate_result,
    heuristics_ablation,
    privacy_quality_tradeoff,
)
from repro.core import run_chiaroscuro
from repro.datasets import generate_gaussian_clusters
from repro.exceptions import AnalysisError


@pytest.fixture(scope="module")
def collection():
    return generate_gaussian_clusters(
        n_series=36, series_length=10, n_clusters=3, noise_std=0.05, seed=17
    )


@pytest.fixture(scope="module")
def config(fast_config):
    return fast_config.with_overrides(
        kmeans={"n_clusters": 3, "max_iterations": 3},
        gossip={"cycles_per_aggregation": 5},
    )


class TestReference:
    def test_reference_contains_expected_keys(self, collection, config):
        reference = centralized_reference(collection, config)
        assert set(reference) == {"centroids", "inertia", "assignments", "data"}
        assert reference["inertia"] > 0
        assert reference["data"].max() <= config.privacy.value_bound + 1e-9


class TestEvaluateResult:
    def test_report_fields(self, collection, config):
        result = run_chiaroscuro(collection, config)
        report = evaluate_result(collection, config, result, label_key="cluster")
        assert report["relative_inertia"] >= 1.0 or report["relative_inertia"] > 0
        assert "adjusted_rand_index" in report
        assert "centroid_matching_error" in report
        assert report["epsilon_spent"] <= config.privacy.epsilon + 1e-9

    def test_missing_labels_skip_ari(self, collection, config):
        result = run_chiaroscuro(collection, config)
        report = evaluate_result(collection, config, result, label_key="not-there")
        assert "adjusted_rand_index" not in report


class TestTradeoffAndComparison:
    def test_privacy_quality_tradeoff_rows(self, collection, config):
        rows = privacy_quality_tradeoff(collection, config, epsilons=[0.5, 10.0],
                                        label_key="cluster")
        assert [row["epsilon"] for row in rows] == [0.5, 10.0]
        # More budget must not hurt quality (allowing small noise in the comparison).
        assert rows[1]["relative_inertia"] <= rows[0]["relative_inertia"] * 1.5

    def test_privacy_quality_tradeoff_requires_epsilons(self, collection, config):
        with pytest.raises(AnalysisError):
            privacy_quality_tradeoff(collection, config, epsilons=[])

    def test_compare_with_baselines_ordering(self, collection, config):
        reports = compare_with_baselines(collection, config, label_key="cluster")
        assert set(reports) == {
            "centralized", "centralized_dp", "distributed_plain", "chiaroscuro", "random",
        }
        assert reports["centralized"]["relative_inertia"] == pytest.approx(1.0)
        # The non-private distributed baseline tracks the centralised one closely.
        assert reports["distributed_plain"]["relative_inertia"] < 2.0
        # Private methods cannot beat the centralised reference.
        assert reports["chiaroscuro"]["relative_inertia"] >= 0.99
        # And the random "clustering" is the worst of all.
        assert reports["random"]["relative_inertia"] >= reports["centralized"]["relative_inertia"]


class TestAblation:
    def test_heuristics_ablation_grid(self, collection, config):
        rows = heuristics_ablation(
            collection, config,
            strategies=("uniform", "geometric"),
            smoothing_methods=("none", "moving_average"),
            label_key="cluster",
        )
        assert len(rows) == 4
        combos = {(row["budget_strategy"], row["smoothing"]) for row in rows}
        assert ("uniform", "none") in combos and ("geometric", "moving_average") in combos
        for row in rows:
            assert np.isfinite(row["relative_inertia"])
