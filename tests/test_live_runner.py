"""End-to-end tests of the multi-process live runner.

The headline guarantee: a live run over real TCP sockets produces the same
clustering results — profiles, assignments, iterations, message and byte
totals — as the cycle simulation with the same seed, because the
coordinator replays the cycle engine's scheduler stream and homomorphic
averaging commutes in the plaintexts (see the determinism notes in
:mod:`repro.net.live`).

These tests fork worker processes and open loopback sockets; they are kept
tiny (8 participants, 2 workers) so the whole file stays in CI-smoke
territory.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ChiaroscuroConfig
from repro.core.runner import run_chiaroscuro
from repro.datasets import load_dataset
from repro.exceptions import ConfigurationError, ReproError


def _config(mode: str, processes: int = 2) -> ChiaroscuroConfig:
    return ChiaroscuroConfig().with_overrides(
        kmeans={"n_clusters": 2, "max_iterations": 3},
        privacy={"epsilon": 2.0, "noise_shares": 4},
        gossip={"cycles_per_aggregation": 4},
        crypto={"backend": "plain", "threshold": 3, "n_key_shares": 4},
        simulation={"n_participants": 8, "seed": 0},
        runtime={"mode": mode, "processes": processes, "run_timeout": 120.0},
    )


def _collection():
    return load_dataset("gaussian", n_series=8, series_length=6, n_clusters=2,
                        seed=3)


class TestLiveVsCycleEquivalence:
    @pytest.fixture(scope="class")
    def results(self):
        cycle = run_chiaroscuro(_collection(), _config("cycle"))
        live = run_chiaroscuro(_collection(), _config("live"))
        return cycle, live

    def test_profiles_are_identical(self, results):
        cycle, live = results
        assert np.array_equal(cycle.profiles, live.profiles)
        for node_id, profile in cycle.per_participant_profiles.items():
            assert np.array_equal(profile, live.per_participant_profiles[node_id])

    def test_assignments_and_quality_are_identical(self, results):
        cycle, live = results
        assert np.array_equal(cycle.assignments, live.assignments)
        assert cycle.inertia == live.inertia
        assert cycle.n_iterations == live.n_iterations
        assert cycle.stop_reasons == live.stop_reasons
        assert cycle.epsilon_spent == live.epsilon_spent

    def test_measured_socket_bytes_match_cycle_accounting(self, results):
        """Same frames, same exchanges ⇒ same protocol traffic, measured on
        the sockets this time."""
        cycle, live = results
        assert live.costs.messages_sent == cycle.costs.messages_sent
        assert live.costs.bytes_sent == cycle.costs.bytes_sent
        assert live.costs.bytes_sent_modelled == cycle.costs.bytes_sent_modelled
        assert live.costs.encryptions == cycle.costs.encryptions
        assert live.costs.partial_decryptions == cycle.costs.partial_decryptions

    def test_live_metadata_reports_the_runner(self, results):
        _, live = results
        meta = live.metadata["live"]
        assert meta["processes"] == 2
        assert meta["cycles_run"] >= live.n_iterations
        # Control-plane + envelope overhead is reported separately from the
        # protocol byte accounting and is non-trivial.
        assert meta["socket"]["bytes_sent"] > 0
        assert meta["coordinator_socket"]["records_sent"] > 0

    def test_execution_log_mirrors_the_iterations(self, results):
        cycle, live = results
        assert len(live.log) == len(cycle.log)
        for cycle_record, live_record in zip(cycle.log, live.log):
            assert cycle_record.iteration == live_record.iteration
            assert cycle_record.epsilon_spent == live_record.epsilon_spent
            assert np.array_equal(cycle_record.perturbed_means,
                                  live_record.perturbed_means)
            assert cycle_record.displacement == live_record.displacement
            assert cycle_record.tracked_assignments == live_record.tracked_assignments

    def test_live_log_records_per_iteration_cost_deltas(self, results):
        """Live mode now fills the per-iteration message/byte deltas (charged
        to the sending node's current iteration); every send is attributed to
        some iteration, so the deltas sum exactly to the run totals."""
        _, live = results
        for record in live.log:
            assert record.costs["messages_sent"] > 0
            assert record.costs["bytes_sent"] > 0
        assert sum(r.costs["messages_sent"] for r in live.log) \
            == live.costs.messages_sent
        assert sum(r.costs["bytes_sent"] for r in live.log) == live.costs.bytes_sent

    def test_live_log_records_per_iteration_crypto_deltas(self, results):
        """Each worker meters its process-global crypto counter around every
        unit of protocol work, so live records carry crypto-op deltas like
        cycle records; everything metered lands in some iteration, so the
        deltas sum exactly to the run totals."""
        cycle, live = results
        for counter in ("encryptions", "partial_decryptions", "combinations"):
            assert sum(r.costs.get(counter, 0.0) for r in live.log) \
                == getattr(live.costs, counter)
        for cycle_record, live_record in zip(cycle.log, live.log):
            # Encryptions are one-per-contribution in both modes; additions
            # and re-randomizations legitimately differ (live averages the
            # two sides of an exchange independently).
            assert live_record.costs["encryptions"] \
                == cycle_record.costs["encryptions"]

    def test_cost_summary_surfaces_iteration_deltas_in_both_modes(self, results):
        cycle, live = results
        assert len(live.costs.iteration_costs) == len(live.log)
        assert len(cycle.costs.iteration_costs) == len(cycle.log)
        assert sum(live.costs.bytes_per_iteration()) == live.costs.bytes_sent
        # The cycle observer attributes deltas to disclosure windows, so its
        # series can undercount the post-disclosure tail but never exceed.
        assert 0 < sum(cycle.costs.bytes_per_iteration()) <= cycle.costs.bytes_sent
        assert live.costs.as_dict()["iteration_bytes_sent"] == \
            live.costs.bytes_per_iteration()


class TestLiveRunnerShapes:
    def test_single_process_live_run_works(self):
        live = run_chiaroscuro(_collection(), _config("live", processes=1))
        cycle = run_chiaroscuro(_collection(), _config("cycle"))
        assert np.array_equal(cycle.profiles, live.profiles)
        assert live.metadata["live"]["processes"] == 1

    def test_more_processes_than_participants_are_clamped(self):
        collection = load_dataset("gaussian", n_series=4, series_length=4,
                                  n_clusters=2, seed=1)
        config = ChiaroscuroConfig().with_overrides(
            kmeans={"n_clusters": 2, "max_iterations": 2},
            privacy={"noise_shares": 2},
            gossip={"cycles_per_aggregation": 3},
            crypto={"backend": "plain", "threshold": 2, "n_key_shares": 2},
            simulation={"n_participants": 4, "seed": 1},
            runtime={"mode": "live", "processes": 9, "run_timeout": 120.0},
        )
        result = run_chiaroscuro(collection, config)
        assert result.metadata["live"]["processes"] == 4


class TestLiveConfigValidation:
    def test_live_requires_the_wire_format(self):
        with pytest.raises(ConfigurationError):
            ChiaroscuroConfig().with_overrides(
                runtime={"mode": "live"}, network={"wire": "off"},
            )

    def test_live_rejects_fault_models_for_now(self):
        with pytest.raises(ConfigurationError):
            ChiaroscuroConfig().with_overrides(
                runtime={"mode": "live"}, simulation={"churn_rate": 0.1},
            )
        with pytest.raises(ConfigurationError):
            ChiaroscuroConfig().with_overrides(
                runtime={"mode": "live"}, gossip={"drop_probability": 0.1},
            )
        with pytest.raises(ConfigurationError):
            ChiaroscuroConfig().with_overrides(
                runtime={"mode": "live"}, network={"corruption_rate": 0.1},
            )

    def test_runtime_section_validates(self):
        with pytest.raises(ReproError):
            ChiaroscuroConfig().with_overrides(runtime={"mode": "warp"})
        with pytest.raises(ReproError):
            ChiaroscuroConfig().with_overrides(runtime={"processes": 0})
        with pytest.raises(ReproError):
            ChiaroscuroConfig().with_overrides(runtime={"base_port": 1 << 17})
        # Worker i binds base_port + 1 + i: the whole range must fit.
        with pytest.raises(ReproError):
            ChiaroscuroConfig().with_overrides(
                runtime={"base_port": 65535, "processes": 2}
            )
        ChiaroscuroConfig().with_overrides(
            runtime={"base_port": 65530, "processes": 2}
        )
