"""Conformance and fuzzing suite of the binary wire format.

Three layers of guarantees:

* **primitives** — canonical varints/bigints (exactly one encoding per
  value, redundant encodings rejected), strict booleans, bounds enforced
  before allocation;
* **round-trips** — ``deserialize(serialize(m)) == m`` for every message
  type, payload style (plain / Damgård–Jurik-sized / packed) and slot
  count, property-tested with Hypothesis;
* **adversarial decoding** — random bytes, truncated frames, bit-flipped
  frames and hostile length fields must raise
  :class:`~repro.exceptions.WireFormatError` and nothing else (no crashes,
  no hangs, no unbounded allocation).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.backends import EncryptedVector, PartialVectorDecryption
from repro.crypto import wire
from repro.crypto.wire import (
    WireReader,
    normalize_wire,
    read_encrypted_vector,
    write_bigint,
    write_encrypted_vector,
    write_varint,
)
from repro.exceptions import ValidationError, WireFormatError
from repro.gossip.encrypted_sum import EncryptedEstimate
from repro.gossip import messages
from repro.gossip.messages import (
    DecryptRequest,
    DecryptResponse,
    DiptychExchange,
    DiptychReply,
    EncryptedAvgReply,
    EncryptedAvgRequest,
    GossipAvgReply,
    GossipAvgRequest,
    KeyAnnouncement,
    MembershipAnnouncement,
    PushSumMessage,
    deserialize,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

WIDTHS = (1, 2, 8, 48, 64)

wire_floats = st.floats(allow_nan=False)  # NaN != NaN breaks == round-trips
backend_names = st.sampled_from(("plain", "damgard_jurik", "paillier"))
weights = st.one_of(
    st.integers(min_value=1, max_value=1 << 16),
    st.integers(min_value=1 << 64, max_value=1 << 90),  # beyond the varint range
)


@st.composite
def encrypted_vectors(draw, width=None):
    """An EncryptedVector whose ciphertexts fit *width* bytes, plus the width."""
    if width is None:
        width = draw(st.sampled_from(WIDTHS))
    bound = (1 << (8 * width)) - 1
    packed = draw(st.booleans())
    if packed:
        length = draw(st.integers(min_value=1, max_value=40))
        slots = draw(st.integers(min_value=1, max_value=8))
        count = -(-length // slots)
    else:
        length = draw(st.integers(min_value=0, max_value=12))
        count = length
    payload = tuple(
        draw(st.integers(min_value=0, max_value=bound)) for _ in range(count)
    )
    vector = EncryptedVector(
        payload=payload, backend_name=draw(backend_names), length=length,
        packed=packed, weight=draw(weights),
    )
    return vector, width


@st.composite
def estimates(draw, width=None):
    vector, width = draw(encrypted_vectors(width=width))
    return EncryptedEstimate(vector=vector, halvings=draw(st.integers(0, 200))), width


@st.composite
def partial_decryptions(draw, width):
    vector, _ = draw(encrypted_vectors(width=width))
    return PartialVectorDecryption(
        share_index=draw(st.integers(1, 64)), payload=vector.payload,
        backend_name=vector.backend_name, length=len(vector),
        packed=vector.packed, weight=vector.weight,
    )


@st.composite
def wire_messages(draw):
    kind = draw(st.sampled_from(
        ("avg_req", "avg_rep", "diptych", "diptych_rep", "dec_req", "dec_rep",
         "gossip_req", "gossip_rep", "push_sum", "membership", "key")
    ))
    if kind in ("avg_req", "avg_rep"):
        estimate, width = draw(estimates())
        cls = EncryptedAvgRequest if kind == "avg_req" else EncryptedAvgReply
        return cls(estimate=estimate, ciphertext_bytes=width)
    if kind in ("diptych", "diptych_rep"):
        width = draw(st.sampled_from(WIDTHS))
        k = draw(st.integers(1, 3))
        data = tuple(draw(estimates(width=width))[0] for _ in range(k))
        noise = tuple(draw(estimates(width=width))[0] for _ in range(k))
        cls = DiptychExchange if kind == "diptych" else DiptychReply
        return cls(iteration=draw(st.integers(0, 1000)), data_estimates=data,
                   noise_estimates=noise, ciphertext_bytes=width)
    if kind == "dec_req":
        width = draw(st.sampled_from(WIDTHS))
        ests = tuple(draw(estimates(width=width))[0]
                     for _ in range(draw(st.integers(1, 3))))
        return DecryptRequest(estimates=ests, ciphertext_bytes=width)
    if kind == "dec_rep":
        width = draw(st.sampled_from(WIDTHS))
        partials = tuple(draw(partial_decryptions(width))
                         for _ in range(draw(st.integers(1, 3))))
        return DecryptResponse(partials=partials, ciphertext_bytes=width)
    if kind in ("gossip_req", "gossip_rep"):
        values = tuple(draw(st.lists(wire_floats, max_size=16)))
        cls = GossipAvgRequest if kind == "gossip_req" else GossipAvgReply
        return cls(values=values)
    if kind == "push_sum":
        return PushSumMessage(
            values=tuple(draw(st.lists(wire_floats, max_size=16))),
            weight=draw(wire_floats),
        )
    if kind == "membership":
        return MembershipAnnouncement(
            node_id=draw(st.integers(0, 1 << 30)), online=draw(st.booleans()),
            cycle=draw(st.integers(0, 1 << 30)),
        )
    return KeyAnnouncement(
        modulus=draw(st.integers(6, 1 << 256)), degree=draw(st.integers(1, 8)),
        threshold=draw(st.integers(1, 8)),
        n_shares=draw(st.integers(8, 16)),
    )


# ---------------------------------------------------------------------------
# primitives
# ---------------------------------------------------------------------------

class TestPrimitives:
    @given(value=st.integers(0, (1 << 64) - 1))
    @settings(max_examples=200)
    def test_varint_round_trip_and_size(self, value):
        out = bytearray()
        write_varint(out, value)
        assert len(out) == wire.varint_size(value)
        reader = WireReader(bytes(out))
        assert reader.read_varint() == value
        reader.expect_end()

    def test_varint_rejects_out_of_range(self):
        out = bytearray()
        with pytest.raises(WireFormatError):
            write_varint(out, -1)
        with pytest.raises(WireFormatError):
            write_varint(out, 1 << 64)

    def test_varint_rejects_redundant_encoding(self):
        # 0x81 0x00 is a two-byte encoding of 1; only 0x01 is canonical.
        with pytest.raises(WireFormatError):
            WireReader(b"\x81\x00").read_varint()

    def test_varint_rejects_overlong(self):
        with pytest.raises(WireFormatError):
            WireReader(b"\xff" * 11).read_varint()

    @given(value=st.integers(min_value=0, max_value=1 << 600))
    @settings(max_examples=200)
    def test_bigint_round_trip(self, value):
        out = bytearray()
        write_bigint(out, value)
        reader = WireReader(bytes(out))
        assert reader.read_bigint(max_bytes=100) == value
        reader.expect_end()

    def test_bigint_rejects_leading_zero(self):
        # length 2, bytes 00 07: non-minimal encoding of 7.
        with pytest.raises(WireFormatError):
            WireReader(b"\x02\x00\x07").read_bigint()

    def test_bool_is_strict(self):
        with pytest.raises(WireFormatError):
            WireReader(b"\x02").read_bool()

    def test_ciphertext_must_fit_width(self):
        out = bytearray()
        with pytest.raises(WireFormatError):
            wire.write_ciphertext(out, 1 << 16, 2)

    def test_reader_rejects_trailing_bytes(self):
        reader = WireReader(b"\x01\x02")
        reader.read_bytes(1)
        with pytest.raises(WireFormatError):
            reader.expect_end()

    def test_normalize_wire(self):
        assert normalize_wire("auto") == "auto"
        assert normalize_wire("off") == "off"
        with pytest.raises(ValidationError):
            normalize_wire("on")
        with pytest.raises(ValidationError):
            normalize_wire(True)


class TestVectorBlocks:
    @given(data=encrypted_vectors())
    @settings(max_examples=200)
    def test_vector_round_trip(self, data):
        vector, width = data
        out = bytearray()
        write_encrypted_vector(out, vector, width)
        reader = WireReader(bytes(out))
        assert read_encrypted_vector(reader, width) == vector
        reader.expect_end()

    def test_unpacked_count_must_match_length(self):
        vector = EncryptedVector(payload=(1, 2, 3), backend_name="plain",
                                 length=3, packed=False)
        out = bytearray()
        write_encrypted_vector(out, vector, 8)
        # Patch the logical length field (varint right after the name).
        corrupted = bytearray(out)
        corrupted[6] = 7  # name is 1+5 bytes; length varint at offset 6
        with pytest.raises(WireFormatError):
            read_encrypted_vector(WireReader(bytes(corrupted)), 8)

    def test_packed_slot_metadata_cannot_overflow(self):
        # A packed vector claiming more ciphertexts than coordinates.
        out = bytearray()
        wire.write_string(out, "plain")
        write_varint(out, 2)  # logical length
        wire.write_bool(out, True)  # packed
        write_bigint(out, 1)  # weight
        write_varint(out, 5)  # 5 ciphertexts for 2 coordinates: overflow
        out.extend(b"\x00" * 5)
        with pytest.raises(WireFormatError):
            read_encrypted_vector(WireReader(bytes(out)), 1)

    def test_declared_count_checked_before_allocation(self):
        # A tiny frame declaring 2**20 ciphertexts must fail fast.
        out = bytearray()
        wire.write_string(out, "plain")
        write_varint(out, 1 << 20)
        wire.write_bool(out, False)
        write_bigint(out, 1)
        write_varint(out, 1 << 20)
        with pytest.raises(WireFormatError):
            read_encrypted_vector(WireReader(bytes(out)), 64)


# ---------------------------------------------------------------------------
# framed messages
# ---------------------------------------------------------------------------

class TestMessageRoundTrips:
    @given(message=wire_messages())
    @settings(max_examples=300)
    def test_round_trip(self, message):
        assert deserialize(message.serialize()) == message

    @given(message=wire_messages())
    @settings(max_examples=50)
    def test_serialization_is_deterministic(self, message):
        assert message.serialize() == message.serialize()

    @given(slots=st.integers(1, 24), length=st.integers(1, 60))
    @settings(max_examples=100)
    def test_every_slot_count_round_trips(self, slots, length):
        count = -(-length // slots)
        vector = EncryptedVector(
            payload=tuple(range(1, count + 1)), backend_name="plain",
            length=length, packed=True, weight=1 << slots,
        )
        message = EncryptedAvgRequest(
            estimate=EncryptedEstimate(vector=vector, halvings=slots),
            ciphertext_bytes=8,
        )
        assert deserialize(message.serialize()) == message


class TestAdversarialDecoding:
    """Malformed input raises WireFormatError — never anything else."""

    @given(data=st.binary(max_size=300))
    @settings(max_examples=400)
    def test_random_bytes_never_crash(self, data):
        try:
            deserialize(data)
        except WireFormatError:
            pass  # the only acceptable exception

    @given(message=wire_messages(), data=st.data())
    @settings(max_examples=200)
    def test_truncations_rejected(self, message, data):
        frame = message.serialize()
        cut = data.draw(st.integers(0, len(frame) - 1))
        with pytest.raises(WireFormatError):
            deserialize(frame[:cut])

    @given(message=wire_messages(), data=st.data())
    @settings(max_examples=300)
    def test_bit_flips_rejected(self, message, data):
        frame = bytearray(message.serialize())
        position = data.draw(st.integers(0, len(frame) * 8 - 1))
        frame[position // 8] ^= 1 << (position % 8)
        with pytest.raises(WireFormatError):
            deserialize(bytes(frame))

    @given(message=wire_messages(), data=st.data())
    @settings(max_examples=100)
    def test_appended_garbage_rejected(self, message, data):
        frame = message.serialize()
        garbage = data.draw(st.binary(min_size=1, max_size=16))
        with pytest.raises(WireFormatError):
            deserialize(frame + garbage)

    def test_wrong_version_rejected(self):
        frame = bytearray(GossipAvgRequest(values=(1.0,)).serialize())
        frame[2] = 99
        with pytest.raises(WireFormatError):
            deserialize(bytes(frame))

    def test_unknown_type_rejected(self):
        frame = bytearray(GossipAvgRequest(values=(1.0,)).serialize())
        frame[3] = 0xEE
        with pytest.raises(WireFormatError):
            deserialize(bytes(frame))

    def test_over_length_body_rejected(self):
        # A header declaring a body far beyond the frame limit.
        header = bytearray(b"CW")
        header.append(1)  # version
        header.append(0x07)  # GossipAvgRequest
        write_varint(header, wire.MAX_FRAME_BYTES + 1)
        with pytest.raises(WireFormatError):
            deserialize(bytes(header) + b"\x00" * 16)

    def test_non_bytes_rejected(self):
        with pytest.raises(WireFormatError):
            deserialize("not bytes")  # type: ignore[arg-type]


class TestWriteSideLimits:
    """serialize() enforces the decoder's limits: no unparseable frames."""

    def test_membership_fields_capped(self):
        with pytest.raises(WireFormatError):
            MembershipAnnouncement(node_id=1 << 33, online=True, cycle=0).serialize()

    def test_key_announcement_degree_capped(self):
        with pytest.raises(WireFormatError):
            KeyAnnouncement(modulus=1 << 64, degree=65, threshold=2,
                            n_shares=4).serialize()

    def test_key_announcement_consistency_enforced(self):
        with pytest.raises(WireFormatError):
            KeyAnnouncement(modulus=1 << 64, degree=1, threshold=5,
                            n_shares=4).serialize()

    def test_halvings_capped(self):
        vector = EncryptedVector(payload=(1,), backend_name="plain", length=1)
        message = EncryptedAvgRequest(
            estimate=EncryptedEstimate(vector=vector, halvings=(1 << 20) + 1),
            ciphertext_bytes=8,
        )
        with pytest.raises(WireFormatError):
            message.serialize()

    def test_share_index_must_be_positive(self):
        partial = PartialVectorDecryption(
            share_index=0, payload=(1,), backend_name="plain", length=1,
        )
        with pytest.raises(WireFormatError):
            DecryptResponse(partials=(partial,), ciphertext_bytes=8).serialize()

    def test_weight_must_be_positive(self):
        vector = EncryptedVector(payload=(1,), backend_name="plain", length=1,
                                 weight=0)
        out = bytearray()
        with pytest.raises(WireFormatError):
            write_encrypted_vector(out, vector, 8)

    @given(message=wire_messages())
    @settings(max_examples=150)
    def test_every_serializable_message_deserializes(self, message):
        # The strategies stay inside the documented field limits, so this
        # also pins the write-side checks to the decoder's bounds.
        assert deserialize(message.serialize()) == message
