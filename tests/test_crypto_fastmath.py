"""Tests of the modular-arithmetic fast path (crypto/fastmath.py).

The whole point of the fastmath layer is that it changes wall-clock time and
*nothing else*: CRT decryption must agree with plain decryption, pooled
encryption/rerandomisation must agree with the fresh path (bit for bit given
the same randomness stream), multi-exponentiation must agree with a product
of ``pow`` calls, and ``fastmath=off`` must reproduce the seed pipeline.
Most invariants are property-based (Hypothesis) over all supported degrees.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ChiaroscuroConfig
from repro.core import run_chiaroscuro
from repro.crypto import damgard_jurik as dj
from repro.crypto import paillier
from repro.crypto import threshold as th
from repro.crypto.backends import DamgardJurikBackend, make_backend
from repro.crypto.fastmath import (
    BlinderPool,
    FixedBaseTable,
    PrecomputedKey,
    multi_pow,
    normalize_fastmath,
    plan_pool_batch,
)
from repro.datasets import load_dataset
from repro.exceptions import ConfigurationError, CryptoError, ValidationError
from repro.gossip.encrypted_sum import (
    average_estimates,
    fresh_estimate,
    rerandomize_estimate,
)

# One shared key pair per degree: key generation inside @given is far too slow.
KEYS = {s: dj.generate_keypair(key_bits=128, s=s) for s in (1, 2, 3)}
PRECOMPUTED = {s: PrecomputedKey.from_private_key(private) for s, (_, private) in KEYS.items()}

plaintext_fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                                allow_infinity=False)


def _plaintext(s: int, fraction: float) -> int:
    """Map a fraction to a plaintext spanning the whole Z_{n^s} range."""
    modulus = KEYS[s][0].plaintext_modulus
    return min(int(fraction * modulus), modulus - 1)


class TestCrtDecryption:
    @pytest.mark.parametrize("s", [1, 2, 3])
    @given(fraction=plaintext_fractions)
    @settings(max_examples=25, deadline=None)
    def test_crt_decrypt_equals_plain_decrypt(self, s, fraction):
        public, private = KEYS[s]
        plaintext = _plaintext(s, fraction)
        ciphertext = dj.encrypt(public, plaintext)
        plain = dj.decrypt(private, ciphertext)
        fast = dj.decrypt(private, ciphertext, precomputed=PRECOMPUTED[s])
        assert plain == fast == plaintext

    @pytest.mark.parametrize("s", [1, 2, 3])
    def test_crt_decrypt_boundary_plaintexts(self, s):
        public, private = KEYS[s]
        for plaintext in (0, 1, public.plaintext_modulus - 1):
            ciphertext = dj.encrypt(public, plaintext)
            assert dj.decrypt(private, ciphertext, precomputed=PRECOMPUTED[s]) == plaintext

    def test_crt_decrypt_requires_private_key(self):
        public, _private = KEYS[1]
        public_only = PrecomputedKey.from_public_key(public)
        assert not public_only.has_private
        with pytest.raises(CryptoError):
            public_only.decrypt(dj.encrypt(public, 5))

    def test_mismatched_primes_rejected(self):
        public, _ = KEYS[1]
        with pytest.raises(CryptoError):
            PrecomputedKey(public, p=3, q=5)


class TestCrtPow:
    @pytest.mark.parametrize("s", [1, 2, 3])
    @given(exponent=st.integers(min_value=-(2**220), max_value=2**220))
    @settings(max_examples=25, deadline=None)
    def test_crt_pow_equals_pow(self, s, exponent):
        public, _private = KEYS[s]
        base = dj.encrypt(public, 42)  # coprime to n by construction
        expected = pow(base, exponent, public.ciphertext_modulus)
        assert PRECOMPUTED[s].crt_pow(base, exponent) == expected

    def test_non_coprime_base_falls_back_exactly(self):
        public, private = KEYS[1]
        base = private.p * 3  # shares a factor with n: no CRT shortcut exists
        exponent = 1 << 200
        assert PRECOMPUTED[1].crt_pow(base, exponent) == pow(
            base, exponent, public.ciphertext_modulus
        )

    def test_exponent_residues_are_cached(self):
        precomputed = PRECOMPUTED[1]
        base = dj.encrypt(KEYS[1][0], 7)
        exponent = 3 << 180
        precomputed.crt_pow(base, exponent)
        assert exponent in precomputed._exponent_residues


class TestBlinderPools:
    @pytest.mark.parametrize("s", [1, 2, 3])
    @given(fraction=plaintext_fractions)
    @settings(max_examples=10, deadline=None)
    def test_pooled_encrypt_decrypts_like_fresh(self, s, fraction):
        public, private = KEYS[s]
        plaintext = _plaintext(s, fraction)
        pool = BlinderPool(PRECOMPUTED[s], batch_size=2)
        pooled = dj.encrypt(public, plaintext, precomputed=PRECOMPUTED[s], pool=pool)
        assert dj.decrypt(private, pooled) == plaintext

    @pytest.mark.parametrize("s", [1, 2, 3])
    def test_pooled_rerandomize_preserves_plaintext(self, s):
        public, private = KEYS[s]
        plaintext = _plaintext(s, 0.37)
        pool = BlinderPool(PRECOMPUTED[s], batch_size=2)
        ciphertext = dj.encrypt(public, plaintext)
        refreshed = dj.rerandomize(public, ciphertext, pool=pool)
        assert refreshed != ciphertext
        assert dj.decrypt(private, refreshed) == plaintext

    @pytest.mark.parametrize("s", [1, 2, 3])
    def test_pooled_ciphertexts_bit_identical_given_same_stream(self, s):
        """The exact pool mode consumes randomness like the fresh path."""
        from repro.crypto.math_utils import random_coprime

        public, _private = KEYS[s]
        draws = [random_coprime(public.n) for _ in range(4)]
        fresh = [dj.encrypt(public, m, randomness=r) for m, r in zip((1, 2, 3, 4), draws)]
        stream = iter(draws)
        pool = BlinderPool(PRECOMPUTED[s], batch_size=2, rng=lambda _n: next(stream))
        pooled = [
            dj.encrypt(public, m, precomputed=PRECOMPUTED[s], pool=pool)
            for m in (1, 2, 3, 4)
        ]
        assert fresh == pooled

    def test_derived_mode_uses_fixed_base_table(self):
        public, private = KEYS[1]
        pool = BlinderPool(PRECOMPUTED[1], batch_size=3, mode="derived")
        assert pool._table is not None
        ciphertext = dj.encrypt(public, 123, precomputed=PRECOMPUTED[1], pool=pool)
        assert dj.decrypt(private, ciphertext) == 123

    def test_take_refills_in_fifo_batches(self):
        pool = BlinderPool(PRECOMPUTED[1], batch_size=3)
        assert len(pool) == 0
        pool.take()
        assert pool.generated == 3
        assert pool.served == 1
        assert len(pool) == 2

    def test_pool_validation(self):
        with pytest.raises(CryptoError):
            BlinderPool(PRECOMPUTED[1], batch_size=0)
        with pytest.raises(CryptoError):
            BlinderPool(PRECOMPUTED[1], mode="bogus")

    def test_plan_pool_batch_clamps(self):
        assert plan_pool_batch(1) == 16
        assert plan_pool_batch(100) == 100
        assert plan_pool_batch(10**6) == 1024
        with pytest.raises(CryptoError):
            plan_pool_batch(0)


class TestBackgroundRefill:
    """The refill worker thread moves generation off the hot path without
    perturbing the exact-mode randomness stream (PR 2 follow-up)."""

    def test_background_pooled_ciphertexts_bit_identical_to_fresh(self):
        """pooled == fresh still holds with the refill thread running."""
        import time

        from repro.crypto.math_utils import random_coprime

        public, _private = KEYS[1]
        n_messages = 12
        draws = [random_coprime(public.n) for _ in range(n_messages + 8)]
        fresh = [
            dj.encrypt(public, m, randomness=r)
            for m, r in zip(range(1, n_messages + 1), draws)
        ]
        stream = iter(draws)
        pool = BlinderPool(PRECOMPUTED[1], batch_size=2, rng=lambda _n: next(stream))
        pool.start_background_refill(low_water=2)
        try:
            pooled = []
            for m in range(1, n_messages + 1):
                pooled.append(
                    dj.encrypt(public, m, precomputed=PRECOMPUTED[1], pool=pool)
                )
                if m == n_messages // 2:
                    # Give the refiller a chance to interleave with takes.
                    time.sleep(0.01)
        finally:
            pool.stop_background_refill()
        assert fresh == pooled

    def test_background_refill_keeps_pool_above_low_water(self):
        import time

        pool = BlinderPool(PRECOMPUTED[1], batch_size=4)
        pool.start_background_refill(low_water=3)
        try:
            deadline = time.monotonic() + 5.0
            while len(pool) <= 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(pool) > 3
            served_target = 6
            for _ in range(served_target):
                pool.take()
            assert pool.served == served_target
        finally:
            pool.stop_background_refill()
        assert pool._refill_thread is None

    def test_reset_discards_pooled_blinders(self):
        """A fork-inherited pool must be cleared before first use: shared
        blinders would make two processes' ciphertexts linkable."""
        pool = BlinderPool(PRECOMPUTED[1], batch_size=3)
        pool.refill()
        assert len(pool) == 3
        pool.reset()
        assert len(pool) == 0
        # The next take still works (fresh synchronous refill).
        pool.take()
        assert pool.served == 1

    def test_start_and_stop_are_idempotent(self):
        pool = BlinderPool(PRECOMPUTED[1], batch_size=2)
        pool.start_background_refill()
        pool.start_background_refill()
        pool.stop_background_refill()
        pool.stop_background_refill()
        with pytest.raises(CryptoError):
            pool.start_background_refill(low_water=0)

    def test_configure_pool_background_starts_thread(self):
        backend = make_backend(
            "damgard_jurik", key_bits=128, threshold=2, n_shares=3,
            fastmath="auto",
        )
        try:
            backend.configure_pool(8, background=True)
            assert backend._pool._refill_thread is not None
            vector = backend.encrypt_vector([0.25, 0.5])
            decrypted = backend.decrypt_with_shares(vector, [1, 2])
            assert decrypted == pytest.approx([0.25, 0.5], abs=1e-5)
        finally:
            backend._pool.stop_background_refill()


class TestMultiExponentiation:
    @given(
        bases=st.lists(st.integers(min_value=2, max_value=2**64), min_size=1, max_size=9),
        exponents=st.lists(
            st.integers(min_value=-(2**80), max_value=2**80), min_size=1, max_size=9
        ),
        modulus=st.integers(min_value=3, max_value=2**64) | st.just((1 << 89) - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_multi_pow_equals_product_of_pows(self, bases, exponents, modulus):
        length = min(len(bases), len(exponents))
        bases, exponents = bases[:length], exponents[:length]
        import math

        expected = 1
        for base, exponent in zip(bases, exponents):
            if exponent < 0 and math.gcd(base, modulus) != 1:
                return  # no inverse exists; pow would fail identically
            expected = (expected * pow(base, exponent, modulus)) % modulus
        assert multi_pow(bases, exponents, modulus) == expected

    def test_multi_pow_empty_exponents(self):
        assert multi_pow([5, 7], [0, 0], 101) == 1

    def test_multi_pow_validation(self):
        with pytest.raises(CryptoError):
            multi_pow([2, 3], [1], 101)
        with pytest.raises(CryptoError):
            multi_pow([2], [1], 0)


class TestFixedBaseTable:
    @given(
        base=st.integers(min_value=2, max_value=2**64),
        exponent=st.integers(min_value=0, max_value=2**192 - 1),
        window=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_table_pow_equals_pow(self, base, exponent, window):
        modulus = (1 << 127) - 1
        table = FixedBaseTable(base, modulus, max_exponent_bits=192, window=window)
        assert table.pow(exponent) == pow(base, exponent, modulus)

    def test_table_rejects_out_of_range_exponents(self):
        table = FixedBaseTable(3, 101, max_exponent_bits=8)
        with pytest.raises(CryptoError):
            table.pow(1 << 9)
        with pytest.raises(CryptoError):
            table.pow(-1)


class TestThresholdFastPath:
    @pytest.fixture(scope="class")
    def threshold_key(self):
        public, shares, dealer = th.generate_threshold_keypair(
            key_bits=128, s=2, threshold=3, n_shares=5
        )
        return public, shares, PrecomputedKey.from_private_key(dealer)

    def test_partial_decrypt_crt_is_identical(self, threshold_key):
        public, shares, precomputed = threshold_key
        ciphertext = dj.encrypt(public.public_key, 31337)
        for share in shares:
            plain = th.partial_decrypt(public, share, ciphertext)
            fast = th.partial_decrypt(public, share, ciphertext, precomputed=precomputed)
            assert plain.value == fast.value

    def test_combine_multiexp_matches_loop(self, threshold_key):
        public, shares, precomputed = threshold_key
        message = 987654321
        ciphertext = dj.encrypt(public.public_key, message)
        partials = [
            th.partial_decrypt(public, share, ciphertext, precomputed=precomputed)
            for share in shares[:3]
        ]
        assert (
            th.combine_partial_decryptions(public, partials, multiexp=True)
            == th.combine_partial_decryptions(public, partials, multiexp=False)
            == message
        )


class TestPaillierCrt:
    @pytest.fixture(scope="class")
    def keypair(self):
        return paillier.generate_paillier_keypair(key_bits=128)

    @given(fraction=plaintext_fractions)
    @settings(max_examples=25, deadline=None)
    def test_crt_decrypt_equals_classic(self, keypair, fraction):
        public, private = keypair
        plaintext = min(int(fraction * public.n), public.n - 1)
        ciphertext = paillier.encrypt(public, plaintext)
        assert (
            paillier.decrypt(private, ciphertext, crt=True)
            == paillier.decrypt(private, ciphertext, crt=False)
            == plaintext
        )

    def test_legacy_keys_without_primes_still_decrypt(self, keypair):
        public, private = keypair
        legacy = paillier.PaillierPrivateKey(public, private.lam, private.mu)
        ciphertext = paillier.encrypt(public, 424242)
        assert paillier.decrypt(legacy, ciphertext) == 424242


class TestBackendFastmath:
    @pytest.fixture(scope="class")
    def backends(self):
        fast = DamgardJurikBackend(key_bits=128, threshold=2, n_shares=3, fastmath="auto")
        slow = DamgardJurikBackend(key_bits=128, threshold=2, n_shares=3, fastmath="off")
        return fast, slow

    def test_round_trip_agrees_between_modes(self, backends):
        fast, slow = backends
        values = np.linspace(-0.9, 0.9, 7)
        for backend in backends:
            decoded = backend.decrypt_with_shares(backend.encrypt_vector(values), [1, 2])
            np.testing.assert_allclose(decoded, values, atol=1e-5)
        assert fast.fastmath_enabled and not slow.fastmath_enabled

    def test_pooled_encryptions_are_counted(self, backends):
        fast, slow = backends
        fast.counter.reset()
        slow.counter.reset()
        fast.encrypt_vector([0.25, -0.5])
        slow.encrypt_vector([0.25, -0.5])
        assert fast.counter.pooled_encryptions == 2
        assert fast.counter.encryptions == 2
        assert slow.counter.pooled_encryptions == 0
        assert slow.counter.encryptions == 2

    def test_rerandomize_preserves_decryption_and_counts(self, backends):
        fast, _slow = backends
        vector = fast.encrypt_vector([0.125, 0.75])
        before = fast.counter.rerandomizations
        refreshed = fast.rerandomize(vector)
        assert fast.counter.rerandomizations == before + 2
        assert refreshed.payload != vector.payload
        np.testing.assert_allclose(
            fast.decrypt_with_shares(refreshed, [1, 2]),
            fast.decrypt_with_shares(vector, [1, 2]),
            atol=1e-6,
        )

    def test_linear_combination_matches_lift_then_add(self, backends):
        fast, slow = backends
        for backend in (fast, slow):
            first = backend.encrypt_vector([0.5, -0.25])
            second = backend.encrypt_vector([0.125, 0.5])
            combined = backend.linear_combination([first, second], [4, 2])
            reference = backend.add(
                backend.multiply_scalar(first, 4), backend.multiply_scalar(second, 2)
            )
            assert combined.weight == reference.weight == 6
            np.testing.assert_allclose(
                backend.decrypt_with_shares(combined, [1, 2]),
                backend.decrypt_with_shares(reference, [1, 2]),
                atol=1e-6,
            )

    def test_linear_combination_counts_like_the_historical_path(self, backends):
        fast, slow = backends
        results = {}
        for backend in (fast, slow):
            first = backend.encrypt_vector([0.5, -0.25])
            second = backend.encrypt_vector([0.125, 0.5])
            backend.counter.reset()
            backend.linear_combination([first, second], [4, 1])
            results[backend.fastmath] = backend.counter.additions
        # One non-unit factor (one lift) plus one fold over 2 ciphertexts.
        assert results["auto"] == results["off"] == 4

    def test_linear_combination_validation(self, backends):
        fast, _slow = backends
        vector = fast.encrypt_vector([0.5])
        with pytest.raises(CryptoError):
            fast.linear_combination([], [])
        with pytest.raises(CryptoError):
            fast.linear_combination([vector], [1, 2])
        with pytest.raises(CryptoError):
            fast.linear_combination([vector], [0])

    def test_gossip_average_identical_across_modes(self, backends):
        fast, slow = backends
        for backend in (fast, slow):
            first = fresh_estimate(backend, [0.8, -0.4])
            second = fresh_estimate(backend, [0.2, 0.6])
            averaged = average_estimates(backend, first, second)
            refreshed = rerandomize_estimate(backend, averaged)
            decoded = backend.decrypt_with_shares(refreshed.vector, [1, 2])
            np.testing.assert_allclose(
                decoded / (1 << refreshed.halvings), [0.5, 0.1], atol=1e-5
            )

    def test_make_backend_accepts_fastmath(self):
        backend = make_backend("plain", fastmath="off")
        assert backend.fastmath == "off"
        with pytest.raises(ValidationError):
            make_backend("plain", fastmath="fast")

    def test_normalize_fastmath(self):
        assert normalize_fastmath("auto") == "auto"
        assert normalize_fastmath("off") == "off"
        with pytest.raises(ValidationError):
            normalize_fastmath("on")


class TestEndToEndEquivalence:
    """``fastmath=off`` reproduces the seed pipeline; ``auto`` matches it."""

    @staticmethod
    def _run(fastmath: str):
        collection = load_dataset("gaussian", n_series=12, series_length=6,
                                  n_clusters=2, seed=3)
        config = ChiaroscuroConfig().with_overrides(
            kmeans={"n_clusters": 2, "max_iterations": 2},
            privacy={"epsilon": 4.0, "noise_shares": 8},
            gossip={"cycles_per_aggregation": 4},
            crypto={"backend": "paillier", "key_bits": 128, "threshold": 2,
                    "n_key_shares": 3, "packing": "off", "fastmath": fastmath},
            simulation={"n_participants": 12, "seed": 3},
        )
        return run_chiaroscuro(collection, config)

    def test_profiles_identical_with_and_without_fastmath(self):
        off = self._run("off")
        auto = self._run("auto")
        np.testing.assert_array_equal(off.profiles, auto.profiles)
        assert off.assignments.tolist() == auto.assignments.tolist()
        assert off.metadata["fastmath"] == {"mode": "off", "pooled": False}
        assert auto.metadata["fastmath"] == {"mode": "auto", "pooled": True}
        assert auto.costs.encryptions == off.costs.encryptions
        assert auto.costs.homomorphic_additions == off.costs.homomorphic_additions

    def test_config_rejects_bad_fastmath(self):
        with pytest.raises(ConfigurationError):
            ChiaroscuroConfig().with_overrides(crypto={"fastmath": "turbo"})
