"""Tests of the time-series distance functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TimeSeriesError, ValidationError
from repro.timeseries import (
    available_distances,
    chebyshev_distance,
    dtw_distance,
    euclidean_distance,
    get_distance,
    manhattan_distance,
    nearest_neighbor,
    pairwise_distances,
    squared_euclidean_distance,
)


class TestPointwiseDistances:
    def test_euclidean(self):
        assert euclidean_distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_squared_euclidean(self):
        assert squared_euclidean_distance([0, 0], [3, 4]) == pytest.approx(25.0)

    def test_manhattan(self):
        assert manhattan_distance([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_chebyshev(self):
        assert chebyshev_distance([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_identity_is_zero(self):
        values = np.array([1.0, 2.0, 3.0])
        for name in ("euclidean", "sqeuclidean", "manhattan", "chebyshev", "dtw"):
            assert get_distance(name)(values, values) == pytest.approx(0.0)

    def test_symmetry(self):
        a = np.array([1.0, 5.0, 2.0])
        b = np.array([0.5, 4.0, 4.0])
        for name in ("euclidean", "manhattan", "chebyshev", "dtw"):
            distance = get_distance(name)
            assert distance(a, b) == pytest.approx(distance(b, a))

    def test_length_mismatch_raises(self):
        with pytest.raises(TimeSeriesError):
            euclidean_distance([1, 2], [1, 2, 3])

    def test_registry(self):
        assert "euclidean" in available_distances()
        with pytest.raises(ValidationError):
            get_distance("cosine-magic")


class TestDTW:
    def test_handles_different_lengths(self):
        assert dtw_distance([0, 0, 1, 2], [0, 1, 2]) >= 0.0

    def test_shifted_sequences_are_close(self):
        a = np.array([0, 0, 1, 2, 3, 0, 0], dtype=float)
        b = np.array([0, 1, 2, 3, 0, 0, 0], dtype=float)
        assert dtw_distance(a, b) < euclidean_distance(a, b)

    def test_window_constrains_path(self):
        a = np.array([0.0, 1.0, 2.0, 3.0])
        b = np.array([3.0, 2.0, 1.0, 0.0])
        unconstrained = dtw_distance(a, b)
        constrained = dtw_distance(a, b, window=0)
        assert constrained >= unconstrained

    def test_negative_window_rejected(self):
        with pytest.raises(ValidationError):
            dtw_distance([1.0], [1.0], window=-1)


class TestMatrixHelpers:
    def test_pairwise_matches_pointwise(self, rng):
        rows = rng.normal(size=(4, 6))
        cols = rng.normal(size=(3, 6))
        matrix = pairwise_distances(rows, cols, metric="euclidean")
        for i in range(4):
            for j in range(3):
                assert matrix[i, j] == pytest.approx(euclidean_distance(rows[i], cols[j]))

    def test_pairwise_manhattan(self, rng):
        rows = rng.normal(size=(3, 5))
        cols = rng.normal(size=(2, 5))
        matrix = pairwise_distances(rows, cols, metric="manhattan")
        assert matrix[1, 1] == pytest.approx(manhattan_distance(rows[1], cols[1]))

    def test_pairwise_generic_metric(self, rng):
        rows = rng.normal(size=(2, 4))
        matrix = pairwise_distances(rows, rows, metric="chebyshev")
        assert np.allclose(np.diag(matrix), 0.0)

    def test_pairwise_shape_mismatch(self):
        with pytest.raises(TimeSeriesError):
            pairwise_distances(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_pairwise_never_negative(self, rng):
        rows = rng.normal(size=(10, 8)) * 1e-8
        matrix = pairwise_distances(rows, rows, metric="euclidean")
        assert (matrix >= 0).all()

    def test_nearest_neighbor(self):
        candidates = np.array([[0.0, 0.0], [5.0, 5.0], [1.0, 1.0]])
        index, distance = nearest_neighbor(np.array([0.9, 1.1]), candidates)
        assert index == 2
        assert distance == pytest.approx(np.sqrt(0.01 + 0.01))
