"""Tests of the optional gmpy2 bigint backend (crypto/fastmath.py).

The backend is a pure wall-clock play: ``powmod`` / ``invert`` must return
exactly the integers the built-in ``pow`` / ``mod_inverse`` return, whether
gmpy2 is importable or not.  The backend-agnostic contract tests always run;
the equivalence tests that exercise gmpy2's code paths end to end (CRT ==
plain decryption, pooled == fresh encryption) are skipped where gmpy2 is
absent — this container ships without it, CI images may carry it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import damgard_jurik as dj
from repro.crypto.fastmath import (
    HAVE_GMPY2,
    BlinderPool,
    PrecomputedKey,
    invert,
    multi_pow,
    powmod,
)
from repro.crypto.math_utils import mod_inverse
from repro.exceptions import CryptoError

integers = st.integers(min_value=-(10**30), max_value=10**30)
moduli = st.integers(min_value=2, max_value=10**30)


class TestBackendAgnosticContract:
    """These hold on both backends — they pin the shared semantics."""

    @given(base=integers, exponent=st.integers(min_value=0, max_value=10**9),
           modulus=moduli)
    @settings(max_examples=100, deadline=None)
    def test_powmod_matches_builtin_pow(self, base, exponent, modulus):
        assert powmod(base, exponent, modulus) == pow(base, exponent, modulus)

    @given(value=integers, modulus=moduli)
    @settings(max_examples=100, deadline=None)
    def test_invert_matches_mod_inverse(self, value, modulus):
        try:
            expected = mod_inverse(value, modulus)
        except CryptoError:
            with pytest.raises(CryptoError):
                invert(value, modulus)
        else:
            assert invert(value, modulus) == expected

    def test_negative_exponent_inverts(self):
        assert powmod(3, -1, 7) == pow(3, -1, 7)
        assert powmod(3, -5, 7) == pow(3, -5, 7)

    def test_non_invertible_base_raises(self):
        with pytest.raises((CryptoError, ValueError)):
            powmod(6, -1, 9)
        with pytest.raises(CryptoError):
            invert(0, 7)
        with pytest.raises(CryptoError):
            invert(3, -5)


@pytest.mark.skipif(not HAVE_GMPY2, reason="gmpy2 not installed")
class TestGmpy2Equivalence:
    """End-to-end equivalence with gmpy2 actually driving the hot loops."""

    @pytest.fixture(scope="class")
    def keypair(self):
        return dj.generate_keypair(key_bits=128, s=2)

    @pytest.fixture(scope="class")
    def precomputed(self, keypair):
        _, private = keypair
        return PrecomputedKey.from_private_key(private)

    @given(fraction=st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False, allow_infinity=False))
    @settings(max_examples=25, deadline=None)
    def test_crt_decrypt_equals_plain_decrypt(self, keypair, precomputed, fraction):
        public, private = keypair
        modulus = public.plaintext_modulus
        plaintext = min(int(fraction * modulus), modulus - 1)
        ciphertext = dj.encrypt(public, plaintext)
        assert precomputed.decrypt(ciphertext) == dj.decrypt(private, ciphertext)

    def test_pooled_equals_fresh(self, keypair, precomputed):
        public, _ = keypair
        # A deterministic stand-in randomness stream, consumed in draw order
        # by both paths: pooled ciphertexts must be bit-identical to fresh.
        def stream(seed):
            state = seed
            def draw(n):
                nonlocal state
                state = (state * 6364136223846793005 + 1442695040888963407) % n
                return state or 1
            return draw
        pool = BlinderPool(precomputed, batch_size=4, rng=stream(12345))
        fresh_draw = stream(12345)
        for message in (0, 1, 17, public.plaintext_modulus - 1):
            pooled = (precomputed.one_plus_n_pow(message) * pool.take()) % public.ciphertext_modulus
            randomness = fresh_draw(public.n)
            blinder = pow(randomness, public.plaintext_modulus, public.ciphertext_modulus)
            fresh = (pow(1 + public.n, message, public.ciphertext_modulus) * blinder) % public.ciphertext_modulus
            assert dj.decrypt(keypair[1], pooled) == dj.decrypt(keypair[1], fresh) == message

    def test_multi_pow_matches_product_of_pows(self, keypair):
        public, _ = keypair
        modulus = public.ciphertext_modulus
        bases = [3, 5, 7, 11, 13]
        exponents = [10**20 + i for i in range(5)]
        expected = 1
        for base, exponent in zip(bases, exponents):
            expected = (expected * pow(base, exponent, modulus)) % modulus
        assert multi_pow(bases, exponents, modulus) == expected
