"""Tests of the cleartext gossip aggregation protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GossipError
from repro.gossip import gossip_average, max_relative_error, mean_relative_error


@pytest.fixture(scope="module")
def values():
    return np.random.default_rng(3).uniform(0.0, 1.0, size=(40, 5))


class TestPushPull:
    def test_converges_to_global_average(self, values):
        estimates = gossip_average(values, cycles=30, seed=1)
        assert max_relative_error(estimates, values.mean(axis=0)) < 1e-4

    def test_error_decreases_monotonically_overall(self, values):
        _, history = gossip_average(values, cycles=25, seed=1, return_history=True)
        assert history[-1] < history[0]
        assert history[-1] < 1e-3

    def test_exponential_convergence_rate(self, values):
        """The error after 2c cycles should be far below the error after c cycles."""
        _, history = gossip_average(values, cycles=24, seed=2, return_history=True)
        assert history[23] < history[11] * 0.2

    def test_mass_conservation(self, values):
        """Pairwise averaging conserves the global mean exactly."""
        estimates = gossip_average(values, cycles=7, seed=3)
        assert np.allclose(estimates.mean(axis=0), values.mean(axis=0), atol=1e-12)

    def test_single_node_is_trivial(self):
        single = np.array([[1.0, 2.0, 3.0]])
        estimates = gossip_average(single, cycles=3)
        assert np.allclose(estimates, single)

    def test_works_on_ring_topology(self, values):
        # Diffusion on a ring is slow (mixing time O(n^2)); the point is only
        # that the protocol still converges on a sparse, badly-mixing overlay.
        estimates = gossip_average(values, cycles=150, topology="ring", seed=4)
        assert max_relative_error(estimates, values.mean(axis=0)) < 0.05

    def test_complete_faster_than_ring(self, values):
        _, complete_history = gossip_average(values, cycles=15, seed=5, return_history=True)
        _, ring_history = gossip_average(
            values, cycles=15, topology="ring", seed=5, return_history=True
        )
        assert complete_history[-1] < ring_history[-1]

    def test_more_exchanges_per_cycle_converge_faster(self, values):
        _, slow = gossip_average(values, cycles=8, exchanges_per_cycle=1, seed=6,
                                 return_history=True)
        _, fast = gossip_average(values, cycles=8, exchanges_per_cycle=3, seed=6,
                                 return_history=True)
        assert fast[-1] < slow[-1]

    def test_message_drops_slow_but_do_not_break(self, values):
        estimates = gossip_average(values, cycles=40, seed=7, drop_probability=0.3)
        assert max_relative_error(estimates, values.mean(axis=0)) < 0.05


class TestPushSum:
    def test_converges_to_global_average(self, values):
        estimates = gossip_average(values, cycles=40, protocol="push_sum", seed=8)
        assert max_relative_error(estimates, values.mean(axis=0)) < 1e-3

    def test_mass_conserved_under_drops(self, values):
        # Push-sum keeps undelivered mass locally, so the weighted average of
        # the (value, weight) pairs is exactly preserved.
        estimates = gossip_average(
            values, cycles=30, protocol="push_sum", seed=9, drop_probability=0.4
        )
        assert max_relative_error(estimates, values.mean(axis=0)) < 0.05

    def test_unknown_protocol(self, values):
        with pytest.raises(GossipError):
            gossip_average(values, cycles=3, protocol="broadcast")


class TestErrorMetrics:
    def test_zero_error_for_exact_estimates(self, values):
        average = values.mean(axis=0)
        exact = np.tile(average, (values.shape[0], 1))
        assert max_relative_error(exact, average) == 0.0
        assert mean_relative_error(exact, average) == 0.0

    def test_max_at_least_mean(self, values):
        average = values.mean(axis=0)
        assert max_relative_error(values, average) >= mean_relative_error(values, average)

    def test_zero_average_handled(self):
        estimates = np.ones((3, 2))
        assert np.isfinite(max_relative_error(estimates, np.zeros(2)))
