"""Tests of the append-only JSONL result store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments import ExperimentSpec, ResultStore
from repro.experiments.store import failure_row, profiles_digest


def _spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="store-unit",
        dataset="gaussian",
        dataset_params={"n_clusters": 2},
        participants=12,
        base={"kmeans": {"n_clusters": 2, "max_iterations": 2}},
        sweep={"privacy.epsilon": [1.0, 2.0]},
    )


def _row(key: str, status: str = "ok", extra: dict | None = None) -> dict:
    row = {"key": key, "status": status, "experiment": "store-unit"}
    row.update(extra or {})
    return row


class TestAppendAndRead:
    def test_rows_come_back_in_file_order(self, tmp_path):
        store = ResultStore(tmp_path / "rows.jsonl")
        store.append(_row("a"))
        store.append(_row("b"))
        assert [row["key"] for row in store.rows()] == ["a", "b"]

    def test_append_creates_parent_directories(self, tmp_path):
        store = ResultStore(tmp_path / "deep" / "dir" / "rows.jsonl")
        store.append(_row("a"))
        assert store.path.exists()

    def test_append_is_append_only(self, tmp_path):
        store = ResultStore(tmp_path / "rows.jsonl")
        store.append(_row("a"))
        first = store.path.read_text(encoding="utf-8")
        store.append(_row("b"))
        assert store.path.read_text(encoding="utf-8").startswith(first)

    def test_missing_file_reads_as_empty(self, tmp_path):
        store = ResultStore(tmp_path / "absent.jsonl")
        assert store.rows() == []
        assert store.completed_keys() == set()

    def test_rows_need_key_and_status(self, tmp_path):
        store = ResultStore(tmp_path / "rows.jsonl")
        with pytest.raises(ExperimentError):
            store.append({"key": "a"})
        with pytest.raises(ExperimentError):
            store.append({"key": "a", "status": "meh"})

    def test_interior_corruption_is_reported_with_location(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text(
            '{"key": "a", "status": "ok"}\nnot json\n{"key": "b", "status": "ok"}\n',
            encoding="utf-8",
        )
        store = ResultStore(path)
        with pytest.raises(ExperimentError, match="rows.jsonl:2"):
            store.rows()

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        # A run killed mid-append leaves a partial trailing record; resume
        # must still read every complete row instead of refusing the store.
        path = tmp_path / "rows.jsonl"
        path.write_text(
            '{"key": "a", "status": "ok"}\n{"key": "b", "sta', encoding="utf-8",
        )
        store = ResultStore(path)
        assert [row["key"] for row in store.rows()] == ["a"]
        assert store.completed_keys() == {"a"}

    def test_append_after_truncation_drops_the_partial_record(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text(
            '{"key": "a", "status": "ok"}\n{"key": "b", "sta', encoding="utf-8",
        )
        store = ResultStore(path)
        store.append(_row("c"))
        # The partial record is gone (not merged into the new row), and the
        # store reads cleanly end to end.
        assert [row["key"] for row in store.rows()] == ["a", "c"]

    def test_non_object_lines_are_rejected(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text("[1, 2, 3]\n", encoding="utf-8")
        with pytest.raises(ExperimentError):
            ResultStore(path).rows()


class TestCacheSemantics:
    def test_only_ok_rows_count_as_completed(self, tmp_path):
        store = ResultStore(tmp_path / "rows.jsonl")
        store.append(_row("good", "ok"))
        store.append(_row("bad", "error", {"error": "boom"}))
        store.append(_row("slow", "timeout", {"error": "too slow"}))
        assert store.completed_keys() == {"good"}
        assert store.has("good")
        assert not store.has("bad")

    def test_latest_row_wins(self, tmp_path):
        store = ResultStore(tmp_path / "rows.jsonl")
        store.append(_row("cell", "error", {"error": "first try"}))
        store.append(_row("cell", "ok"))
        assert store.has("cell")
        # ... and a later failure invalidates the cache again.
        store.append(_row("cell", "timeout", {"error": "regression"}))
        assert not store.has("cell")

    def test_failure_row_shape(self):
        spec = _spec()
        cell = spec.expand()[0]
        row = failure_row(spec, cell, "timeout", "exceeded 5s", 5.2)
        assert row["status"] == "timeout"
        assert row["key"] == cell.key
        assert row["cell"]["overrides"] == {"privacy.epsilon": 1.0}
        assert row["timing"]["wall_clock_seconds"] == pytest.approx(5.2)
        with pytest.raises(ExperimentError):
            failure_row(spec, cell, "ok", "not a failure", 0.0)


class TestProfilesDigest:
    def test_digest_is_stable(self):
        profiles = np.arange(12, dtype=float).reshape(3, 4)
        assert profiles_digest(profiles) == profiles_digest(profiles.copy())

    def test_digest_tracks_values_and_shape(self):
        profiles = np.arange(12, dtype=float).reshape(3, 4)
        changed = profiles.copy()
        changed[0, 0] += 1e-12
        assert profiles_digest(profiles) != profiles_digest(changed)
        assert profiles_digest(profiles) != profiles_digest(profiles.reshape(4, 3))
