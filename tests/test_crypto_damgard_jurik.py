"""Tests of the Damgård–Jurik generalised Paillier scheme."""

from __future__ import annotations

import pytest

from repro.crypto import damgard_jurik as dj
from repro.crypto import paillier
from repro.exceptions import DecryptionError, EncryptionError, KeyGenerationError


@pytest.fixture(scope="module")
def keypair_s1():
    return dj.generate_keypair(key_bits=192, s=1)


@pytest.fixture(scope="module")
def keypair_s2():
    return dj.generate_keypair(key_bits=160, s=2)


@pytest.fixture(scope="module")
def keypair_s3():
    return dj.generate_keypair(key_bits=128, s=3)


class TestKeyGeneration:
    def test_plaintext_space_grows_with_degree(self, keypair_s1, keypair_s2):
        public1, _ = keypair_s1
        public2, _ = keypair_s2
        assert public2.plaintext_modulus == public2.n**2
        assert public1.plaintext_modulus == public1.n

    def test_ciphertext_modulus(self, keypair_s2):
        public, _ = keypair_s2
        assert public.ciphertext_modulus == public.n**3

    def test_rejects_tiny_keys(self):
        with pytest.raises(KeyGenerationError):
            dj.generate_keypair(key_bits=8)

    def test_rejects_bad_degree(self):
        with pytest.raises(KeyGenerationError):
            dj.DamgardJurikPublicKey(n=35, s=0)

    def test_ciphertext_bits_reported(self, keypair_s1):
        public, _ = keypair_s1
        assert public.ciphertext_bits >= 2 * public.key_bits - 2


class TestRoundTrip:
    @pytest.mark.parametrize("fixture_name", ["keypair_s1", "keypair_s2", "keypair_s3"])
    def test_encrypt_decrypt(self, fixture_name, request):
        public, private = request.getfixturevalue(fixture_name)
        for plaintext in (0, 1, 424242, public.plaintext_modulus - 1):
            ciphertext = dj.encrypt(public, plaintext)
            assert dj.decrypt(private, ciphertext) == plaintext

    def test_large_plaintexts_beyond_n_with_degree_two(self, keypair_s2):
        public, private = keypair_s2
        plaintext = public.n + 12345  # would not fit in a Paillier plaintext
        assert dj.decrypt(private, dj.encrypt(public, plaintext)) == plaintext

    def test_out_of_range_plaintext(self, keypair_s1):
        public, _ = keypair_s1
        with pytest.raises(EncryptionError):
            dj.encrypt(public, public.plaintext_modulus)

    def test_bad_randomness(self, keypair_s1):
        public, _ = keypair_s1
        with pytest.raises(EncryptionError):
            dj.encrypt(public, 1, randomness=public.n)

    def test_decrypt_range_check(self, keypair_s1):
        public, private = keypair_s1
        with pytest.raises(DecryptionError):
            dj.decrypt(private, public.ciphertext_modulus)


class TestHomomorphism:
    def test_addition(self, keypair_s2):
        public, private = keypair_s2
        a, b = 10**12, 10**11 + 7
        total = dj.add_ciphertexts(public, dj.encrypt(public, a), dj.encrypt(public, b))
        assert dj.decrypt(private, total) == a + b

    def test_many_term_sum(self, keypair_s1):
        public, private = keypair_s1
        terms = [3, 17, 1000, 42, 9]
        ciphertexts = [dj.encrypt(public, term) for term in terms]
        assert dj.decrypt(private, dj.add_ciphertexts(public, *ciphertexts)) == sum(terms)

    def test_add_plaintext(self, keypair_s1):
        public, private = keypair_s1
        assert dj.decrypt(private, dj.add_plaintext(public, dj.encrypt(public, 40), 2)) == 42

    def test_multiply_plaintext(self, keypair_s2):
        public, private = keypair_s2
        ciphertext = dj.multiply_plaintext(public, dj.encrypt(public, 6), 7)
        assert dj.decrypt(private, ciphertext) == 42

    def test_multiply_by_power_of_two(self, keypair_s1):
        public, private = keypair_s1
        ciphertext = dj.multiply_plaintext(public, dj.encrypt(public, 5), 1 << 20)
        assert dj.decrypt(private, ciphertext) == 5 << 20

    def test_rerandomize(self, keypair_s1):
        public, private = keypair_s1
        original = dj.encrypt(public, 99)
        refreshed = dj.rerandomize(public, original)
        assert refreshed != original
        assert dj.decrypt(private, refreshed) == 99

    def test_encrypt_zero(self, keypair_s1):
        public, private = keypair_s1
        assert dj.decrypt(private, dj.encrypt_zero(public)) == 0


class TestDlogExtraction:
    def test_dlog_of_known_exponent(self, keypair_s2):
        public, _ = keypair_s2
        exponent = 123456789
        value = dj.encrypt(public, exponent, randomness=1)  # randomness 1 => pure (1+n)^m
        assert dj.dlog_one_plus_n(public, value) == exponent

    def test_dlog_rejects_malformed_value(self, keypair_s1):
        public, _ = keypair_s1
        with pytest.raises(DecryptionError):
            dj.dlog_one_plus_n(public, 2)  # 2 - 1 is not a multiple of n


class TestAgreementWithPaillier:
    def test_degree_one_matches_paillier_semantics(self):
        """A DJ degree-1 key and a Paillier key behave identically."""
        public, private = dj.generate_keypair(key_bits=160, s=1)
        paillier_public = paillier.PaillierPublicKey(public.n)
        plaintext = 987654321 % public.n
        randomness = 12345
        assert dj.encrypt(public, plaintext, randomness) == paillier.encrypt(
            paillier_public, plaintext, randomness
        )
