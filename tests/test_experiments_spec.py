"""Tests of the declarative experiment specifications and their expansion."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import ExperimentSpec
from repro.experiments.spec import canonical_json


def _spec(**overrides) -> ExperimentSpec:
    payload = dict(
        name="unit",
        dataset="gaussian",
        dataset_params={"n_clusters": 2},
        participants=16,
        base={
            "kmeans": {"n_clusters": 2, "max_iterations": 2},
            "privacy": {"epsilon": 4.0, "noise_shares": 6},
        },
        sweep={"privacy.epsilon": [0.5, 2.0]},
        repeats=2,
        base_seed=5,
    )
    payload.update(overrides)
    return ExperimentSpec(**payload)


class TestRoundTrip:
    def test_dict_round_trip_is_exact(self):
        spec = _spec(description="round trip", metrics={"label_key": "cluster"})
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert clone.spec_hash == spec.spec_hash
        assert clone.cell_keys() == spec.cell_keys()

    def test_json_file_round_trip(self, tmp_path):
        spec = _spec()
        path = spec.save(tmp_path / "unit.json")
        loaded = ExperimentSpec.from_file(path)
        assert loaded.to_dict() == spec.to_dict()
        assert loaded.cell_keys() == spec.cell_keys()

    def test_toml_file_round_trip(self, tmp_path):
        spec = _spec(seeds=[3, 9])
        toml_lines = [
            'name = "unit"',
            "participants = 16",
            "seeds = [3, 9]",
            "[dataset]",
            'name = "gaussian"',
            "[dataset.params]",
            "n_clusters = 2",
            "[base.kmeans]",
            "n_clusters = 2",
            "max_iterations = 2",
            "[base.privacy]",
            "epsilon = 4.0",
            "noise_shares = 6",
            "[sweep]",
            '"privacy.epsilon" = [0.5, 2.0]',
        ]
        path = tmp_path / "unit.toml"
        path.write_text("\n".join(toml_lines) + "\n", encoding="utf-8")
        loaded = ExperimentSpec.from_file(path)
        assert loaded.cell_keys() == spec.cell_keys()

    def test_save_refuses_non_json_targets(self, tmp_path):
        # save() writes JSON; writing it into a .toml file would produce a
        # spec from_file() then rejects on the suffix-dispatched parser.
        with pytest.raises(ExperimentError, match=".json"):
            _spec().save(tmp_path / "unit.toml")

    def test_unsupported_suffix_rejected(self, tmp_path):
        path = tmp_path / "unit.yaml"
        path.write_text("name: unit\n", encoding="utf-8")
        with pytest.raises(ExperimentError):
            ExperimentSpec.from_file(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ExperimentError):
            ExperimentSpec.from_file(path)


class TestExpansion:
    def test_cartesian_count_and_order(self):
        spec = _spec(
            sweep={"privacy.epsilon": [0.5, 2.0], "gossip.cycles_per_aggregation": [3, 6]},
            repeats=2,
            base_seed=10,
        )
        cells = spec.expand()
        # 2 x 2 scenarios x 2 repeats, later axes varying fastest, repeats
        # innermost.
        assert len(cells) == 8
        combos = [
            (cell.overrides["privacy.epsilon"],
             cell.overrides["gossip.cycles_per_aggregation"],
             cell.seed)
            for cell in cells
        ]
        assert combos == [
            (0.5, 3, 10), (0.5, 3, 11),
            (0.5, 6, 10), (0.5, 6, 11),
            (2.0, 3, 10), (2.0, 3, 11),
            (2.0, 6, 10), (2.0, 6, 11),
        ]
        assert [cell.index for cell in cells] == list(range(8))
        assert [cell.scenario for cell in cells] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_expansion_is_deterministic(self):
        first = _spec().expand()
        second = _spec().expand()
        assert [cell.key for cell in first] == [cell.key for cell in second]
        assert [cell.label() for cell in first] == [cell.label() for cell in second]

    def test_explicit_cells_follow_the_sweep(self):
        spec = _spec(cells=[{"participants": 8, "privacy.epsilon": 9.0}], repeats=1)
        cells = spec.expand()
        assert len(cells) == 3
        assert cells[-1].participants == 8
        assert cells[-1].overrides["privacy.epsilon"] == 9.0

    def test_cells_only_spec_has_no_implicit_base_scenario(self):
        spec = _spec(sweep={}, cells=[{"privacy.epsilon": 1.0}], repeats=1)
        assert len(spec.expand()) == 1

    def test_empty_spec_is_a_single_scenario(self):
        spec = _spec(sweep={}, repeats=1)
        assert len(spec.expand()) == 1
        assert spec.expand()[0].overrides == {}

    def test_axis_keys_in_first_seen_order(self):
        spec = _spec(
            sweep={"privacy.epsilon": [1, 2]},
            cells=[{"runtime.mode": "live", "participants": 8}],
        )
        assert spec.axis_keys() == ["privacy.epsilon", "runtime.mode", "participants"]

    def test_explicit_seeds_override_repeats(self):
        spec = _spec(seeds=[100, 200, 300])
        assert spec.cell_seeds() == [100, 200, 300]
        assert len(spec.expand()) == 2 * 3

    def test_dataset_axis_feeds_generator_params(self):
        spec = _spec(sweep={"dataset.noise_std": [0.01, 0.5]}, repeats=1)
        cells = spec.expand()
        assert cells[0].dataset_params["noise_std"] == 0.01
        assert cells[1].dataset_params["noise_std"] == 0.5


class TestCellConfig:
    def test_population_and_seed_injected(self):
        cell = _spec(repeats=1).expand()[0]
        config = cell.config()
        assert config.simulation.n_participants == 16
        assert config.simulation.seed == 5
        assert config.privacy.epsilon == 0.5

    def test_noise_shares_clamped_to_population(self):
        # The default of 32 noise shares exceeds an 8-participant cell: the
        # spec layer applies the same clamp as the CLI.
        spec = _spec(base={"kmeans": {"n_clusters": 2}}, participants=8,
                     sweep={}, repeats=1)
        assert spec.expand()[0].config().privacy.noise_shares == 8

    def test_key_ignores_name_and_description(self):
        one = _spec(name="alpha", description="x", repeats=1).expand()[0]
        two = _spec(name="beta", description="y", repeats=1).expand()[0]
        assert one.key == two.key

    def test_key_tracks_every_identity_ingredient(self):
        base = _spec(repeats=1).expand()[0]
        assert _spec(repeats=1, base_seed=6).expand()[0].key != base.key
        assert _spec(repeats=1, participants=18).expand()[0].key != base.key
        assert _spec(repeats=1, sweep={"privacy.epsilon": [0.75]}).expand()[0].key \
            != base.key
        assert _spec(repeats=1, dataset_params={"n_clusters": 3}).expand()[0].key \
            != base.key

    def test_key_resolves_registry_dataset_defaults(self):
        # The dataset half of the identity is hashed fully resolved, like
        # the config half: spelling out a registry population default gives
        # the same key as omitting it (and a changed default invalidates).
        implicit = _spec(repeats=1).expand()[0]
        explicit = _spec(
            repeats=1, dataset_params={"n_clusters": 2, "series_length": 24},
        ).expand()[0]
        assert implicit.key == explicit.key
        different = _spec(
            repeats=1, dataset_params={"n_clusters": 2, "series_length": 48},
        ).expand()[0]
        assert implicit.key != different.key

    def test_key_tracks_evaluation_settings(self):
        # Stored quality metrics depend on how cells are scored, so changing
        # the metrics options must invalidate cached rows on --resume.
        base = _spec(repeats=1).expand()[0]
        assert _spec(repeats=1, metrics={"reference": False}).expand()[0].key \
            != base.key
        assert _spec(repeats=1, metrics={"label_key": None}).expand()[0].key \
            != base.key

    def test_identity_is_canonical_json(self):
        cell = _spec(repeats=1).expand()[0]
        payload = json.loads(canonical_json(cell.identity()))
        assert payload["participants"] == 16
        assert payload["config"]["privacy"]["epsilon"] == 0.5


class TestValidation:
    def test_requires_a_name(self):
        with pytest.raises(ExperimentError):
            _spec(name="")

    def test_rejects_unknown_sections(self):
        with pytest.raises(ExperimentError):
            _spec(base={"quantum": {"qubits": 3}})

    def test_rejects_bad_axis_keys(self):
        with pytest.raises(ExperimentError):
            _spec(sweep={"epsilon": [1, 2]})
        with pytest.raises(ExperimentError):
            _spec(sweep={"privacy": [1, 2]})

    def test_rejects_misspelled_field_names_at_load_time(self):
        # A typo'd field would otherwise surface as a raw TypeError from
        # dataclasses.replace() in the parent process, killing the sweep.
        with pytest.raises(ExperimentError, match="epsilonn"):
            _spec(sweep={"privacy.epsilonn": [1.0, 2.0]})
        with pytest.raises(ExperimentError, match="unknown field"):
            _spec(base={"kmeans": {"n_cluster": 3}})
        with pytest.raises(ExperimentError, match="unknown field"):
            _spec(cells=[{"gossip.fanoutt": 2}])

    def test_rejects_empty_axes(self):
        with pytest.raises(ExperimentError):
            _spec(sweep={"privacy.epsilon": []})

    def test_rejects_unknown_spec_fields(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec.from_dict({"name": "x", "sweeps": {}})

    def test_rejects_unknown_metrics_options(self):
        with pytest.raises(ExperimentError):
            _spec(metrics={"labels": "cluster"})

    def test_rejects_seed_in_dataset_params(self):
        with pytest.raises(ExperimentError):
            _spec(dataset_params={"seed": 1})

    def test_rejects_per_cell_derived_fields_as_overrides(self):
        # These would be silently overwritten by the expansion; make the
        # footgun a loud spec error pointing at the right field.
        with pytest.raises(ExperimentError, match="participants"):
            _spec(sweep={"simulation.n_participants": [40, 80]})
        with pytest.raises(ExperimentError, match="seeds"):
            _spec(sweep={"simulation.seed": [1, 2]})
        with pytest.raises(ExperimentError, match="seeds"):
            _spec(cells=[{"dataset.seed": 9}])
        with pytest.raises(ExperimentError, match="participants"):
            _spec(base={"simulation": {"n_participants": 40}})

    def test_rejects_dataset_size_parameter_overrides(self):
        # The registry knows gaussian's size parameter is n_series: smuggling
        # it through the dataset axis fails at load time, not per cell.
        with pytest.raises(ExperimentError, match="participants"):
            _spec(sweep={"dataset.n_series": [40, 80]})
        with pytest.raises(ExperimentError, match="participants"):
            _spec(cells=[{"dataset.n_series": 40}])
        with pytest.raises(ExperimentError, match="participants"):
            _spec(dataset_params={"n_series": 40})

    def test_rejects_scalar_string_sweep_values(self):
        # list("high") would silently expand into per-character scenarios.
        with pytest.raises(ExperimentError):
            ExperimentSpec.from_dict({
                "name": "x", "dataset": "gaussian",
                "sweep": {"privacy.epsilon": "high"},
            })

    def test_rejects_bad_participants_override(self):
        with pytest.raises(ExperimentError):
            _spec(sweep={"participants": [0]}).expand()

    def test_rejects_non_positive_repeats(self):
        with pytest.raises(ExperimentError):
            _spec(repeats=0)


class TestMetrics:
    def test_label_key_defaults_per_dataset(self):
        assert _spec().label_key == "cluster"
        assert _spec(dataset="cer", dataset_params={}).label_key == "archetype"
        assert _spec(metrics={"label_key": None}).label_key is None
        assert _spec(metrics={"label_key": "patient"}).label_key == "patient"

    def test_reference_defaults_on(self):
        assert _spec().evaluate_reference
        assert not _spec(metrics={"reference": False}).evaluate_reference
