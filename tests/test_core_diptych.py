"""Tests of the Diptych data structure and its gossip merge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Diptych, build_contribution, merge_diptychs
from repro.exceptions import ProtocolError
from repro.gossip import decode_estimate


def _decode_all(backend, estimates):
    return [decode_estimate(backend, estimate, [1, 2]) for estimate in estimates]


class TestBuildContribution:
    def test_assigned_cluster_carries_series_and_indicator(self, plain_backend):
        series = np.array([0.2, 0.4, 0.6])
        data_estimates, noise_estimates = build_contribution(
            plain_backend, series, assigned_cluster=1, n_clusters=3
        )
        decoded = _decode_all(plain_backend, data_estimates)
        assert np.allclose(decoded[1][:3], series, atol=1e-5)
        assert decoded[1][3] == pytest.approx(1.0, abs=1e-5)
        for cluster in (0, 2):
            assert np.allclose(decoded[cluster], 0.0, atol=1e-6)
        # No noise shares supplied: every noise estimate encrypts zero.
        for decoded_noise in _decode_all(plain_backend, noise_estimates):
            assert np.allclose(decoded_noise, 0.0, atol=1e-6)

    def test_noise_shares_embedded(self, plain_backend):
        series = np.array([0.1, 0.9])
        shares = [np.array([0.5, -0.5, 0.25]), np.array([0.0, 0.1, -0.1])]
        _data, noise_estimates = build_contribution(
            plain_backend, series, assigned_cluster=0, n_clusters=2, noise_shares=shares
        )
        decoded = _decode_all(plain_backend, noise_estimates)
        assert np.allclose(decoded[0], shares[0], atol=1e-5)
        assert np.allclose(decoded[1], shares[1], atol=1e-5)

    def test_invalid_cluster_index(self, plain_backend):
        with pytest.raises(ProtocolError):
            build_contribution(plain_backend, np.ones(3), assigned_cluster=5, n_clusters=2)

    def test_noise_share_count_checked(self, plain_backend):
        with pytest.raises(ProtocolError):
            build_contribution(
                plain_backend, np.ones(3), 0, 2, noise_shares=[np.zeros(4)]
            )

    def test_noise_share_length_checked(self, plain_backend):
        with pytest.raises(ProtocolError):
            build_contribution(
                plain_backend, np.ones(3), 0, 1, noise_shares=[np.zeros(2)]
            )

    def test_series_must_be_one_dimensional(self, plain_backend):
        with pytest.raises(ProtocolError):
            build_contribution(plain_backend, np.ones((2, 3)), 0, 2)


class TestDiptych:
    def test_consistency_check(self, plain_backend):
        series = np.array([0.3, 0.7])
        data_estimates, noise_estimates = build_contribution(plain_backend, series, 0, 2)
        diptych = Diptych(
            centroids=np.zeros((2, 2)),
            data_estimates=data_estimates,
            noise_estimates=noise_estimates,
        )
        diptych.check_consistent()
        assert diptych.n_clusters == 2
        assert diptych.series_length == 2

    def test_inconsistent_cluster_count_detected(self, plain_backend):
        series = np.array([0.3, 0.7])
        data_estimates, noise_estimates = build_contribution(plain_backend, series, 0, 2)
        diptych = Diptych(
            centroids=np.zeros((3, 2)),
            data_estimates=data_estimates,
            noise_estimates=noise_estimates,
        )
        with pytest.raises(ProtocolError):
            diptych.check_consistent()

    def test_merge_averages_both_sides(self, plain_backend):
        series_a = np.array([1.0, 0.0])
        series_b = np.array([0.0, 1.0])
        data_a, noise_a = build_contribution(plain_backend, series_a, 0, 2)
        data_b, noise_b = build_contribution(plain_backend, series_b, 1, 2)
        diptych_a = Diptych(np.zeros((2, 2)), data_a, noise_a)
        diptych_b = Diptych(np.zeros((2, 2)), data_b, noise_b)
        merge_diptychs(plain_backend, diptych_a, diptych_b)
        decoded_a = _decode_all(plain_backend, diptych_a.data_estimates)
        decoded_b = _decode_all(plain_backend, diptych_b.data_estimates)
        # After one exchange both participants hold the average of the two
        # contributions: cluster 0 = (series_a, 1)/2, cluster 1 = (series_b, 1)/2.
        expected_cluster0 = np.array([0.5, 0.0, 0.5])
        expected_cluster1 = np.array([0.0, 0.5, 0.5])
        for decoded in (decoded_a, decoded_b):
            assert np.allclose(decoded[0], expected_cluster0, atol=1e-5)
            assert np.allclose(decoded[1], expected_cluster1, atol=1e-5)

    def test_merge_shape_mismatch_rejected(self, plain_backend):
        data_a, noise_a = build_contribution(plain_backend, np.ones(2), 0, 2)
        data_b, noise_b = build_contribution(plain_backend, np.ones(3), 0, 2)
        diptych_a = Diptych(np.zeros((2, 2)), data_a, noise_a)
        diptych_b = Diptych(np.zeros((2, 3)), data_b, noise_b)
        with pytest.raises(ProtocolError):
            merge_diptychs(plain_backend, diptych_a, diptych_b)
