"""Property-based tests (hypothesis) of the core invariants.

These cover the invariants the whole system leans on: exact fixed-point
round-trips, the additive homomorphism of the ciphertexts, mass conservation
of the gossip primitives, the budget-strategy never overspending, and the
metric properties of the distances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clustering import adjusted_rand_index, centroid_displacement
from repro.crypto import damgard_jurik as dj
from repro.crypto.encoding import FixedPointCodec
from repro.gossip import average_estimates, decode_estimate, fresh_estimate
from repro.privacy import NoiseShareSpec, make_budget_strategy, share_variance
from repro.timeseries import euclidean_distance, manhattan_distance

# One shared small key pair: generating keys inside @given would be far too slow.
DJ_PUBLIC, DJ_PRIVATE = dj.generate_keypair(key_bits=128, s=1)

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                          allow_infinity=False)
small_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False,
                         allow_infinity=False)


class TestFixedPointCodec:
    @given(value=finite_floats)
    @settings(max_examples=200)
    def test_round_trip_within_quantisation(self, value):
        codec = FixedPointCodec(modulus=2**80, scale=10**6)
        # Half a quantisation step, plus a few ulps at the value's magnitude:
        # the decode division is correctly rounded but not exact, so the
        # slack must scale with |value| (a flat 1e-12 fails near 2^16 when
        # value*scale lands exactly on a .5 rounding boundary).
        slack = 0.5 / codec.scale + 8 * np.finfo(float).eps * max(1.0, abs(value))
        assert abs(codec.decode(codec.encode(value)) - value) <= slack

    @given(values=st.lists(small_floats, min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_sum_of_encodings_decodes_to_sum(self, values):
        codec = FixedPointCodec(modulus=2**80, scale=10**6)
        encoded_sum = sum(codec.encode(v) for v in values) % codec.modulus
        assert codec.decode(encoded_sum) == pytest.approx(sum(values), abs=1e-4)

    @given(value=st.integers(min_value=-(2**40), max_value=2**40))
    @settings(max_examples=100)
    def test_integer_round_trip_is_exact(self, value):
        codec = FixedPointCodec(modulus=2**80, scale=10**6)
        assert codec.decode_integer(codec.encode_integer(value)) == value


class TestHomomorphism:
    @given(a=st.integers(min_value=0, max_value=2**60),
           b=st.integers(min_value=0, max_value=2**60))
    @settings(max_examples=25, deadline=None)
    def test_product_of_ciphertexts_encrypts_sum(self, a, b):
        ca = dj.encrypt(DJ_PUBLIC, a)
        cb = dj.encrypt(DJ_PUBLIC, b)
        total = dj.add_ciphertexts(DJ_PUBLIC, ca, cb)
        assert dj.decrypt(DJ_PRIVATE, total) == (a + b) % DJ_PUBLIC.plaintext_modulus

    @given(a=st.integers(min_value=0, max_value=2**40),
           k=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=25, deadline=None)
    def test_exponentiation_multiplies_plaintext(self, a, k):
        ciphertext = dj.multiply_plaintext(DJ_PUBLIC, dj.encrypt(DJ_PUBLIC, a), k)
        assert dj.decrypt(DJ_PRIVATE, ciphertext) == (a * k) % DJ_PUBLIC.plaintext_modulus


class TestGossipInvariants:
    @given(values=st.lists(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
                           min_size=2, max_size=6),
           pair_count=st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_pairwise_averaging_conserves_the_mean(self, values, pair_count, plain_backend):
        rng = np.random.default_rng(0)
        estimates = [fresh_estimate(plain_backend, [v]) for v in values]
        clear = list(values)
        for _ in range(pair_count):
            i, j = rng.choice(len(values), size=2, replace=False)
            merged = average_estimates(plain_backend, estimates[i], estimates[j])
            estimates[i] = merged
            estimates[j] = merged
            mean = (clear[i] + clear[j]) / 2
            clear[i] = clear[j] = mean
        decoded = [decode_estimate(plain_backend, e, [1, 2])[0] for e in estimates]
        # Pairwise averaging never changes the global mean (mass conservation).
        assert np.mean(decoded) == pytest.approx(np.mean(values), abs=1e-4)
        # And every node tracks its cleartext twin exactly (up to quantisation).
        assert np.allclose(decoded, clear, atol=1e-4)


class TestPrivacyInvariants:
    @given(total=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
           iterations=st.integers(min_value=1, max_value=30),
           name=st.sampled_from(["uniform", "geometric", "adaptive"]))
    @settings(max_examples=100)
    def test_budget_strategies_never_overspend(self, total, iterations, name):
        strategy = make_budget_strategy(name, total, iterations)
        remaining = total
        spent = 0.0
        for iteration in range(iterations):
            epsilon = strategy.epsilon_for_iteration(iteration, remaining)
            assert epsilon >= 0.0
            assert epsilon <= remaining + 1e-9
            spent += epsilon
            remaining -= epsilon
        assert spent <= total * (1 + 1e-9)

    @given(scale=st.floats(min_value=0.01, max_value=50.0),
           n_shares=st.integers(min_value=1, max_value=64))
    @settings(max_examples=100)
    def test_share_variance_scales_inversely_with_share_count(self, scale, n_shares):
        spec = NoiseShareSpec(scale=scale, n_shares=n_shares, vector_length=1)
        assert share_variance(spec) * n_shares == pytest.approx(2 * scale**2)


class TestMetricProperties:
    @given(a=st.lists(small_floats, min_size=2, max_size=16),
           b=st.lists(small_floats, min_size=2, max_size=16))
    @settings(max_examples=100)
    def test_distances_are_symmetric_and_non_negative(self, a, b):
        length = min(len(a), len(b))
        x = np.array(a[:length])
        y = np.array(b[:length])
        for distance in (euclidean_distance, manhattan_distance):
            assert distance(x, y) >= 0.0
            assert distance(x, y) == pytest.approx(distance(y, x))
            assert distance(x, x) == pytest.approx(0.0, abs=1e-9)

    @given(a=st.lists(small_floats, min_size=2, max_size=10),
           b=st.lists(small_floats, min_size=2, max_size=10),
           c=st.lists(small_floats, min_size=2, max_size=10))
    @settings(max_examples=100)
    def test_euclidean_triangle_inequality(self, a, b, c):
        length = min(len(a), len(b), len(c))
        x, y, z = (np.array(v[:length]) for v in (a, b, c))
        assert euclidean_distance(x, z) <= (
            euclidean_distance(x, y) + euclidean_distance(y, z) + 1e-7
        )

    @given(labels=st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=60))
    @settings(max_examples=100)
    def test_ari_of_identical_labelings_is_one(self, labels):
        array = np.array(labels)
        assert adjusted_rand_index(array, array) == pytest.approx(1.0)

    @given(labels=st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=60),
           permutation_seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50)
    def test_ari_invariant_under_label_permutation(self, labels, permutation_seed):
        array = np.array(labels)
        rng = np.random.default_rng(permutation_seed)
        mapping = rng.permutation(5)
        permuted = mapping[array]
        assert adjusted_rand_index(array, permuted) == pytest.approx(1.0)

    @given(matrix=st.lists(st.lists(small_floats, min_size=3, max_size=3),
                           min_size=2, max_size=5))
    @settings(max_examples=100)
    def test_centroid_displacement_identity(self, matrix):
        centroids = np.array(matrix)
        assert centroid_displacement(centroids, centroids) == 0.0
