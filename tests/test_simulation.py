"""Tests of the cycle-driven simulation substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError, ValidationError
from repro.simulation import (
    CallbackObserver,
    CycleEngine,
    HistoryObserver,
    Message,
    Network,
    Node,
    OnlineCountObserver,
    RngRegistry,
    run_until,
)


class CountingNode(Node):
    """Minimal node that counts how many times it was scheduled."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.calls = 0
        self.received: list[object] = []

    def next_cycle(self, engine: CycleEngine, cycle: int) -> None:
        self.calls += 1

    def receive(self, engine: CycleEngine, message) -> None:
        self.received.append(message.payload)


class TestRngRegistry:
    def test_same_name_same_stream(self):
        registry = RngRegistry(7)
        assert registry.stream("a") is registry.stream("a")

    def test_distinct_names_independent(self):
        registry = RngRegistry(7)
        a = registry.stream("a").random(5)
        b = registry.stream("b").random(5)
        assert not np.allclose(a, b)

    def test_reproducible_across_registries(self):
        first = RngRegistry(7).stream("gossip").random(5)
        second = RngRegistry(7).stream("gossip").random(5)
        assert np.allclose(first, second)

    def test_different_seeds_differ(self):
        first = RngRegistry(1).stream("x").random(5)
        second = RngRegistry(2).stream("x").random(5)
        assert not np.allclose(first, second)

    def test_spawn_gives_fresh_streams(self):
        registry = RngRegistry(0)
        a = registry.spawn("exp")
        b = registry.spawn("exp")
        assert not np.allclose(a.random(5), b.random(5))

    def test_empty_name_rejected(self):
        with pytest.raises(SimulationError):
            RngRegistry(0).stream("")

    def test_names_listed(self):
        registry = RngRegistry(0)
        registry.stream("one")
        registry.stream("two")
        assert set(registry.names()) == {"one", "two"}


class TestNetwork:
    def test_delivery_and_accounting(self):
        network = Network(3)
        delivered = network.send(Message(sender=0, recipient=1, kind="x", payload=None,
                                         size_bytes=100))
        assert delivered
        assert network.stats_for(0).messages_sent == 1
        assert network.stats_for(0).bytes_sent == 100
        assert network.stats_for(1).messages_received == 1
        assert network.total.bytes_received == 100
        assert network.average_bytes_sent() == pytest.approx(100 / 3)
        assert network.average_messages_sent() == pytest.approx(1 / 3)

    def test_drops_are_counted_but_not_received(self):
        network = Network(2, drop_probability=1.0, rng=np.random.default_rng(0))
        delivered = network.send(Message(0, 1, "x", None, 10))
        assert not delivered
        assert network.total.messages_dropped == 1
        assert network.stats_for(1).messages_received == 0

    def test_invalid_node_rejected(self):
        network = Network(2)
        with pytest.raises(SimulationError):
            network.send(Message(0, 5, "x", None))

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            Message(0, 1, "x", None, size_bytes=-1)

    def test_reset_stats(self):
        network = Network(2)
        network.send(Message(0, 1, "x", None, 10))
        network.reset_stats()
        assert network.total.messages_sent == 0

    def test_stats_dict(self):
        network = Network(1)
        assert set(network.total.as_dict()) == {
            "messages_sent", "messages_received", "messages_dropped",
            "messages_corrupted", "bytes_sent", "bytes_received",
            "bytes_modelled",
        }


class TestEngine:
    def test_every_online_node_called_once_per_cycle(self):
        nodes = [CountingNode(i) for i in range(5)]
        engine = CycleEngine(nodes, seed=1)
        engine.run(3)
        assert all(node.calls == 3 for node in nodes)

    def test_node_ids_must_be_dense(self):
        with pytest.raises(SimulationError):
            CycleEngine([CountingNode(0), CountingNode(2)])

    def test_offline_nodes_skipped(self):
        nodes = [CountingNode(i) for i in range(3)]
        nodes[1].online = False
        engine = CycleEngine(nodes, seed=1)
        engine.run(2)
        assert nodes[1].calls == 0
        assert nodes[0].calls == 2

    def test_messages_reach_receive_hook(self):
        nodes = [CountingNode(i) for i in range(2)]
        engine = CycleEngine(nodes, seed=0)
        assert engine.send(0, 1, "ping", "hello", size_bytes=5)
        assert nodes[1].received == ["hello"]

    def test_message_to_offline_node_not_delivered(self):
        nodes = [CountingNode(i) for i in range(2)]
        nodes[1].online = False
        engine = CycleEngine(nodes, seed=0)
        assert not engine.send(0, 1, "ping", "hello")
        assert nodes[1].received == []

    def test_churn_takes_nodes_offline_and_back(self):
        nodes = [CountingNode(i) for i in range(30)]
        engine = CycleEngine(nodes, seed=3, churn_rate=0.5, rejoin_rate=0.5)
        observer = OnlineCountObserver()
        engine.add_observer(observer)
        engine.run(10)
        assert min(observer.counts) < 30
        assert max(observer.counts) > 0

    def test_random_online_peer_excludes_self(self):
        nodes = [CountingNode(i) for i in range(4)]
        engine = CycleEngine(nodes, seed=0)
        for _ in range(20):
            peer = engine.random_online_peer(exclude=2)
            assert peer is not None and peer.node_id != 2

    def test_random_online_peer_none_when_alone(self):
        engine = CycleEngine([CountingNode(0)], seed=0)
        assert engine.random_online_peer(exclude=0) is None

    def test_observers_called_each_cycle(self):
        nodes = [CountingNode(i) for i in range(2)]
        engine = CycleEngine(nodes, seed=0)
        seen = []
        engine.add_observer(CallbackObserver(lambda eng, cycle: seen.append(cycle)))
        engine.run(4)
        assert seen == [0, 1, 2, 3]

    def test_history_observer_with_stride(self):
        nodes = [CountingNode(i) for i in range(2)]
        engine = CycleEngine(nodes, seed=0)
        history = HistoryObserver(lambda eng, cycle: cycle * 10, every=2)
        engine.add_observer(history)
        engine.run(5)
        assert history.cycles == [0, 2, 4]
        assert history.history == [0, 20, 40]

    def test_stop_condition(self):
        nodes = [CountingNode(i) for i in range(2)]
        engine = CycleEngine(nodes, seed=0)
        executed = engine.run(100, stop_when=lambda eng: nodes[0].calls >= 5)
        assert executed == 5

    def test_run_until(self):
        nodes = [CountingNode(i) for i in range(2)]
        engine = CycleEngine(nodes, seed=0)
        cycles = run_until(engine, lambda eng: nodes[0].calls >= 3, max_cycles=10)
        assert cycles == 3

    def test_run_until_raises_when_never_true(self):
        nodes = [CountingNode(i) for i in range(2)]
        engine = CycleEngine(nodes, seed=0)
        with pytest.raises(SimulationError):
            run_until(engine, lambda eng: False, max_cycles=3)

    def test_deterministic_given_seed(self):
        def run(seed):
            nodes = [CountingNode(i) for i in range(10)]
            engine = CycleEngine(nodes, seed=seed, churn_rate=0.2, rejoin_rate=0.5)
            observer = OnlineCountObserver()
            engine.add_observer(observer)
            engine.run(5)
            return observer.counts

        assert run(4) == run(4)
        assert run(4) != run(5) or True  # different seeds may coincide, but usually differ


class TestOnlineIndex:
    """The engine's incremental online-id index (fast peer sampling)."""

    def test_direct_online_assignment_updates_index(self):
        nodes = [CountingNode(i) for i in range(6)]
        engine = CycleEngine(nodes, seed=0)
        assert engine.online_ids() == [0, 1, 2, 3, 4, 5]
        nodes[2].online = False
        nodes[4].online = False
        assert engine.online_ids() == [0, 1, 3, 5]
        assert [node.node_id for node in engine.online_nodes()] == [0, 1, 3, 5]
        nodes[2].online = True
        assert engine.online_ids() == [0, 1, 2, 3, 5]

    def test_random_online_peer_respects_exclusion(self):
        nodes = [CountingNode(i) for i in range(5)]
        engine = CycleEngine(nodes, seed=0)
        for node_id in (1, 2, 4):
            nodes[node_id].online = False
        for _ in range(20):
            peer = engine.random_online_peer(exclude=0)
            assert peer is not None and peer.node_id == 3

    def test_random_online_peer_none_when_everyone_excluded(self):
        nodes = [CountingNode(i) for i in range(2)]
        engine = CycleEngine(nodes, seed=0)
        nodes[1].online = False
        assert engine.random_online_peer(exclude=0) is None

    def test_random_online_peer_matches_historical_selection(self):
        """Bisect-based sampling must pick what the old filtered list did."""
        nodes = [CountingNode(i) for i in range(10)]
        engine = CycleEngine(nodes, seed=7)
        for node_id in (0, 3, 8):
            nodes[node_id].online = False
        for _ in range(50):
            candidates = [
                node for node in engine.nodes if node.online and node.node_id != 4
            ]
            # Replay what the historical implementation would draw with the
            # same scheduler stream, then check the new path agrees.
            state_before = engine._scheduler_rng.bit_generator.state
            peer = engine.random_online_peer(exclude=4)
            engine._scheduler_rng.bit_generator.state = state_before
            index = int(engine._scheduler_rng.integers(0, len(candidates)))
            assert peer is candidates[index]

    def test_vectorized_churn_matches_sequential_stream(self):
        """One batched draw per cycle consumes the stream like the old loop."""

        def run_with(churn_rate, rejoin_rate, seed, cycles=30):
            nodes = [CountingNode(i) for i in range(40)]
            engine = CycleEngine(
                nodes, seed=seed, churn_rate=churn_rate, rejoin_rate=rejoin_rate
            )
            states = []
            for _ in range(cycles):
                engine.run_cycle()
                states.append(tuple(engine.online_ids()))
            return states

        def run_reference(churn_rate, rejoin_rate, seed, cycles=30):
            nodes = [CountingNode(i) for i in range(40)]
            engine = CycleEngine(
                nodes, seed=seed, churn_rate=churn_rate, rejoin_rate=rejoin_rate
            )

            def sequential_churn(cycle):
                if engine.churn_rate == 0.0:
                    return
                for node in engine.nodes:
                    if node.online:
                        if engine.churn_rate > 0 and engine._churn_rng.random() < engine.churn_rate:
                            node.online = False
                            node.on_offline(engine, cycle)
                    elif engine.rejoin_rate > 0 and engine._churn_rng.random() < engine.rejoin_rate:
                        node.online = True
                        node.on_online(engine, cycle)

            engine._apply_churn = sequential_churn  # type: ignore[method-assign]
            states = []
            for _ in range(cycles):
                engine.run_cycle()
                states.append(tuple(engine.online_ids()))
            return states

        for churn, rejoin in ((0.2, 0.5), (0.3, 0.0), (0.0, 0.5)):
            assert run_with(churn, rejoin, seed=11) == run_reference(churn, rejoin, seed=11)


class TestCorruptionFaultModel:
    def test_disabled_model_is_identity_and_consumes_no_randomness(self):
        rng = np.random.default_rng(3)
        state_before = rng.bit_generator.state
        network = Network(2, corruption_probability=0.0, corruption_rng=rng)
        payload = b"\x00" * 32
        assert network.maybe_corrupt(payload) is payload
        assert rng.bit_generator.state == state_before
        assert network.total.messages_corrupted == 0

    def test_certain_corruption_flips_exactly_one_bit(self):
        network = Network(
            3, corruption_probability=1.0,
            corruption_rng=np.random.default_rng(4),
        )
        payload = bytes(range(64))
        corrupted = network.maybe_corrupt(payload, sender=1)
        assert corrupted != payload
        assert len(corrupted) == len(payload)
        flipped_bits = sum(
            bin(a ^ b).count("1") for a, b in zip(payload, corrupted)
        )
        assert flipped_bits == 1
        assert network.total.messages_corrupted == 1
        assert network.stats_for(1).messages_corrupted == 1
        assert network.stats_for(0).messages_corrupted == 0

    def test_engine_transmit_applies_corruption(self):
        received_payloads = []

        class Recorder(CountingNode):
            def receive(self, engine, message):
                received_payloads.append(message.payload)

        nodes = [Recorder(0), Recorder(1)]
        engine = CycleEngine(nodes, seed=0, corruption_rate=1.0)
        frame = b"\xAA" * 16
        received = engine.transmit(0, 1, "test", frame, modelled_bytes=10)
        assert received is not None and received != frame
        assert received_payloads == [received]
        assert engine.network.total.messages_corrupted == 1
        assert engine.network.total.bytes_sent == len(frame)
        assert engine.network.total.bytes_modelled == 10

    def test_transmit_rejects_non_bytes(self):
        engine = CycleEngine([CountingNode(0), CountingNode(1)], seed=0)
        with pytest.raises(SimulationError):
            engine.transmit(0, 1, "test", "not a frame")  # type: ignore[arg-type]
