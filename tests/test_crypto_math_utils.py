"""Tests of the number-theoretic helpers."""

from __future__ import annotations

import math

import pytest

from repro.crypto.math_utils import (
    crt_pair,
    factorial,
    generate_distinct_primes,
    generate_prime,
    integer_digits,
    is_probable_prime,
    lcm,
    mod_inverse,
    product,
    random_below,
    random_coprime,
)
from repro.exceptions import CryptoError, KeyGenerationError


class TestPrimality:
    @pytest.mark.parametrize("prime", [2, 3, 5, 7, 97, 104729, 2**31 - 1])
    def test_known_primes(self, prime):
        assert is_probable_prime(prime)

    @pytest.mark.parametrize("composite", [1, 0, -7, 4, 100, 561, 104729 * 3, 2**32])
    def test_known_composites(self, composite):
        assert not is_probable_prime(composite)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool Fermat tests but not Miller-Rabin.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(carmichael)

    def test_generate_prime_has_requested_bits(self):
        prime = generate_prime(48)
        assert prime.bit_length() == 48
        assert is_probable_prime(prime)

    def test_generate_prime_rejects_tiny(self):
        with pytest.raises(KeyGenerationError):
            generate_prime(1)

    def test_generate_distinct_primes(self):
        primes = generate_distinct_primes(32, count=3)
        assert len(set(primes)) == 3
        assert all(is_probable_prime(p) for p in primes)


class TestModularArithmetic:
    def test_lcm(self):
        assert lcm(4, 6) == 12
        assert lcm(0, 5) == 0
        assert lcm(7, 13) == 91

    def test_mod_inverse(self):
        assert (3 * mod_inverse(3, 11)) % 11 == 1
        assert (10 * mod_inverse(10, 17)) % 17 == 1

    def test_mod_inverse_missing(self):
        with pytest.raises(CryptoError):
            mod_inverse(6, 9)

    def test_mod_inverse_bad_modulus(self):
        with pytest.raises(CryptoError):
            mod_inverse(3, 0)

    def test_crt_pair(self):
        x = crt_pair(2, 3, 3, 5)
        assert x % 3 == 2
        assert x % 5 == 3
        assert 0 <= x < 15

    def test_crt_requires_coprime_moduli(self):
        with pytest.raises(CryptoError):
            crt_pair(1, 4, 2, 6)

    def test_random_coprime(self):
        modulus = 97 * 89
        for _ in range(10):
            value = random_coprime(modulus)
            assert math.gcd(value, modulus) == 1
            assert 1 <= value < modulus

    def test_random_coprime_rejects_small_modulus(self):
        with pytest.raises(CryptoError):
            random_coprime(2)

    def test_random_below(self):
        for _ in range(20):
            assert 0 <= random_below(7) < 7
        with pytest.raises(CryptoError):
            random_below(0)


class TestMiscHelpers:
    def test_factorial(self):
        assert factorial(0) == 1
        assert factorial(5) == 120
        with pytest.raises(CryptoError):
            factorial(-1)

    def test_integer_digits(self):
        assert integer_digits(13, 2, 5) == [1, 0, 1, 1, 0]
        with pytest.raises(CryptoError):
            integer_digits(10, 1, 3)

    def test_product(self):
        assert product([]) == 1
        assert product([2, 3, 4]) == 24


class TestDeterministicPrimalityFastPath:
    """Below ~3.3e24 the fixed Miller-Rabin bases are exact: no random rounds."""

    def test_no_random_witnesses_below_the_bound(self, monkeypatch):
        import secrets as secrets_module

        from repro.crypto import math_utils

        def forbidden(_bound):
            raise AssertionError("random rounds must be skipped below the bound")

        monkeypatch.setattr(math_utils.secrets, "randbelow", forbidden)
        # 2^61 - 1 is a Mersenne prime well below the deterministic bound.
        assert math_utils.is_probable_prime((1 << 61) - 1)
        assert not math_utils.is_probable_prime((1 << 61) - 3)
        del secrets_module

    def test_random_witnesses_still_used_above_the_bound(self, monkeypatch):
        from repro.crypto import math_utils

        calls = []
        real = math_utils.secrets.randbelow

        def counting(bound):
            calls.append(bound)
            return real(bound)

        monkeypatch.setattr(math_utils.secrets, "randbelow", counting)
        # A 128-bit prime (> 3.3e24): the probabilistic rounds must run.
        prime_128 = (1 << 127) - 1  # Mersenne prime M127
        assert math_utils.is_probable_prime(prime_128, rounds=4)
        assert len(calls) == 4

    def test_strong_pseudoprime_to_twelve_bases_rejected(self):
        from repro.crypto.math_utils import is_probable_prime

        # Smallest strong pseudoprime to bases 2..37: composite, below the
        # bound, and only witnessed by base 41 — the deterministic set must
        # include 41 for the skip-random-rounds fast path to be sound.
        assert not is_probable_prime(318_665_857_834_031_151_167_461)

    def test_agreement_around_the_bound(self):
        from repro.crypto.math_utils import _DETERMINISTIC_BOUND, is_probable_prime

        # The largest prime below the deterministic bound (verified offline)
        # and its composite neighbourhood: the deterministic-only path must
        # classify all of them correctly right up to the cutover.
        largest_prime_below = 3_317_044_064_679_887_385_961_813
        assert largest_prime_below < _DETERMINISTIC_BOUND
        assert is_probable_prime(largest_prime_below)
        for candidate in range(largest_prime_below + 1, _DETERMINISTIC_BOUND):
            assert not is_probable_prime(candidate)
