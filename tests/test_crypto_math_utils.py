"""Tests of the number-theoretic helpers."""

from __future__ import annotations

import math

import pytest

from repro.crypto.math_utils import (
    crt_pair,
    factorial,
    generate_distinct_primes,
    generate_prime,
    integer_digits,
    is_probable_prime,
    lcm,
    mod_inverse,
    product,
    random_below,
    random_coprime,
)
from repro.exceptions import CryptoError, KeyGenerationError


class TestPrimality:
    @pytest.mark.parametrize("prime", [2, 3, 5, 7, 97, 104729, 2**31 - 1])
    def test_known_primes(self, prime):
        assert is_probable_prime(prime)

    @pytest.mark.parametrize("composite", [1, 0, -7, 4, 100, 561, 104729 * 3, 2**32])
    def test_known_composites(self, composite):
        assert not is_probable_prime(composite)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool Fermat tests but not Miller-Rabin.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(carmichael)

    def test_generate_prime_has_requested_bits(self):
        prime = generate_prime(48)
        assert prime.bit_length() == 48
        assert is_probable_prime(prime)

    def test_generate_prime_rejects_tiny(self):
        with pytest.raises(KeyGenerationError):
            generate_prime(1)

    def test_generate_distinct_primes(self):
        primes = generate_distinct_primes(32, count=3)
        assert len(set(primes)) == 3
        assert all(is_probable_prime(p) for p in primes)


class TestModularArithmetic:
    def test_lcm(self):
        assert lcm(4, 6) == 12
        assert lcm(0, 5) == 0
        assert lcm(7, 13) == 91

    def test_mod_inverse(self):
        assert (3 * mod_inverse(3, 11)) % 11 == 1
        assert (10 * mod_inverse(10, 17)) % 17 == 1

    def test_mod_inverse_missing(self):
        with pytest.raises(CryptoError):
            mod_inverse(6, 9)

    def test_mod_inverse_bad_modulus(self):
        with pytest.raises(CryptoError):
            mod_inverse(3, 0)

    def test_crt_pair(self):
        x = crt_pair(2, 3, 3, 5)
        assert x % 3 == 2
        assert x % 5 == 3
        assert 0 <= x < 15

    def test_crt_requires_coprime_moduli(self):
        with pytest.raises(CryptoError):
            crt_pair(1, 4, 2, 6)

    def test_random_coprime(self):
        modulus = 97 * 89
        for _ in range(10):
            value = random_coprime(modulus)
            assert math.gcd(value, modulus) == 1
            assert 1 <= value < modulus

    def test_random_coprime_rejects_small_modulus(self):
        with pytest.raises(CryptoError):
            random_coprime(2)

    def test_random_below(self):
        for _ in range(20):
            assert 0 <= random_below(7) < 7
        with pytest.raises(CryptoError):
            random_below(0)


class TestMiscHelpers:
    def test_factorial(self):
        assert factorial(0) == 1
        assert factorial(5) == 120
        with pytest.raises(CryptoError):
            factorial(-1)

    def test_integer_digits(self):
        assert integer_digits(13, 2, 5) == [1, 0, 1, 1, 0]
        with pytest.raises(CryptoError):
            integer_digits(10, 1, 3)

    def test_product(self):
        assert product([]) == 1
        assert product([2, 3, 4]) == 24
