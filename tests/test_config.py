"""Tests of the configuration dataclasses and their cross-field validation."""

from __future__ import annotations

import pytest

from repro.config import (
    ChiaroscuroConfig,
    CryptoConfig,
    GossipConfig,
    KMeansConfig,
    PrivacyConfig,
    SimulationConfig,
    SmoothingConfig,
)
from repro.exceptions import ConfigurationError, ValidationError


class TestSectionConfigs:
    def test_kmeans_defaults(self):
        config = KMeansConfig()
        assert config.n_clusters == 5
        assert config.init == "kmeans++"

    def test_kmeans_rejects_bad_init(self):
        with pytest.raises(ValidationError):
            KMeansConfig(init="whatever")

    def test_kmeans_rejects_zero_clusters(self):
        with pytest.raises(ValidationError):
            KMeansConfig(n_clusters=0)

    def test_privacy_rejects_negative_epsilon(self):
        with pytest.raises(ValidationError):
            PrivacyConfig(epsilon=-1.0)

    def test_privacy_rejects_unknown_strategy(self):
        with pytest.raises(ValidationError):
            PrivacyConfig(budget_strategy="magic")

    def test_privacy_delta_must_be_probability(self):
        with pytest.raises(ValidationError):
            PrivacyConfig(delta_slack=2.0)

    def test_crypto_threshold_cannot_exceed_shares(self):
        with pytest.raises(ConfigurationError):
            CryptoConfig(threshold=9, n_key_shares=8)

    def test_crypto_rejects_tiny_key(self):
        with pytest.raises(ConfigurationError):
            CryptoConfig(key_bits=8)

    def test_crypto_rejects_unknown_backend(self):
        with pytest.raises(ValidationError):
            CryptoConfig(backend="rsa")

    def test_gossip_rejects_unknown_topology(self):
        with pytest.raises(ValidationError):
            GossipConfig(topology="torus")

    def test_gossip_drop_probability_bounds(self):
        with pytest.raises(ValidationError):
            GossipConfig(drop_probability=1.5)

    def test_simulation_rejects_zero_participants(self):
        with pytest.raises(ValidationError):
            SimulationConfig(n_participants=0)

    def test_smoothing_rejects_unknown_method(self):
        with pytest.raises(ValidationError):
            SmoothingConfig(method="fft-magic")

    def test_smoothing_alpha_bounds(self):
        with pytest.raises(ConfigurationError):
            SmoothingConfig(alpha=0.0)


class TestAggregateConfig:
    def test_defaults_are_consistent(self):
        config = ChiaroscuroConfig()
        assert config.kmeans.n_clusters <= config.simulation.n_participants

    def test_threshold_must_fit_population(self):
        with pytest.raises(ConfigurationError):
            ChiaroscuroConfig(
                crypto=CryptoConfig(threshold=5, n_key_shares=8),
                simulation=SimulationConfig(n_participants=4),
            )

    def test_noise_shares_must_fit_population(self):
        with pytest.raises(ConfigurationError):
            ChiaroscuroConfig(
                privacy=PrivacyConfig(noise_shares=50),
                simulation=SimulationConfig(n_participants=10),
            )

    def test_clusters_must_fit_population(self):
        with pytest.raises(ConfigurationError):
            ChiaroscuroConfig(
                kmeans=KMeansConfig(n_clusters=20),
                privacy=PrivacyConfig(noise_shares=4),
                crypto=CryptoConfig(threshold=2, n_key_shares=4),
                simulation=SimulationConfig(n_participants=10),
            )

    def test_with_overrides_replaces_fields(self):
        config = ChiaroscuroConfig()
        updated = config.with_overrides(privacy={"epsilon": 0.5}, kmeans={"n_clusters": 3})
        assert updated.privacy.epsilon == 0.5
        assert updated.kmeans.n_clusters == 3
        # The original is untouched (frozen dataclasses).
        assert config.privacy.epsilon == 1.0

    def test_with_overrides_rejects_unknown_section(self):
        with pytest.raises(ConfigurationError):
            ChiaroscuroConfig().with_overrides(nonexistent={"x": 1})

    def test_with_overrides_validates_new_values(self):
        with pytest.raises(ValidationError):
            ChiaroscuroConfig().with_overrides(privacy={"epsilon": -3.0})

    def test_describe_round_trips_sections(self):
        description = ChiaroscuroConfig().describe()
        assert set(description) == {
            "kmeans", "privacy", "crypto", "gossip", "simulation", "smoothing",
            "network", "runtime",
        }
        assert description["privacy"]["epsilon"] == 1.0

    def test_configs_are_frozen(self):
        config = ChiaroscuroConfig()
        with pytest.raises(AttributeError):
            config.privacy = PrivacyConfig()  # type: ignore[misc]
