"""Tests of the privacy accountant and composition helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import BudgetExhaustedError, PrivacyError, ValidationError
from repro.privacy import PrivacyAccountant, compose_parallel, compose_sequential


class TestAccountant:
    def test_initial_state(self):
        accountant = PrivacyAccountant(2.0, delta_slack=1e-5)
        assert accountant.spent_epsilon == 0.0
        assert accountant.remaining_epsilon == 2.0
        assert accountant.delta_slack == 1e-5
        assert accountant.n_spends == 0

    def test_spend_accumulates(self):
        accountant = PrivacyAccountant(1.0)
        accountant.spend(0.25, label="a")
        accountant.spend(0.5, label="b")
        assert accountant.spent_epsilon == pytest.approx(0.75)
        assert accountant.remaining_epsilon == pytest.approx(0.25)
        assert [spend.label for spend in accountant] == ["a", "b"]

    def test_spend_exceeding_budget_raises(self):
        accountant = PrivacyAccountant(1.0)
        accountant.spend(0.9)
        with pytest.raises(BudgetExhaustedError):
            accountant.spend(0.2)
        # The failed spend must not be recorded.
        assert accountant.n_spends == 1

    def test_can_spend(self):
        accountant = PrivacyAccountant(1.0)
        assert accountant.can_spend(1.0)
        accountant.spend(0.6)
        assert accountant.can_spend(0.4)
        assert not accountant.can_spend(0.5)

    def test_exact_budget_is_spendable(self):
        accountant = PrivacyAccountant(1.0)
        for _ in range(10):
            accountant.spend(0.1)
        assert accountant.remaining_epsilon == pytest.approx(0.0, abs=1e-12)

    def test_numerical_tolerance_for_floating_point_schedules(self):
        accountant = PrivacyAccountant(1.0)
        # 7 equal shares do not sum to exactly 1.0 in floating point.
        for _ in range(7):
            accountant.spend(1.0 / 7.0)

    def test_reset(self):
        accountant = PrivacyAccountant(1.0)
        accountant.spend(0.5)
        accountant.reset()
        assert accountant.spent_epsilon == 0.0

    def test_rejects_non_positive_spend(self):
        accountant = PrivacyAccountant(1.0)
        with pytest.raises(ValidationError):
            accountant.spend(0.0)

    def test_report_structure(self):
        accountant = PrivacyAccountant(2.0, delta_slack=1e-4)
        accountant.spend(0.5, label="iteration-1", iteration=1)
        report = accountant.report()
        assert report["total_epsilon"] == 2.0
        assert report["spent_epsilon"] == 0.5
        assert report["n_spends"] == 1
        assert report["spends"][0]["label"] == "iteration-1"
        assert report["spends"][0]["iteration"] == 1

    def test_rejects_invalid_budget(self):
        with pytest.raises(ValidationError):
            PrivacyAccountant(0.0)
        with pytest.raises(ValidationError):
            PrivacyAccountant(1.0, delta_slack=-0.1)


class TestComposition:
    def test_sequential_is_sum(self):
        assert compose_sequential([0.1, 0.2, 0.3]) == pytest.approx(0.6)

    def test_parallel_is_max(self):
        assert compose_parallel([0.1, 0.5, 0.3]) == pytest.approx(0.5)

    def test_empty_compositions(self):
        assert compose_sequential([]) == 0.0
        assert compose_parallel([]) == 0.0

    def test_rejects_non_positive_terms(self):
        with pytest.raises(PrivacyError):
            compose_sequential([0.1, 0.0])
        with pytest.raises(PrivacyError):
            compose_parallel([-0.1])
