"""Golden wire vectors for the batched frame format (``BatchEnvelope``).

``tests/vectors/wire_batch_v1.json`` holds serialized ``BatchEnvelope``
frames — plain and zlib-compressed — built from the same deterministic
inner messages the ``wire_v1.json`` vectors commit.  As with the base
vectors, committed files are immutable: any byte change to the batched
encoding is an incompatible wire change and needs a new version and a new
vector file (CI rejects edits to existing ``wire_batch_v*.json``).

Regenerate (only ever for a NEW version)::

    PYTHONPATH=src python tests/test_wire_batch_vectors.py vectors/wire_batch_v<N>.json
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.crypto.wire import WIRE_VERSION
from repro.exceptions import WireFormatError
from repro.gossip.messages import (
    BatchEnvelope,
    FRAME_MAGIC,
    batch_frames,
    deserialize,
)

from test_wire_vectors import golden_messages

VECTOR_FILE = Path(__file__).parent / "vectors" / f"wire_batch_v{WIRE_VERSION}.json"


def _inner_frames() -> dict[str, bytes]:
    return {name: message.serialize() for name, message in golden_messages()}


def golden_batches() -> list[tuple[str, BatchEnvelope]]:
    """Deterministic batches: empty, mixed plain, and compressed repeats."""
    frames = _inner_frames()
    return [
        ("batch_empty", BatchEnvelope(frames=())),
        ("batch_mixed_plain", BatchEnvelope(frames=(
            frames["gossip_avg_request"],
            frames["push_sum"],
            frames["membership_announcement"],
        ))),
        # Identical decryption requests to several committee helpers: the
        # live runner's actual batching shape, and the case where zlib
        # pays off the most.
        ("batch_decrypt_requests_zlib", BatchEnvelope(frames=(
            frames["decrypt_request_packed"],
            frames["decrypt_request_packed"],
            frames["decrypt_request_packed"],
        ), compress=True)),
    ]


def _load_vectors() -> dict:
    with VECTOR_FILE.open() as handle:
        return json.load(handle)


class TestGoldenBatchVectors:
    def test_vector_file_matches_wire_version(self):
        assert _load_vectors()["version"] == WIRE_VERSION

    @pytest.mark.parametrize("name,message", golden_batches(),
                             ids=[name for name, _ in golden_batches()])
    def test_serialization_is_byte_stable(self, name, message):
        vectors = {entry["name"]: entry for entry in _load_vectors()["vectors"]}
        assert name in vectors, f"no committed vector for {name}; regenerate"
        frame = message.serialize()
        assert frame.hex() == vectors[name]["frame_hex"], (
            f"frame bytes of {name} changed: this is an incompatible wire "
            "change — bump WIRE_VERSION and commit a new vector file"
        )

    @pytest.mark.parametrize("name,message", golden_batches(),
                             ids=[name for name, _ in golden_batches()])
    def test_committed_frames_decode_unchanged(self, name, message):
        vectors = {entry["name"]: entry for entry in _load_vectors()["vectors"]}
        frame = bytes.fromhex(vectors[name]["frame_hex"])
        assert frame[:2] == FRAME_MAGIC
        assert frame[2] == WIRE_VERSION
        decoded = deserialize(frame)
        assert decoded == message
        # Inner frames must still decode to the exact original messages.
        by_name = _inner_frames()
        originals = {v: k for k, v in by_name.items()}
        for inner, original in zip(decoded.messages(), message.frames):
            assert inner == deserialize(original)
            assert original in originals

    def test_no_stale_vectors(self):
        committed = {entry["name"] for entry in _load_vectors()["vectors"]}
        assert committed == {name for name, _ in golden_batches()}


class TestBatchEnvelope:
    def test_round_trip_preserves_frames(self):
        frames = tuple(_inner_frames().values())
        decoded = deserialize(batch_frames(frames))
        assert decoded.frames == frames

    def test_compression_only_when_smaller(self):
        # Three identical large frames compress well: flag bit must be set
        # and the batched frame must be smaller than the plain batch.
        frame = _inner_frames()["decrypt_request_packed"]
        plain = batch_frames([frame] * 3, compress=False)
        packed = batch_frames([frame] * 3, compress=True)
        assert len(packed) < len(plain)
        assert deserialize(packed).frames == (frame,) * 3
        # A single tiny frame does not compress: the encoder falls back to
        # the plain section, byte-identical to compress=False.
        tiny = _inner_frames()["membership_announcement"]
        assert batch_frames([tiny], compress=True) == batch_frames([tiny])

    def test_compress_flag_not_part_of_identity(self):
        tiny = _inner_frames()["membership_announcement"]
        assert BatchEnvelope(frames=(tiny,), compress=True) == BatchEnvelope(
            frames=(tiny,), compress=False
        )

    def test_rejects_nested_batches(self):
        inner = batch_frames([_inner_frames()["push_sum"]])
        with pytest.raises(WireFormatError, match="another batch"):
            batch_frames([inner])

    def test_rejects_unknown_flags(self):
        frame = bytearray(batch_frames([_inner_frames()["push_sum"]]))
        # Body starts after magic(2) + version(1) + type(1) + length varint.
        offset = 4
        while frame[offset] & 0x80:
            offset += 1
        offset += 1
        frame[offset] = 0x02
        import zlib

        frame[-4:] = zlib.crc32(bytes(frame[:-4])).to_bytes(4, "big")
        with pytest.raises(WireFormatError, match="batch flags"):
            deserialize(bytes(frame))

    def test_rejects_trailing_bytes_in_section(self):
        import zlib

        body = bytearray(b"\x00")
        body.extend(b"\x00")  # zero frames
        body.extend(b"\xff")  # trailing garbage in the section
        frame = bytearray(FRAME_MAGIC)
        frame.append(WIRE_VERSION)
        frame.append(BatchEnvelope.TYPE)
        frame.append(len(body))
        frame.extend(body)
        frame.extend(zlib.crc32(bytes(frame)).to_bytes(4, "big"))
        with pytest.raises(WireFormatError, match="trailing"):
            deserialize(bytes(frame))

    def test_rejects_too_many_frames(self):
        tiny = _inner_frames()["membership_announcement"]
        with pytest.raises(WireFormatError, match="exceeds"):
            batch_frames([tiny] * 1025)

    def test_rejects_corrupt_zlib_stream(self):
        import zlib

        body = bytearray(b"\x01")  # compressed flag with garbage payload
        body.extend(b"not a zlib stream")
        frame = bytearray(FRAME_MAGIC)
        frame.append(WIRE_VERSION)
        frame.append(BatchEnvelope.TYPE)
        frame.append(len(body))
        frame.extend(body)
        frame.extend(zlib.crc32(bytes(frame)).to_bytes(4, "big"))
        with pytest.raises(WireFormatError, match="zlib"):
            deserialize(bytes(frame))


def _regenerate(path: Path) -> None:
    entries = [
        {
            "name": name,
            "type": type(message).__name__,
            "frame_hex": message.serialize().hex(),
        }
        for name, message in golden_batches()
    ]
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump({"version": WIRE_VERSION, "vectors": entries}, handle, indent=2)
        handle.write("\n")
    print(f"wrote {len(entries)} vectors to {path}")


if __name__ == "__main__":
    import sys

    target = Path(sys.argv[1]) if len(sys.argv) > 1 else VECTOR_FILE
    _regenerate(target)
