"""Batched & compressed socket records in the live runner.

The batching contract has two halves:

* **Protocol accounting is untouched.**  Every per-recipient frame is
  charged to the traffic ledger exactly as the unbatched path charges it,
  so a batched run reports the same ``bytes_sent``/``messages_sent`` — and
  the same clustering results — as an unbatched run with the same seed.
* **On-socket bytes shrink.**  Helpers hosted on the same worker share one
  :class:`~repro.gossip.messages.BatchEnvelope` record instead of one
  record each, which the runner-level socket statistics make visible.

These tests fork worker processes; like the other live tests they stay
tiny (8 participants, 2 workers).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ChiaroscuroConfig
from repro.core.runner import run_chiaroscuro
from repro.datasets import load_dataset
from repro.exceptions import ConfigurationError


def _config(batching: bool = False, compression: bool = False) -> ChiaroscuroConfig:
    return ChiaroscuroConfig().with_overrides(
        kmeans={"n_clusters": 2, "max_iterations": 3},
        privacy={"epsilon": 2.0, "noise_shares": 4},
        gossip={"cycles_per_aggregation": 4},
        crypto={"backend": "plain", "threshold": 3, "n_key_shares": 4},
        simulation={"n_participants": 8, "seed": 0},
        network={"batching": batching, "compression": compression},
        runtime={"mode": "live", "processes": 2, "run_timeout": 120.0},
    )


def _collection():
    return load_dataset("gaussian", n_series=8, series_length=6, n_clusters=2,
                        seed=3)


class TestBatchedLiveRun:
    @pytest.fixture(scope="class")
    def results(self):
        plain = run_chiaroscuro(_collection(), _config())
        batched = run_chiaroscuro(_collection(), _config(batching=True))
        compressed = run_chiaroscuro(
            _collection(), _config(batching=True, compression=True)
        )
        return plain, batched, compressed

    def test_results_are_identical(self, results):
        plain, batched, compressed = results
        for other in (batched, compressed):
            assert np.array_equal(plain.profiles, other.profiles)
            assert np.array_equal(plain.assignments, other.assignments)
            assert plain.inertia == other.inertia
            assert plain.n_iterations == other.n_iterations

    def test_protocol_accounting_is_unchanged(self, results):
        plain, batched, compressed = results
        for other in (batched, compressed):
            assert other.costs.messages_sent == plain.costs.messages_sent
            assert other.costs.bytes_sent == plain.costs.bytes_sent
            assert other.costs.bytes_sent_modelled == plain.costs.bytes_sent_modelled

    def test_batched_records_are_counted(self, results):
        _, batched, compressed = results
        for other in (batched, compressed):
            socket = other.metadata["live"]["socket"]
            assert socket["batched_records"] > 0
            # Batching only ever helps: strictly more frames than records.
            assert socket["batched_frames"] > socket["batched_records"]

    def test_unbatched_run_reports_no_batched_records(self, results):
        plain, _, _ = results
        socket = plain.metadata["live"]["socket"]
        assert socket["batched_records"] == 0
        assert socket["batched_frames"] == 0

    def test_batching_reduces_on_socket_bytes(self, results):
        plain, batched, compressed = results
        baseline = plain.metadata["live"]["socket"]["bytes_sent"]
        assert batched.metadata["live"]["socket"]["bytes_sent"] < baseline
        assert compressed.metadata["live"]["socket"]["bytes_sent"] \
            < batched.metadata["live"]["socket"]["bytes_sent"]

    def test_metadata_records_the_modes(self, results):
        plain, batched, compressed = results
        assert plain.metadata["live"]["batching"] is False
        assert batched.metadata["live"]["batching"] is True
        assert batched.metadata["live"]["compression"] is False
        assert compressed.metadata["live"]["compression"] is True


class TestBatchingConfigValidation:
    def test_compression_requires_batching(self):
        with pytest.raises(ConfigurationError):
            ChiaroscuroConfig().with_overrides(network={"compression": True})

    def test_batching_requires_the_wire_format(self):
        with pytest.raises(ConfigurationError):
            ChiaroscuroConfig().with_overrides(
                network={"wire": "off", "batching": True},
            )

    def test_batching_off_is_the_default(self):
        config = ChiaroscuroConfig()
        assert config.network.batching is False
        assert config.network.compression is False
