"""Declarative experiment specifications and their scenario matrices.

An :class:`ExperimentSpec` describes a whole evaluation campaign in data:
which dataset to generate, how many participants, which configuration
overrides apply everywhere (``base``), which axes to sweep (``sweep`` —
expanded into the cartesian scenario matrix), which extra hand-picked cells
to add (``cells``), and how often to repeat every cell with distinct seeds.

Override keys are *dotted paths*:

``privacy.epsilon``, ``gossip.cycles_per_aggregation``, ...
    A field of one :class:`~repro.config.ChiaroscuroConfig` section.
``participants``
    The population size (also the dataset size; the two are tied together
    by :func:`repro.datasets.load_dataset_for_population`).
``dataset.<param>``
    An extra generator parameter of the dataset (e.g. ``dataset.n_clusters``
    for the gaussian generator).

Expansion is deterministic: axes expand in spec order (later axes vary
fastest), explicit ``cells`` follow the sweep product, and each scenario is
repeated ``repeats`` times with seeds ``base_seed + repeat`` (or the
explicit ``seeds`` list).  Every cell resolves to a concrete
(dataset, parameters, configuration, seed) tuple and hashes it into a
stable ``key`` — the result store's cache key, so re-running a spec skips
cells whose results are already stored.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..config import ChiaroscuroConfig, PrivacyConfig
from ..exceptions import ExperimentError
from ..timeseries import TimeSeriesCollection

#: Version of the cell-identity schema; bump to invalidate cached results
#: when the row format or the resolution rules change incompatibly.
CELL_SCHEMA_VERSION = 1

_CONFIG_SECTIONS = (
    "kmeans", "privacy", "crypto", "gossip", "simulation", "smoothing",
    "network", "runtime",
)

#: Valid field names per configuration section, derived from the config
#: dataclasses themselves so a misspelled field in a spec fails at load
#: time with a clear error instead of a raw TypeError inside replace().
_SECTION_FIELDS: dict[str, frozenset[str]] = {
    section: frozenset(fields)
    for section, fields in ChiaroscuroConfig().describe().items()
}

_SPEC_KEYS = {
    "name", "description", "dataset", "participants", "base", "sweep",
    "cells", "repeats", "base_seed", "seeds", "metrics",
}

_METRICS_KEYS = {"label_key", "reference"}


def canonical_json(payload: Any) -> str:
    """Canonical JSON used for hashing and for store rows (stable key order)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


#: Config fields the expansion derives from the cell itself; overriding them
#: through a dotted path would be silently discarded, so they are rejected.
_RESERVED_OVERRIDES = {
    "simulation.n_participants": "use the 'participants' axis/field instead",
    "simulation.seed": "seeds come from the repeats/seeds fields",
    "dataset.seed": "seeds come from the repeats/seeds fields",
}


def _check_override_key(key: str) -> None:
    if key in _RESERVED_OVERRIDES:
        raise ExperimentError(
            f"override key {key!r} is derived per cell and cannot be set "
            f"directly; {_RESERVED_OVERRIDES[key]}"
        )
    if key == "participants" or key.startswith("dataset."):
        return
    section, _, fieldname = key.partition(".")
    if not fieldname or section not in _CONFIG_SECTIONS:
        raise ExperimentError(
            f"override key {key!r} is not 'participants', 'dataset.<param>' or "
            f"'<section>.<field>' with a section in {sorted(_CONFIG_SECTIONS)}"
        )
    if fieldname not in _SECTION_FIELDS[section]:
        raise ExperimentError(
            f"unknown field {fieldname!r} in configuration section {section!r}; "
            f"expected one of {sorted(_SECTION_FIELDS[section])}"
        )


def _check_overrides(overrides: Mapping[str, Any], where: str) -> dict[str, Any]:
    if not isinstance(overrides, Mapping):
        raise ExperimentError(f"{where} must be a mapping of dotted keys, "
                              f"got {type(overrides).__name__}")
    for key in overrides:
        _check_override_key(str(key))
    return {str(key): value for key, value in overrides.items()}


@dataclass(frozen=True)
class ScenarioCell:
    """One fully-resolved scenario of the matrix: the unit the runner executes.

    Attributes
    ----------
    index:
        Position in the deterministic expansion order (0-based).
    scenario:
        Scenario number before repeats (cells sharing it differ only in seed).
    repeat:
        Repeat number within the scenario (0-based).
    dataset:
        Registered dataset name.
    dataset_params:
        Extra generator parameters (size and seed excluded — they derive
        from ``participants`` and ``seed``).
    participants:
        Population size (and dataset size).
    seed:
        Master seed of this cell: the dataset generator seed and the
        ``simulation.seed`` of the run.
    overrides:
        The dotted overrides that distinguish this cell from the spec's
        base (the sweep assignment plus any explicit-cell overrides) —
        these become the axis columns of comparison reports.
    sections:
        Fully-merged configuration sections (base plus overrides), ready
        for :meth:`~repro.config.ChiaroscuroConfig.with_overrides`.
    label_key / evaluate_reference:
        The spec's evaluation settings, carried per cell because the stored
        quality metrics depend on them (they are part of the cache
        identity: changing how cells are scored must invalidate cached
        rows).
    """

    index: int
    scenario: int
    repeat: int
    dataset: str
    dataset_params: dict[str, Any]
    participants: int
    seed: int
    overrides: dict[str, Any]
    sections: dict[str, dict[str, Any]]
    label_key: str | None = None
    evaluate_reference: bool = True

    def resolved_sections(self) -> dict[str, dict[str, Any]]:
        """The cell's configuration sections with the population rules applied.

        ``simulation.n_participants``/``simulation.seed`` are forced to the
        cell's population and seed, and ``privacy.noise_shares`` is clamped
        to the population — the same rule the CLI applies — so a spec
        written for 100 participants still validates when an axis sweeps
        the population below the default noise-share count.
        """
        sections = {name: dict(fields) for name, fields in self.sections.items()}
        simulation = sections.setdefault("simulation", {})
        simulation["n_participants"] = self.participants
        simulation["seed"] = self.seed
        privacy = sections.setdefault("privacy", {})
        noise_shares = privacy.get("noise_shares", PrivacyConfig().noise_shares)
        privacy["noise_shares"] = min(int(noise_shares), self.participants)
        return sections

    def config(self) -> ChiaroscuroConfig:
        """The complete, validated run configuration of this cell."""
        return ChiaroscuroConfig().with_overrides(**self.resolved_sections())

    def load_collection(self) -> TimeSeriesCollection:
        """Generate this cell's dataset (exactly one series per participant)."""
        from ..datasets import load_dataset_for_population

        return load_dataset_for_population(
            self.dataset, self.participants, seed=self.seed, **self.dataset_params,
        )

    def identity(self) -> dict[str, Any]:
        """Everything that determines this cell's result, as plain data.

        The configuration part is the *validated, fully-defaulted*
        ``describe()`` view, so two specs spelling the same configuration
        differently (explicit defaults vs omitted fields) share cache keys.
        A cell whose configuration does not validate falls back to hashing
        its raw resolved sections: such a cell still gets a stable key (its
        failure is recorded in the store under it) without the expansion of
        the healthy cells being taken down in the parent process.
        """
        from ..exceptions import ReproError

        try:
            described: dict[str, Any] = self.config().describe()
        except (ReproError, TypeError):
            # TypeError belts-and-braces: field names are validated at spec
            # load time, but a value of a shape replace() itself rejects
            # should still degrade to a per-cell error row, not kill the
            # parent sweep.
            described = {"invalid_sections": self.resolved_sections()}
        # The dataset half mirrors the config half: hash the *resolved*
        # generator parameters (registry population defaults underneath the
        # spec's explicit ones), so a changed registry default invalidates
        # cached rows and an explicitly-spelled default shares keys with an
        # omitted one.  Unregistered datasets fall back to the explicit
        # parameters (they resolve at run time).
        from ..datasets import dataset_population_defaults
        from ..exceptions import DatasetError

        try:
            resolved_params = {
                **dataset_population_defaults(self.dataset),
                **self.dataset_params,
            }
        except DatasetError:
            resolved_params = dict(self.dataset_params)
        return {
            "version": CELL_SCHEMA_VERSION,
            "dataset": self.dataset,
            "dataset_params": resolved_params,
            "participants": self.participants,
            "seed": self.seed,
            "config": described,
            "evaluation": {
                "label_key": self.label_key,
                "reference": self.evaluate_reference,
            },
        }

    @property
    def key(self) -> str:
        """Stable content hash of the cell identity (the store cache key).

        Memoized: computing the identity validates a full configuration and
        hashes it, and the runner/report layers consult the key repeatedly.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            digest = hashlib.sha256(canonical_json(self.identity()).encode("utf-8"))
            cached = digest.hexdigest()
            object.__setattr__(self, "_key", cached)
        return cached

    def label(self) -> str:
        """Compact human-readable cell description for progress lines."""
        axes = ", ".join(f"{key}={value}" for key, value in self.overrides.items())
        parts = [f"cell {self.index}", axes or "base"]
        parts.append(f"seed={self.seed}")
        return " | ".join(parts)


@dataclass
class ExperimentSpec:
    """A declarative experiment: dataset, base configuration, sweep, seeds.

    Attributes
    ----------
    name:
        Experiment identifier; store rows and reports carry it.
    description:
        Free-text purpose of the experiment.
    dataset:
        Registered dataset name.
    dataset_params:
        Extra generator parameters (never the size parameter or the seed).
    participants:
        Default population size (sweepable through the ``participants`` axis).
    base:
        Configuration overrides applied to every cell, as nested sections
        (the :meth:`~repro.config.ChiaroscuroConfig.with_overrides` shape).
    sweep:
        Mapping of dotted axis key -> list of values; expanded into the
        cartesian product in spec order, later axes varying fastest.
    cells:
        Explicit extra scenarios appended after the sweep product, each a
        mapping of dotted overrides (e.g. a live-mode cell in an otherwise
        cycle-mode churn sweep).
    repeats:
        Number of seeds per scenario.
    base_seed:
        Seed of repeat 0; repeat *r* uses ``base_seed + r``.
    seeds:
        Explicit seed list overriding ``repeats``/``base_seed``.
    metrics:
        Evaluation options: ``label_key`` (ground-truth metadata key for the
        adjusted Rand index; defaults per dataset) and ``reference``
        (whether to evaluate quality against a centralised k-means run).
    """

    name: str
    description: str = ""
    dataset: str = "gaussian"
    dataset_params: dict[str, Any] = field(default_factory=dict)
    participants: int = 100
    base: dict[str, dict[str, Any]] = field(default_factory=dict)
    sweep: dict[str, list[Any]] = field(default_factory=dict)
    cells: list[dict[str, Any]] = field(default_factory=list)
    repeats: int = 1
    base_seed: int = 0
    seeds: list[int] | None = None
    metrics: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ExperimentError("an experiment needs a non-empty name")
        if not isinstance(self.participants, int) or self.participants <= 0:
            raise ExperimentError(
                f"participants must be a positive integer, got {self.participants!r}"
            )
        if not isinstance(self.repeats, int) or self.repeats <= 0:
            raise ExperimentError(f"repeats must be a positive integer, got {self.repeats!r}")
        for key in self.dataset_params:
            if str(key) in ("seed",):
                raise ExperimentError(
                    "dataset_params must not set 'seed'; seeds come from the "
                    "repeats/seeds fields"
                )
        if not isinstance(self.base, Mapping):
            raise ExperimentError("base must map section names to field mappings")
        for section, fields_ in self.base.items():
            if section not in _CONFIG_SECTIONS:
                raise ExperimentError(
                    f"unknown configuration section {section!r} in base; "
                    f"expected one of {sorted(_CONFIG_SECTIONS)}"
                )
            if not isinstance(fields_, Mapping):
                raise ExperimentError(f"base section {section!r} must be a mapping")
            for fieldname in fields_:
                _check_override_key(f"{section}.{fieldname}")
        if not isinstance(self.sweep, Mapping):
            raise ExperimentError("sweep must map dotted axis keys to value lists")
        for axis, values in self.sweep.items():
            _check_override_key(str(axis))
            if not isinstance(values, Sequence) or isinstance(values, (str, bytes)) \
                    or len(values) == 0:
                raise ExperimentError(
                    f"sweep axis {axis!r} must be a non-empty list of values"
                )
        self.cells = [
            _check_overrides(cell, f"cells[{position}]")
            for position, cell in enumerate(self.cells)
        ]
        if self.seeds is not None:
            if not isinstance(self.seeds, Sequence) or isinstance(self.seeds, (str, bytes)) \
                    or len(self.seeds) == 0:
                raise ExperimentError("seeds must be a non-empty list of integers")
            self.seeds = [int(seed) for seed in self.seeds]
        unknown_metrics = set(self.metrics) - _METRICS_KEYS
        if unknown_metrics:
            raise ExperimentError(
                f"unknown metrics options {sorted(unknown_metrics)}; "
                f"expected a subset of {sorted(_METRICS_KEYS)}"
            )
        self._check_dataset_size_parameter()

    def _check_dataset_size_parameter(self) -> None:
        """Fail fast on overrides of the dataset's population-size parameter.

        ``load_dataset_for_population`` would reject them anyway, but only
        inside the workers after the whole sweep has been launched; a known
        dataset lets the spec reject them at load time.  Datasets not (yet)
        registered are skipped — they resolve at run time.
        """
        from ..datasets import dataset_size_parameter
        from ..exceptions import DatasetError

        try:
            size_parameter = dataset_size_parameter(self.dataset)
        except DatasetError:
            return
        if size_parameter is None:
            return
        reserved = f"dataset.{size_parameter}"
        if size_parameter in self.dataset_params:
            raise ExperimentError(
                f"dataset parameter {size_parameter!r} is derived from the "
                "population; use the 'participants' field/axis instead"
            )
        for where in (self.sweep, *self.cells):
            if reserved in where:
                raise ExperimentError(
                    f"override key {reserved!r} is derived from the population; "
                    "use the 'participants' axis instead"
                )

    # ------------------------------------------------------------------ metrics
    @property
    def label_key(self) -> str | None:
        """Ground-truth metadata key for external quality metrics."""
        if "label_key" in self.metrics:
            value = self.metrics["label_key"]
            return None if value in (None, "") else str(value)
        return "cluster" if self.dataset == "gaussian" else "archetype"

    @property
    def evaluate_reference(self) -> bool:
        """Whether cells are scored against a centralised k-means reference."""
        return bool(self.metrics.get("reference", True))

    # ------------------------------------------------------------------ seeds
    def cell_seeds(self) -> list[int]:
        """The seed of every repeat, in repeat order."""
        if self.seeds is not None:
            return list(self.seeds)
        return [self.base_seed + repeat for repeat in range(self.repeats)]

    # ------------------------------------------------------------------ expansion
    def scenario_overrides(self) -> list[dict[str, Any]]:
        """The override mapping of every scenario, in deterministic order.

        The sweep axes expand first (cartesian product, spec order, later
        axes varying fastest), followed by the explicit ``cells``.  A spec
        with neither sweep nor cells is a single base scenario; a spec with
        only explicit cells runs exactly those.
        """
        scenarios: list[dict[str, Any]] = []
        if self.sweep:
            axes = list(self.sweep.items())
            for combination in itertools.product(*(values for _, values in axes)):
                scenarios.append({
                    axis: value for (axis, _), value in zip(axes, combination)
                })
        elif not self.cells:
            scenarios.append({})
        scenarios.extend(dict(cell) for cell in self.cells)
        return scenarios

    def expand(self) -> list[ScenarioCell]:
        """The full scenario matrix: scenarios × seeds, in deterministic order."""
        seeds = self.cell_seeds()
        cells: list[ScenarioCell] = []
        for scenario_index, overrides in enumerate(self.scenario_overrides()):
            participants = self.participants
            dataset_params = dict(self.dataset_params)
            sections: dict[str, dict[str, Any]] = {
                name: dict(fields) for name, fields in self.base.items()
            }
            for key, value in overrides.items():
                if key == "participants":
                    if not isinstance(value, int) or value <= 0:
                        raise ExperimentError(
                            f"participants override must be a positive integer, got {value!r}"
                        )
                    participants = value
                elif key.startswith("dataset."):
                    dataset_params[key[len("dataset."):]] = value
                else:
                    section, _, fieldname = key.partition(".")
                    sections.setdefault(section, {})[fieldname] = value
            for repeat, seed in enumerate(seeds):
                cells.append(ScenarioCell(
                    index=len(cells),
                    scenario=scenario_index,
                    repeat=repeat,
                    dataset=self.dataset,
                    dataset_params=dict(dataset_params),
                    participants=participants,
                    seed=int(seed),
                    overrides=dict(overrides),
                    sections={name: dict(fields) for name, fields in sections.items()},
                    label_key=self.label_key,
                    evaluate_reference=self.evaluate_reference,
                ))
        return cells

    def axis_keys(self) -> list[str]:
        """Every dotted key that varies across scenarios (report columns)."""
        keys: list[str] = []
        for overrides in self.scenario_overrides():
            for key in overrides:
                if key not in keys:
                    keys.append(key)
        return keys

    # ------------------------------------------------------------------ serialisation
    def to_dict(self) -> dict[str, Any]:
        """Plain-data view; ``from_dict`` inverts it exactly."""
        payload: dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "dataset": {"name": self.dataset, "params": dict(self.dataset_params)},
            "participants": self.participants,
            "base": {name: dict(fields) for name, fields in self.base.items()},
            "sweep": {axis: list(values) for axis, values in self.sweep.items()},
            "cells": [dict(cell) for cell in self.cells],
            "repeats": self.repeats,
            "base_seed": self.base_seed,
            "metrics": dict(self.metrics),
        }
        if self.seeds is not None:
            payload["seeds"] = list(self.seeds)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        """Build a spec from plain data (the JSON/TOML file shape)."""
        if not isinstance(payload, Mapping):
            raise ExperimentError(
                f"an experiment spec must be a mapping, got {type(payload).__name__}"
            )
        unknown = set(payload) - _SPEC_KEYS
        if unknown:
            raise ExperimentError(
                f"unknown spec fields {sorted(unknown)}; expected a subset of "
                f"{sorted(_SPEC_KEYS)}"
            )
        dataset = payload.get("dataset", "gaussian")
        if isinstance(dataset, Mapping):
            extra = set(dataset) - {"name", "params"}
            if extra:
                raise ExperimentError(f"unknown dataset fields {sorted(extra)}")
            dataset_name = str(dataset.get("name", "gaussian"))
            dataset_params = dict(dataset.get("params", {}))
        else:
            dataset_name = str(dataset)
            dataset_params = {}
        try:
            return cls(
                name=payload.get("name", ""),
                description=str(payload.get("description", "")),
                dataset=dataset_name,
                dataset_params=dataset_params,
                participants=payload.get("participants", 100),
                base={
                    str(section): dict(fields)
                    for section, fields in dict(payload.get("base", {})).items()
                },
                # Axis values are passed through as-is: __post_init__ rejects
                # strings and other non-sequences, which list() would silently
                # explode into per-character scenarios.
                sweep=dict(payload.get("sweep", {})),
                cells=[dict(cell) for cell in payload.get("cells", [])],
                repeats=payload.get("repeats", 1),
                base_seed=int(payload.get("base_seed", 0)),
                seeds=payload.get("seeds"),
                metrics=dict(payload.get("metrics", {})),
            )
        except (TypeError, ValueError) as exc:
            raise ExperimentError(f"malformed experiment spec: {exc}") from exc

    @classmethod
    def from_file(cls, path: str | Path) -> "ExperimentSpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ExperimentError(f"cannot read spec file {path}: {exc}") from exc
        suffix = path.suffix.lower()
        if suffix == ".toml":
            import tomllib

            try:
                payload = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise ExperimentError(f"invalid TOML in {path}: {exc}") from exc
        elif suffix == ".json":
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ExperimentError(f"invalid JSON in {path}: {exc}") from exc
        else:
            raise ExperimentError(
                f"unsupported spec format {path.suffix!r} (expected .json or .toml)"
            )
        return cls.from_dict(payload)

    def save(self, path: str | Path) -> Path:
        """Write the spec as JSON and return the path.

        Only ``.json`` targets are accepted: silently writing JSON into a
        ``.toml`` file would produce a spec :meth:`from_file` then rejects
        (the loader dispatches its parser on the suffix, and the standard
        library has no TOML writer).
        """
        path = Path(path)
        if path.suffix.lower() != ".json":
            raise ExperimentError(
                f"save() writes JSON; target {path.name!r} must use a .json suffix"
            )
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    @property
    def spec_hash(self) -> str:
        """Stable content hash of the whole spec (recorded in store rows)."""
        return hashlib.sha256(
            canonical_json(self.to_dict()).encode("utf-8")
        ).hexdigest()

    def cell_keys(self) -> list[str]:
        """The store cache key of every cell, in expansion order."""
        return [cell.key for cell in self.expand()]
