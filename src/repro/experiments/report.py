"""Cross-scenario comparison reports over the result store.

Built on :mod:`repro.analysis.reporting`: the same aligned-text tables the
benchmarks print, plus a markdown variant for CI artifacts.  A report walks
the spec's scenario matrix, pulls every completed cell's row from the store
and renders:

* a **comparison table** — one row per scenario (axis values as the leading
  columns), repeats aggregated by mean with ``.std``/``.min``/``.max``
  spread columns alongside; a single-repeat scenario's row carries the
  stored values verbatim (and no spread columns), bit-identical to an
  equivalent standalone ``repro run``;
* a **per-iteration network-cost table** — the per-iteration byte deltas
  recorded in the execution log, one column per scenario (quality vs. ε,
  bytes vs. N and convergence vs. churn all read off these two tables).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..analysis.reporting import format_markdown_table, format_table
from .spec import ExperimentSpec, ScenarioCell
from .store import ResultStore

#: Metric columns reports show by default, in order, when present in rows.
DEFAULT_METRICS = (
    "relative_inertia",
    "adjusted_rand_index",
    "inertia",
    "n_iterations",
    "converged",
    "epsilon_spent",
    "effective_epsilon",
    "delta",
    "messages_per_participant",
    "bytes_per_participant",
    "wall_clock_seconds",
    # Phase-tagged crypto compute (absent without a committed BENCH profile).
    "offline_seconds",
    "online_seconds",
    # Nondeterminism envelope of concurrent live runs (absent otherwise).
    "envelope.profile_distance_relative",
    "envelope.assignment_churn",
    "envelope.byte_spread",
    # Measured per-phase wall-clock of the slab engine's bulk loop (absent
    # for the object engine and full-measured slab runs).
    "phase_seconds.assignment",
    "phase_seconds.averaging",
    "phase_seconds.means",
    "phase_seconds.sample",
)


def _axis_value(cell: ScenarioCell, axis: str, described: Mapping[str, Any]) -> Any:
    """The effective value of one dotted axis for a cell (override or base)."""
    if axis == "participants":
        return cell.participants
    if axis.startswith("dataset."):
        return cell.dataset_params.get(axis[len("dataset."):], "")
    section, _, fieldname = axis.partition(".")
    return described.get(section, {}).get(fieldname, "")


def _flat_row(spec: ExperimentSpec, cell: ScenarioCell, row: Mapping[str, Any],
              axis_keys: Sequence[str],
              described_cache: dict[int, Mapping[str, Any]]) -> dict[str, Any]:
    """Flatten one stored ``ok`` row into a single-level report row.

    *described_cache* memoizes the (config-validating) ``describe()`` view
    per scenario — repeats of a scenario differ only in seed, which is not
    an axis value, so they share one entry.
    """
    described: Mapping[str, Any] = {}
    if axis_keys:
        if cell.scenario not in described_cache:
            described_cache[cell.scenario] = cell.config().describe()
        described = described_cache[cell.scenario]
    flat: dict[str, Any] = {"cell": cell.index, "scenario": cell.scenario}
    for axis in axis_keys:
        flat[axis] = _axis_value(cell, axis, described)
    flat["seed"] = cell.seed
    result = row.get("result", {})
    flat.update(result.get("quality", {}))
    flat.update(result.get("summary", {}))
    flat.update({
        "bytes_sent": result.get("costs", {}).get("bytes_sent"),
        "messages_sent": result.get("costs", {}).get("messages_sent"),
        "encryptions": result.get("costs", {}).get("encryptions"),
        "profiles_digest": result.get("profiles_digest"),
        "wall_clock_seconds": row.get("timing", {}).get("wall_clock_seconds"),
    })
    # Concurrent live runs attach divergence-from-reference metrics; flatten
    # them under an "envelope." prefix so they render as ordinary columns.
    for key, value in (result.get("costs", {}).get("envelope") or {}).items():
        flat[f"envelope.{key}"] = value
    # Offline/online phase split (present only when the run found a
    # committed benchmark profile to price its operation counts with).
    for key in ("offline_seconds", "online_seconds"):
        if key in result.get("costs", {}):
            flat[key] = result["costs"][key]
    # Measured slab phase profile; flatten under a "phase_seconds." prefix
    # so each phase renders as an ordinary column.
    for key, value in (result.get("costs", {}).get("phase_seconds") or {}).items():
        flat[f"phase_seconds.{key}"] = value
    flat["iteration_costs"] = result.get("iteration_costs", [])
    flat.pop("stop_reasons", None)
    return flat


def scenario_rows(spec: ExperimentSpec, store: ResultStore) -> list[dict[str, Any]]:
    """One flat row per *completed* cell of this spec, in expansion order.

    Rows come from the latest ``ok`` store entry of each cell key; cells
    without a completed result (never run, errored, timed out) are absent.
    """
    latest = store.latest_by_key()
    axis_keys = spec.axis_keys()
    described_cache: dict[int, Mapping[str, Any]] = {}
    rows: list[dict[str, Any]] = []
    for cell in spec.expand():
        row = latest.get(cell.key)
        if row is not None and row.get("status") == "ok":
            rows.append(_flat_row(spec, cell, row, axis_keys, described_cache))
    return rows


def _aggregate(values: list[Any]) -> Any:
    """Mean for numeric repeat values; agreement-or-fraction for booleans.

    A single value passes through unchanged (type included), which keeps
    single-repeat scenario rows bit-identical to the stored run results.
    Disagreeing boolean repeats (e.g. only some seeds converged) aggregate
    to the fraction of true values rather than silently showing one seed's
    outcome; other non-numeric values fall back to the first repeat.
    """
    if len(values) == 1:
        return values[0]
    if all(isinstance(value, bool) for value in values):
        if all(value == values[0] for value in values):
            return values[0]
        return sum(1.0 for value in values if value) / len(values)
    numeric = [value for value in values
               if isinstance(value, (int, float)) and not isinstance(value, bool)]
    if len(numeric) == len(values) and numeric:
        return sum(float(value) for value in numeric) / len(numeric)
    return values[0]


def _spread(values: list[Any]) -> dict[str, float] | None:
    """Sample std / min / max of repeated numeric values, None otherwise.

    Defined only for two or more all-numeric repeats — exactly the rows
    whose mean hides variation worth reporting.
    """
    numeric = [float(value) for value in values
               if isinstance(value, (int, float)) and not isinstance(value, bool)]
    if len(numeric) < 2 or len(numeric) != len(values):
        return None
    mean = sum(numeric) / len(numeric)
    variance = sum((value - mean) ** 2 for value in numeric) / (len(numeric) - 1)
    return {"std": variance ** 0.5, "min": min(numeric), "max": max(numeric)}


def comparison_rows(
    spec: ExperimentSpec,
    store: ResultStore,
    metrics: Sequence[str] | None = None,
    rows: Sequence[Mapping[str, Any]] | None = None,
    spread: bool = True,
) -> list[dict[str, Any]]:
    """One row per scenario: axis columns, then metrics aggregated over repeats.

    With *spread* (the default), every numeric metric that has repeats
    anywhere in the matrix also gets ``<metric>.std`` / ``.min`` / ``.max``
    columns (sample std; blank for scenarios with a single completed
    repeat).  A matrix with no repeats at all gains no extra columns, so
    single-repeat reports are unchanged.  Pass precomputed
    :func:`scenario_rows` as *rows* to avoid re-reading the store
    (``format_report`` builds several tables from one read).
    """
    flat = scenario_rows(spec, store) if rows is None else list(rows)
    by_scenario: dict[int, list[dict[str, Any]]] = {}
    for row in flat:
        by_scenario.setdefault(int(row["scenario"]), []).append(row)
    axis_keys = spec.axis_keys()
    # One shared column set across all scenarios: per-group auto-detection
    # would give rows inconsistent keys when a metric is present in only
    # some scenarios, and format_table builds its columns from the first row.
    wanted = metrics if metrics is not None else [
        metric for metric in DEFAULT_METRICS
        if any(metric in member for member in flat)
    ]
    spread_metrics: list[str] = []
    if spread:
        spread_metrics = [
            metric for metric in wanted
            if any(_spread([member[metric] for member in group
                            if metric in member]) is not None
                   for group in by_scenario.values())
        ]
    out: list[dict[str, Any]] = []
    for scenario in sorted(by_scenario):
        group = by_scenario[scenario]
        row: dict[str, Any] = {"scenario": scenario}
        for axis in axis_keys:
            row[axis] = group[0].get(axis, "")
        for metric in wanted:
            values = [member[metric] for member in group if metric in member]
            row[metric] = _aggregate(values or [""])
            if metric in spread_metrics:
                stats = _spread(values) or {}
                for statistic in ("std", "min", "max"):
                    row[f"{metric}.{statistic}"] = stats.get(statistic, "")
        row["runs"] = len(group)
        out.append(row)
    return out


def _scenario_label(spec: ExperimentSpec, overrides: Mapping[str, Any]) -> str:
    if not overrides:
        return "base"
    return ", ".join(f"{key}={value}" for key, value in overrides.items())


def iteration_cost_rows(
    spec: ExperimentSpec,
    store: ResultStore,
    counter: str = "bytes_sent",
    rows: Sequence[Mapping[str, Any]] | None = None,
) -> list[dict[str, Any]]:
    """Per-iteration cost deltas, one column per scenario (mean over repeats).

    Reads the ``iteration_costs`` recorded in the execution log of every
    run (both cycle and live modes record them); scenarios whose runs did
    not record the counter contribute empty cells.  Pass precomputed
    :func:`scenario_rows` as *rows* to avoid re-reading the store.
    """
    flat = scenario_rows(spec, store) if rows is None else list(rows)
    by_scenario: dict[int, list[dict[str, Any]]] = {}
    for row in flat:
        by_scenario.setdefault(int(row["scenario"]), []).append(row)
    overrides_by_scenario = {
        index: overrides
        for index, overrides in enumerate(spec.scenario_overrides())
    }
    columns: dict[int, list[float]] = {}
    depth = 0
    for scenario, group in by_scenario.items():
        series_list = []
        for member in group:
            series = [
                float(record.get(counter, 0.0))
                for record in member.get("iteration_costs", [])
            ]
            if series:
                series_list.append(series)
        if not series_list:
            continue
        length = max(len(series) for series in series_list)
        means = []
        for position in range(length):
            values = [series[position] for series in series_list
                      if len(series) > position]
            means.append(sum(values) / len(values))
        columns[scenario] = means
        depth = max(depth, length)
    out: list[dict[str, Any]] = []
    for iteration in range(depth):
        row: dict[str, Any] = {"iteration": iteration + 1}
        for scenario in sorted(columns):
            label = _scenario_label(spec, overrides_by_scenario.get(scenario, {}))
            series = columns[scenario]
            row[label] = series[iteration] if iteration < len(series) else ""
        out.append(row)
    return out


def cross_store_rows(
    spec: ExperimentSpec,
    sources: Sequence[tuple[str, ResultStore]],
    metrics: Sequence[str] | None = None,
) -> list[dict[str, Any]]:
    """Join several result stores of one spec into a single comparison table.

    *sources* is a sequence of ``(label, store)`` pairs — e.g. the stores of
    a sequential and a concurrent sweep of the same scenario matrix.  Cells
    align automatically: each store is read through
    :func:`scenario_rows`, which keys rows by the cell's content hash, so
    two stores line up exactly when they ran the same spec (axis values
    included in every row make the alignment visible).  The output carries
    one row per (scenario, source) with a leading ``store`` column,
    scenario-major — the rows being diffed sit next to each other.
    """
    per_source: list[tuple[str, list[dict[str, Any]]]] = [
        (label, comparison_rows(spec, store, metrics=metrics, spread=False))
        for label, store in sources
    ]
    scenarios = sorted({
        int(row["scenario"]) for _, rows in per_source for row in rows
    })
    out: list[dict[str, Any]] = []
    for scenario in scenarios:
        for label, rows in per_source:
            match = next(
                (row for row in rows if int(row["scenario"]) == scenario), None
            )
            if match is not None:
                out.append({"store": label, **match})
    return out


def format_cross_report(
    spec: ExperimentSpec,
    sources: Sequence[tuple[str, ResultStore]],
    markdown: bool = False,
    metrics: Sequence[str] | None = None,
    precision: int = 4,
) -> str:
    """Render the multi-store comparison of one spec as text or markdown."""
    table = format_markdown_table if markdown else format_table
    rows = cross_store_rows(spec, sources, metrics=metrics)
    lines: list[str] = []
    if markdown:
        lines.append(f"# Experiment: {spec.name} (cross-store)")
    else:
        lines.append(f"experiment: {spec.name} (cross-store)")
    if spec.description:
        lines.append(spec.description)
    lines.append("stores: " + ", ".join(label for label, _ in sources))
    lines.append("")
    if not rows:
        lines.append("no completed cells in any of the result stores yet — run "
                     "the experiment first (repro experiment run --spec ...)")
        return "\n".join(lines)
    hidden = {"scenario"} if len(spec.axis_keys()) > 0 else set()
    columns = [column for column in rows[0] if column not in hidden]
    lines.append(table(rows, columns=columns, precision=precision,
                       title="cross-store scenario comparison"))
    return "\n".join(lines)


def format_report(
    spec: ExperimentSpec,
    store: ResultStore,
    markdown: bool = False,
    metrics: Sequence[str] | None = None,
    precision: int = 4,
) -> str:
    """Render the full comparison report of one experiment as text or markdown."""
    table = format_markdown_table if markdown else format_table
    cells = spec.expand()
    # One store read and one matrix expansion feed every table below.
    flat = scenario_rows(spec, store)
    n_completed = len(flat)
    lines: list[str] = []
    if markdown:
        lines.append(f"# Experiment: {spec.name}")
    else:
        lines.append(f"experiment: {spec.name}")
    if spec.description:
        lines.append(spec.description)
    lines.append(
        f"dataset={spec.dataset} participants={spec.participants} "
        f"scenarios={len(spec.scenario_overrides())} repeats={len(spec.cell_seeds())} "
        f"cells={len(cells)} completed={n_completed}"
    )
    lines.append("")
    rows = comparison_rows(spec, store, metrics=metrics, rows=flat)
    if not rows:
        lines.append("no completed cells in the result store yet — run the "
                     "experiment first (repro experiment run --spec ...)")
        return "\n".join(lines)
    hidden = {"scenario"} if len(spec.axis_keys()) > 0 else set()
    columns = [column for column in rows[0] if column not in hidden]
    lines.append(table(rows, columns=columns, precision=precision,
                       title="scenario comparison"))
    iteration_rows = iteration_cost_rows(spec, store, rows=flat)
    if iteration_rows:
        lines.append("")
        lines.append(table(
            iteration_rows, precision=precision,
            title="per-iteration network cost (bytes sent, mean over repeats)",
        ))
    incomplete = len(cells) - n_completed
    if incomplete:
        lines.append("")
        lines.append(f"note: {incomplete} of {len(cells)} cells have no completed "
                     "result yet (pending, errored or timed out)")
    return "\n".join(lines)
