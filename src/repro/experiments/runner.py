"""The sweep executor: run a scenario matrix in parallel worker processes.

Every scenario cell executes in a freshly forked OS process (even with
``jobs=1``), which gives three properties at once:

* **isolation** — a crashing or diverging cell cannot take the sweep down,
  and live-mode cells are free to fork their own worker processes;
* **a hard per-cell timeout** — the parent terminates a cell that exceeds
  its wall-clock budget and records a ``timeout`` row instead of hanging;
* **determinism** — a cell's result depends only on its resolved
  (dataset, configuration, seed) identity, never on scheduling, so the
  same spec produces byte-identical result rows at any ``jobs`` level.

Rows are appended to the result store in cell-expansion order regardless of
completion order (out-of-order completions are buffered), so the store file
itself is reproducible apart from the recorded wall-clock timings.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as _mp_connection
from typing import Any, Callable, Mapping

from ..exceptions import ExperimentError
from .spec import ExperimentSpec, ScenarioCell
from .store import ResultStore, failure_row, result_row

#: Coarse upper bound (seconds) on one scheduler wait.  The loop blocks in
#: :func:`multiprocessing.connection.wait` over the in-flight cell pipes, so
#: a finishing (or dying — its pipe end closes) worker wakes it immediately;
#: this cap only paces the hard-timeout checks, which need no finer clock.
_MAX_WAIT_SECONDS = 0.5


def _cell_runtime_ports(config, slot: int):
    """Give concurrently running live cells disjoint port blocks.

    A live cell with a nonzero ``runtime.base_port`` binds the coordinator
    at ``base_port`` and worker *i* at ``base_port + 1 + i``.  Two such
    cells in flight at once (``jobs > 1``) would collide, so each scheduler
    slot shifts the block by ``slot * (processes + 1)`` ports.  Slot 0 (and
    every ephemeral-port or cycle-mode cell) passes through untouched —
    ``jobs=1`` sweeps are byte-identical to before.  A shifted block that
    would overflow the port range falls back to ephemeral ports rather
    than failing the cell.

    The override happens inside the forked worker, after the cell's
    content-hash key is fixed, so store keys and ``--resume`` caching are
    unaffected by which slot a cell happened to run in.
    """
    runtime = config.runtime
    if runtime.mode != "live" or runtime.base_port == 0 or slot == 0:
        return config
    base = runtime.base_port + slot * (runtime.processes + 1)
    if base + runtime.processes >= 1 << 16:
        return config.with_overrides(runtime={"base_port": 0})
    return config.with_overrides(runtime={"base_port": base})


def execute_cell(spec: ExperimentSpec, cell: ScenarioCell,
                 port_slot: int = 0) -> dict[str, Any]:
    """Run one scenario cell to completion and return its ``ok`` store row.

    This is the whole cell recipe — exactly what an equivalent standalone
    ``repro run`` does: generate the dataset for the cell's population and
    seed, build the configuration, run the protocol, then score the result.
    ``metrics.reference`` and ``metrics.label_key`` are independent: with
    the (expensive) centralised reference disabled, a configured label key
    still yields the label-based metrics (adjusted Rand index) from the
    dataset's ground truth alone.  The recorded wall-clock covers the
    protocol run only, not dataset generation or evaluation.
    """
    import numpy as np

    from ..analysis.quality import evaluate_result
    from ..clustering.metrics import quality_report
    from ..core.runner import normalize_collection, run_chiaroscuro

    collection = cell.load_collection()
    config = _cell_runtime_ports(cell.config(), port_slot)
    started = time.perf_counter()
    result = run_chiaroscuro(collection, config)
    wall_clock = time.perf_counter() - started
    quality: Mapping[str, float] | None = None
    if spec.evaluate_reference:
        quality = evaluate_result(
            collection, config, result, reference=None, label_key=spec.label_key,
        )
    elif spec.label_key is not None:
        raw_labels = collection.labels(spec.label_key)
        if all(label is not None for label in raw_labels):
            data, _ = normalize_collection(collection, config.privacy.value_bound)
            quality = quality_report(
                data, result.profiles, true_labels=np.asarray(raw_labels),
            )
    return result_row(spec, cell, result, quality, wall_clock)


def _cell_worker(connection, spec_payload: dict[str, Any], cell_index: int,
                 port_slot: int = 0) -> None:
    """Forked entry point: execute one cell, send the row (or the error) back."""
    try:
        spec = ExperimentSpec.from_dict(spec_payload)
        cell = spec.expand()[cell_index]
        row = execute_cell(spec, cell, port_slot=port_slot)
        connection.send(("ok", row))
    except Exception as exc:
        # Domain errors (ReproError) and unexpected ones alike become an
        # error row in the parent; the exception class name is the triage
        # signal either way.
        connection.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        connection.close()


@dataclass
class ExperimentProgress:
    """Outcome counts of one :func:`run_experiment` invocation."""

    total_cells: int
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    failures: list[dict[str, Any]] = field(default_factory=list)

    @property
    def completed(self) -> int:
        """Cells that finished successfully in this invocation."""
        return self.executed - self.failed

    def as_dict(self) -> dict[str, Any]:
        return {
            "total_cells": self.total_cells,
            "executed": self.executed,
            "skipped": self.skipped,
            "failed": self.failed,
            "completed": self.completed,
        }


@dataclass
class _ActiveCell:
    """Parent-side state of one in-flight worker process."""

    process: Any
    connection: Any
    cell: ScenarioCell
    started: float
    deadline: float | None
    port_slot: int = 0


def run_experiment(
    spec: ExperimentSpec,
    store: ResultStore,
    jobs: int = 1,
    resume: bool = False,
    timeout: float | None = None,
    progress: Callable[[str], None] | None = None,
) -> ExperimentProgress:
    """Execute *spec*'s scenario matrix, appending rows to *store*.

    Parameters
    ----------
    spec:
        The experiment to run.
    store:
        Result store rows are appended to (created on first write).
    jobs:
        Maximum number of concurrently running cells (worker processes).
    resume:
        Skip cells whose key already has an ``ok`` row in the store; an
        unchanged spec therefore executes zero cells on a second run.
    timeout:
        Hard per-cell wall-clock limit in seconds; an exceeded cell is
        terminated and recorded as a ``timeout`` row.  ``None`` disables it.
    progress:
        Optional callback receiving one human-readable line per event.

    Returns
    -------
    ExperimentProgress
        Executed/skipped/failed counts; failures are also recorded as
        ``error``/``timeout`` rows in the store, so a later ``resume``
        retries exactly the cells that did not complete.
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    if timeout is not None and timeout <= 0:
        raise ExperimentError(f"timeout must be positive, got {timeout}")
    cells = spec.expand()
    tally = ExperimentProgress(total_cells=len(cells))

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    cached = store.completed_keys() if resume else set()
    to_run: list[ScenarioCell] = []
    for cell in cells:
        if cell.key in cached:
            tally.skipped += 1
            say(f"cached  {cell.label()}")
        else:
            to_run.append(cell)
    if not to_run:
        return tally

    try:
        context = multiprocessing.get_context("fork")
    except ValueError as exc:
        # Same platform requirement (and error style) as the live runner:
        # forked workers inherit the loaded modules and any programmatic
        # dataset registrations, which spawn would silently lose.
        raise ExperimentError(
            "the sweep runner needs fork-based process spawning; "
            "this platform does not provide it"
        ) from exc
    spec_payload = spec.to_dict()
    pending = deque(enumerate(to_run))
    active: dict[int, _ActiveCell] = {}
    finished_rows: dict[int, dict[str, Any]] = {}
    next_to_write = 0
    # One port slot per concurrently running cell: live cells with a fixed
    # base_port get disjoint port blocks derived from their slot (see
    # _cell_runtime_ports), so --jobs > 1 cannot collide on ports.  Slots
    # are recycled as cells settle, keeping the block range bounded by
    # *jobs* rather than by the matrix size.
    free_slots = list(range(jobs))

    def flush() -> None:
        nonlocal next_to_write
        while next_to_write in finished_rows:
            store.append(finished_rows.pop(next_to_write))
            next_to_write += 1

    def settle(position: int, row: dict[str, Any]) -> None:
        entry = active.pop(position)
        free_slots.append(entry.port_slot)
        entry.connection.close()
        entry.process.join(timeout=5.0)
        if entry.process.is_alive():  # pragma: no cover - stuck after result
            entry.process.kill()
            entry.process.join(timeout=5.0)
        finished_rows[position] = row
        tally.executed += 1
        if row["status"] != "ok":
            tally.failed += 1
            tally.failures.append(row)
        flush()

    try:
        while pending or active:
            while pending and len(active) < jobs:
                position, cell = pending.popleft()
                slot = min(free_slots)
                free_slots.remove(slot)
                parent_end, child_end = context.Pipe(duplex=False)
                process = context.Process(
                    target=_cell_worker,
                    args=(child_end, spec_payload, cell.index, slot),
                )
                process.start()
                child_end.close()
                now = time.monotonic()
                active[position] = _ActiveCell(
                    process=process, connection=parent_end, cell=cell,
                    started=now, deadline=(now + timeout) if timeout else None,
                    port_slot=slot,
                )
                say(f"running {cell.label()}")
            made_progress = False
            for position in list(active):
                entry = active[position]
                elapsed = time.monotonic() - entry.started
                if entry.connection.poll(0):
                    try:
                        status, payload = entry.connection.recv()
                    except (EOFError, OSError):
                        status, payload = "error", "worker closed the result pipe"
                    if status == "ok":
                        row = payload
                        say(f"done    {entry.cell.label()} "
                            f"({row['timing']['wall_clock_seconds']:.2f}s)")
                    else:
                        row = failure_row(spec, entry.cell, "error", payload, elapsed)
                        say(f"failed  {entry.cell.label()}: {payload}")
                    settle(position, row)
                    made_progress = True
                elif entry.deadline is not None and time.monotonic() > entry.deadline:
                    entry.process.terminate()
                    entry.process.join(timeout=2.0)
                    if entry.process.is_alive():  # pragma: no cover - hard kill path
                        entry.process.kill()
                    row = failure_row(
                        spec, entry.cell, "timeout",
                        f"exceeded the per-cell timeout of {timeout}s", elapsed,
                    )
                    say(f"timeout {entry.cell.label()} after {elapsed:.1f}s")
                    settle(position, row)
                    made_progress = True
                elif not entry.process.is_alive():
                    if entry.connection.poll(0):
                        # The worker finished (and exited) between the first
                        # poll and the liveness check: its result row is
                        # sitting in the pipe.  Leave it for the next loop
                        # pass instead of misreporting a dead worker.
                        made_progress = True
                        continue
                    code = entry.process.exitcode
                    row = failure_row(
                        spec, entry.cell, "error",
                        f"worker process died with exit code {code}", elapsed,
                    )
                    say(f"failed  {entry.cell.label()}: worker died ({code})")
                    settle(position, row)
                    made_progress = True
            if not made_progress and active:
                # Sleep until some worker reports instead of burning CPU on a
                # fixed-interval poll, waking early for the nearest deadline.
                wait_for = _MAX_WAIT_SECONDS
                now = time.monotonic()
                for entry in active.values():
                    if entry.deadline is not None:
                        wait_for = min(wait_for, max(0.0, entry.deadline - now))
                _mp_connection.wait(
                    [entry.connection for entry in active.values()],
                    timeout=wait_for,
                )
    finally:
        for entry in active.values():  # pragma: no cover - interrupt cleanup
            entry.process.terminate()
        for entry in active.values():  # pragma: no cover - interrupt cleanup
            entry.process.join(timeout=2.0)
            entry.connection.close()
        # An interrupt can leave completed rows buffered behind a slower
        # earlier cell; write them (out of order — the store's latest-row-
        # wins reading tolerates any order) so finished work survives and
        # --resume skips it.
        for position in sorted(finished_rows):
            store.append(finished_rows.pop(position))
    return tally
