"""Append-only JSONL result store for experiment runs.

Every executed scenario cell appends exactly one JSON line.  The store is
the sweep runner's cache: a cell whose ``key`` (the content hash of its
resolved dataset + configuration + seed, see
:meth:`~repro.experiments.spec.ScenarioCell.key`) already has an ``ok`` row
is skipped on ``--resume``.

Row layout::

    {
      "key":        "<cell content hash>",
      "experiment": "<spec name>",
      "spec_hash":  "<spec content hash>",
      "status":     "ok" | "error" | "timeout",
      "cell":       {index, scenario, repeat, dataset, participants, seed,
                     overrides},
      "result":     {profiles_digest, summary, quality, guarantee, costs,
                     iteration_costs, stop_reasons, packing, fastmath, wire},
      "timing":     {wall_clock_seconds},
      "error":      "<message>"            # error/timeout rows only
    }

Everything under ``result`` and ``cell`` is a deterministic function of the
cell (same spec + seed ⇒ byte-identical content, whatever the worker count);
only ``timing`` varies between runs, which is what the cross-process
determinism tests rely on.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping

import numpy as np

from ..exceptions import ExperimentError
from .spec import ScenarioCell, canonical_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..core.result import ChiaroscuroResult
    from .spec import ExperimentSpec

#: Row statuses the store recognises; only ``ok`` rows count as cached.
ROW_STATUSES = ("ok", "error", "timeout")


def profiles_digest(profiles: np.ndarray) -> str:
    """Stable content hash of a profile matrix (shape + float64 bytes)."""
    matrix = np.ascontiguousarray(np.asarray(profiles, dtype=np.float64))
    digest = hashlib.sha256()
    digest.update(str(matrix.shape).encode("ascii"))
    digest.update(matrix.tobytes())
    return digest.hexdigest()


def cell_descriptor(cell: ScenarioCell) -> dict[str, Any]:
    """The cell facts every row carries (identity and report axes)."""
    return {
        "index": cell.index,
        "scenario": cell.scenario,
        "repeat": cell.repeat,
        "dataset": cell.dataset,
        "participants": cell.participants,
        "seed": cell.seed,
        "overrides": dict(cell.overrides),
    }


def result_row(
    spec: "ExperimentSpec",
    cell: ScenarioCell,
    result: "ChiaroscuroResult",
    quality: Mapping[str, float] | None,
    wall_clock_seconds: float,
) -> dict[str, Any]:
    """Build the ``ok`` store row of one executed cell.

    The per-iteration cost series is stored once, under
    ``result.iteration_costs`` (the execution log's full per-iteration
    dicts); the ``iteration_*`` views :meth:`CostSummary.as_dict` also
    exposes are redundant with it and stripped from ``result.costs`` so a
    long sweep's JSONL rows do not carry every series twice.
    """
    iteration_costs = [dict(record.costs) for record in result.log]
    costs = {
        key: value for key, value in result.costs.as_dict().items()
        if not key.startswith("iteration_")
    }
    row = {
        "key": cell.key,
        "experiment": spec.name,
        "spec_hash": spec.spec_hash,
        "status": "ok",
        "cell": cell_descriptor(cell),
        "result": {
            "profiles_digest": profiles_digest(result.profiles),
            "summary": result.summary(),
            "quality": dict(quality) if quality is not None else {},
            "guarantee": result.guarantee.as_dict(),
            "costs": costs,
            "iteration_costs": iteration_costs,
            "stop_reasons": dict(result.stop_reasons),
            "packing": result.metadata.get("packing", {}),
            "fastmath": result.metadata.get("fastmath", {}),
            "wire": result.metadata.get("wire", {}),
        },
        "timing": {"wall_clock_seconds": float(wall_clock_seconds)},
    }
    if "live" in result.metadata:
        row["result"]["live"] = {
            "processes": result.metadata["live"].get("processes"),
            "cycles_run": result.metadata["live"].get("cycles_run"),
        }
    return row


def failure_row(
    spec: "ExperimentSpec",
    cell: ScenarioCell,
    status: str,
    error: str,
    wall_clock_seconds: float,
) -> dict[str, Any]:
    """Build an ``error``/``timeout`` store row (not counted as cached)."""
    if status not in ("error", "timeout"):
        raise ExperimentError(f"invalid failure status {status!r}")
    return {
        "key": cell.key,
        "experiment": spec.name,
        "spec_hash": spec.spec_hash,
        "status": status,
        "cell": cell_descriptor(cell),
        "error": str(error),
        "timing": {"wall_clock_seconds": float(wall_clock_seconds)},
    }


class ResultStore:
    """Append-only JSONL store of experiment rows.

    The file is only ever opened for append; re-running an experiment adds
    rows, never rewrites them.  When the same cell key appears several
    times (e.g. an errored cell retried successfully) the *last* row wins.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._tail_repaired = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.path)!r})"

    # ------------------------------------------------------------------ writing
    def _repair_truncated_tail(self) -> None:
        """Drop a partial trailing record left by an interrupted append.

        A run killed mid-write (SIGKILL, power loss) can leave the file
        ending in an incomplete JSON line.  Appending after it would merge
        the new row into the partial one, corrupting the store *interior* —
        so the first append of each store instance truncates the file back
        to its last complete (newline-terminated) record.  The dropped
        cell simply re-runs on the next ``--resume``.
        """
        if self._tail_repaired:
            return
        self._tail_repaired = True
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1
        with self.path.open("rb+") as handle:
            handle.truncate(keep)

    def append(self, row: Mapping[str, Any]) -> None:
        """Append one row as a single canonical-JSON line."""
        if "key" not in row or "status" not in row:
            raise ExperimentError("a store row needs at least 'key' and 'status'")
        if row["status"] not in ROW_STATUSES:
            raise ExperimentError(f"invalid row status {row['status']!r}")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._repair_truncated_tail()
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(canonical_json(dict(row)) + "\n")

    # ------------------------------------------------------------------ reading
    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Yield every stored row in file order (empty when no file yet).

        A malformed *final* line is tolerated silently: it is the partial
        record of an interrupted append, whose cell will simply re-run on
        resume.  Malformed interior lines are real corruption and raise.
        """
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            lines = handle.readlines()
        last_content = 0
        for line_number, line in enumerate(lines, start=1):
            if line.strip():
                last_content = line_number
        for line_number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                if line_number == last_content:
                    return
                raise ExperimentError(
                    f"corrupt result store {self.path}:{line_number}: {exc}"
                ) from exc
            if not isinstance(row, dict) or "key" not in row:
                raise ExperimentError(
                    f"corrupt result store {self.path}:{line_number}: not a row object"
                )
            yield row

    def rows(self) -> list[dict[str, Any]]:
        """Every stored row, in file order."""
        return list(self.iter_rows())

    def latest_by_key(self) -> dict[str, dict[str, Any]]:
        """The last row of every cell key (retries override earlier failures)."""
        latest: dict[str, dict[str, Any]] = {}
        for row in self.iter_rows():
            latest[str(row["key"])] = row
        return latest

    def completed_keys(self) -> set[str]:
        """Cell keys whose latest row is ``ok`` — the resume cache."""
        return {
            key for key, row in self.latest_by_key().items()
            if row.get("status") == "ok"
        }

    def has(self, key: str) -> bool:
        """Whether *key*'s latest row is a completed result."""
        return key in self.completed_keys()
