"""Declarative scenario & experiment subsystem.

The paper's evaluation is an experiment *grid* — quality vs. privacy budget,
scaling vs. population, resilience vs. churn, crypto cost vs. key size.
This package turns the library from "a run" into "an evaluation campaign":

* :mod:`repro.experiments.spec` — a declarative :class:`ExperimentSpec`
  (dataset, population, config overrides, seeds, repeats) whose ``sweep``
  axes expand into a cartesian scenario matrix, loadable from JSON/TOML or
  built programmatically;
* :mod:`repro.experiments.runner` — a sweep executor running scenario cells
  in parallel worker processes with a hard per-cell timeout, deterministic
  per-cell seeding and resumable caching against the result store;
* :mod:`repro.experiments.store` — an append-only JSONL result store keyed
  by the cell's spec hash, recording profile digests, quality metrics, the
  cost summary, the privacy guarantee and wall-clock timing;
* :mod:`repro.experiments.report` — cross-scenario comparison tables
  (text and markdown) built on :mod:`repro.analysis.reporting`.

The CLI front-end is ``repro experiment run|report --spec FILE``.
"""

from .report import (
    comparison_rows,
    cross_store_rows,
    format_cross_report,
    format_report,
    scenario_rows,
)
from .runner import ExperimentProgress, run_experiment
from .spec import ExperimentSpec, ScenarioCell
from .store import ResultStore, result_row

__all__ = [
    "ExperimentSpec",
    "ScenarioCell",
    "ExperimentProgress",
    "run_experiment",
    "ResultStore",
    "result_row",
    "scenario_rows",
    "comparison_rows",
    "cross_store_rows",
    "format_cross_report",
    "format_report",
]
