"""Configuration objects for the Chiaroscuro protocol and its substrates.

The configuration is split into small frozen dataclasses, one per subsystem,
mirroring the parameter groups of the demonstration (Section III.B of the
paper): k-means parameters, privacy parameters, encryption parameters, gossip
parameters and simulation parameters.  :class:`ChiaroscuroConfig` aggregates
them and performs cross-field validation in ``__post_init__``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from ._validation import (
    check_fraction_open,
    check_in_choices,
    check_non_negative_float,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
)
from .crypto.backends import normalize_packing
from .crypto.fastmath import normalize_fastmath
from .crypto.wire import normalize_wire
from .exceptions import ConfigurationError, ValidationError

#: Budget-distribution strategies shipped with the library (Section II.B,
#: "quality-enhancing heuristics").
BUDGET_STRATEGIES = ("uniform", "geometric", "adaptive")

#: Centroid-smoothing heuristics shipped with the library.
SMOOTHING_METHODS = ("none", "moving_average", "lowpass", "exponential")

#: Cryptographic backends.  ``plain`` reproduces the demonstration mode in
#: which homomorphic operations are disabled and their cost is simulated.
CRYPTO_BACKENDS = ("damgard_jurik", "paillier", "plain")

#: Gossip overlay topologies.
OVERLAY_TOPOLOGIES = ("complete", "random_regular", "small_world", "ring")

#: Execution modes: the deterministic in-process cycle simulation, or the
#: multi-process live runner moving wire frames over real TCP sockets.
RUNTIME_MODES = ("cycle", "live")

#: Population engines of cycle mode: one Python object per participant
#: (``object``) or struct-of-arrays NumPy slabs with sampled crypto
#: (``slab``; see :mod:`repro.simulation.slab`).
RUNTIME_ENGINES = ("object", "slab")

#: Stepping disciplines of the live runner: ``sequential`` replays the cycle
#: engine's scheduler stream one node at a time (bit-identical to cycle
#: mode), ``concurrent`` lets every worker drive its shard with many gossip
#: exchanges in flight simultaneously (faster, nondeterministic interleaving;
#: see the nondeterminism envelope in :mod:`repro.analysis.envelope`).
RUNTIME_STEPPING = ("sequential", "concurrent")

#: Nondeterminism-envelope policies of concurrent live runs: ``auto`` runs a
#: cycle-mode reference with the same seed and reports the divergence
#: (profile distance, assignment churn, byte spread) in ``costs.envelope``;
#: ``off`` skips the reference run.
RUNTIME_ENVELOPE = ("auto", "off")

#: Element dtypes of the slab engine's estimate slab.  ``float64`` (default)
#: is bit-identical to the object engine's arithmetic; ``float32`` halves the
#: slab's footprint at the cost of reduced precision (an engine-internal
#: memory optimisation — modelled wire bytes still price the protocol's
#: float64 payload).
SLAB_DTYPES = ("float64", "float32")


@dataclass(frozen=True)
class KMeansConfig:
    """Parameters of the k-means substrate (fixed parameters in the demo).

    Attributes
    ----------
    n_clusters:
        Number of centroids *k*.
    max_iterations:
        Hard cap on the number of k-means iterations.
    convergence_threshold:
        Iterations stop when the average displacement between the previous
        centroids and the new means falls below this threshold.
    init:
        Initialisation strategy, ``"random"`` (sample k series) or
        ``"kmeans++"``.
    track_quality:
        When true, the optional quality-monitoring termination criterion of
        footnote 2 in the paper is enabled: the run also stops if the
        intra-cluster inertia stops improving for ``quality_patience``
        consecutive iterations.
    quality_patience:
        Number of non-improving iterations tolerated before stopping when
        ``track_quality`` is enabled.
    """

    n_clusters: int = 5
    max_iterations: int = 15
    convergence_threshold: float = 1e-3
    init: str = "kmeans++"
    track_quality: bool = True
    quality_patience: int = 3

    def __post_init__(self) -> None:
        check_positive_int(self.n_clusters, "n_clusters")
        check_positive_int(self.max_iterations, "max_iterations")
        check_non_negative_float(self.convergence_threshold, "convergence_threshold")
        check_in_choices(self.init, ("random", "kmeans++"), "init")
        check_positive_int(self.quality_patience, "quality_patience")


@dataclass(frozen=True)
class PrivacyConfig:
    """Differential-privacy parameters (the main mutable parameter of the demo).

    Attributes
    ----------
    epsilon:
        Total privacy budget for a complete run.  The budget is split across
        iterations according to ``budget_strategy`` (self-composition).
    budget_strategy:
        How the total budget is distributed across iterations: ``"uniform"``
        gives every iteration the same share, ``"geometric"`` gives later
        iterations exponentially larger shares (late centroids matter more for
        final quality), ``"adaptive"`` re-plans the remaining budget after each
        iteration based on observed centroid movement.
    geometric_ratio:
        Common ratio of the geometric strategy (> 1 gives more budget to later
        iterations).
    noise_shares:
        Number *n* of gamma-distributed noise-shares summed to produce one
        Laplace sample; in Chiaroscuro each share comes from a distinct
        participant.
    value_bound:
        Upper bound on the absolute value of any single time-series point,
        used to derive the L1 sensitivity of the per-cluster sums.
    count_bound:
        Sensitivity bound of the per-cluster counts (one individual moves one
        unit of count), kept explicit for clarity.
    delta_slack:
        Target probabilistic slack of the probabilistic variant of
        differential privacy caused by the gossip approximation error.
    """

    epsilon: float = 1.0
    budget_strategy: str = "geometric"
    geometric_ratio: float = 1.3
    noise_shares: int = 32
    value_bound: float = 1.0
    count_bound: float = 1.0
    delta_slack: float = 1e-4

    def __post_init__(self) -> None:
        check_positive_float(self.epsilon, "epsilon")
        check_in_choices(self.budget_strategy, BUDGET_STRATEGIES, "budget_strategy")
        check_positive_float(self.geometric_ratio, "geometric_ratio")
        check_positive_int(self.noise_shares, "noise_shares")
        check_positive_float(self.value_bound, "value_bound")
        check_positive_float(self.count_bound, "count_bound")
        check_probability(self.delta_slack, "delta_slack")


@dataclass(frozen=True)
class CryptoConfig:
    """Encryption parameters (fixed parameters of the demo).

    Attributes
    ----------
    backend:
        ``"damgard_jurik"`` for the real threshold scheme, ``"paillier"`` for
        the degree-1 special case, ``"plain"`` for the demonstration mode in
        which homomorphic operations are disabled and their cost simulated.
    key_bits:
        Size of the RSA modulus *n* in bits.  Tests use small keys (e.g. 128)
        for speed; cost benchmarks use realistic sizes (1024/2048).
    degree:
        Damgård–Jurik degree *s*: plaintext space is Z_{n^s}.
    threshold:
        Minimum number of distinct participants whose partial decryptions are
        required to recover a plaintext (collaborative decryption).
    n_key_shares:
        Total number of key shares distributed among participants.
    encoding_scale:
        Fixed-point scale used to encode real-valued time-series points into
        the integer plaintext space (value -> round(value * scale)).
    packing:
        Ciphertext slot packing: ``"auto"`` (default) packs as many
        fixed-point coordinates per ciphertext as the plaintext space
        supports, ``"off"`` reproduces the historical one-ciphertext-per-
        coordinate layout byte for byte, and a positive integer caps the
        slot count.  Packing divides the number of bigint encryptions,
        homomorphic operations and ciphertext bytes per vector by roughly
        the slot count.
    fastmath:
        Modular-arithmetic fast path: ``"auto"`` (default) enables CRT
        private-key operations, amortized blinder pools and
        multi-exponentiation in the real backends — the same integers,
        several times faster; ``"off"`` reproduces the seed arithmetic bit
        for bit given the same randomness stream.
    pool_file:
        Path of a persisted precomputation pool file (empty disables).
        When set (and fastmath is on), a run absorbs the file's blinders
        before its online phase — deleting the file, so no two runs ever
        share a blinder — and writes a fresh batch for the next run.  See
        :class:`~repro.crypto.precompute.PrecomputationService`.  Loaded
        blinders bypass this process's randomness stream, so pooled runs
        with a pool file are no longer bit-identical to unpooled ones.
    """

    backend: str = "plain"
    key_bits: int = 256
    degree: int = 1
    threshold: int = 3
    n_key_shares: int = 8
    encoding_scale: int = 10**6
    packing: int | str = "auto"
    fastmath: str = "auto"
    pool_file: str = ""

    def __post_init__(self) -> None:
        check_in_choices(self.backend, CRYPTO_BACKENDS, "backend")
        check_positive_int(self.key_bits, "key_bits")
        check_positive_int(self.degree, "degree")
        check_positive_int(self.threshold, "threshold")
        check_positive_int(self.n_key_shares, "n_key_shares")
        check_positive_int(self.encoding_scale, "encoding_scale")
        if self.key_bits < 16:
            raise ConfigurationError("key_bits must be at least 16")
        if self.threshold > self.n_key_shares:
            raise ConfigurationError(
                f"threshold ({self.threshold}) cannot exceed n_key_shares ({self.n_key_shares})"
            )
        try:
            normalize_packing(self.packing)
            normalize_fastmath(self.fastmath)
        except ValidationError as exc:
            raise ConfigurationError(str(exc)) from exc
        if not isinstance(self.pool_file, str):
            raise ConfigurationError(
                f"pool_file must be a path string, got {self.pool_file!r}"
            )


@dataclass(frozen=True)
class GossipConfig:
    """Gossip-layer parameters (fixed parameters of the demo).

    Attributes
    ----------
    exchanges_per_cycle:
        Number of gossip exchanges each participant initiates per simulation
        cycle (the "number of messages per participant" knob of Section
        III.B).
    cycles_per_aggregation:
        Number of gossip cycles run for each distributed sum before the value
        is considered converged and handed back to the protocol.
    fanout:
        Number of neighbours contacted per exchange.
    topology:
        Overlay topology used for peer sampling.
    topology_degree:
        Node degree of the ``random_regular`` / ``small_world`` overlays.
    rewiring_probability:
        Small-world rewiring probability (Watts–Strogatz).
    drop_probability:
        Probability that a gossip message is lost (fault model).
    """

    exchanges_per_cycle: int = 1
    cycles_per_aggregation: int = 12
    fanout: int = 1
    topology: str = "complete"
    topology_degree: int = 8
    rewiring_probability: float = 0.1
    drop_probability: float = 0.0

    def __post_init__(self) -> None:
        check_positive_int(self.exchanges_per_cycle, "exchanges_per_cycle")
        check_positive_int(self.cycles_per_aggregation, "cycles_per_aggregation")
        check_positive_int(self.fanout, "fanout")
        check_in_choices(self.topology, OVERLAY_TOPOLOGIES, "topology")
        check_positive_int(self.topology_degree, "topology_degree")
        check_probability(self.rewiring_probability, "rewiring_probability")
        check_probability(self.drop_probability, "drop_probability")


@dataclass(frozen=True)
class NetworkConfig:
    """Transport-layer parameters of the simulated network.

    Attributes
    ----------
    wire:
        ``"auto"`` (default) transports every protocol message as a
        serialized, versioned byte frame (see :mod:`repro.crypto.wire` and
        :mod:`repro.gossip.messages`): recipients deserialize on receipt and
        the network accounts *measured* frame bytes.  ``"off"`` reproduces
        the historical simulation that passes object references and charges
        modelled sizes.  Both modes produce bit-identical protocol results.
    corruption_rate:
        Probability that a delivered wire frame has one random bit flipped
        in transit.  Corrupted frames fail their checksum, raise
        :class:`~repro.exceptions.WireFormatError` in the decoder and are
        treated as losses by the protocol.  Only meaningful with
        ``wire="auto"``; must be 0 when the wire format is off.
    batching:
        Pack several wire frames per socket record where the protocol
        allows it (currently the live runner's committee-decryption
        fan-out, via :class:`~repro.gossip.messages.BatchEnvelope`).
        Default ``False`` keeps every record byte-identical to the
        unbatched runner.  Batching changes only the on-socket encoding:
        protocol-level byte accounting, results and per-helper operation
        counts are unchanged.  Requires the wire format.
    compression:
        zlib-compress batched records when that actually shrinks them.
        Requires ``batching``; default ``False``.
    """

    wire: str = "auto"
    corruption_rate: float = 0.0
    batching: bool = False
    compression: bool = False

    def __post_init__(self) -> None:
        try:
            normalize_wire(self.wire)
        except ValidationError as exc:
            raise ConfigurationError(str(exc)) from exc
        check_probability(self.corruption_rate, "corruption_rate")
        if self.wire == "off" and self.corruption_rate > 0:
            raise ConfigurationError(
                "corruption_rate requires the wire format (set network.wire='auto')"
            )
        if self.batching and self.wire == "off":
            raise ConfigurationError(
                "batching packs wire frames and requires the wire format "
                "(set network.wire='auto')"
            )
        if self.compression and not self.batching:
            raise ConfigurationError(
                "compression applies to batched records (set network.batching=True)"
            )


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution-substrate parameters: cycle simulation vs live socket runner.

    Attributes
    ----------
    mode:
        ``"cycle"`` (default) runs every participant in one process under
        the deterministic :class:`~repro.simulation.engine.CycleEngine`.
        ``"live"`` spawns ``processes`` OS worker processes, each hosting a
        shard of the participants, and runs the protocol by moving the
        serialized wire frames over real asyncio TCP sockets (see
        :mod:`repro.net.live`).  Live mode requires the wire format
        (``network.wire="auto"``) and currently supports only the fault-free
        configuration (no churn, drops or corruption; see the README's
        "Live runner" caveats).
    processes:
        Number of worker processes of the live runner.
    host:
        Interface the workers bind their peer servers to (loopback by
        default; the runner is a single-machine harness, not a deployment).
    base_port:
        First port of the worker peer servers; ``0`` (default) lets the OS
        pick ephemeral ports, which the membership bootstrap then announces.
    connect_timeout:
        Seconds a worker waits for a socket connection during bootstrap.
    run_timeout:
        Hard wall-clock limit in seconds on a whole live run; exceeding it
        terminates the workers and raises a protocol error.
    stepping:
        Stepping discipline of the live runner.  ``"sequential"`` (default)
        replays the cycle engine's scheduler stream one node at a time, so
        live results are bit-identical to cycle mode.  ``"concurrent"``
        drops that barrier: each worker steps its whole shard per epoch with
        up to ``concurrency`` node steps (and their gossip exchanges) in
        flight simultaneously, the coordinator only synchronising epochs.
        Concurrent interleaving perturbs the merge order, so results differ
        from cycle mode within a measured nondeterminism envelope (see
        ``envelope``).
    concurrency:
        Per-worker limit on concurrently in-flight node steps under
        ``stepping="concurrent"``.
    envelope:
        Whether a concurrent live run also executes a cycle-mode reference
        with the same seed and reports the divergence (profile distance,
        assignment churn, byte spread) in ``costs.envelope``: ``"auto"``
        (default) does, ``"off"`` skips the reference run (e.g. throughput
        benchmarks, where the reference would dominate the wall clock).
    write_buffer_limit:
        High-water mark in bytes of every live-runner socket writer.  A
        writer whose OS-level send buffer backs up past this limit blocks in
        ``drain()`` until the peer catches up (asyncio flow control), so a
        slow reader bounds the sender's memory instead of growing an
        unbounded write buffer.
    engine:
        Population engine of cycle mode.  ``"object"`` (default) instantiates
        one :class:`~repro.core.participant.ChiaroscuroParticipant` per node.
        ``"slab"`` holds the population in struct-of-arrays NumPy slabs
        (see :mod:`repro.simulation.slab`) and runs the real crypto pipeline
        on a sampled subset only (``crypto_sample_fraction``), extrapolating
        the remaining cost with bootstrap error bars — the million-node path.
    slab_shards:
        Number of shared-memory worker shards of the slab engine's bulk
        phases (assignment, contribution scatter, gossip averaging and the
        online-mean reduction).  ``1`` (default) runs in-process; results
        are shard-count invariant by construction (workers operate on fixed
        canonical row blocks and the coordinator reduces partials in block
        order).
    slab_dtype:
        Element dtype of the estimate slab: ``"float64"`` (default,
        bit-identical to today's dense slab) or ``"float32"`` (half the
        resident footprint; results differ in the low bits).
    slab_backing:
        Storage of the estimate slab: ``"memory"`` (default) keeps it
        resident; ``"mmap:<dir>"`` backs it by a :class:`numpy.memmap`
        scratch file under ``<dir>`` and drops processed pages
        (``madvise(DONTNEED)``) so huge populations run in bounded resident
        memory.
    slab_chunk_rows:
        Row-block size of the slab engine's elementwise phases (contribution
        scatter and pair averaging).  ``0`` (default) processes whole slabs
        at once; any positive value bounds the temporaries without changing
        a single bit — reductions always run over fixed canonical blocks, so
        results are chunk-size invariant by construction.
    crypto_sample_fraction:
        Fraction of the population that runs the real crypto pipeline
        end-to-end under the slab engine.  ``1.0`` (default) runs everything
        through the object path (bit-identical results); ``0.0`` skips
        measurement entirely and reports purely modelled costs.
    """

    mode: str = "cycle"
    processes: int = 2
    host: str = "127.0.0.1"
    base_port: int = 0
    connect_timeout: float = 10.0
    run_timeout: float = 300.0
    stepping: str = "sequential"
    concurrency: int = 8
    envelope: str = "auto"
    write_buffer_limit: int = 1 << 16
    engine: str = "object"
    slab_shards: int = 1
    slab_dtype: str = "float64"
    slab_backing: str = "memory"
    slab_chunk_rows: int = 0
    crypto_sample_fraction: float = 1.0

    def __post_init__(self) -> None:
        check_in_choices(self.mode, RUNTIME_MODES, "mode")
        check_in_choices(self.stepping, RUNTIME_STEPPING, "stepping")
        check_in_choices(self.envelope, RUNTIME_ENVELOPE, "envelope")
        check_positive_int(self.concurrency, "concurrency")
        check_positive_int(self.write_buffer_limit, "write_buffer_limit")
        check_in_choices(self.engine, RUNTIME_ENGINES, "engine")
        check_positive_int(self.slab_shards, "slab_shards")
        check_in_choices(self.slab_dtype, SLAB_DTYPES, "slab_dtype")
        if self.slab_backing != "memory":
            prefix, _, directory = self.slab_backing.partition(":")
            if prefix != "mmap" or not directory:
                raise ConfigurationError(
                    "slab_backing must be 'memory' or 'mmap:<dir>', got "
                    f"{self.slab_backing!r}"
                )
        check_non_negative_int(self.slab_chunk_rows, "slab_chunk_rows")
        check_probability(self.crypto_sample_fraction, "crypto_sample_fraction")
        check_positive_int(self.processes, "processes")
        if not self.host:
            raise ConfigurationError("runtime.host must not be empty")
        check_non_negative_int(self.base_port, "base_port")
        if self.base_port >= 1 << 16:
            raise ConfigurationError(f"base_port {self.base_port} outside [0, 65536)")
        # Worker i binds base_port + 1 + i, so the whole range must fit.
        if self.base_port and self.base_port + self.processes >= 1 << 16:
            raise ConfigurationError(
                f"base_port {self.base_port} leaves no room for "
                f"{self.processes} worker ports below 65536"
            )
        check_positive_float(self.connect_timeout, "connect_timeout")
        check_positive_float(self.run_timeout, "run_timeout")


@dataclass(frozen=True)
class SimulationConfig:
    """Population and fault-model parameters of the cycle-driven simulation.

    Attributes
    ----------
    n_participants:
        Number of simulated personal devices.  The demo uses on the order of
        10^3; Chiaroscuro targets 10^6 (costs are extrapolated).
    churn_rate:
        Per-cycle probability that an online participant goes offline
        temporarily (honest-but-curious but possibly faulty devices).
    rejoin_rate:
        Per-cycle probability that an offline participant comes back online.
    seed:
        Master seed of the simulation; every stochastic component derives its
        own named stream from it.
    """

    n_participants: int = 200
    churn_rate: float = 0.0
    rejoin_rate: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.n_participants, "n_participants")
        check_probability(self.churn_rate, "churn_rate")
        check_probability(self.rejoin_rate, "rejoin_rate")
        check_non_negative_int(self.seed, "seed")


@dataclass(frozen=True)
class SmoothingConfig:
    """Centroid-smoothing heuristic parameters (quality-enhancing heuristic #2).

    Attributes
    ----------
    method:
        ``"none"`` disables smoothing; ``"moving_average"`` applies a centred
        moving average of width ``window``; ``"lowpass"`` keeps the
        ``lowpass_cutoff`` fraction of low-frequency Fourier coefficients;
        ``"exponential"`` applies exponential smoothing with factor ``alpha``.
    window:
        Window width of the moving average (odd values recommended).
    lowpass_cutoff:
        Fraction of Fourier coefficients preserved by the low-pass filter.
    alpha:
        Smoothing factor of the exponential smoother (0 < alpha <= 1).
    """

    method: str = "moving_average"
    window: int = 3
    lowpass_cutoff: float = 0.25
    alpha: float = 0.5

    def __post_init__(self) -> None:
        check_in_choices(self.method, SMOOTHING_METHODS, "method")
        check_positive_int(self.window, "window")
        check_fraction_open(self.lowpass_cutoff, "lowpass_cutoff")
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {self.alpha}")


@dataclass(frozen=True)
class ChiaroscuroConfig:
    """Complete configuration of a Chiaroscuro run.

    The aggregate performs the cross-subsystem checks that individual
    sub-configurations cannot perform on their own (e.g. the decryption
    threshold must not exceed the population size).
    """

    kmeans: KMeansConfig = field(default_factory=KMeansConfig)
    privacy: PrivacyConfig = field(default_factory=PrivacyConfig)
    crypto: CryptoConfig = field(default_factory=CryptoConfig)
    gossip: GossipConfig = field(default_factory=GossipConfig)
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    smoothing: SmoothingConfig = field(default_factory=SmoothingConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)

    def __post_init__(self) -> None:
        if self.runtime.mode == "live":
            if self.network.wire == "off":
                raise ConfigurationError(
                    "the live runner moves serialized frames over sockets and "
                    "requires the wire format (set network.wire='auto')"
                )
            if self.simulation.churn_rate > 0:
                raise ConfigurationError(
                    "the live runner does not support churn yet "
                    "(set simulation.churn_rate=0)"
                )
            if self.gossip.drop_probability > 0:
                raise ConfigurationError(
                    "the live runner does not support the loss fault model yet "
                    "(set gossip.drop_probability=0)"
                )
            if self.network.corruption_rate > 0:
                raise ConfigurationError(
                    "the live runner does not support the corruption fault model "
                    "yet (set network.corruption_rate=0)"
                )
        if self.runtime.engine == "slab":
            if self.runtime.mode != "cycle":
                raise ConfigurationError(
                    "the slab engine is a cycle-mode population substrate "
                    "(set runtime.mode='cycle')"
                )
        if self.crypto.threshold > self.simulation.n_participants:
            raise ConfigurationError(
                "decryption threshold cannot exceed the number of participants "
                f"({self.crypto.threshold} > {self.simulation.n_participants})"
            )
        if self.privacy.noise_shares > self.simulation.n_participants:
            raise ConfigurationError(
                "the number of noise shares cannot exceed the number of participants "
                f"({self.privacy.noise_shares} > {self.simulation.n_participants})"
            )
        if self.kmeans.n_clusters > self.simulation.n_participants:
            raise ConfigurationError(
                "cannot ask for more clusters than participants "
                f"({self.kmeans.n_clusters} > {self.simulation.n_participants})"
            )

    def with_overrides(self, **sections: Mapping[str, Any]) -> "ChiaroscuroConfig":
        """Return a copy with selected fields of selected sections replaced.

        Example
        -------
        >>> cfg = ChiaroscuroConfig()
        >>> cfg2 = cfg.with_overrides(privacy={"epsilon": 0.5}, kmeans={"n_clusters": 3})
        >>> cfg2.privacy.epsilon
        0.5
        """
        valid = {
            "kmeans", "privacy", "crypto", "gossip", "simulation", "smoothing",
            "network", "runtime",
        }
        updates: dict[str, Any] = {}
        for section, fields_ in sections.items():
            if section not in valid:
                raise ConfigurationError(f"unknown configuration section {section!r}")
            current = getattr(self, section)
            updates[section] = replace(current, **dict(fields_))
        return replace(self, **updates)

    def describe(self) -> dict[str, dict[str, Any]]:
        """Return a plain nested dictionary view, convenient for logging."""
        return {
            "kmeans": vars(self.kmeans).copy(),
            "privacy": vars(self.privacy).copy(),
            "crypto": vars(self.crypto).copy(),
            "gossip": vars(self.gossip).copy(),
            "simulation": vars(self.simulation).copy(),
            "smoothing": vars(self.smoothing).copy(),
            "network": vars(self.network).copy(),
            "runtime": vars(self.runtime).copy(),
        }


#: Default configuration mirroring the demonstration's default parameters.
DEFAULT_CONFIG = ChiaroscuroConfig()
