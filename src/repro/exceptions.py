"""Exception hierarchy for the Chiaroscuro reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while still being able to discriminate finer-grained categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class ConfigurationError(ReproError):
    """A configuration object contains inconsistent or invalid values."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, range, or type)."""


class TimeSeriesError(ReproError):
    """A time-series operation received incompatible series."""


class DatasetError(ReproError):
    """A dataset generator or loader was misused."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyGenerationError(CryptoError):
    """Key generation failed (e.g. could not find suitable primes)."""


class EncryptionError(CryptoError):
    """Encryption of a plaintext failed."""


class DecryptionError(CryptoError):
    """Decryption failed (wrong key, corrupted ciphertext, bad shares)."""


class EncodingOverflowError(CryptoError):
    """A fixed-point encoded value does not fit in the plaintext space."""


class ThresholdError(CryptoError):
    """Not enough partial decryptions were supplied to recover a plaintext."""


class WireFormatError(CryptoError):
    """A wire frame or payload could not be decoded.

    Every malformed input — truncated, corrupted, over-length, unknown
    version or type, non-canonical integer encoding, overflowing slot or
    weight metadata — raises this (and only this) exception, so transport
    code can treat any undecodable frame as a delivery failure instead of
    crashing.
    """


class PrivacyError(ReproError):
    """Base class for differential-privacy failures."""


class BudgetExhaustedError(PrivacyError):
    """The privacy accountant refused an operation exceeding the budget."""


class GossipError(ReproError):
    """A gossip protocol was driven into an invalid state."""


class SimulationError(ReproError):
    """The cycle-driven simulation engine detected an invalid state."""


class ProtocolError(ReproError):
    """The Chiaroscuro protocol detected an invalid state transition."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its allotted budget."""


class AnalysisError(ReproError):
    """An analysis or reporting helper received inconsistent inputs."""


class ExperimentError(ReproError):
    """An experiment spec, sweep run or result store is invalid or inconsistent."""
