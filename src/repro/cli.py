"""Command-line interface: run Chiaroscuro experiments without writing code.

Four subcommands mirror the demonstration's workflow:

* ``run`` — execute the protocol on one of the registered datasets and print
  the run summary, the profile sizes and the realised privacy guarantee;
* ``compare`` — compare Chiaroscuro against the centralised, centralised-DP
  and plain-gossip baselines on the same dataset;
* ``crypto-bench`` — measure the Damgård–Jurik per-operation costs for a
  given key size and print the extrapolated per-participant cost of a run;
* ``experiment run|report`` — execute a declarative scenario matrix (a
  JSON/TOML experiment spec, see :mod:`repro.experiments`) in parallel
  worker processes with resumable caching, and render the cross-scenario
  comparison report.

Examples
--------
::

    python -m repro run --dataset cer --participants 100 --clusters 4 --epsilon 2
    python -m repro compare --dataset numed --participants 80 --epsilon 5
    python -m repro crypto-bench --key-bits 512 --populations 1000 1000000
    python -m repro experiment run --spec examples/scenarios/privacy_vs_quality.json --jobs 2
    python -m repro experiment report --spec examples/scenarios/privacy_vs_quality.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .analysis import (
    CostModel,
    ProtocolWorkload,
    compare_with_baselines,
    format_comparison,
    format_table,
    measure_crypto_costs,
    sweep_crypto_costs,
)
from .config import ChiaroscuroConfig
from .core import run_chiaroscuro
from .crypto import normalize_packing
from .datasets import (
    available_datasets,
    dataset_size_parameter,
    load_dataset,
    load_dataset_for_population,
)
from .exceptions import ReproError


def _dataset_from_args(args: argparse.Namespace):
    """Instantiate the requested dataset with a size fitting the population.

    Population sizing and validation live in one place —
    :func:`repro.datasets.load_dataset_for_population` — shared with the
    experiment subsystem; datasets that do not declare a size parameter
    (custom registrations) are loaded as-is with the seed only.
    """
    if dataset_size_parameter(args.dataset) is None:
        return load_dataset(args.dataset, seed=args.seed)
    extra = {"n_clusters": args.clusters} if args.dataset == "gaussian" else {}
    if getattr(args, "matrix_backed", False):
        # One flat array instead of N TimeSeries objects; the generator dtype
        # follows the slab dtype so a float32 out-of-core run never
        # materialises a float64 copy of the data matrix.
        extra.update(matrix_backed=True, dtype=getattr(args, "slab_dtype", "float64"))
    return load_dataset_for_population(
        args.dataset, args.participants, seed=args.seed, **extra,
    )


def _config_from_args(args: argparse.Namespace) -> ChiaroscuroConfig:
    return ChiaroscuroConfig().with_overrides(
        kmeans={"n_clusters": args.clusters, "max_iterations": args.iterations},
        privacy={"epsilon": args.epsilon,
                 "noise_shares": min(args.noise_shares, args.participants),
                 "budget_strategy": args.budget_strategy},
        gossip={"cycles_per_aggregation": args.gossip_cycles},
        smoothing={"method": args.smoothing},
        crypto={"backend": args.backend, "packing": normalize_packing(args.packing),
                "fastmath": args.fastmath, "pool_file": args.pool_file},
        simulation={"n_participants": args.participants, "seed": args.seed},
        network={"wire": args.wire, "corruption_rate": args.corruption_rate,
                 "batching": args.batching, "compression": args.compression},
        runtime={
            "mode": "live" if args.live else "cycle",
            "processes": args.processes,
            "base_port": args.live_port,
            "run_timeout": args.live_timeout,
            "stepping": args.stepping,
            "concurrency": args.live_concurrency,
            "envelope": args.envelope,
            "engine": args.engine,
            "slab_shards": args.slab_shards,
            "slab_dtype": args.slab_dtype,
            "slab_backing": args.slab_backing,
            "slab_chunk_rows": args.slab_chunk_rows,
            "crypto_sample_fraction": args.sample_fraction,
        },
    )


def _add_common_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="cer", choices=sorted(available_datasets()),
                        help="registered dataset to cluster")
    parser.add_argument("--participants", type=int, default=100,
                        help="number of simulated personal devices")
    parser.add_argument("--clusters", type=int, default=4, help="number of profiles k")
    parser.add_argument("--iterations", type=int, default=6, help="maximum k-means iterations")
    parser.add_argument("--epsilon", type=float, default=2.0, help="total privacy budget")
    parser.add_argument("--noise-shares", type=int, default=32,
                        help="number of noise-share contributors")
    parser.add_argument("--budget-strategy", default="geometric",
                        choices=["uniform", "geometric", "adaptive"])
    parser.add_argument("--smoothing", default="moving_average",
                        choices=["none", "moving_average", "lowpass", "exponential"])
    parser.add_argument("--gossip-cycles", type=int, default=10,
                        help="gossip cycles per aggregation")
    parser.add_argument("--backend", default="plain",
                        choices=["plain", "paillier", "damgard_jurik"],
                        help="cipher backend (plain = demo mode with simulated crypto)")
    parser.add_argument("--packing", default="auto",
                        help="ciphertext slot packing: auto, off, or a slot count")
    parser.add_argument("--fastmath", default="auto", choices=["auto", "off"],
                        help="modular-arithmetic fast path (CRT, pools, multi-exp); "
                             "off reproduces the seed arithmetic bit for bit")
    parser.add_argument("--wire", default="auto", choices=["auto", "off"],
                        help="binary wire format: auto transports serialized byte "
                             "frames and reports measured sizes, off reproduces the "
                             "modelled-size simulation (results are bit-identical)")
    parser.add_argument("--corruption-rate", type=float, default=0.0,
                        help="probability that a delivered wire frame has one bit "
                             "flipped in transit (requires --wire auto)")
    parser.add_argument("--batching", action="store_true",
                        help="pack same-destination wire frames into one batched "
                             "socket record (live runner; protocol accounting is "
                             "unchanged, only on-socket bytes shrink)")
    parser.add_argument("--compression", action="store_true",
                        help="zlib-compress batched records (requires --batching)")
    parser.add_argument("--pool-file", default="",
                        help="persisted precomputation pool file: consumed on "
                             "startup if present, refreshed with a new offline "
                             "batch for the next run (damgard_jurik + fastmath)")
    parser.add_argument("--live", action="store_true",
                        help="run over real TCP sockets between worker processes "
                             "(the live runner) instead of the in-process cycle "
                             "simulation")
    parser.add_argument("--processes", type=int, default=2,
                        help="worker processes of the live runner (with --live)")
    parser.add_argument("--live-port", type=int, default=0,
                        help="first worker port of the live runner (0 = ephemeral)")
    parser.add_argument("--live-timeout", type=float, default=300.0,
                        help="hard wall-clock limit in seconds on a live run")
    parser.add_argument("--stepping", default="sequential",
                        choices=["sequential", "concurrent"],
                        help="live stepping discipline: sequential replays the "
                             "cycle engine's scheduler (bit-identical results), "
                             "concurrent drives every worker's shard with many "
                             "exchanges in flight (faster, nondeterministic — "
                             "the divergence is reported as envelope metrics)")
    parser.add_argument("--live-concurrency", type=int, default=8,
                        help="per-worker cap on node steps in flight with "
                             "--stepping concurrent")
    parser.add_argument("--envelope", default="auto", choices=["auto", "off"],
                        help="with --stepping concurrent: auto runs the "
                             "deterministic cycle-mode reference afterwards and "
                             "reports divergence metrics in the cost summary; "
                             "off skips the reference run")
    parser.add_argument("--engine", default="object", choices=["object", "slab"],
                        help="population engine: object (one participant object "
                             "per node) or slab (vectorised struct-of-arrays "
                             "population with sampled crypto — the million-node "
                             "path)")
    parser.add_argument("--sample-fraction", type=float, default=1.0,
                        help="fraction of nodes running the real crypto pipeline "
                             "under --engine slab (1.0 = everything, results "
                             "bit-identical to the object engine; 0 = purely "
                             "modelled costs)")
    parser.add_argument("--slab-shards", type=int, default=1,
                        help="shared-memory worker shards of the slab engine's "
                             "assignment, scatter/means and gossip-averaging "
                             "phases (results are shard-invariant)")
    parser.add_argument("--slab-dtype", default="float64",
                        choices=["float64", "float32"],
                        help="element type of the slab engine's estimate slab: "
                             "float64 is bit-identical to the object engine, "
                             "float32 halves resident memory for very large "
                             "populations")
    parser.add_argument("--slab-backing", default="memory",
                        help="estimate-slab storage: memory, or mmap:<dir> to "
                             "back the slab with an unlinked memory-mapped "
                             "temporary file so huge populations run in "
                             "bounded resident memory (bit-identical)")
    parser.add_argument("--slab-chunk-rows", type=int, default=0,
                        help="row-block size for the slab engine's elementwise "
                             "phases (0 = whole slab at once); bounds peak "
                             "temporaries without changing results")
    parser.add_argument("--matrix-backed", action="store_true",
                        help="generate the dataset as one flat array instead "
                             "of per-node TimeSeries objects (gaussian only); "
                             "with --slab-dtype float32 the data matrix is "
                             "float32 end to end")
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")


def _command_run(args: argparse.Namespace) -> int:
    collection = _dataset_from_args(args)
    config = _config_from_args(args)
    result = run_chiaroscuro(collection, config)
    if args.json:
        payload = {
            "summary": result.summary(),
            "cluster_sizes": result.cluster_sizes(),
            "guarantee": result.guarantee.as_dict(),
            "costs": result.costs.as_dict(),
        }
        if "live" in result.metadata:
            payload["live"] = result.metadata["live"]
        print(json.dumps(payload, indent=2))
        return 0
    print(format_table([result.summary()], title=f"Chiaroscuro run on {collection.name}"))
    print()
    print(format_table(
        [{"profile": cluster, "members": size}
         for cluster, size in result.cluster_sizes().items()],
        title="profile sizes",
    ))
    print()
    print(format_table([result.guarantee.as_dict()], title="realised privacy guarantee"))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    collection = _dataset_from_args(args)
    config = _config_from_args(args)
    label_key = "cluster" if args.dataset == "gaussian" else "archetype"
    reports = compare_with_baselines(collection, config, label_key=label_key)
    if args.json:
        print(json.dumps(reports, indent=2))
        return 0
    print(format_comparison(
        reports,
        columns=["relative_inertia", "adjusted_rand_index", "centroid_matching_error"],
        title=f"Chiaroscuro vs baselines on {collection.name} (epsilon={args.epsilon})",
    ))
    return 0


def _command_crypto_bench(args: argparse.Namespace) -> int:
    n_shares = max(args.threshold, args.threshold + 2)
    if args.fastmath == "sweep":
        profiles = sweep_crypto_costs(
            key_bits=args.key_bits, degree=args.degree, threshold=args.threshold,
            n_shares=n_shares, repetitions=args.repetitions,
        )
    else:
        profiles = {
            args.fastmath: measure_crypto_costs(
                key_bits=args.key_bits, degree=args.degree, threshold=args.threshold,
                n_shares=n_shares, repetitions=args.repetitions,
                fastmath=args.fastmath,
            )
        }
    payload: dict = {"profiles": {}, "rows": {}}
    profile_rows = []
    for mode, profile in profiles.items():
        workload = ProtocolWorkload(
            n_clusters=args.clusters, series_length=args.series_length,
            iterations=args.iterations, gossip_cycles=args.gossip_cycles,
            exchanges_per_cycle=1, threshold=args.threshold, slots=args.slots,
            amortized_encryptions=mode != "off",
        )
        rows = CostModel(profile).sweep_population(workload, args.populations)
        accounting = workload.byte_accounting(profile.ciphertext_bytes)
        for row in rows:
            row["wire_bytes_sent"] = accounting.bytes_measured
            row["wire_overhead_fraction"] = accounting.overhead_fraction
        payload["profiles"][mode] = profile.as_dict()
        payload["rows"][mode] = rows
        profile_rows.append({"fastmath": mode, **profile.as_dict()})
    if args.json:
        if len(profiles) == 1:
            mode = next(iter(profiles))
            print(json.dumps({"profile": payload["profiles"][mode],
                              "rows": payload["rows"][mode]}, indent=2))
        else:
            print(json.dumps(payload, indent=2))
        return 0
    print(format_table(profile_rows, title="measured per-operation costs"))
    for mode in profiles:
        print()
        print(format_table(
            payload["rows"][mode],
            title=f"extrapolated per-participant run costs (fastmath={mode})",
        ))
    return 0


def _default_store_path(spec_path: str) -> Path:
    """Default result-store location of a spec: ``results/<spec-stem>.jsonl``.

    Kept out of the spec directory so running example specs never litters
    the checked-in scenario files with result stores.
    """
    return Path("results") / (Path(spec_path).stem + ".jsonl")


def _command_experiment_run(args: argparse.Namespace) -> int:
    # Deferred import: the experiment subsystem pulls in multiprocessing
    # machinery the one-shot commands never need.
    from .experiments import ExperimentSpec, ResultStore, run_experiment

    spec = ExperimentSpec.from_file(args.spec)
    store = ResultStore(args.store or _default_store_path(args.spec))
    progress = None
    if not args.quiet and not args.json:
        def progress(message: str) -> None:
            print(message)
    summary = run_experiment(
        spec, store, jobs=args.jobs, resume=args.resume,
        timeout=args.timeout, progress=progress,
    )
    if args.json:
        print(json.dumps({
            "experiment": spec.name,
            "spec_hash": spec.spec_hash,
            "store": str(store.path),
            **summary.as_dict(),
        }, indent=2))
    else:
        print(f"experiment {spec.name}: {summary.executed} executed "
              f"({summary.failed} failed), {summary.skipped} cached, "
              f"store={store.path}")
        for failure in summary.failures:
            print(f"  {failure['status']}: cell {failure['cell']['index']} "
                  f"({failure.get('error', '')})")
    return 1 if summary.failed else 0


def _command_experiment_list(args: argparse.Namespace) -> int:
    """Show a spec's cells and their store status (cached/pending/failed).

    The inspection companion of ``experiment run --resume``: before starting
    (or resuming) a long sweep, list which cells already have a cached ``ok``
    row, which failed or timed out (they will re-run), and which were never
    attempted.
    """
    from .experiments import ExperimentSpec, ResultStore

    spec = ExperimentSpec.from_file(args.spec)
    store = ResultStore(args.store or _default_store_path(args.spec))
    latest = store.latest_by_key()
    rows = []
    counts = {"cached": 0, "pending": 0, "error": 0, "timeout": 0}
    for cell in spec.expand():
        row = latest.get(cell.key)
        if row is None:
            status = "pending"
        elif row.get("status") == "ok":
            status = "cached"
        else:
            status = str(row.get("status"))
        counts[status] = counts.get(status, 0) + 1
        rows.append({
            "cell": cell.index,
            "label": cell.label(),
            "key": cell.key,
            "status": status,
        })
    if args.json:
        print(json.dumps({
            "experiment": spec.name,
            "spec_hash": spec.spec_hash,
            "store": str(store.path),
            "counts": counts,
            "cells": rows,
        }, indent=2))
        return 0
    print(f"experiment {spec.name}: {len(rows)} cells, store={store.path}")
    print(format_table(
        [{"cell": row["cell"], "status": row["status"], "label": row["label"]}
         for row in rows],
        title="cells",
    ))
    summary = ", ".join(f"{key}={value}" for key, value in counts.items() if value)
    print(f"\n{summary}")
    return 0


def _command_experiment_report(args: argparse.Namespace) -> int:
    from .experiments import (
        ExperimentSpec,
        ResultStore,
        format_cross_report,
        format_report,
    )

    spec = ExperimentSpec.from_file(args.spec)
    stores = args.store or [str(_default_store_path(args.spec))]
    if len(stores) > 1:
        # Cross-store join: one table aligning the same spec's cells across
        # several result stores (e.g. a sequential and a concurrent sweep).
        sources = [(Path(path).stem, ResultStore(path)) for path in stores]
        report = format_cross_report(spec, sources, markdown=args.markdown)
    else:
        store = ResultStore(stores[0])
        report = format_report(spec, store, markdown=args.markdown)
    if args.out:
        out_path = Path(args.out)
        if out_path.parent != Path(""):
            out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(report + "\n", encoding="utf-8")
        print(f"report written to {out_path}")
    else:
        print(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chiaroscuro: privacy-preserving clustering of distributed time-series",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run the protocol on a dataset")
    _add_common_run_options(run_parser)
    run_parser.set_defaults(handler=_command_run)

    compare_parser = subparsers.add_parser("compare", help="compare against the baselines")
    _add_common_run_options(compare_parser)
    compare_parser.set_defaults(handler=_command_compare)

    crypto_parser = subparsers.add_parser("crypto-bench",
                                          help="measure and extrapolate encryption costs")
    crypto_parser.add_argument("--key-bits", type=int, default=512)
    crypto_parser.add_argument("--degree", type=int, default=1)
    crypto_parser.add_argument("--threshold", type=int, default=3)
    crypto_parser.add_argument("--repetitions", type=int, default=3)
    crypto_parser.add_argument("--clusters", type=int, default=5)
    crypto_parser.add_argument("--series-length", type=int, default=48)
    crypto_parser.add_argument("--iterations", type=int, default=10)
    crypto_parser.add_argument("--gossip-cycles", type=int, default=12)
    crypto_parser.add_argument("--slots", type=int, default=1,
                               help="ciphertext slots per plaintext charged by the model")
    crypto_parser.add_argument("--fastmath", default="off",
                               choices=["auto", "off", "sweep"],
                               help="measure with the modular-arithmetic fast path "
                                    "(CRT, amortized pools, multi-exp); 'sweep' "
                                    "measures both modes and prints them side by side")
    crypto_parser.add_argument("--populations", type=int, nargs="+",
                               default=[10**3, 10**6])
    crypto_parser.add_argument("--json", action="store_true")
    crypto_parser.set_defaults(handler=_command_crypto_bench)

    experiment_parser = subparsers.add_parser(
        "experiment",
        help="run and report declarative scenario sweeps (experiment specs)",
    )
    experiment_sub = experiment_parser.add_subparsers(
        dest="experiment_command", required=True
    )

    exp_run = experiment_sub.add_parser(
        "run", help="execute a spec's scenario matrix with resumable caching"
    )
    exp_run.add_argument("--spec", required=True,
                         help="experiment spec file (.json or .toml)")
    exp_run.add_argument("--store", default=None,
                         help="result store path (default: results/<spec>.jsonl)")
    exp_run.add_argument("--jobs", type=int, default=1,
                         help="scenario cells run concurrently (worker processes)")
    exp_run.add_argument("--resume", action="store_true",
                         help="skip cells whose results are already in the store")
    exp_run.add_argument("--timeout", type=float, default=None,
                         help="hard per-cell wall-clock limit in seconds")
    exp_run.add_argument("--quiet", action="store_true",
                         help="suppress per-cell progress lines")
    exp_run.add_argument("--json", action="store_true",
                         help="emit a machine-readable run summary")
    exp_run.set_defaults(handler=_command_experiment_run)

    exp_list = experiment_sub.add_parser(
        "list", help="show cached vs pending cells of a spec's scenario matrix"
    )
    exp_list.add_argument("--spec", required=True,
                          help="experiment spec file (.json or .toml)")
    exp_list.add_argument("--store", default=None,
                          help="result store path (default: results/<spec>.jsonl)")
    exp_list.add_argument("--json", action="store_true",
                          help="emit a machine-readable cell listing")
    exp_list.set_defaults(handler=_command_experiment_list)

    exp_report = experiment_sub.add_parser(
        "report", help="render the cross-scenario comparison report of a spec"
    )
    exp_report.add_argument("--spec", required=True,
                            help="experiment spec file (.json or .toml)")
    exp_report.add_argument("--store", action="append", default=None,
                            help="result store path (default: results/<spec>.jsonl); "
                                 "repeat the flag to join several stores of the "
                                 "same spec into one cross-store comparison table")
    exp_report.add_argument("--markdown", action="store_true",
                            help="emit a markdown report instead of aligned text")
    exp_report.add_argument("--out", default=None,
                            help="also write the report to this file")
    exp_report.set_defaults(handler=_command_experiment_report)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
