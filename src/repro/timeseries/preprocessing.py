"""Time-series preprocessing utilities.

These helpers operate on plain one-dimensional arrays so they can be used both
on raw series (dataset preparation) and on centroids (the smoothing heuristic
re-uses :func:`moving_average` and :func:`lowpass_filter`).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_float_array, check_positive_int
from ..exceptions import ValidationError


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centred moving average with edge padding (output has the same length).

    The window is clipped to the series length.  A window of 1 returns a copy.
    """
    values = as_1d_float_array(values, "values")
    window = check_positive_int(window, "window")
    window = min(window, len(values))
    if window == 1:
        return values.copy()
    pad_left = (window - 1) // 2
    pad_right = window - 1 - pad_left
    padded = np.pad(values, (pad_left, pad_right), mode="edge")
    kernel = np.full(window, 1.0 / window)
    return np.convolve(padded, kernel, mode="valid")


def exponential_smoothing(values: np.ndarray, alpha: float) -> np.ndarray:
    """Simple exponential smoothing: ``s[t] = alpha*x[t] + (1-alpha)*s[t-1]``."""
    values = as_1d_float_array(values, "values")
    if not 0.0 < alpha <= 1.0:
        raise ValidationError(f"alpha must be in (0, 1], got {alpha}")
    smoothed = np.empty_like(values)
    smoothed[0] = values[0]
    for index in range(1, len(values)):
        smoothed[index] = alpha * values[index] + (1.0 - alpha) * smoothed[index - 1]
    return smoothed


def lowpass_filter(values: np.ndarray, cutoff_fraction: float) -> np.ndarray:
    """Keep only the lowest ``cutoff_fraction`` of Fourier frequencies.

    This is the "smoothing of the perturbed means" heuristic: Laplace noise is
    independent per point (white, spread over all frequencies) while centroids
    of smooth personal time-series concentrate their energy in low
    frequencies, so a low-pass filter removes much of the noise while keeping
    the signal.
    """
    values = as_1d_float_array(values, "values")
    if not 0.0 < cutoff_fraction <= 1.0:
        raise ValidationError(f"cutoff_fraction must be in (0, 1], got {cutoff_fraction}")
    spectrum = np.fft.rfft(values)
    keep = max(1, int(round(cutoff_fraction * len(spectrum))))
    spectrum[keep:] = 0.0
    return np.fft.irfft(spectrum, n=len(values))


def resample(values: np.ndarray, target_length: int) -> np.ndarray:
    """Linearly resample a series to ``target_length`` points."""
    values = as_1d_float_array(values, "values")
    target_length = check_positive_int(target_length, "target_length")
    if target_length == len(values):
        return values.copy()
    if target_length == 1:
        return np.array([float(np.mean(values))])
    source = np.linspace(0.0, 1.0, num=len(values))
    target = np.linspace(0.0, 1.0, num=target_length)
    return np.interp(target, source, values)


def piecewise_aggregate(values: np.ndarray, n_segments: int) -> np.ndarray:
    """Piecewise Aggregate Approximation (PAA): mean of each of *n_segments* chunks."""
    values = as_1d_float_array(values, "values")
    n_segments = check_positive_int(n_segments, "n_segments")
    if n_segments > len(values):
        raise ValidationError(
            f"cannot split {len(values)} points into {n_segments} segments"
        )
    boundaries = np.linspace(0, len(values), num=n_segments + 1)
    output = np.empty(n_segments, dtype=float)
    for segment in range(n_segments):
        start = int(np.floor(boundaries[segment]))
        end = max(start + 1, int(np.ceil(boundaries[segment + 1])))
        output[segment] = float(np.mean(values[start:end]))
    return output


def sliding_windows(values: np.ndarray, width: int, step: int = 1) -> np.ndarray:
    """Return all windows of ``width`` points taken every ``step`` positions.

    Used by the profile-search analysis to align a query sub-sequence against
    every offset of a profile.
    """
    values = as_1d_float_array(values, "values")
    width = check_positive_int(width, "width")
    step = check_positive_int(step, "step")
    if width > len(values):
        raise ValidationError(f"window width {width} exceeds series length {len(values)}")
    starts = range(0, len(values) - width + 1, step)
    return np.vstack([values[start:start + width] for start in starts])


def add_noise(values: np.ndarray, scale: float, rng: np.random.Generator) -> np.ndarray:
    """Add i.i.d. Gaussian noise of standard deviation *scale* (dataset jitter)."""
    values = as_1d_float_array(values, "values")
    if scale < 0:
        raise ValidationError(f"scale must be >= 0, got {scale}")
    if scale == 0:
        return values.copy()
    return values + rng.normal(0.0, scale, size=values.shape)
