"""Time-series substrate: value objects, distances and preprocessing."""

from .collection import MatrixBackedCollection, TimeSeriesCollection
from .distance import (
    available_distances,
    chebyshev_distance,
    dtw_distance,
    euclidean_distance,
    get_distance,
    manhattan_distance,
    nearest_neighbor,
    pairwise_distances,
    squared_euclidean_distance,
)
from .preprocessing import (
    add_noise,
    exponential_smoothing,
    lowpass_filter,
    moving_average,
    piecewise_aggregate,
    resample,
    sliding_windows,
)
from .series import TimeSeries

__all__ = [
    "MatrixBackedCollection",
    "TimeSeries",
    "TimeSeriesCollection",
    "available_distances",
    "chebyshev_distance",
    "dtw_distance",
    "euclidean_distance",
    "get_distance",
    "manhattan_distance",
    "nearest_neighbor",
    "pairwise_distances",
    "squared_euclidean_distance",
    "add_noise",
    "exponential_smoothing",
    "lowpass_filter",
    "moving_average",
    "piecewise_aggregate",
    "resample",
    "sliding_windows",
]
