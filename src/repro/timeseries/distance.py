"""Distances between time-series.

The Chiaroscuro assignment step compares a participant's series to the
perturbed centroids; the convergence step compares successive centroid sets.
Both rely on a point-wise distance (Euclidean by default, as in classic
k-means on time-series).  Dynamic time warping is provided for analysis
purposes (e.g. profile search on sub-sequences of different phase), not for
the protocol itself.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .._validation import as_1d_float_array, as_2d_float_array
from ..exceptions import TimeSeriesError, ValidationError

DistanceFunction = Callable[[np.ndarray, np.ndarray], float]


def _check_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = as_1d_float_array(a, "a")
    b = as_1d_float_array(b, "b")
    if a.shape != b.shape:
        raise TimeSeriesError(f"series lengths differ: {a.shape[0]} vs {b.shape[0]}")
    return a, b


def euclidean_distance(a: Sequence[float] | np.ndarray, b: Sequence[float] | np.ndarray) -> float:
    """L2 distance between two equal-length series."""
    a, b = _check_pair(np.asarray(a), np.asarray(b))
    return float(np.linalg.norm(a - b))


def squared_euclidean_distance(
    a: Sequence[float] | np.ndarray, b: Sequence[float] | np.ndarray
) -> float:
    """Squared L2 distance (the quantity k-means actually minimises)."""
    a, b = _check_pair(np.asarray(a), np.asarray(b))
    diff = a - b
    return float(np.dot(diff, diff))


def manhattan_distance(a: Sequence[float] | np.ndarray, b: Sequence[float] | np.ndarray) -> float:
    """L1 distance between two equal-length series."""
    a, b = _check_pair(np.asarray(a), np.asarray(b))
    return float(np.sum(np.abs(a - b)))


def chebyshev_distance(a: Sequence[float] | np.ndarray, b: Sequence[float] | np.ndarray) -> float:
    """L-infinity distance between two equal-length series."""
    a, b = _check_pair(np.asarray(a), np.asarray(b))
    return float(np.max(np.abs(a - b)))


def dtw_distance(
    a: Sequence[float] | np.ndarray,
    b: Sequence[float] | np.ndarray,
    window: int | None = None,
) -> float:
    """Dynamic-time-warping distance with an optional Sakoe–Chiba band.

    Series may have different lengths.  ``window`` restricts the warping path
    to ``|i - j| <= window``; ``None`` means unconstrained.
    """
    a = as_1d_float_array(np.asarray(a), "a")
    b = as_1d_float_array(np.asarray(b), "b")
    n, m = len(a), len(b)
    if window is not None:
        if window < 0:
            raise ValidationError(f"window must be >= 0, got {window}")
        window = max(window, abs(n - m))
    cost = np.full((n + 1, m + 1), np.inf)
    cost[0, 0] = 0.0
    for i in range(1, n + 1):
        if window is None:
            j_lo, j_hi = 1, m
        else:
            j_lo, j_hi = max(1, i - window), min(m, i + window)
        for j in range(j_lo, j_hi + 1):
            step = (a[i - 1] - b[j - 1]) ** 2
            cost[i, j] = step + min(cost[i - 1, j], cost[i, j - 1], cost[i - 1, j - 1])
    return float(np.sqrt(cost[n, m]))


_DISTANCES: dict[str, DistanceFunction] = {
    "euclidean": euclidean_distance,
    "sqeuclidean": squared_euclidean_distance,
    "manhattan": manhattan_distance,
    "chebyshev": chebyshev_distance,
    "dtw": dtw_distance,
}


def get_distance(name: str) -> DistanceFunction:
    """Return the distance function registered under *name*."""
    try:
        return _DISTANCES[name]
    except KeyError as exc:
        raise ValidationError(
            f"unknown distance {name!r}; available: {sorted(_DISTANCES)}"
        ) from exc


def available_distances() -> tuple[str, ...]:
    """Names of the registered distance functions."""
    return tuple(sorted(_DISTANCES))


def pairwise_distances(
    rows: np.ndarray, cols: np.ndarray, metric: str = "euclidean"
) -> np.ndarray:
    """Distance matrix between the rows of two 2-D arrays.

    Vectorised for the Euclidean / squared-Euclidean / Manhattan cases, which
    are the ones used in the protocol hot path; other metrics fall back to a
    double loop.
    """
    rows = as_2d_float_array(rows, "rows")
    cols = as_2d_float_array(cols, "cols")
    if rows.shape[1] != cols.shape[1]:
        raise TimeSeriesError(
            f"row length {rows.shape[1]} differs from column length {cols.shape[1]}"
        )
    if metric in ("euclidean", "sqeuclidean"):
        # ||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y, clipped to avoid tiny negatives.
        sq = (
            np.sum(rows**2, axis=1)[:, None]
            + np.sum(cols**2, axis=1)[None, :]
            - 2.0 * rows @ cols.T
        )
        np.maximum(sq, 0.0, out=sq)
        return sq if metric == "sqeuclidean" else np.sqrt(sq)
    if metric == "manhattan":
        return np.sum(np.abs(rows[:, None, :] - cols[None, :, :]), axis=2)
    distance = get_distance(metric)
    out = np.empty((rows.shape[0], cols.shape[0]), dtype=float)
    for i, row in enumerate(rows):
        for j, col in enumerate(cols):
            out[i, j] = distance(row, col)
    return out


def nearest_neighbor(
    query: np.ndarray, candidates: np.ndarray, metric: str = "euclidean"
) -> tuple[int, float]:
    """Index and distance of the candidate row closest to *query*."""
    query = as_1d_float_array(query, "query")
    candidates = as_2d_float_array(candidates, "candidates")
    distances = pairwise_distances(query[None, :], candidates, metric=metric)[0]
    index = int(np.argmin(distances))
    return index, float(distances[index])
