"""The :class:`TimeSeriesCollection` container.

A collection groups equal-length :class:`~repro.timeseries.series.TimeSeries`
objects — one per participant — and exposes the matrix view that the
clustering substrate and the baselines operate on.  The Chiaroscuro protocol
never materialises such a collection on a single node (that is the whole
point); collections exist for dataset generation, baselines and evaluation.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .._validation import as_2d_float_array
from ..exceptions import TimeSeriesError
from .series import TimeSeries


class TimeSeriesCollection:
    """An ordered collection of equal-length time-series.

    Parameters
    ----------
    series:
        Iterable of :class:`TimeSeries`, all of the same length.
    name:
        Human-readable name of the collection (e.g. ``"cer-synthetic"``).
    """

    def __init__(self, series: Iterable[TimeSeries], name: str = "") -> None:
        self._series: list[TimeSeries] = list(series)
        self.name = name
        if not self._series:
            raise TimeSeriesError("a collection must contain at least one series")
        length = len(self._series[0])
        for entry in self._series:
            if len(entry) != length:
                raise TimeSeriesError(
                    "all series in a collection must have the same length "
                    f"({len(entry)} != {length} for {entry.series_id!r})"
                )
        self._length = length

    # ------------------------------------------------------------------ dunder
    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[TimeSeries]:
        return iter(self._series)

    def __getitem__(self, index: int) -> TimeSeries:
        return self._series[index]

    def __repr__(self) -> str:
        return (
            f"TimeSeriesCollection(name={self.name!r}, n_series={len(self)}, "
            f"series_length={self.series_length})"
        )

    # ------------------------------------------------------------------ views
    @property
    def series_length(self) -> int:
        """Common length of every series in the collection."""
        return self._length

    @property
    def series_ids(self) -> list[str]:
        """Identifiers of the series, in collection order."""
        return [entry.series_id for entry in self._series]

    def to_matrix(self) -> np.ndarray:
        """Return an ``(n_series, series_length)`` float matrix (copy)."""
        return np.vstack([entry.values for entry in self._series])

    def labels(self, key: str) -> list[Any]:
        """Return ``metadata[key]`` for every series (``None`` when absent).

        Typically used to retrieve the generator's ground-truth cluster label
        for external quality metrics such as the adjusted Rand index.
        """
        return [entry.metadata.get(key) for entry in self._series]

    def value_bound(self) -> float:
        """Largest absolute value across the collection.

        Used to derive the public clipping bound / sensitivity for the
        Laplace mechanism.
        """
        return float(max(abs(entry.min()) if abs(entry.min()) > entry.max() else entry.max()
                         for entry in self._series))

    # ------------------------------------------------------------------ transforms
    def map(self, transform: Callable[[TimeSeries], TimeSeries], name: str | None = None,
            ) -> "TimeSeriesCollection":
        """Return a new collection with *transform* applied to every series."""
        return TimeSeriesCollection(
            [transform(entry) for entry in self._series],
            name=self.name if name is None else name,
        )

    def normalized(self, method: str = "minmax") -> "TimeSeriesCollection":
        """Return a copy with every series normalised independently."""
        return self.map(lambda entry: entry.normalized(method))

    def clipped(self, lower: float, upper: float) -> "TimeSeriesCollection":
        """Return a copy with every series clipped into [lower, upper]."""
        return self.map(lambda entry: entry.clipped(lower, upper))

    def subset(self, indices: Sequence[int], name: str | None = None) -> "TimeSeriesCollection":
        """Return the sub-collection at the given positions (order preserved)."""
        if not indices:
            raise TimeSeriesError("subset requires at least one index")
        picked = [self._series[int(i)] for i in indices]
        return TimeSeriesCollection(picked, name=self.name if name is None else name)

    def sample(self, n: int, rng: np.random.Generator) -> "TimeSeriesCollection":
        """Return *n* series drawn without replacement using *rng*."""
        if not 1 <= n <= len(self):
            raise TimeSeriesError(f"cannot sample {n} series out of {len(self)}")
        indices = rng.choice(len(self), size=n, replace=False)
        return self.subset([int(i) for i in indices])

    def split(self, fraction: float, rng: np.random.Generator,
              ) -> tuple["TimeSeriesCollection", "TimeSeriesCollection"]:
        """Randomly split into two collections of sizes ~fraction / ~(1-fraction)."""
        if not 0.0 < fraction < 1.0:
            raise TimeSeriesError(f"fraction must be in (0, 1), got {fraction}")
        permutation = rng.permutation(len(self))
        cut = max(1, min(len(self) - 1, int(round(fraction * len(self)))))
        first = self.subset([int(i) for i in permutation[:cut]])
        second = self.subset([int(i) for i in permutation[cut:]])
        return first, second

    # ------------------------------------------------------------------ serialisation
    def to_dicts(self) -> list[dict[str, Any]]:
        """Serialise every series via :meth:`TimeSeries.to_dict`."""
        return [entry.to_dict() for entry in self._series]

    @classmethod
    def from_dicts(cls, payloads: Iterable[Mapping[str, Any]], name: str = "",
                   ) -> "TimeSeriesCollection":
        """Inverse of :meth:`to_dicts`."""
        return cls([TimeSeries.from_dict(payload) for payload in payloads], name=name)

    @classmethod
    def from_matrix(
        cls,
        matrix: np.ndarray,
        ids: Sequence[str] | None = None,
        name: str = "",
        metadata: Sequence[Mapping[str, Any]] | None = None,
    ) -> "TimeSeriesCollection":
        """Build a collection from an ``(n_series, series_length)`` matrix."""
        matrix = as_2d_float_array(matrix, "matrix")
        n_series = matrix.shape[0]
        if ids is None:
            ids = [f"series-{i}" for i in range(n_series)]
        if len(ids) != n_series:
            raise TimeSeriesError(f"got {len(ids)} ids for {n_series} series")
        if metadata is None:
            metadata = [{} for _ in range(n_series)]
        if len(metadata) != n_series:
            raise TimeSeriesError(f"got {len(metadata)} metadata entries for {n_series} series")
        series = [
            TimeSeries(matrix[i], str(ids[i]), dict(metadata[i])) for i in range(n_series)
        ]
        return cls(series, name=name)


class MatrixBackedCollection(TimeSeriesCollection):
    """A collection backed by one dense matrix, without per-series objects.

    Behaviourally equivalent to :class:`TimeSeriesCollection`, but rows are
    wrapped into :class:`TimeSeries` objects lazily on access, so building a
    ten-million-row population costs one matrix allocation instead of ten
    million Python objects.  The backing matrix keeps its dtype (the slab
    engine's ``float32`` path relies on this to halve resident memory).

    Parameters
    ----------
    matrix:
        ``(n_series, series_length)`` float matrix; kept by reference.
    name:
        Collection name, as for the dense container.
    label_key / labels:
        Optional ground-truth labels: ``labels[i]`` is surfaced as
        ``metadata[label_key]`` of row ``i``.
    id_prefix:
        Row identifiers are ``f"{id_prefix}-{row}"``.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        name: str = "",
        label_key: str | None = None,
        labels: np.ndarray | None = None,
        id_prefix: str = "series",
    ) -> None:
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise TimeSeriesError(
                f"matrix must be 2-dimensional, got shape {matrix.shape}"
            )
        if matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise TimeSeriesError("a collection must contain at least one series")
        if not np.issubdtype(matrix.dtype, np.floating):
            matrix = matrix.astype(np.float64)
        if not np.all(np.isfinite(matrix)):
            raise TimeSeriesError("matrix contains non-finite values")
        self._matrix = matrix
        self.name = name
        self._length = int(matrix.shape[1])
        self._label_key = label_key
        self._labels = None if labels is None else np.asarray(labels)
        if self._labels is not None and self._labels.shape[0] != matrix.shape[0]:
            raise TimeSeriesError(
                f"got {self._labels.shape[0]} labels for {matrix.shape[0]} series"
            )
        self._id_prefix = id_prefix

    def _row(self, index: int) -> TimeSeries:
        metadata: dict[str, Any] = {}
        if self._labels is not None and self._label_key is not None:
            metadata[self._label_key] = self._labels[index].item()
        return TimeSeries(
            self._matrix[index], f"{self._id_prefix}-{index}", metadata
        )

    # -------------------------------------------------------------- dunder
    def __len__(self) -> int:
        return int(self._matrix.shape[0])

    def __iter__(self) -> Iterator[TimeSeries]:
        return (self._row(i) for i in range(len(self)))

    def __getitem__(self, index: int) -> TimeSeries:
        return self._row(range(len(self))[index])

    def __repr__(self) -> str:
        return (
            f"MatrixBackedCollection(name={self.name!r}, n_series={len(self)}, "
            f"series_length={self.series_length}, dtype={self._matrix.dtype})"
        )

    # -------------------------------------------------------------- views
    @property
    def series_ids(self) -> list[str]:
        return [f"{self._id_prefix}-{i}" for i in range(len(self))]

    def to_matrix(self) -> np.ndarray:
        """Return the backing matrix itself (no copy — do not mutate)."""
        return self._matrix

    def labels(self, key: str) -> list[Any]:
        if self._labels is None or key != self._label_key:
            return [None] * len(self)
        return [value.item() for value in self._labels]

    def value_bound(self) -> float:
        low = float(self._matrix.min())
        high = float(self._matrix.max())
        return float(max(abs(low), high))

    # -------------------------------------------------------------- transforms
    def map(self, transform: Callable[[TimeSeries], TimeSeries], name: str | None = None,
            ) -> "TimeSeriesCollection":
        """Materialise every row, apply *transform*, return a dense collection."""
        return TimeSeriesCollection(
            [transform(entry) for entry in self],
            name=self.name if name is None else name,
        )

    def subset(self, indices: Sequence[int], name: str | None = None) -> "TimeSeriesCollection":
        """Materialise only the picked rows into a dense sub-collection."""
        if not len(indices):
            raise TimeSeriesError("subset requires at least one index")
        picked = [self._row(int(i)) for i in indices]
        return TimeSeriesCollection(picked, name=self.name if name is None else name)

    # -------------------------------------------------------------- serialisation
    def to_dicts(self) -> list[dict[str, Any]]:
        return [entry.to_dict() for entry in self]
