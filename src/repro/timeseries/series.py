"""The :class:`TimeSeries` value object.

A time-series in Chiaroscuro is a fixed-length sequence of real-valued
measurements produced by a personal sensor (electricity consumption per
half-hour, tumor size per week, weight per day, ...).  The class is a thin,
immutable wrapper around a NumPy array adding an identifier, optional
metadata, and the handful of operations the protocol needs: distances,
sub-sequence extraction and normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from .._validation import as_1d_float_array
from ..exceptions import TimeSeriesError


@dataclass(frozen=True)
class TimeSeries:
    """An immutable, fixed-length personal time-series.

    Attributes
    ----------
    values:
        One-dimensional float array of measurements.
    series_id:
        Identifier of the series (typically the participant identifier).
    metadata:
        Free-form auxiliary information (e.g. household archetype, patient
        response group).  Never used by the protocol itself; useful for
        evaluating clustering quality against ground truth.
    """

    values: np.ndarray
    series_id: str = ""
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        array = as_1d_float_array(self.values, "values")
        array.setflags(write=False)
        object.__setattr__(self, "values", array)
        object.__setattr__(self, "metadata", dict(self.metadata))

    # ------------------------------------------------------------------ dunder
    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __iter__(self) -> Iterator[float]:
        return iter(self.values.tolist())

    def __getitem__(self, index: int | slice) -> float | np.ndarray:
        return self.values[index]

    def __array__(self, dtype: Any = None, copy: bool | None = None) -> np.ndarray:
        if dtype is None:
            return np.array(self.values, copy=True)
        return np.array(self.values, dtype=dtype, copy=True)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (
            self.series_id == other.series_id
            and len(self) == len(other)
            and bool(np.array_equal(self.values, other.values))
        )

    def __hash__(self) -> int:
        return hash((self.series_id, self.values.tobytes()))

    # ------------------------------------------------------------------ helpers
    @property
    def length(self) -> int:
        """Number of points in the series."""
        return len(self)

    def copy_with(self, values: np.ndarray | None = None, **metadata: Any) -> "TimeSeries":
        """Return a copy, optionally replacing values and/or merging metadata."""
        new_values = self.values if values is None else values
        merged = dict(self.metadata)
        merged.update(metadata)
        return TimeSeries(np.array(new_values, dtype=float), self.series_id, merged)

    def subsequence(self, start: int, end: int) -> "TimeSeries":
        """Return the sub-series covering positions ``start`` (included) to
        ``end`` (excluded), as used by the "Bob" closest-profile search."""
        if not 0 <= start < end <= len(self):
            raise TimeSeriesError(
                f"invalid subsequence bounds [{start}, {end}) for a series of length {len(self)}"
            )
        return TimeSeries(self.values[start:end].copy(), self.series_id, dict(self.metadata))

    def mean(self) -> float:
        """Average value of the series."""
        return float(np.mean(self.values))

    def std(self) -> float:
        """Standard deviation of the series."""
        return float(np.std(self.values))

    def min(self) -> float:
        """Smallest value of the series."""
        return float(np.min(self.values))

    def max(self) -> float:
        """Largest value of the series."""
        return float(np.max(self.values))

    def normalized(self, method: str = "minmax") -> "TimeSeries":
        """Return a normalised copy.

        ``"minmax"`` rescales to [0, 1] (constant series map to 0.5),
        ``"zscore"`` centres and scales to unit variance (constant series map
        to 0), ``"unit"`` divides by the maximum absolute value.
        """
        values = self.values
        if method == "minmax":
            span = float(values.max() - values.min())
            if span == 0.0:
                normal = np.full_like(values, 0.5)
            else:
                normal = (values - values.min()) / span
        elif method == "zscore":
            scale = float(values.std())
            if scale == 0.0:
                normal = np.zeros_like(values)
            else:
                normal = (values - values.mean()) / scale
        elif method == "unit":
            peak = float(np.abs(values).max())
            normal = values / peak if peak > 0.0 else np.zeros_like(values)
        else:
            raise TimeSeriesError(f"unknown normalisation method {method!r}")
        return TimeSeries(normal, self.series_id, dict(self.metadata))

    def clipped(self, lower: float, upper: float) -> "TimeSeries":
        """Return a copy with values clipped into [lower, upper].

        Clipping to a public bound is what gives the per-point sensitivity
        used by the Laplace mechanism.
        """
        if lower > upper:
            raise TimeSeriesError(f"lower bound {lower} exceeds upper bound {upper}")
        return TimeSeries(np.clip(self.values, lower, upper), self.series_id, dict(self.metadata))

    def to_dict(self) -> dict[str, Any]:
        """Serialise to plain Python types (for the execution log)."""
        return {
            "series_id": self.series_id,
            "values": self.values.tolist(),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TimeSeries":
        """Inverse of :meth:`to_dict`."""
        return cls(
            np.asarray(payload["values"], dtype=float),
            str(payload.get("series_id", "")),
            dict(payload.get("metadata", {})),
        )
