"""Quality analyses: Chiaroscuro against its baselines (claim C2).

These helpers orchestrate the comparisons the demonstration displays: the
quality of the perturbed centroids "compared to a centralized k-means", the
privacy-versus-quality trade-off as ε varies, and the contribution of each
quality-enhancing heuristic.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Sequence

import numpy as np

from ..baselines.centralized import centralized_kmeans
from ..baselines.centralized_dp import centralized_dp_kmeans
from ..baselines.distributed_plain import distributed_plain_kmeans
from ..clustering.metrics import quality_report
from ..config import ChiaroscuroConfig
from ..core.result import ChiaroscuroResult
from ..core.runner import run_chiaroscuro
from ..exceptions import AnalysisError
from ..timeseries import TimeSeriesCollection


def centralized_reference(
    collection: TimeSeriesCollection, config: ChiaroscuroConfig, seed: int = 0,
    n_restarts: int = 3,
) -> dict[str, Any]:
    """Centralised k-means reference on the *normalised* data.

    Chiaroscuro runs on min-max normalised data, so the reference is computed
    in the same space to keep inertia values comparable.
    """
    from ..core.runner import normalize_collection  # local import to avoid cycles

    data, _transform = normalize_collection(collection, config.privacy.value_bound)
    normalised = TimeSeriesCollection.from_matrix(
        data, ids=collection.series_ids, name=f"{collection.name}-normalised"
    )
    result = centralized_kmeans(normalised, config.kmeans, seed=seed, n_restarts=n_restarts)
    return {
        "centroids": result.centroids,
        "inertia": result.inertia,
        "assignments": result.assignments,
        "data": data,
    }


def evaluate_result(
    collection: TimeSeriesCollection,
    config: ChiaroscuroConfig,
    result: ChiaroscuroResult,
    reference: dict[str, Any] | None = None,
    label_key: str | None = "archetype",
) -> dict[str, float]:
    """Full quality report of a Chiaroscuro result against the centralised reference."""
    if reference is None:
        reference = centralized_reference(collection, config)
    data = reference["data"]
    labels = None
    if label_key is not None:
        raw_labels = collection.labels(label_key)
        if all(label is not None for label in raw_labels):
            labels = np.asarray(raw_labels)
    report = quality_report(
        data,
        result.profiles,
        reference_centroids=reference["centroids"],
        reference_inertia=reference["inertia"],
        true_labels=labels,
    )
    report["epsilon_spent"] = result.epsilon_spent
    report["n_iterations"] = float(result.n_iterations)
    return report


def privacy_quality_tradeoff(
    collection: TimeSeriesCollection,
    config: ChiaroscuroConfig,
    epsilons: Sequence[float],
    label_key: str | None = "archetype",
) -> list[dict[str, float]]:
    """Quality of Chiaroscuro as the total privacy budget ε varies (experiment E1)."""
    if not epsilons:
        raise AnalysisError("epsilons must not be empty")
    reference = centralized_reference(collection, config)
    rows: list[dict[str, float]] = []
    for epsilon in epsilons:
        run_config = config.with_overrides(privacy={"epsilon": float(epsilon)})
        result = run_chiaroscuro(collection, run_config)
        report = evaluate_result(collection, run_config, result, reference, label_key)
        report["epsilon"] = float(epsilon)
        rows.append(report)
    return rows


def compare_with_baselines(
    collection: TimeSeriesCollection,
    config: ChiaroscuroConfig,
    seed: int = 0,
    label_key: str | None = "archetype",
) -> dict[str, dict[str, float]]:
    """Chiaroscuro vs centralised / centralised-DP / plain-gossip baselines (E2).

    Every method is evaluated on the same normalised data with the same k and
    the same ε (where applicable); the returned mapping contains one quality
    report per method.
    """
    reference = centralized_reference(collection, config, seed=seed)
    data = reference["data"]
    normalised = TimeSeriesCollection.from_matrix(
        data, ids=collection.series_ids, name=f"{collection.name}-normalised"
    )
    labels = None
    if label_key is not None:
        raw_labels = collection.labels(label_key)
        if all(label is not None for label in raw_labels):
            labels = np.asarray(raw_labels)

    def _report(centroids: np.ndarray) -> dict[str, float]:
        return quality_report(
            data,
            centroids,
            reference_centroids=reference["centroids"],
            reference_inertia=reference["inertia"],
            true_labels=labels,
        )

    results: dict[str, dict[str, float]] = {}
    results["centralized"] = _report(reference["centroids"])

    dp_result = centralized_dp_kmeans(
        normalised, config.kmeans, config.privacy, config.smoothing, seed=seed
    )
    results["centralized_dp"] = _report(dp_result.centroids)
    results["centralized_dp"]["epsilon_spent"] = dp_result.epsilon_spent

    plain_result = distributed_plain_kmeans(normalised, config.kmeans, config.gossip, seed=seed)
    results["distributed_plain"] = _report(plain_result.centroids)

    chiaroscuro_result = run_chiaroscuro(collection, config)
    results["chiaroscuro"] = _report(chiaroscuro_result.profiles)
    results["chiaroscuro"]["epsilon_spent"] = chiaroscuro_result.epsilon_spent

    # A random clustering gives the scale of "no information" inertia.
    rng = np.random.default_rng(seed)
    random_centroids = rng.uniform(
        0.0, config.privacy.value_bound, size=reference["centroids"].shape
    )
    results["random"] = _report(random_centroids)
    return results


def heuristics_ablation(
    collection: TimeSeriesCollection,
    config: ChiaroscuroConfig,
    strategies: Sequence[str] = ("uniform", "geometric", "adaptive"),
    smoothing_methods: Sequence[str] = ("none", "moving_average", "lowpass"),
    label_key: str | None = "archetype",
) -> list[dict[str, Any]]:
    """Grid over budget strategies × smoothing heuristics (experiment E9)."""
    reference = centralized_reference(collection, config)
    rows: list[dict[str, Any]] = []
    for strategy in strategies:
        for smoothing in smoothing_methods:
            run_config = config.with_overrides(
                privacy={"budget_strategy": strategy},
                smoothing={"method": smoothing},
            )
            result = run_chiaroscuro(collection, run_config)
            report = evaluate_result(collection, run_config, result, reference, label_key)
            rows.append({
                "budget_strategy": strategy,
                "smoothing": smoothing,
                **report,
            })
    return rows
