"""Plain-text report formatting for experiments and benchmarks.

The demonstration's GUI renders interactive graphs; the library counterpart
is a set of small helpers producing aligned text tables and sparkline-style
series, so each benchmark can print the rows/series the corresponding GUI
screen displays.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..exceptions import AnalysisError


def format_value(value: Any, precision: int = 4) -> str:
    """Render a single cell: floats rounded, everything else via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Format a list of dictionaries as an aligned text table."""
    if not rows:
        raise AnalysisError("cannot format an empty table")
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [format_value(row.get(column, ""), precision=precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_series(
    values: Sequence[float],
    label: str = "",
    width: int = 50,
    precision: int = 4,
) -> str:
    """Render a numeric series as an ASCII bar chart (one line per point)."""
    if not values:
        raise AnalysisError("cannot format an empty series")
    maximum = max(abs(float(value)) for value in values)
    scale = (width / maximum) if maximum > 0 else 0.0
    lines = [label] if label else []
    for index, value in enumerate(values):
        bar = "#" * int(round(abs(float(value)) * scale))
        lines.append(f"{index:>4d} | {format_value(float(value), precision):>12s} | {bar}")
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Format a list of dictionaries as a GitHub-flavoured markdown table.

    The markdown sibling of :func:`format_table`, used by the experiment
    comparison reports (CI uploads them as readable artifacts).
    """
    if not rows:
        raise AnalysisError("cannot format an empty table")
    if columns is None:
        columns = list(rows[0].keys())

    def _cell(value: Any) -> str:
        return format_value(value, precision=precision).replace("|", "\\|")

    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(str(column) for column in columns) + " |")
    lines.append("|" + "|".join(" --- " for _ in columns) + "|")
    for row in rows:
        lines.append(
            "| " + " | ".join(_cell(row.get(column, "")) for column in columns) + " |"
        )
    return "\n".join(lines)


def format_comparison(
    reports: Mapping[str, Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Format a {method: metrics} mapping as a table with a ``method`` column."""
    rows = [{"method": method, **metrics} for method, metrics in reports.items()]
    if columns is not None:
        columns = ["method", *columns]
    return format_table(rows, columns=columns, precision=precision, title=title)
