"""Cost model: measured cryptographic costs and extrapolation to large scales.

The demonstration disables homomorphic operations for the live run but
displays "the performance overhead that would be due to homomorphic
operations and to a larger population size ... based on actual average
measures performed beforehand (e.g., of encryption/decryption/addition
times)" (Section III.B).  This module reproduces that methodology:

* :func:`measure_crypto_costs` times the real Damgård–Jurik operations for a
  given key size and degree;
* :class:`CostModel` combines the measured per-operation times with the
  protocol's operation counts to predict the per-participant compute time and
  bandwidth of a run at any population size — including the 10^6 participants
  Chiaroscuro targets but a laptop cannot simulate with real encryption.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from .._validation import check_positive_int
from ..crypto import damgard_jurik as dj
from ..crypto.fastmath import (
    FASTMATH_CHOICES,
    BlinderPool,
    PrecomputedKey,
    normalize_fastmath,
)
from ..crypto.threshold import (
    combine_partial_decryptions,
    generate_threshold_keypair,
    partial_decrypt,
)
from ..exceptions import AnalysisError

from ..crypto.wire import FRAME_FIXED_OVERHEAD_BYTES
from ..simulation.network import ByteAccounting

#: Approximate wire-format overheads used by the *modelled* wire-byte
#: figures (the measured figures come from actual frames).  A frame adds
#: the fixed envelope (magic + version + type + CRC32) plus a body-length
#: varint of up to 4 bytes for any frame below 256 MiB; each serialized
#: estimate adds its header (backend name, logical length, packing flag,
#: homomorphic weight bigint, ciphertext width, count, halvings exponent).
WIRE_FRAME_OVERHEAD_BYTES = FRAME_FIXED_OVERHEAD_BYTES + 4
WIRE_ESTIMATE_OVERHEAD_BYTES = 28


@dataclass(frozen=True)
class CryptoCostProfile:
    """Measured average time (seconds) of each cryptographic operation.

    ``pooled_encryption_seconds`` is the hot-path cost of an encryption
    served by the amortized blinder pool (one multiplication; the
    exponentiation happened in idle time) — 0.0 when the profile was
    measured with ``fastmath="off"``.  The :class:`CostModel` uses it to
    charge amortized and fresh exponentiations differently.
    """

    key_bits: int
    degree: int
    keygen_seconds: float
    encryption_seconds: float
    addition_seconds: float
    partial_decryption_seconds: float
    combination_seconds: float
    ciphertext_bytes: int
    fastmath: str = "off"
    pooled_encryption_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain dictionary view (for reports)."""
        return {
            "key_bits": float(self.key_bits),
            "degree": float(self.degree),
            "keygen_seconds": self.keygen_seconds,
            "encryption_seconds": self.encryption_seconds,
            "addition_seconds": self.addition_seconds,
            "partial_decryption_seconds": self.partial_decryption_seconds,
            "combination_seconds": self.combination_seconds,
            "ciphertext_bytes": float(self.ciphertext_bytes),
            "pooled_encryption_seconds": self.pooled_encryption_seconds,
        }

    @classmethod
    def from_bench_json(
        cls, payload: Mapping[str, Any], fastmath: str = "off"
    ) -> "CryptoCostProfile":
        """Build a profile from a committed ``BENCH_crypto.json`` payload.

        The benchmark file stores per-operation seconds in both arithmetic
        modes (``off_seconds`` / ``fastmath_seconds``); *fastmath* selects
        the column.  The homomorphic-halving figure stands in for the
        per-ciphertext gossip-averaging operation (the protocol's only
        homomorphic step), and the fastmath encryption figure doubles as the
        amortized pooled-encryption cost.  Key generation is not benchmarked
        there and is reported as 0 (it is a one-off setup cost, not a
        per-run operation the extrapolator charges).
        """
        fastmath = normalize_fastmath(fastmath)
        column = "off_seconds" if fastmath == "off" else "fastmath_seconds"
        try:
            operations = payload["operations"]
            key_bits = int(payload["key_bits"])
            degree = int(payload["degree"])
            encryption = float(operations["encrypt"][column])
            addition = float(operations["halve"][column])
            partial = float(operations["threshold_share"][column])
            combination = float(operations["combine"][column])
            pooled = float(operations["encrypt"]["fastmath_seconds"])
        except (KeyError, TypeError, ValueError) as exc:
            raise AnalysisError(
                f"malformed crypto benchmark payload: {exc!r}"
            ) from exc
        return cls(
            key_bits=key_bits,
            degree=degree,
            keygen_seconds=0.0,
            encryption_seconds=encryption,
            addition_seconds=addition,
            partial_decryption_seconds=partial,
            combination_seconds=combination,
            # A degree-s Damgård–Jurik ciphertext lives in Z_{n^{s+1}}.
            ciphertext_bytes=(key_bits // 8) * (degree + 1),
            fastmath=fastmath,
            pooled_encryption_seconds=pooled if fastmath != "off" else 0.0,
        )

    @property
    def _pooled_cost(self) -> float:
        """Hot-path cost of one pool-served operation (fresh cost sans pool)."""
        return (
            self.pooled_encryption_seconds
            if self.pooled_encryption_seconds > 0
            else self.encryption_seconds
        )

    def seconds_for_counts(self, counts: Mapping[str, float]) -> float:
        """*Online* (hot-path) seconds implied by an operation-count dictionary.

        *counts* uses the :class:`~repro.crypto.backends.OperationCounter`
        key vocabulary (``encryptions``, ``additions``,
        ``partial_decryptions``, ``combinations``, ``pooled_encryptions``,
        ``rerandomizations``); unknown keys are ignored.  Pooled encryptions
        — and rerandomizations, which draw a blinder from the same pool and
        are a single multiplication on the hot path — are charged the
        amortized pooled cost when the profile has one; the blinder
        exponentiations they consumed belong to the *offline* phase
        (:meth:`offline_seconds_for_counts`).
        """
        pooled_cost = self._pooled_cost
        return (
            float(counts.get("encryptions", 0)) * self.encryption_seconds
            + float(counts.get("pooled_encryptions", 0)) * pooled_cost
            + float(counts.get("rerandomizations", 0)) * pooled_cost
            + float(counts.get("additions", 0)) * self.addition_seconds
            + float(counts.get("partial_decryptions", 0)) * self.partial_decryption_seconds
            + float(counts.get("combinations", 0)) * self.combination_seconds
        )

    def offline_seconds_for_counts(self, counts: Mapping[str, float]) -> float:
        """*Offline* (input-independent precomputation) seconds for *counts*.

        Every pool-served operation — pooled encryptions and pool-backed
        rerandomizations — consumed one precomputed blinder, i.e. one full
        exponentiation executed off the hot path.  Without a pool
        (``pooled_encryption_seconds == 0``) nothing was precomputed and the
        offline phase is empty: the full exponentiations are already charged
        online by :meth:`seconds_for_counts`.
        """
        if self.pooled_encryption_seconds <= 0:
            return 0.0
        served = (
            float(counts.get("pooled_encryptions", 0))
            + float(counts.get("rerandomizations", 0))
        )
        return served * self.encryption_seconds

    def phase_seconds_for_counts(
        self, counts: Mapping[str, float]
    ) -> dict[str, float]:
        """Offline/online/total second split for *counts* (keys sum exactly)."""
        offline = self.offline_seconds_for_counts(counts)
        online = self.seconds_for_counts(counts)
        return {
            "offline_seconds": offline,
            "online_seconds": online,
            "total_seconds": offline + online,
        }


def load_reference_profile(fastmath: str = "off") -> CryptoCostProfile | None:
    """Load the committed crypto benchmark profile, when one is available.

    Looks for ``BENCH_crypto.json`` in the working directory and at the
    repository root; returns ``None`` (callers then omit the seconds
    metrics or fall back to pure operation counts) when neither exists or
    the payload is malformed.  *fastmath* selects the timing column, so the
    profile prices operations the way the run actually executed them.
    """
    candidates = [
        Path.cwd() / "BENCH_crypto.json",
        Path(__file__).resolve().parents[3] / "BENCH_crypto.json",
    ]
    for candidate in candidates:
        if not candidate.is_file():
            continue
        try:
            payload = json.loads(candidate.read_text(encoding="utf-8"))
            return CryptoCostProfile.from_bench_json(payload, fastmath=fastmath)
        except Exception:
            return None
    return None


def measure_crypto_costs(
    key_bits: int = 512,
    degree: int = 1,
    threshold: int = 3,
    n_shares: int = 5,
    repetitions: int = 5,
    fastmath: str = "off",
) -> CryptoCostProfile:
    """Time the Damgård–Jurik operations with a real key of the given size.

    The measurements are averages over *repetitions* operations; they are the
    per-operation constants the cost model extrapolates from (exactly the
    demo's own methodology).  With ``fastmath="auto"`` the profile uses only
    the accelerations a *real participant* could run — public per-key caches,
    the idle-time blinder pool (whose amortized hot-path cost is reported in
    ``pooled_encryption_seconds``) and multi-exponentiation share
    combination.  The private CRT context is deliberately NOT used here:
    share holders only know the public modulus, so charging them CRT-speed
    partial decryptions would understate the per-device cost the model
    exists to predict (the simulation backend may use CRT internally, but
    that is a wall-clock shortcut, not a device-cost claim).
    """
    check_positive_int(repetitions, "repetitions")
    fastmath = normalize_fastmath(fastmath)
    start = time.perf_counter()
    public, shares, _private = generate_threshold_keypair(
        key_bits=key_bits, s=degree, threshold=threshold, n_shares=n_shares
    )
    keygen_seconds = time.perf_counter() - start
    use_fastmath = fastmath != "off"
    precomputed = (
        PrecomputedKey.from_public_key(public.public_key) if use_fastmath else None
    )
    plaintext_modulus = public.public_key.plaintext_modulus
    rng = np.random.default_rng(0)
    plaintexts = [int(rng.integers(0, min(plaintext_modulus, 2**62))) for _ in range(repetitions)]

    start = time.perf_counter()
    ciphertexts = [
        dj.encrypt(public.public_key, value, precomputed=precomputed) for value in plaintexts
    ]
    encryption_seconds = (time.perf_counter() - start) / repetitions

    pooled_encryption_seconds = 0.0
    if use_fastmath:
        pool = BlinderPool(precomputed, batch_size=repetitions)
        pool.refill(repetitions)  # amortized: filled outside the hot path
        start = time.perf_counter()
        for value in plaintexts:
            dj.encrypt(public.public_key, value, precomputed=precomputed, pool=pool)
        pooled_encryption_seconds = (time.perf_counter() - start) / repetitions

    start = time.perf_counter()
    for first, second in zip(ciphertexts, ciphertexts[1:] + ciphertexts[:1]):
        dj.add_ciphertexts(public.public_key, first, second)
    addition_seconds = (time.perf_counter() - start) / repetitions

    start = time.perf_counter()
    partials = [
        partial_decrypt(public, shares[0], ciphertext, precomputed=precomputed)
        for ciphertext in ciphertexts
    ]
    partial_decryption_seconds = (time.perf_counter() - start) / repetitions

    all_partials = [
        [
            partial_decrypt(public, share, ciphertext, precomputed=precomputed)
            for share in shares[:threshold]
        ]
        for ciphertext in ciphertexts
    ]
    start = time.perf_counter()
    for partial_set in all_partials:
        combine_partial_decryptions(public, partial_set, multiexp=use_fastmath)
    combination_seconds = (time.perf_counter() - start) / repetitions
    del partials

    return CryptoCostProfile(
        key_bits=key_bits,
        degree=degree,
        keygen_seconds=keygen_seconds,
        encryption_seconds=encryption_seconds,
        addition_seconds=addition_seconds,
        partial_decryption_seconds=partial_decryption_seconds,
        combination_seconds=combination_seconds,
        ciphertext_bytes=public.public_key.ciphertext_bits // 8,
        fastmath=fastmath,
        pooled_encryption_seconds=pooled_encryption_seconds,
    )


def sweep_crypto_costs(
    key_bits: int = 512,
    degree: int = 1,
    threshold: int = 3,
    n_shares: int = 5,
    repetitions: int = 5,
    modes: tuple[str, ...] = FASTMATH_CHOICES,
) -> dict[str, CryptoCostProfile]:
    """Measure the per-operation costs once per fastmath mode.

    The demo's cost screens show these side by side: the ``"off"`` column is
    the seed arithmetic every device can run, the ``"auto"`` column is what
    a device gains from the public fastmath accelerations (per-key caches,
    idle-time blinder pools, multi-exponentiation) — same integers, less
    time.  Each mode generates its own key, so the rows are independent
    measurements, not a shared-key best case.
    """
    profiles: dict[str, CryptoCostProfile] = {}
    for mode in modes:
        mode = normalize_fastmath(mode)
        profiles[mode] = measure_crypto_costs(
            key_bits=key_bits, degree=degree, threshold=threshold,
            n_shares=n_shares, repetitions=repetitions, fastmath=mode,
        )
    return profiles


@dataclass(frozen=True)
class ProtocolWorkload:
    """Per-participant operation counts of one protocol run.

    The counts follow directly from the protocol structure (Section II.B):
    per iteration a participant encrypts its contribution (2k(T+1)
    ciphertexts: data and noise estimates), performs one homomorphic
    addition per estimate component per gossip exchange, asks the committee
    for threshold partial decryptions of k(T+1) components and combines them.

    With slot packing enabled (``slots > 1``), every per-cluster estimate
    travels as ``ceil((T+1) / slots)`` ciphertexts instead of ``T+1``, and
    every per-ciphertext charge — encryptions, homomorphic additions,
    partial decryptions, combinations, bytes — shrinks accordingly.

    ``amortized_encryptions`` marks a deployment that precomputes its
    encryption blinders in idle time (the fastmath pool): the cost model
    then charges the pooled hot-path cost per encryption instead of the
    fresh-exponentiation cost.
    """

    n_clusters: int
    series_length: int
    iterations: int
    gossip_cycles: int
    exchanges_per_cycle: int
    threshold: int
    slots: int = 1
    amortized_encryptions: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.n_clusters, "n_clusters")
        check_positive_int(self.series_length, "series_length")
        check_positive_int(self.iterations, "iterations")
        check_positive_int(self.gossip_cycles, "gossip_cycles")
        check_positive_int(self.exchanges_per_cycle, "exchanges_per_cycle")
        check_positive_int(self.threshold, "threshold")
        check_positive_int(self.slots, "slots")

    @property
    def components_per_estimate(self) -> int:
        """Logical components of one per-cluster estimate (series + count)."""
        return self.series_length + 1

    @property
    def ciphertexts_per_estimate(self) -> int:
        """Ciphertexts actually carried per estimate (packed when slots > 1)."""
        return -(-self.components_per_estimate // self.slots)

    @property
    def encryptions_per_iteration(self) -> int:
        """Fresh encryptions per participant per iteration (data + noise sides)."""
        return 2 * self.n_clusters * self.ciphertexts_per_estimate

    @property
    def additions_per_iteration(self) -> int:
        """Homomorphic additions per participant per iteration.

        Each gossip exchange averages both sides of the diptych (2k estimates
        of T+1 components, with an extra scalar multiplication counted as one
        addition-equivalent), plus the final noise addition.
        """
        per_exchange = 3 * self.n_clusters * self.ciphertexts_per_estimate
        exchanges = 2 * self.gossip_cycles * self.exchanges_per_cycle
        return per_exchange * exchanges + self.n_clusters * self.ciphertexts_per_estimate

    @property
    def partial_decryptions_per_iteration(self) -> int:
        """Partial decryptions computed *for* one participant per iteration."""
        return self.threshold * self.n_clusters * self.ciphertexts_per_estimate

    @property
    def combinations_per_iteration(self) -> int:
        """Share combinations per participant per iteration."""
        return self.n_clusters * self.ciphertexts_per_estimate

    @property
    def messages_per_iteration(self) -> int:
        """Messages sent per participant per iteration (gossip + decryption)."""
        gossip = 2 * self.gossip_cycles * self.exchanges_per_cycle
        decryption = 2 * self.threshold
        return gossip + decryption

    # ------------------------------------------------------------ byte accounting
    def modelled_bytes_per_iteration(self, ciphertext_bytes: int) -> int:
        """Bytes per participant per iteration under the historical size model.

        One gossip message carries both sides of the diptych (2k estimates),
        one decryption message carries the k combined estimates; every
        estimate is charged its raw ciphertext payload.
        """
        payload = ciphertext_bytes * self.n_clusters * self.ciphertexts_per_estimate
        gossip = 2 * payload * 2 * self.gossip_cycles * self.exchanges_per_cycle
        decryption = 2 * payload * self.threshold
        return gossip + decryption

    def wire_bytes_per_iteration(self, ciphertext_bytes: int) -> int:
        """Modelled bytes per iteration *including* wire-format overhead.

        Adds the frame envelope per message and the serialization header per
        estimate on top of :meth:`modelled_bytes_per_iteration`; this is the
        model-side prediction of what a wire-format run measures (runs
        report the exact figure in
        :attr:`~repro.core.result.CostSummary.bytes_sent`).
        """
        gossip_messages = 2 * self.gossip_cycles * self.exchanges_per_cycle
        decrypt_messages = 2 * self.threshold
        overhead = (
            (gossip_messages + decrypt_messages) * WIRE_FRAME_OVERHEAD_BYTES
            + gossip_messages * 2 * self.n_clusters * WIRE_ESTIMATE_OVERHEAD_BYTES
            + decrypt_messages * self.n_clusters * WIRE_ESTIMATE_OVERHEAD_BYTES
        )
        return self.modelled_bytes_per_iteration(ciphertext_bytes) + overhead

    def byte_accounting(self, ciphertext_bytes: int) -> "ByteAccounting":
        """Modelled-vs-wire byte totals for a whole run of this workload."""
        return ByteAccounting(
            bytes_modelled=float(
                self.iterations * self.modelled_bytes_per_iteration(ciphertext_bytes)
            ),
            bytes_measured=float(
                self.iterations * self.wire_bytes_per_iteration(ciphertext_bytes)
            ),
        )


@dataclass(frozen=True)
class CostEstimate:
    """Predicted per-participant cost of a run (compute seconds and bytes)."""

    encryption_seconds: float
    addition_seconds: float
    decryption_seconds: float
    total_compute_seconds: float
    bytes_sent: float
    messages_sent: float

    def as_dict(self) -> dict[str, float]:
        """Plain dictionary view (for reports)."""
        return {
            "encryption_seconds": self.encryption_seconds,
            "addition_seconds": self.addition_seconds,
            "decryption_seconds": self.decryption_seconds,
            "total_compute_seconds": self.total_compute_seconds,
            "bytes_sent": self.bytes_sent,
            "messages_sent": self.messages_sent,
        }


class CostModel:
    """Combine a measured cost profile with a protocol workload."""

    def __init__(self, profile: CryptoCostProfile) -> None:
        self.profile = profile

    def estimate(self, workload: ProtocolWorkload) -> CostEstimate:
        """Per-participant cost prediction for a whole run.

        The prediction is independent of the population size: that is the
        point of the gossip design — per-participant work depends on k, T,
        the number of gossip exchanges and the decryption threshold, not on
        how many devices participate overall.
        """
        iterations = workload.iterations
        encryption_seconds = self.profile.encryption_seconds
        if workload.amortized_encryptions and self.profile.pooled_encryption_seconds > 0:
            encryption_seconds = self.profile.pooled_encryption_seconds
        encryption = (
            workload.encryptions_per_iteration * iterations * encryption_seconds
        )
        addition = (
            workload.additions_per_iteration * iterations * self.profile.addition_seconds
        )
        decryption = iterations * (
            workload.partial_decryptions_per_iteration
            * self.profile.partial_decryption_seconds
            + workload.combinations_per_iteration * self.profile.combination_seconds
        )
        bytes_sent = iterations * workload.modelled_bytes_per_iteration(
            self.profile.ciphertext_bytes
        )
        messages = iterations * workload.messages_per_iteration
        return CostEstimate(
            encryption_seconds=encryption,
            addition_seconds=addition,
            decryption_seconds=decryption,
            total_compute_seconds=encryption + addition + decryption,
            bytes_sent=float(bytes_sent),
            messages_sent=float(messages),
        )

    def sweep_population(
        self, workload: ProtocolWorkload, populations: list[int]
    ) -> list[dict[str, float]]:
        """Cost rows for a list of population sizes.

        Per-participant costs are constant; the rows add the *aggregate*
        network volume, which is what grows linearly with the population and
        what the demo's cost screen contrasts with the per-device figures.
        """
        if not populations:
            raise AnalysisError("populations must not be empty")
        estimate = self.estimate(workload)
        rows = []
        for population in populations:
            check_positive_int(population, "population")
            row = {"n_participants": float(population)}
            row.update(estimate.as_dict())
            row["aggregate_bytes"] = estimate.bytes_sent * population
            row["aggregate_messages"] = estimate.messages_sent * population
            rows.append(row)
        return rows


# --------------------------------------------------------------------- sampling
@dataclass(frozen=True)
class ExtrapolatedCost:
    """Population-total crypto cost extrapolated from a measured node sample.

    ``totals`` maps each metric (``encryptions``, ``crypto_seconds``,
    ``bytes_sent``, ...) to its ``(estimate, low, high)`` population total:
    the bootstrap point estimate and the percentile confidence interval at
    level ``confidence``.  ``method`` records how the numbers were obtained:

    ``"measured"``
        every node ran the real pipeline (sample = population); the interval
        is degenerate (low = estimate = high).
    ``"sampled"``
        a node subset ran the real pipeline; totals are ``population x`` the
        bootstrap-resampled per-node mean.
    ``"modelled"``
        nothing was measured; totals come from the symbolic
        :class:`CostModel` / :class:`ProtocolWorkload` prediction.
    """

    population: int
    sample_size: int
    method: str
    confidence: float = 0.95
    totals: Mapping[str, tuple[float, float, float]] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Plain nested dictionary view (for stored rows and reports)."""
        return {
            "population": int(self.population),
            "sample_size": int(self.sample_size),
            "method": self.method,
            "confidence": float(self.confidence),
            "totals": {
                key: {
                    "estimate": float(estimate),
                    "low": float(low),
                    "high": float(high),
                }
                for key, (estimate, low, high) in self.totals.items()
            },
        }


def bootstrap_extrapolate(
    per_node: Mapping[str, Sequence[float]],
    population: int,
    n_boot: int = 200,
    confidence: float = 0.95,
    seed: int = 0,
) -> ExtrapolatedCost:
    """Extrapolate per-node sample measurements to population totals.

    *per_node* maps each metric to the per-node totals measured on the
    crypto sample (all metrics over the same node sample, so the arrays
    share a length).  The point estimate of a metric is
    ``population * mean(values)``; its interval comes from *n_boot*
    bootstrap resamples of the node sample (percentile method, seeded and
    deterministic).  When the sample covers the whole population the totals
    are exact sums and the intervals collapse.
    """
    check_positive_int(population, "population")
    check_positive_int(n_boot, "n_boot")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    if not per_node:
        raise AnalysisError("bootstrap_extrapolate needs at least one metric")
    arrays = {
        key: np.asarray(values, dtype=np.float64) for key, values in per_node.items()
    }
    sizes = {array.shape[0] for array in arrays.values()}
    if len(sizes) != 1 or 0 in sizes:
        raise AnalysisError(
            "per-node metric arrays must be non-empty and share one length; "
            f"got lengths {sorted(array.shape[0] for array in arrays.values())}"
        )
    sample_size = sizes.pop()
    totals: dict[str, tuple[float, float, float]] = {}
    if sample_size >= population:
        for key, array in arrays.items():
            exact = float(array.sum())
            totals[key] = (exact, exact, exact)
        return ExtrapolatedCost(
            population=population,
            sample_size=sample_size,
            method="measured",
            confidence=confidence,
            totals=totals,
        )
    rng = np.random.default_rng(seed)
    # One resample-index matrix shared by every metric: resamples pick whole
    # nodes, preserving the cross-metric correlation of each node's costs.
    indices = rng.integers(0, sample_size, size=(n_boot, sample_size))
    tail = (1.0 - confidence) / 2.0
    for key, array in arrays.items():
        estimate = float(array.mean()) * population
        replicate_means = array[indices].mean(axis=1)
        low = float(np.quantile(replicate_means, tail)) * population
        high = float(np.quantile(replicate_means, 1.0 - tail)) * population
        totals[key] = (estimate, low, high)
    return ExtrapolatedCost(
        population=population,
        sample_size=sample_size,
        method="sampled",
        confidence=confidence,
        totals=totals,
    )
