"""Use of the clustering result by an individual (the "Bob" scenario).

The last screen of the demonstration GUI lets the audience select a
sub-sequence of Bob's own time-series and find "the centroids the closest to
the sub-sequence chosen" (Fig. 3, panel 6).  This module implements that
interaction: aligning a query sub-sequence against every offset of every
profile and ranking the profiles by their best alignment distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_float_array, as_2d_float_array, check_positive_int
from ..exceptions import AnalysisError
from ..timeseries.distance import dtw_distance
from ..timeseries.preprocessing import sliding_windows


@dataclass(frozen=True)
class ProfileMatch:
    """One profile's best alignment against a query sub-sequence."""

    profile_index: int
    distance: float
    offset: int

    def as_dict(self) -> dict[str, float]:
        """Plain dictionary view."""
        return {
            "profile_index": float(self.profile_index),
            "distance": self.distance,
            "offset": float(self.offset),
        }


def match_subsequence(
    profiles: np.ndarray,
    query: np.ndarray,
    metric: str = "euclidean",
    normalize_query: bool = False,
) -> list[ProfileMatch]:
    """Rank every profile by its best alignment with *query*.

    Parameters
    ----------
    profiles:
        ``(k, series_length)`` matrix of final profiles.
    query:
        The sub-sequence selected by the individual (length <= series_length).
    metric:
        ``"euclidean"`` slides the query over every offset of each profile;
        ``"dtw"`` uses dynamic time warping against the whole profile
        (offset reported as 0).
    normalize_query:
        Min-max normalise the query and each compared window first, which
        matches shapes rather than absolute levels.
    """
    profiles = as_2d_float_array(profiles, "profiles")
    query = as_1d_float_array(query, "query")
    if len(query) > profiles.shape[1]:
        raise AnalysisError(
            f"query length {len(query)} exceeds profile length {profiles.shape[1]}"
        )

    def _normalise(values: np.ndarray) -> np.ndarray:
        if not normalize_query:
            return values
        span = values.max() - values.min()
        if span == 0:
            return np.zeros_like(values)
        return (values - values.min()) / span

    prepared_query = _normalise(query)
    matches: list[ProfileMatch] = []
    for index, profile in enumerate(profiles):
        if metric == "dtw":
            distance = dtw_distance(prepared_query, _normalise(profile))
            matches.append(ProfileMatch(profile_index=index, distance=distance, offset=0))
            continue
        if metric != "euclidean":
            raise AnalysisError(f"unsupported profile-search metric {metric!r}")
        windows = sliding_windows(profile, width=len(query))
        best_distance = np.inf
        best_offset = 0
        for offset, window in enumerate(windows):
            distance = float(np.linalg.norm(_normalise(window) - prepared_query))
            if distance < best_distance:
                best_distance = distance
                best_offset = offset
        matches.append(
            ProfileMatch(profile_index=index, distance=best_distance, offset=best_offset)
        )
    matches.sort(key=lambda match: match.distance)
    return matches


def closest_profiles(
    profiles: np.ndarray,
    query: np.ndarray,
    top: int = 3,
    metric: str = "euclidean",
    normalize_query: bool = False,
) -> list[ProfileMatch]:
    """The *top* closest profiles to a query sub-sequence."""
    check_positive_int(top, "top")
    matches = match_subsequence(profiles, query, metric=metric, normalize_query=normalize_query)
    return matches[:top]


def profile_recall(
    profiles: np.ndarray,
    reference_profiles: np.ndarray,
    queries: np.ndarray,
    top: int = 1,
) -> float:
    """Fraction of queries whose best profile matches the reference answer.

    For every query sub-sequence, the profile ranked first using the
    *perturbed* profiles is compared to the one ranked first using the
    *reference* (noise-free) profiles; the recall measures how often the
    individual would have been pointed at the same profile despite the
    privacy noise.  Used by the profile-search experiment (E8).
    """
    profiles = as_2d_float_array(profiles, "profiles")
    reference_profiles = as_2d_float_array(reference_profiles, "reference_profiles")
    queries = as_2d_float_array(queries, "queries")
    if profiles.shape != reference_profiles.shape:
        raise AnalysisError("profiles and reference_profiles must have the same shape")
    check_positive_int(top, "top")
    hits = 0
    for query in queries:
        perturbed_best = {
            match.profile_index for match in closest_profiles(profiles, query, top=top)
        }
        reference_best = closest_profiles(reference_profiles, query, top=1)[0].profile_index
        if reference_best in perturbed_best:
            hits += 1
    return hits / len(queries)
