"""Analysis layer: quality comparisons, cost model, profile search, reporting."""

from .costs import (
    ByteAccounting,
    CostEstimate,
    CostModel,
    CryptoCostProfile,
    ProtocolWorkload,
    measure_crypto_costs,
    sweep_crypto_costs,
)
from .envelope import align_profiles, nondeterminism_envelope
from .profiles import ProfileMatch, closest_profiles, match_subsequence, profile_recall
from .quality import (
    centralized_reference,
    compare_with_baselines,
    evaluate_result,
    heuristics_ablation,
    privacy_quality_tradeoff,
)
from .reporting import format_comparison, format_series, format_table, format_value

__all__ = [
    "ByteAccounting",
    "CryptoCostProfile",
    "CostModel",
    "CostEstimate",
    "ProtocolWorkload",
    "measure_crypto_costs",
    "sweep_crypto_costs",
    "align_profiles",
    "nondeterminism_envelope",
    "ProfileMatch",
    "match_subsequence",
    "closest_profiles",
    "profile_recall",
    "centralized_reference",
    "evaluate_result",
    "privacy_quality_tradeoff",
    "compare_with_baselines",
    "heuristics_ablation",
    "format_table",
    "format_series",
    "format_comparison",
    "format_value",
]
