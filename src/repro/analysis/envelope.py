"""Nondeterminism envelope of concurrent live runs.

A concurrent live run (``runtime.stepping="concurrent"``) lets every worker
drive its shard's participants with many gossip exchanges in flight at once.
The interleaving of those exchanges is scheduler- and network-timing
dependent, so the run is *not* bit-identical to the deterministic cycle-mode
replay the sequential live runner performs.  The divergence is bounded by
the protocol itself — gossip averaging tolerates message loss and
reordering — but it must be *measured*, not assumed.

This module computes that measurement: given the concurrent live result and
a deterministic reference run of the same configuration, it reports

``profile_distance``
    L2 distance between the consensus profile matrices (clusters aligned by
    a greedy nearest match, since concurrent interleaving may permute
    cluster indices).
``profile_distance_relative``
    The same distance normalised by the reference profile norm.
``assignment_churn``
    Fraction of participants whose final cluster assignment differs from
    the reference (under the same cluster alignment).
``byte_spread``
    Relative difference in total bytes sent versus the reference —
    concurrent runs may take a different number of gossip cycles to
    converge, so traffic varies.

The dictionary is attached to :class:`~repro.core.result.CostSummary` as
its ``envelope`` field and flows into experiment store rows and reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.result import ChiaroscuroResult

__all__ = ["align_profiles", "nondeterminism_envelope"]


def align_profiles(profiles: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Map each reference cluster index to its nearest ``profiles`` row.

    Concurrent interleaving can permute cluster labels between two runs of
    the same configuration, so envelope metrics compare clusters after a
    greedy nearest-neighbour alignment: reference clusters are matched in
    order of ascending best-match distance, each claiming one distinct row
    of ``profiles``.  Returns an integer array ``perm`` of length ``k``
    with ``profiles[perm[j]]`` the match of ``reference[j]``.
    """
    k = reference.shape[0]
    if profiles.shape != reference.shape:
        raise ValueError(
            f"profile shapes differ: {profiles.shape} vs {reference.shape}"
        )
    distances = np.linalg.norm(
        reference[:, None, :] - profiles[None, :, :], axis=2
    )
    perm = np.full(k, -1, dtype=np.int64)
    taken = np.zeros(k, dtype=bool)
    # Greedy: repeatedly take the globally closest (reference, candidate)
    # pair among unmatched rows.  k is small (number of clusters), so the
    # O(k^3) loop is irrelevant.
    working = distances.copy()
    for _ in range(k):
        j, i = np.unravel_index(np.argmin(working), working.shape)
        perm[j] = i
        working[j, :] = np.inf
        working[:, i] = np.inf
        taken[i] = True
    return perm


def nondeterminism_envelope(
    result: "ChiaroscuroResult", reference: "ChiaroscuroResult"
) -> dict[str, Any]:
    """Quantify how far a concurrent run drifted from its reference.

    ``result`` is the concurrent live run, ``reference`` the deterministic
    run (cycle mode, or equivalently a sequential live run) of the same
    collection and configuration.  Returns a plain dictionary suitable for
    ``CostSummary.envelope``; see the module docstring for field meanings.
    """
    perm = align_profiles(result.profiles, reference.profiles)
    aligned = result.profiles[perm]
    profile_distance = float(np.linalg.norm(aligned - reference.profiles))
    reference_norm = float(np.linalg.norm(reference.profiles))
    relative = profile_distance / reference_norm if reference_norm > 0 else 0.0

    # Relabel the concurrent assignments into the reference's cluster
    # indexing before comparing: inverse[i] is the reference label of the
    # concurrent run's cluster i.
    k = reference.profiles.shape[0]
    inverse = np.empty(k, dtype=np.int64)
    inverse[perm] = np.arange(k)
    relabelled = inverse[np.asarray(result.assignments, dtype=np.int64)]
    churn = float(
        np.mean(relabelled != np.asarray(reference.assignments, dtype=np.int64))
    )

    live_bytes = int(result.costs.bytes_sent)
    reference_bytes = int(reference.costs.bytes_sent)
    spread = (
        abs(live_bytes - reference_bytes) / reference_bytes
        if reference_bytes > 0
        else 0.0
    )

    return {
        "profile_distance": profile_distance,
        "profile_distance_relative": relative,
        "assignment_churn": churn,
        "byte_spread": spread,
        "bytes_sent": float(live_bytes),
        "reference_bytes_sent": float(reference_bytes),
        "iterations": float(result.n_iterations),
        "reference_iterations": float(reference.n_iterations),
    }
