"""Nondeterminism envelope of concurrent live runs.

A concurrent live run (``runtime.stepping="concurrent"``) lets every worker
drive its shard's participants with many gossip exchanges in flight at once.
The interleaving of those exchanges is scheduler- and network-timing
dependent, so the run is *not* bit-identical to the deterministic cycle-mode
replay the sequential live runner performs.  The divergence is bounded by
the protocol itself — gossip averaging tolerates message loss and
reordering — but it must be *measured*, not assumed.

This module computes that measurement: given the concurrent live result and
a deterministic reference run of the same configuration, it reports

``profile_distance``
    L2 distance between the consensus profile matrices (clusters aligned by
    a greedy nearest match, since concurrent interleaving may permute
    cluster indices).
``profile_distance_relative``
    The same distance normalised by the reference profile norm.
``assignment_churn``
    Fraction of participants whose final cluster assignment differs from
    the reference (under the same cluster alignment).
``byte_spread``
    Relative difference in total bytes sent versus the reference —
    concurrent runs may take a different number of gossip cycles to
    converge, so traffic varies.

The dictionary is attached to :class:`~repro.core.result.CostSummary` as
its ``envelope`` field and flows into experiment store rows and reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.result import ChiaroscuroResult

__all__ = ["align_profiles", "nondeterminism_envelope"]


def align_profiles(profiles: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Map each reference cluster index to its nearest ``profiles`` row.

    Concurrent interleaving can permute cluster labels between two runs of
    the same configuration, so envelope metrics compare clusters after a
    greedy nearest-neighbour alignment: reference clusters are matched in
    order of ascending best-match distance, each claiming one distinct row
    of ``profiles``.  Returns an integer array ``perm`` of length ``k``
    with ``profiles[perm[j]]`` the match of ``reference[j]``.

    A cluster that ended a run empty can carry a NaN profile row; NaN
    distances would make ``argmin`` pick arbitrary matches and silently
    corrupt the downstream churn metric, so only real (NaN-free) rows
    compete in the greedy matching.  NaN rows — and any real rows starved
    by them — then pair up in index order, keeping the result a full
    permutation.
    """
    k = reference.shape[0]
    if profiles.shape != reference.shape:
        raise ValueError(
            f"profile shapes differ: {profiles.shape} vs {reference.shape}"
        )
    reference_real = ~np.isnan(reference).any(axis=1)
    candidate_real = ~np.isnan(profiles).any(axis=1)
    distances = np.linalg.norm(
        reference[:, None, :] - profiles[None, :, :], axis=2
    )
    # Pairs touching a NaN row never compete for a greedy match.
    working = np.where(
        reference_real[:, None] & candidate_real[None, :], distances, np.inf
    )
    perm = np.full(k, -1, dtype=np.int64)
    # Greedy: repeatedly take the globally closest (reference, candidate)
    # pair among unmatched real rows.  k is small (number of clusters), so
    # the O(k^3) loop is irrelevant.
    for _ in range(int(min(reference_real.sum(), candidate_real.sum()))):
        j, i = np.unravel_index(np.argmin(working), working.shape)
        if not np.isfinite(working[j, i]):
            break
        perm[j] = i
        working[j, :] = np.inf
        working[:, i] = np.inf
    unmatched = np.nonzero(perm < 0)[0]
    if unmatched.shape[0]:
        unclaimed = np.setdiff1d(np.arange(k), perm[perm >= 0])
        perm[unmatched] = unclaimed
    return perm


def nondeterminism_envelope(
    result: "ChiaroscuroResult", reference: "ChiaroscuroResult"
) -> dict[str, Any]:
    """Quantify how far a concurrent run drifted from its reference.

    ``result`` is the concurrent live run, ``reference`` the deterministic
    run (cycle mode, or equivalently a sequential live run) of the same
    collection and configuration.  Returns a plain dictionary suitable for
    ``CostSummary.envelope``; see the module docstring for field meanings.
    """
    perm = align_profiles(result.profiles, reference.profiles)
    aligned = result.profiles[perm]
    profile_distance = float(np.linalg.norm(aligned - reference.profiles))
    reference_norm = float(np.linalg.norm(reference.profiles))
    relative = profile_distance / reference_norm if reference_norm > 0 else 0.0

    # Relabel the concurrent assignments into the reference's cluster
    # indexing before comparing: inverse[i] is the reference label of the
    # concurrent run's cluster i.
    k = reference.profiles.shape[0]
    inverse = np.empty(k, dtype=np.int64)
    inverse[perm] = np.arange(k)
    relabelled = inverse[np.asarray(result.assignments, dtype=np.int64)]
    churn = float(
        np.mean(relabelled != np.asarray(reference.assignments, dtype=np.int64))
    )

    live_bytes = int(result.costs.bytes_sent)
    reference_bytes = int(reference.costs.bytes_sent)
    spread = (
        abs(live_bytes - reference_bytes) / reference_bytes
        if reference_bytes > 0
        else 0.0
    )

    return {
        "profile_distance": profile_distance,
        "profile_distance_relative": relative,
        "assignment_churn": churn,
        "byte_spread": spread,
        "bytes_sent": float(live_bytes),
        "reference_bytes_sent": float(reference_bytes),
        "iterations": float(result.n_iterations),
        "reference_iterations": float(reference.n_iterations),
    }
