"""Chiaroscuro reproduction: privacy-preserving clustering of massively
distributed personal time-series.

This package reproduces the system demonstrated in "A New Privacy-Preserving
Solution for Clustering Massively Distributed Personal Time-Series"
(Allard, Hébrail, Masseglia, Pacitti — ICDE 2016), including every substrate
it relies on: a cycle-driven P2P simulator, the Damgård–Jurik threshold
additively-homomorphic cryptosystem, gossip aggregation (cleartext and
encrypted), the differential-privacy layer (Laplace noise built from
per-participant noise-shares, budget strategies, probabilistic accounting),
the k-means substrate with quality-enhancing heuristics, the two use-case
dataset generators, and the analysis/cost layer behind the demonstration's
quality and cost screens.

Quickstart
----------
>>> from repro import generate_cer_like, run_chiaroscuro, ChiaroscuroConfig
>>> homes = generate_cer_like(n_households=80, n_days=1, seed=1)
>>> config = ChiaroscuroConfig().with_overrides(
...     kmeans={"n_clusters": 3, "max_iterations": 5},
...     privacy={"epsilon": 2.0},
... )
>>> result = run_chiaroscuro(homes, config)
>>> result.profiles.shape
(3, 48)
"""

from .config import (
    BUDGET_STRATEGIES,
    CRYPTO_BACKENDS,
    DEFAULT_CONFIG,
    OVERLAY_TOPOLOGIES,
    SMOOTHING_METHODS,
    ChiaroscuroConfig,
    CryptoConfig,
    GossipConfig,
    KMeansConfig,
    PrivacyConfig,
    SimulationConfig,
    SmoothingConfig,
)
from .core import (
    ChiaroscuroParticipant,
    ChiaroscuroResult,
    CostSummary,
    ExecutionLog,
    IterationRecord,
    denormalize_profiles,
    run_chiaroscuro,
)
from .datasets import (
    generate_cer_like,
    generate_gaussian_clusters,
    generate_numed_like,
    load_dataset,
    load_dataset_for_population,
)
from .exceptions import ReproError
from .timeseries import TimeSeries, TimeSeriesCollection

#: Experiment-subsystem names re-exported lazily (PEP 562): the sweep runner
#: pulls in multiprocessing machinery that one-shot `import repro` users and
#: CLI commands should not pay for.
_EXPERIMENT_EXPORTS = (
    "ExperimentSpec", "ResultStore", "run_experiment", "format_report",
)


def __getattr__(name: str):
    if name in _EXPERIMENT_EXPORTS:
        from . import experiments

        value = getattr(experiments, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ChiaroscuroConfig",
    "KMeansConfig",
    "PrivacyConfig",
    "CryptoConfig",
    "GossipConfig",
    "SimulationConfig",
    "SmoothingConfig",
    "DEFAULT_CONFIG",
    "BUDGET_STRATEGIES",
    "SMOOTHING_METHODS",
    "CRYPTO_BACKENDS",
    "OVERLAY_TOPOLOGIES",
    "run_chiaroscuro",
    "ChiaroscuroResult",
    "ChiaroscuroParticipant",
    "CostSummary",
    "ExecutionLog",
    "IterationRecord",
    "denormalize_profiles",
    "TimeSeries",
    "TimeSeriesCollection",
    "generate_cer_like",
    "generate_numed_like",
    "generate_gaussian_clusters",
    "load_dataset",
    "load_dataset_for_population",
    "ExperimentSpec",
    "ResultStore",
    "run_experiment",
    "format_report",
    "ReproError",
]
