"""Overlay topologies and peer sampling for the gossip layer.

Gossip protocols need each participant to contact (almost) uniformly random
peers.  In deployments this is provided by a peer-sampling service; in the
simulation we materialise an overlay graph.  The complete graph gives exact
uniform sampling (the default, matching the analysis of Kempe et al.); the
other topologies let experiments study the impact of restricted connectivity.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .._validation import check_in_choices, check_positive_int, check_probability
from ..exceptions import GossipError


class Overlay:
    """A static overlay graph with neighbour sampling.

    Parameters
    ----------
    graph:
        Undirected networkx graph whose nodes are exactly 0 .. n-1.
    name:
        Topology name (for logs and reports).
    """

    def __init__(self, graph: nx.Graph, name: str = "custom") -> None:
        n = graph.number_of_nodes()
        if n == 0:
            raise GossipError("an overlay needs at least one node")
        if sorted(graph.nodes) != list(range(n)):
            raise GossipError("overlay nodes must be exactly 0 .. n-1")
        self.graph = graph
        self.name = name
        self._neighbors: list[np.ndarray] = [
            np.array(sorted(graph.neighbors(node)), dtype=int) for node in range(n)
        ]

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the overlay."""
        return self.graph.number_of_nodes()

    def neighbors(self, node_id: int) -> np.ndarray:
        """Neighbour ids of *node_id* (sorted, possibly empty)."""
        self._check_node(node_id)
        return self._neighbors[node_id]

    def degree(self, node_id: int) -> int:
        """Number of neighbours of *node_id*."""
        return len(self.neighbors(node_id))

    def sample_neighbor(
        self, node_id: int, rng: np.random.Generator, online: set[int] | None = None
    ) -> int | None:
        """Uniformly random (online) neighbour of *node_id*, or None.

        When *online* is given, only neighbours present in that set are
        eligible (offline peers cannot answer a gossip exchange).
        """
        self._check_node(node_id)
        candidates = self._neighbors[node_id]
        if online is not None:
            candidates = np.array([peer for peer in candidates if peer in online], dtype=int)
        if candidates.size == 0:
            return None
        return int(candidates[int(rng.integers(0, candidates.size))])

    def is_connected(self) -> bool:
        """Whether the overlay is a connected graph (required for convergence)."""
        if self.n_nodes == 1:
            return True
        return nx.is_connected(self.graph)

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < self.n_nodes:
            raise GossipError(f"node id {node_id} outside [0, {self.n_nodes})")


def build_overlay(
    n_nodes: int,
    topology: str = "complete",
    degree: int = 8,
    rewiring_probability: float = 0.1,
    seed: int = 0,
) -> Overlay:
    """Build one of the supported overlay topologies.

    ``complete`` — every pair connected (uniform peer sampling);
    ``random_regular`` — random graph where every node has the same degree;
    ``small_world`` — Watts–Strogatz ring with shortcuts;
    ``ring`` — plain cycle (worst case for gossip diffusion).
    """
    check_positive_int(n_nodes, "n_nodes")
    check_in_choices(topology, ("complete", "random_regular", "small_world", "ring"), "topology")
    check_positive_int(degree, "degree")
    check_probability(rewiring_probability, "rewiring_probability")
    if n_nodes == 1:
        graph = nx.Graph()
        graph.add_node(0)
        return Overlay(graph, name=topology)
    if topology == "complete":
        graph = nx.complete_graph(n_nodes)
    elif topology == "ring":
        graph = nx.cycle_graph(n_nodes)
    elif topology == "random_regular":
        effective_degree = min(degree, n_nodes - 1)
        if (effective_degree * n_nodes) % 2 == 1:
            effective_degree = max(1, effective_degree - 1)
        graph = nx.random_regular_graph(effective_degree, n_nodes, seed=seed)
    else:  # small_world
        effective_degree = min(degree, n_nodes - 1)
        if effective_degree % 2 == 1:
            effective_degree = max(2, effective_degree - 1)
        effective_degree = min(effective_degree, n_nodes - 1)
        graph = nx.connected_watts_strogatz_graph(
            n_nodes, effective_degree, rewiring_probability, tries=200, seed=seed
        )
    overlay = Overlay(graph, name=topology)
    if not overlay.is_connected():
        raise GossipError(
            f"generated {topology} overlay with n={n_nodes}, degree={degree} is not connected"
        )
    return overlay
