"""Cleartext gossip aggregation protocols.

Two classic protocols are provided:

* **push-pull averaging** — at every cycle each node picks a random (online)
  neighbour and the pair replaces both estimates by their average.  This is
  the primitive Chiaroscuro runs *under encryption*
  (:mod:`repro.gossip.encrypted_sum`); the cleartext version serves as the
  reference for correctness tests and for the gossip-convergence experiment
  (E5), and as the substrate of the non-private distributed baseline.

* **push-sum** (Kempe, Dobra, Gehrke, FOCS 2003) — each node maintains a
  (value, weight) pair, halves it and sends one half to a random neighbour;
  the ratio value/weight converges to the global average with an error that
  decreases exponentially in the number of cycles.  It is included both for
  completeness and because the paper's convergence claim cites it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import as_2d_float_array, check_positive_int
from ..exceptions import GossipError
from ..simulation.engine import CycleEngine
from ..simulation.node import Node
from .overlay import Overlay, build_overlay


class PushPullAveragingNode(Node):
    """Node holding a vector estimate updated by pairwise averaging."""

    def __init__(self, node_id: int, initial_value: np.ndarray, overlay: Overlay,
                 exchanges_per_cycle: int = 1) -> None:
        super().__init__(node_id)
        self.estimate = np.array(initial_value, dtype=float)
        self.overlay = overlay
        self.exchanges_per_cycle = check_positive_int(exchanges_per_cycle, "exchanges_per_cycle")
        self.exchanges_done = 0

    def next_cycle(self, engine: CycleEngine, cycle: int) -> None:
        rng = engine.rng_registry.stream(f"gossip.peer_sampling.{self.node_id}")
        online = set(engine.online_ids())
        for _ in range(self.exchanges_per_cycle):
            peer_id = self.overlay.sample_neighbor(self.node_id, rng, online=online)
            if peer_id is None:
                return
            peer = engine.node(peer_id)
            if not isinstance(peer, PushPullAveragingNode):
                raise GossipError("push-pull averaging requires homogeneous nodes")
            payload_bytes = 8 * self.estimate.size
            delivered = engine.send(
                self.node_id, peer_id, "gossip-avg-request", None, size_bytes=payload_bytes
            )
            if not delivered:
                continue
            engine.send(peer_id, self.node_id, "gossip-avg-reply", None, size_bytes=payload_bytes)
            average = (self.estimate + peer.estimate) / 2.0
            self.estimate = average
            peer.estimate = average.copy()
            self.exchanges_done += 1
            peer.exchanges_done += 1


class PushSumNode(Node):
    """Node running the Kempe et al. push-sum protocol."""

    def __init__(self, node_id: int, initial_value: np.ndarray, overlay: Overlay) -> None:
        super().__init__(node_id)
        self.value = np.array(initial_value, dtype=float)
        self.weight = 1.0
        self.overlay = overlay
        self._incoming_values: list[np.ndarray] = []
        self._incoming_weights: list[float] = []

    @property
    def estimate(self) -> np.ndarray:
        """Current estimate of the global average: value / weight."""
        if self.weight <= 0:
            raise GossipError("push-sum weight became non-positive")
        return self.value / self.weight

    def next_cycle(self, engine: CycleEngine, cycle: int) -> None:
        # Fold in the halves received during the previous cycle first.
        for value in self._incoming_values:
            self.value = self.value + value
        self.weight += sum(self._incoming_weights)
        self._incoming_values.clear()
        self._incoming_weights.clear()

        rng = engine.rng_registry.stream(f"gossip.push_sum.{self.node_id}")
        online = set(engine.online_ids())
        peer_id = self.overlay.sample_neighbor(self.node_id, rng, online=online)
        if peer_id is None:
            return
        half_value = self.value / 2.0
        half_weight = self.weight / 2.0
        self.value = half_value
        self.weight = half_weight
        payload_bytes = 8 * (self.value.size + 1)
        delivered = engine.send(
            self.node_id, peer_id, "push-sum", (half_value, half_weight),
            size_bytes=payload_bytes,
        )
        if delivered:
            peer = engine.node(peer_id)
            if not isinstance(peer, PushSumNode):
                raise GossipError("push-sum requires homogeneous nodes")
            peer._incoming_values.append(half_value)
            peer._incoming_weights.append(half_weight)
        else:
            # The mass was sent but lost; conserve it locally so the protocol
            # remains mass-conserving under message drops.
            self.value = self.value + half_value
            self.weight += half_weight


def _estimates_matrix(nodes: Sequence[Node]) -> np.ndarray:
    return np.vstack([node.estimate for node in nodes])  # type: ignore[attr-defined]


def gossip_average(
    values: np.ndarray,
    cycles: int = 20,
    topology: str = "complete",
    exchanges_per_cycle: int = 1,
    seed: int = 0,
    drop_probability: float = 0.0,
    protocol: str = "push_pull",
    return_history: bool = False,
) -> np.ndarray | tuple[np.ndarray, list[float]]:
    """Run a gossip averaging protocol over the rows of *values*.

    Parameters
    ----------
    values:
        ``(n_nodes, dimension)`` matrix; row i is node i's initial value.
    cycles:
        Number of simulation cycles to run.
    topology, exchanges_per_cycle, seed, drop_probability:
        Simulation parameters.
    protocol:
        ``"push_pull"`` or ``"push_sum"``.
    return_history:
        When true, also return the per-cycle maximum relative error with
        respect to the true average (used by the convergence experiment).

    Returns
    -------
    The ``(n_nodes, dimension)`` matrix of final estimates, optionally with
    the error history.
    """
    values = as_2d_float_array(values, "values")
    check_positive_int(cycles, "cycles")
    n_nodes = values.shape[0]
    overlay = build_overlay(n_nodes, topology=topology, seed=seed)
    if protocol == "push_pull":
        nodes: list[Node] = [
            PushPullAveragingNode(i, values[i], overlay, exchanges_per_cycle)
            for i in range(n_nodes)
        ]
    elif protocol == "push_sum":
        nodes = [PushSumNode(i, values[i], overlay) for i in range(n_nodes)]
    else:
        raise GossipError(f"unknown gossip protocol {protocol!r}")
    engine = CycleEngine(nodes, seed=seed, drop_probability=drop_probability)
    true_average = values.mean(axis=0)
    history: list[float] = []
    for _ in range(cycles):
        engine.run_cycle()
        if return_history:
            estimates = _estimates_matrix(nodes)
            history.append(max_relative_error(estimates, true_average))
    estimates = _estimates_matrix(nodes)
    if return_history:
        return estimates, history
    return estimates


def max_relative_error(estimates: np.ndarray, true_average: np.ndarray) -> float:
    """Maximum over nodes of the relative L2 error against the true average."""
    estimates = as_2d_float_array(estimates, "estimates")
    true_average = np.asarray(true_average, dtype=float)
    denominator = float(np.linalg.norm(true_average))
    if denominator == 0.0:
        denominator = 1.0
    errors = np.linalg.norm(estimates - true_average[None, :], axis=1) / denominator
    return float(errors.max())


def mean_relative_error(estimates: np.ndarray, true_average: np.ndarray) -> float:
    """Average over nodes of the relative L2 error against the true average."""
    estimates = as_2d_float_array(estimates, "estimates")
    true_average = np.asarray(true_average, dtype=float)
    denominator = float(np.linalg.norm(true_average))
    if denominator == 0.0:
        denominator = 1.0
    errors = np.linalg.norm(estimates - true_average[None, :], axis=1) / denominator
    return float(errors.mean())
