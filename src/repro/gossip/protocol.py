"""Cleartext gossip aggregation protocols.

Two classic protocols are provided:

* **push-pull averaging** — at every cycle each node picks a random (online)
  neighbour and the pair replaces both estimates by their average.  This is
  the primitive Chiaroscuro runs *under encryption*
  (:mod:`repro.gossip.encrypted_sum`); the cleartext version serves as the
  reference for correctness tests and for the gossip-convergence experiment
  (E5), and as the substrate of the non-private distributed baseline.

* **push-sum** (Kempe, Dobra, Gehrke, FOCS 2003) — each node maintains a
  (value, weight) pair, halves it and sends one half to a random neighbour;
  the ratio value/weight converges to the global average with an error that
  decreases exponentially in the number of cycles.  It is included both for
  completeness and because the paper's convergence claim cites it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import as_2d_float_array, check_positive_int
from ..crypto.wire import normalize_wire
from ..exceptions import GossipError, WireFormatError
from ..simulation.engine import CycleEngine
from ..simulation.node import Node
from .overlay import Overlay, build_overlay


class PushPullAveragingNode(Node):
    """Node holding a vector estimate updated by pairwise averaging.

    With *wire* enabled the exchange travels as framed byte messages
    (:class:`~repro.gossip.messages.GossipAvgRequest` /
    :class:`~repro.gossip.messages.GossipAvgReply`); floats cross the wire
    as IEEE-754 doubles, so the averaged estimates are bit-identical to the
    reference-passing transport.
    """

    def __init__(self, node_id: int, initial_value: np.ndarray, overlay: Overlay,
                 exchanges_per_cycle: int = 1, wire: bool = False) -> None:
        super().__init__(node_id)
        self.estimate = np.array(initial_value, dtype=float)
        self.overlay = overlay
        self.exchanges_per_cycle = check_positive_int(exchanges_per_cycle, "exchanges_per_cycle")
        self.wire = bool(wire)
        self.exchanges_done = 0

    def next_cycle(self, engine: CycleEngine, cycle: int) -> None:
        rng = engine.rng_registry.stream(f"gossip.peer_sampling.{self.node_id}")
        online = set(engine.online_ids())
        for _ in range(self.exchanges_per_cycle):
            peer_id = self.overlay.sample_neighbor(self.node_id, rng, online=online)
            if peer_id is None:
                return
            peer = engine.node(peer_id)
            if not isinstance(peer, PushPullAveragingNode):
                raise GossipError("push-pull averaging requires homogeneous nodes")
            payload_bytes = 8 * self.estimate.size
            if self.wire:
                from .messages import GossipAvgReply, GossipAvgRequest, deserialize

                frame = GossipAvgRequest(
                    values=tuple(float(v) for v in self.estimate)
                ).serialize()
                received = engine.transmit(
                    self.node_id, peer_id, "gossip-avg-request", frame,
                    modelled_bytes=payload_bytes,
                )
                if received is None:
                    continue
                try:
                    deserialize(received)
                except WireFormatError:
                    continue  # corrupted request: no exchange
                reply_frame = GossipAvgReply(
                    values=tuple(float(v) for v in peer.estimate)
                ).serialize()
                reply = engine.transmit(
                    peer_id, self.node_id, "gossip-avg-reply", reply_frame,
                    modelled_bytes=payload_bytes,
                )
                if reply is None:
                    reply = reply_frame  # atomic pairwise exchange (cycle model)
                try:
                    peer_values = np.array(deserialize(reply).values, dtype=float)
                except WireFormatError:
                    continue
            else:
                delivered = engine.send(
                    self.node_id, peer_id, "gossip-avg-request", None,
                    size_bytes=payload_bytes,
                )
                if not delivered:
                    continue
                engine.send(peer_id, self.node_id, "gossip-avg-reply", None,
                            size_bytes=payload_bytes)
                peer_values = peer.estimate
            average = (self.estimate + peer_values) / 2.0
            self.estimate = average
            peer.estimate = average.copy()
            self.exchanges_done += 1
            peer.exchanges_done += 1


class PushSumNode(Node):
    """Node running the Kempe et al. push-sum protocol.

    With *wire* enabled each mass transfer travels as a framed
    :class:`~repro.gossip.messages.PushSumMessage`; an undecodable
    (corrupted) frame is treated exactly like a loss, so the protocol stays
    mass-conserving under every fault model.
    """

    def __init__(self, node_id: int, initial_value: np.ndarray, overlay: Overlay,
                 wire: bool = False) -> None:
        super().__init__(node_id)
        self.value = np.array(initial_value, dtype=float)
        self.weight = 1.0
        self.overlay = overlay
        self.wire = bool(wire)
        self._incoming_values: list[np.ndarray] = []
        self._incoming_weights: list[float] = []

    @property
    def estimate(self) -> np.ndarray:
        """Current estimate of the global average: value / weight."""
        if self.weight <= 0:
            raise GossipError("push-sum weight became non-positive")
        return self.value / self.weight

    def next_cycle(self, engine: CycleEngine, cycle: int) -> None:
        # Fold in the halves received during the previous cycle first.
        for value in self._incoming_values:
            self.value = self.value + value
        self.weight += sum(self._incoming_weights)
        self._incoming_values.clear()
        self._incoming_weights.clear()

        rng = engine.rng_registry.stream(f"gossip.push_sum.{self.node_id}")
        online = set(engine.online_ids())
        peer_id = self.overlay.sample_neighbor(self.node_id, rng, online=online)
        if peer_id is None:
            return
        half_value = self.value / 2.0
        half_weight = self.weight / 2.0
        self.value = half_value
        self.weight = half_weight
        payload_bytes = 8 * (self.value.size + 1)
        incoming_value: np.ndarray | None = None
        incoming_weight = 0.0
        if self.wire:
            from .messages import PushSumMessage, deserialize

            frame = PushSumMessage(
                values=tuple(float(v) for v in half_value), weight=float(half_weight)
            ).serialize()
            received = engine.transmit(
                self.node_id, peer_id, "push-sum", frame, modelled_bytes=payload_bytes
            )
            if received is not None:
                try:
                    message = deserialize(received)
                    incoming_value = np.array(message.values, dtype=float)
                    incoming_weight = float(message.weight)
                except WireFormatError:
                    incoming_value = None  # corrupted in transit: counts as a loss
        else:
            delivered = engine.send(
                self.node_id, peer_id, "push-sum", (half_value, half_weight),
                size_bytes=payload_bytes,
            )
            if delivered:
                incoming_value = half_value
                incoming_weight = half_weight
        if incoming_value is not None:
            peer = engine.node(peer_id)
            if not isinstance(peer, PushSumNode):
                raise GossipError("push-sum requires homogeneous nodes")
            peer._incoming_values.append(incoming_value)
            peer._incoming_weights.append(incoming_weight)
        else:
            # The mass was sent but lost (or arrived undecodable); conserve
            # it locally so the protocol remains mass-conserving under both
            # fault models.
            self.value = self.value + half_value
            self.weight += half_weight


def _estimates_matrix(nodes: Sequence[Node]) -> np.ndarray:
    return np.vstack([node.estimate for node in nodes])  # type: ignore[attr-defined]


def gossip_average(
    values: np.ndarray,
    cycles: int = 20,
    topology: str = "complete",
    exchanges_per_cycle: int = 1,
    seed: int = 0,
    drop_probability: float = 0.0,
    protocol: str = "push_pull",
    return_history: bool = False,
    wire: str = "auto",
    corruption_rate: float = 0.0,
) -> np.ndarray | tuple[np.ndarray, list[float]]:
    """Run a gossip averaging protocol over the rows of *values*.

    Parameters
    ----------
    values:
        ``(n_nodes, dimension)`` matrix; row i is node i's initial value.
    cycles:
        Number of simulation cycles to run.
    topology, exchanges_per_cycle, seed, drop_probability:
        Simulation parameters.
    protocol:
        ``"push_pull"`` or ``"push_sum"``.
    return_history:
        When true, also return the per-cycle maximum relative error with
        respect to the true average (used by the convergence experiment).
    wire:
        ``"auto"`` (default) moves every message as a serialized byte frame
        with measured sizes; ``"off"`` reproduces the reference-passing
        transport.  Estimates are bit-identical either way.
    corruption_rate:
        Probability that a delivered frame has one bit flipped in transit
        (requires the wire format; corrupted frames count as losses).

    Returns
    -------
    The ``(n_nodes, dimension)`` matrix of final estimates, optionally with
    the error history.
    """
    values = as_2d_float_array(values, "values")
    check_positive_int(cycles, "cycles")
    wire_enabled = normalize_wire(wire) != "off"
    if corruption_rate > 0 and not wire_enabled:
        raise GossipError("corruption_rate requires the wire format (wire='auto')")
    n_nodes = values.shape[0]
    overlay = build_overlay(n_nodes, topology=topology, seed=seed)
    if protocol == "push_pull":
        nodes: list[Node] = [
            PushPullAveragingNode(i, values[i], overlay, exchanges_per_cycle,
                                  wire=wire_enabled)
            for i in range(n_nodes)
        ]
    elif protocol == "push_sum":
        nodes = [PushSumNode(i, values[i], overlay, wire=wire_enabled)
                 for i in range(n_nodes)]
    else:
        raise GossipError(f"unknown gossip protocol {protocol!r}")
    engine = CycleEngine(nodes, seed=seed, drop_probability=drop_probability,
                         corruption_rate=corruption_rate)
    true_average = values.mean(axis=0)
    history: list[float] = []
    for _ in range(cycles):
        engine.run_cycle()
        if return_history:
            estimates = _estimates_matrix(nodes)
            history.append(max_relative_error(estimates, true_average))
    estimates = _estimates_matrix(nodes)
    if return_history:
        return estimates, history
    return estimates


def max_relative_error(estimates: np.ndarray, true_average: np.ndarray) -> float:
    """Maximum over nodes of the relative L2 error against the true average."""
    estimates = as_2d_float_array(estimates, "estimates")
    true_average = np.asarray(true_average, dtype=float)
    denominator = float(np.linalg.norm(true_average))
    if denominator == 0.0:
        denominator = 1.0
    errors = np.linalg.norm(estimates - true_average[None, :], axis=1) / denominator
    return float(errors.max())


def mean_relative_error(estimates: np.ndarray, true_average: np.ndarray) -> float:
    """Average over nodes of the relative L2 error against the true average."""
    estimates = as_2d_float_array(estimates, "estimates")
    true_average = np.asarray(true_average, dtype=float)
    denominator = float(np.linalg.norm(true_average))
    if denominator == 0.0:
        denominator = 1.0
    errors = np.linalg.norm(estimates - true_average[None, :], axis=1) / denominator
    return float(errors.mean())
