"""Versioned, framed wire messages for every protocol exchange.

Every message Chiaroscuro puts on the network — gossip averaging requests
and replies (encrypted and cleartext), diptych exchanges, committee
decryption rounds, push-sum mass transfers, membership announcements and
key announcements — has a framed binary representation here, built on the
canonical primitives of :mod:`repro.crypto.wire`.

Frame layout (all integers big-endian)::

    offset  size  field
    0       2     magic  b"CW"  (Chiaroscuro Wire)
    2       1     version (WIRE_VERSION)
    3       1     message type
    4       var   body length  (canonical varint)
    ...     len   body         (message-specific, see each dataclass)
    end     4     CRC32 (IEEE 802.3) of every preceding byte

The trailing CRC makes *corruption* detectable deterministically: flipping
any bit of a frame changes the checksum, so the decoder raises
:class:`~repro.exceptions.WireFormatError` instead of silently decoding a
damaged ciphertext (which would otherwise be indistinguishable from a valid
one — any byte string is *some* bigint).  Truncation, over-length, unknown
versions or types, trailing bytes and inconsistent slot/weight metadata are
likewise rejected with :class:`WireFormatError` and never anything else.

``deserialize(serialize(message)) == message`` holds bit-exactly for every
message type: bigints and fixed-width ciphertexts round-trip exactly, floats
travel as IEEE-754 doubles, and the encoders are canonical (one byte
representation per value), so frames are deterministic functions of the
message alone — identical across cipher backends, platforms and runs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import ClassVar, Sequence

from ..crypto.wire import (
    FRAME_FIXED_OVERHEAD_BYTES,
    MAX_FRAME_BYTES,
    MAX_SHARE_INDEX,
    MAX_VECTOR_COMPONENTS,
    WIRE_VERSION,
    WireReader,
    read_encrypted_vector,
    read_partial_decryption,
    write_bigint,
    write_bool,
    write_encrypted_vector,
    write_float,
    write_partial_decryption,
    write_varint,
)
from ..exceptions import WireFormatError
from .encrypted_sum import EncryptedEstimate

#: Frame magic: "CW" for Chiaroscuro Wire.
FRAME_MAGIC = b"CW"

_MAX_ESTIMATES = 1 << 12
_MAX_ITERATION = (1 << 32) - 1
_MAX_HALVINGS = 1 << 20
_MAX_KEY_DEGREE = 64
_MAX_BATCH_FRAMES = 1 << 10


def _check_field(value: int, limit: int, field: str) -> int:
    """Write-side twin of the decoder's field limits.

    Encoders enforce exactly the bounds the decoder enforces, so
    ``serialize()`` can never emit a frame that a conformant
    ``deserialize()`` must reject.
    """
    if not 0 <= value <= limit:
        raise WireFormatError(f"{field} {value} outside [0, {limit}]")
    return value


def _write_estimate(out: bytearray, estimate: EncryptedEstimate, width: int) -> None:
    write_varint(out, _check_field(estimate.halvings, _MAX_HALVINGS, "halvings"))
    write_encrypted_vector(out, estimate.vector, width)


def _read_estimate(reader: WireReader, width: int) -> EncryptedEstimate:
    halvings = reader.read_varint(limit=_MAX_HALVINGS)
    vector = read_encrypted_vector(reader, width)
    return EncryptedEstimate(vector=vector, halvings=halvings)


def _write_width(out: bytearray, width: int) -> None:
    from ..crypto.wire import MAX_CIPHERTEXT_BYTES

    if not 1 <= width <= MAX_CIPHERTEXT_BYTES:
        raise WireFormatError(
            f"ciphertext width {width} outside [1, {MAX_CIPHERTEXT_BYTES}]"
        )
    write_varint(out, width)


def _read_width(reader: WireReader) -> int:
    from ..crypto.wire import MAX_CIPHERTEXT_BYTES

    width = reader.read_varint(limit=MAX_CIPHERTEXT_BYTES)
    if width < 1:
        raise WireFormatError("ciphertext width must be >= 1")
    return width


def _write_float_vector(out: bytearray, values: Sequence[float]) -> None:
    if len(values) > MAX_VECTOR_COMPONENTS:
        raise WireFormatError(f"float vector too long for the wire: {len(values)}")
    write_varint(out, len(values))
    for value in values:
        write_float(out, float(value))


def _read_float_vector(reader: WireReader) -> tuple[float, ...]:
    count = reader.read_varint(limit=MAX_VECTOR_COMPONENTS)
    if count * 8 > reader.remaining:
        raise WireFormatError(
            f"truncated float vector: {count} doubles declared, "
            f"{reader.remaining} bytes available"
        )
    return tuple(reader.read_float() for _ in range(count))


class WireMessage:
    """Base class of every framed message (provides the frame envelope)."""

    #: One-byte message type; unique across the registry below.
    TYPE: ClassVar[int] = 0x00

    def _write_body(self, out: bytearray) -> None:
        raise NotImplementedError

    @classmethod
    def _read_body(cls, reader: WireReader) -> "WireMessage":
        raise NotImplementedError

    def serialize(self) -> bytes:
        """Encode this message into one framed byte string."""
        body = bytearray()
        self._write_body(body)
        if len(body) > MAX_FRAME_BYTES:
            raise WireFormatError(
                f"message body of {len(body)} bytes exceeds the frame limit"
            )
        frame = bytearray(FRAME_MAGIC)
        frame.append(WIRE_VERSION)
        frame.append(self.TYPE)
        write_varint(frame, len(body))
        frame.extend(body)
        frame.extend(zlib.crc32(frame).to_bytes(4, "big"))
        return bytes(frame)


@dataclass(frozen=True)
class _EstimateEnvelope(WireMessage):
    """Shared body codec of the encrypted-avg request/reply pair.

    Request and reply carry the same body (one estimate plus the
    ciphertext width); the concrete subclasses differ only in ``TYPE``, so
    the two directions of the exchange can never diverge in encoding.
    Dataclass equality compares the concrete class, so a request never
    equals a reply.
    """

    estimate: EncryptedEstimate
    ciphertext_bytes: int

    def _write_body(self, out: bytearray) -> None:
        _write_width(out, self.ciphertext_bytes)
        _write_estimate(out, self.estimate, self.ciphertext_bytes)

    @classmethod
    def _read_body(cls, reader: WireReader) -> "_EstimateEnvelope":
        width = _read_width(reader)
        return cls(estimate=_read_estimate(reader, width), ciphertext_bytes=width)


class EncryptedAvgRequest(_EstimateEnvelope):
    """Push half of one encrypted push-pull averaging exchange."""

    TYPE: ClassVar[int] = 0x01


class EncryptedAvgReply(_EstimateEnvelope):
    """Pull half of one encrypted push-pull averaging exchange."""

    TYPE: ClassVar[int] = 0x02


@dataclass(frozen=True)
class _DiptychEnvelope(WireMessage):
    """Shared body codec of the diptych exchange/reply pair."""

    iteration: int
    data_estimates: tuple[EncryptedEstimate, ...]
    noise_estimates: tuple[EncryptedEstimate, ...]
    ciphertext_bytes: int

    def _write_body(self, out: bytearray) -> None:
        if len(self.data_estimates) != len(self.noise_estimates):
            raise WireFormatError(
                "a diptych message carries one noise estimate per data estimate"
            )
        if len(self.data_estimates) > _MAX_ESTIMATES:
            raise WireFormatError("too many estimates for one diptych frame")
        _write_width(out, self.ciphertext_bytes)
        write_varint(out, _check_field(self.iteration, _MAX_ITERATION, "iteration"))
        write_varint(out, len(self.data_estimates))
        for estimate in self.data_estimates:
            _write_estimate(out, estimate, self.ciphertext_bytes)
        for estimate in self.noise_estimates:
            _write_estimate(out, estimate, self.ciphertext_bytes)

    @classmethod
    def _read_body(cls, reader: WireReader) -> "_DiptychEnvelope":
        width = _read_width(reader)
        iteration = reader.read_varint(limit=_MAX_ITERATION)
        count = reader.read_varint(limit=_MAX_ESTIMATES)
        data = tuple(_read_estimate(reader, width) for _ in range(count))
        noise = tuple(_read_estimate(reader, width) for _ in range(count))
        return cls(iteration=iteration, data_estimates=data,
                   noise_estimates=noise, ciphertext_bytes=width)


class DiptychExchange(_DiptychEnvelope):
    """A participant's full encrypted diptych, pushed to a gossip peer."""

    TYPE: ClassVar[int] = 0x03


class DiptychReply(_DiptychEnvelope):
    """The pulled diptych a peer returns during one gossip exchange."""

    TYPE: ClassVar[int] = 0x04


@dataclass(frozen=True)
class DecryptRequest(WireMessage):
    """Ciphertexts sent to one committee member for partial decryption."""

    estimates: tuple[EncryptedEstimate, ...]
    ciphertext_bytes: int
    TYPE: ClassVar[int] = 0x05

    def _write_body(self, out: bytearray) -> None:
        if len(self.estimates) > _MAX_ESTIMATES:
            raise WireFormatError("too many estimates for one decryption frame")
        _write_width(out, self.ciphertext_bytes)
        write_varint(out, len(self.estimates))
        for estimate in self.estimates:
            _write_estimate(out, estimate, self.ciphertext_bytes)

    @classmethod
    def _read_body(cls, reader: WireReader) -> "DecryptRequest":
        width = _read_width(reader)
        count = reader.read_varint(limit=_MAX_ESTIMATES)
        estimates = tuple(_read_estimate(reader, width) for _ in range(count))
        return cls(estimates=estimates, ciphertext_bytes=width)


@dataclass(frozen=True)
class DecryptResponse(WireMessage):
    """One committee member's partial decryptions of a request's estimates."""

    partials: tuple  # of PartialVectorDecryption
    ciphertext_bytes: int
    TYPE: ClassVar[int] = 0x06

    def _write_body(self, out: bytearray) -> None:
        if len(self.partials) > _MAX_ESTIMATES:
            raise WireFormatError("too many partials for one decryption frame")
        _write_width(out, self.ciphertext_bytes)
        write_varint(out, len(self.partials))
        for partial in self.partials:
            write_partial_decryption(out, partial, self.ciphertext_bytes)

    @classmethod
    def _read_body(cls, reader: WireReader) -> "DecryptResponse":
        width = _read_width(reader)
        count = reader.read_varint(limit=_MAX_ESTIMATES)
        partials = tuple(read_partial_decryption(reader, width) for _ in range(count))
        return cls(partials=partials, ciphertext_bytes=width)


@dataclass(frozen=True)
class _FloatVectorEnvelope(WireMessage):
    """Shared body codec of the cleartext-avg request/reply pair."""

    values: tuple[float, ...]

    def _write_body(self, out: bytearray) -> None:
        _write_float_vector(out, self.values)

    @classmethod
    def _read_body(cls, reader: WireReader) -> "_FloatVectorEnvelope":
        return cls(values=_read_float_vector(reader))


class GossipAvgRequest(_FloatVectorEnvelope):
    """Push half of one cleartext push-pull averaging exchange."""

    TYPE: ClassVar[int] = 0x07


class GossipAvgReply(_FloatVectorEnvelope):
    """Pull half of one cleartext push-pull averaging exchange."""

    TYPE: ClassVar[int] = 0x08


@dataclass(frozen=True)
class PushSumMessage(WireMessage):
    """Half of a push-sum node's (value, weight) mass, sent to a neighbour."""

    values: tuple[float, ...]
    weight: float
    TYPE: ClassVar[int] = 0x09

    def _write_body(self, out: bytearray) -> None:
        _write_float_vector(out, self.values)
        write_float(out, float(self.weight))

    @classmethod
    def _read_body(cls, reader: WireReader) -> "PushSumMessage":
        values = _read_float_vector(reader)
        return cls(values=values, weight=reader.read_float())


@dataclass(frozen=True)
class MembershipAnnouncement(WireMessage):
    """A node announcing that it joined or left the overlay.

    The cycle-driven simulation applies churn directly (no messages), but a
    real deployment gossips join/leave events; the frame type exists so the
    future socket runner and the corruption/loss scenarios can exercise
    membership traffic through the same conformance-tested wire format.
    """

    node_id: int
    online: bool
    cycle: int
    TYPE: ClassVar[int] = 0x0A

    def _write_body(self, out: bytearray) -> None:
        write_varint(out, _check_field(self.node_id, _MAX_ITERATION, "node_id"))
        write_bool(out, self.online)
        write_varint(out, _check_field(self.cycle, _MAX_ITERATION, "cycle"))

    @classmethod
    def _read_body(cls, reader: WireReader) -> "MembershipAnnouncement":
        node_id = reader.read_varint(limit=_MAX_ITERATION)
        online = reader.read_bool()
        cycle = reader.read_varint(limit=_MAX_ITERATION)
        return cls(node_id=node_id, online=online, cycle=cycle)


@dataclass(frozen=True)
class KeyAnnouncement(WireMessage):
    """The threshold public key broadcast at protocol bootstrap.

    Carries everything a joining participant needs to encrypt: the public
    modulus *n*, the Damgård–Jurik degree *s*, and the committee parameters.
    """

    modulus: int
    degree: int
    threshold: int
    n_shares: int
    TYPE: ClassVar[int] = 0x0B

    def _write_body(self, out: bytearray) -> None:
        if self.modulus < 6:
            raise WireFormatError(f"implausible public modulus {self.modulus}")
        if self.degree < 1 or self.threshold < 1 or self.n_shares < self.threshold:
            raise WireFormatError(
                "inconsistent key announcement (degree/threshold/shares)"
            )
        write_bigint(out, self.modulus)
        write_varint(out, _check_field(self.degree, _MAX_KEY_DEGREE, "degree"))
        write_varint(out, _check_field(self.threshold, MAX_SHARE_INDEX, "threshold"))
        write_varint(out, _check_field(self.n_shares, MAX_SHARE_INDEX, "n_shares"))

    @classmethod
    def _read_body(cls, reader: WireReader) -> "KeyAnnouncement":
        modulus = reader.read_bigint()
        degree = reader.read_varint(limit=_MAX_KEY_DEGREE)
        threshold = reader.read_varint(limit=MAX_SHARE_INDEX)
        n_shares = reader.read_varint(limit=MAX_SHARE_INDEX)
        if modulus < 6:
            raise WireFormatError(f"implausible public modulus {modulus}")
        if degree < 1 or threshold < 1 or n_shares < threshold:
            raise WireFormatError(
                "inconsistent key announcement (degree/threshold/shares)"
            )
        return cls(modulus=modulus, degree=degree, threshold=threshold,
                   n_shares=n_shares)


@dataclass(frozen=True)
class BatchEnvelope(WireMessage):
    """Several complete frames packed into one outer frame.

    The live runner's committee decryption sends one identical request to
    every helper a remote worker hosts; batching lets all of those travel
    in a single socket record instead of one record per helper.  The body
    is a flags byte (bit 0: the frame section is a zlib stream), the frame
    count, then each inner frame length-prefixed.  Inner frames are the
    ordinary serialized bytes of any registered message type — including,
    recursively, nothing: a ``BatchEnvelope`` must not contain another
    ``BatchEnvelope``, and the decoder rejects nesting.

    Compression is declarative per batch: encoders only set the zlib flag
    when the compressed section is actually smaller, so batching with
    compression enabled never inflates a record.  Decoding bounds both the
    frame count and the decompressed size before allocating, so a hostile
    peer cannot use a tiny zlib bomb to exhaust memory.
    """

    frames: tuple[bytes, ...]
    # A compression *request*, not part of message identity: the encoder
    # only honours it when zlib actually shrinks the section, so equality
    # (and the serialize/deserialize round-trip) compares frames alone.
    compress: bool = field(default=False, compare=False)
    TYPE: ClassVar[int] = 0x0C

    def _write_body(self, out: bytearray) -> None:
        if len(self.frames) > _MAX_BATCH_FRAMES:
            raise WireFormatError(
                f"batch of {len(self.frames)} frames exceeds {_MAX_BATCH_FRAMES}"
            )
        section = bytearray()
        write_varint(section, len(self.frames))
        for frame in self.frames:
            if len(frame) > MAX_FRAME_BYTES:
                raise WireFormatError("inner frame exceeds the frame limit")
            if len(frame) >= 4 and frame[3] == self.TYPE:
                raise WireFormatError("a batch must not contain another batch")
            write_varint(section, len(frame))
            section.extend(frame)
        compressed = zlib.compress(bytes(section), 6) if self.compress else None
        if compressed is not None and len(compressed) < len(section):
            out.append(0x01)
            out.extend(compressed)
        else:
            out.append(0x00)
            out.extend(section)

    @classmethod
    def _read_body(cls, reader: WireReader) -> "BatchEnvelope":
        flags = reader.read_bytes(1)[0]
        if flags not in (0x00, 0x01):
            raise WireFormatError(f"unknown batch flags 0x{flags:02x}")
        compressed = bool(flags & 0x01)
        raw = reader.read_bytes(reader.remaining - 4)
        if compressed:
            decompressor = zlib.decompressobj()
            try:
                raw = decompressor.decompress(raw, MAX_FRAME_BYTES)
            except zlib.error as exc:
                raise WireFormatError(f"corrupt batch zlib stream: {exc}") from exc
            if decompressor.unconsumed_tail or not decompressor.eof:
                raise WireFormatError("batch zlib stream too large or truncated")
        section = WireReader(raw)
        count = section.read_varint(limit=_MAX_BATCH_FRAMES)
        frames = []
        for _ in range(count):
            length = section.read_varint(limit=MAX_FRAME_BYTES)
            frame = section.read_bytes(length)
            if len(frame) >= 4 and frame[3] == cls.TYPE:
                raise WireFormatError("a batch must not contain another batch")
            frames.append(frame)
        if section.remaining:
            raise WireFormatError(
                f"{section.remaining} trailing bytes after the batched frames"
            )
        return cls(frames=tuple(frames), compress=compressed)

    def messages(self) -> tuple["WireMessage", ...]:
        """Decode every inner frame through the ordinary entry point."""
        return tuple(deserialize(frame) for frame in self.frames)


def batch_frames(frames: Sequence[bytes], compress: bool = False) -> bytes:
    """Pack already-serialized frames into one ``BatchEnvelope`` frame.

    With ``compress`` the envelope uses zlib only when it actually shrinks
    the payload, so callers can enable compression unconditionally.
    """
    return BatchEnvelope(frames=tuple(frames), compress=compress).serialize()


#: Registry of every frame type, keyed by the type byte.
MESSAGE_TYPES: dict[int, type[WireMessage]] = {
    cls.TYPE: cls
    for cls in (
        EncryptedAvgRequest, EncryptedAvgReply,
        DiptychExchange, DiptychReply,
        DecryptRequest, DecryptResponse,
        GossipAvgRequest, GossipAvgReply, PushSumMessage,
        MembershipAnnouncement, KeyAnnouncement,
        BatchEnvelope,
    )
}


def deserialize(frame: bytes) -> WireMessage:
    """Decode one framed message; raise :class:`WireFormatError` otherwise.

    This is the single entry point transport code uses on received bytes;
    it performs every structural check (magic, version, type, declared
    length, CRC32, full-body consumption) before handing the body to the
    message-specific decoder.
    """
    reader = WireReader(frame)
    if len(frame) > MAX_FRAME_BYTES + FRAME_FIXED_OVERHEAD_BYTES + 5:
        raise WireFormatError(f"frame of {len(frame)} bytes exceeds the wire limit")
    if reader.read_bytes(2) != FRAME_MAGIC:
        raise WireFormatError("bad frame magic")
    version = reader.read_bytes(1)[0]
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version} (this build speaks {WIRE_VERSION})"
        )
    type_byte = reader.read_bytes(1)[0]
    message_cls = MESSAGE_TYPES.get(type_byte)
    if message_cls is None:
        raise WireFormatError(f"unknown message type 0x{type_byte:02x}")
    body_length = reader.read_varint(limit=MAX_FRAME_BYTES)
    if body_length + 4 != reader.remaining:
        raise WireFormatError(
            f"declared body of {body_length} bytes does not match the frame "
            f"({reader.remaining - 4} bytes before the checksum)"
        )
    checksum = int.from_bytes(frame[-4:], "big")
    if zlib.crc32(frame[:-4]) != checksum:
        raise WireFormatError("frame checksum mismatch (corrupted frame)")
    message = message_cls._read_body(reader)
    if reader.remaining != 4:
        raise WireFormatError(
            f"{reader.remaining - 4} trailing bytes after the message body"
        )
    return message
