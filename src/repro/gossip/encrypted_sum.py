"""Gossip averaging over additively-homomorphic encrypted vectors.

This is the building block the paper highlights: "Chiaroscuro solves it by
proposing a gossip sum algorithm working on additively-homomorphic encrypted
data" (Section II.B).  The difficulty is that pairwise averaging requires a
division by two, which an additive homomorphism cannot perform.  The library
solves it with *public fixed-point exponents*:

* every encrypted estimate carries a public integer ``halvings`` (h); the
  real value it represents is ``decode(ciphertexts) / 2^h``;
* averaging two estimates with exponents h_a and h_b first lifts both to the
  common exponent h = max(h_a, h_b) by homomorphically multiplying the lower
  one by 2^(h - h_x) (a public power of two), then homomorphically adds them
  and increments the exponent to h + 1 — which *is* the division by two, done
  on the public exponent instead of the ciphertext;
* after decryption, the plaintext is divided by 2^h to recover the value.

The plaintext magnitude grows by at most one bit per halving, so the key only
needs ``log2(scale * value_bound) + total_halvings`` bits of headroom; the
:func:`required_headroom_bits` helper lets callers check this against the
configured key size before running.

With a slot-packed backend the same reasoning applies *per slot*: every lift
multiplies each slot (and the public weight) by the same power of two, every
addition sums slots position-wise, so the halving budget must fit one slot's
headroom instead of the whole plaintext.  :func:`check_headroom` asks the
backend for its per-coordinate capacity
(:attr:`~repro.crypto.backends.CipherBackend.plaintext_capacity_bits`), which
is the slot width when packing is enabled and the plaintext width otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import check_non_negative_int, check_positive_int
from ..crypto.backends import CipherBackend, EncryptedVector
from ..crypto.wire import normalize_wire, wire_ciphertext_bytes
from ..exceptions import GossipError, WireFormatError
from ..simulation.engine import CycleEngine
from ..simulation.node import Node
from .overlay import Overlay, build_overlay


@dataclass(frozen=True)
class EncryptedEstimate:
    """An encrypted gossip estimate: ciphertext vector + public exponent.

    The represented real vector is ``decode(vector) / 2^halvings``.
    """

    vector: EncryptedVector
    halvings: int = 0

    def __post_init__(self) -> None:
        check_non_negative_int(self.halvings, "halvings")

    def __len__(self) -> int:
        return len(self.vector)


def fresh_estimate(backend: CipherBackend, values: Sequence[float] | np.ndarray,
                   ) -> EncryptedEstimate:
    """Encrypt a real-valued vector as an estimate with exponent zero."""
    return EncryptedEstimate(vector=backend.encrypt_vector(values), halvings=0)


def zero_estimate(backend: CipherBackend, length: int) -> EncryptedEstimate:
    """An estimate of the all-zero vector (exponent zero)."""
    return EncryptedEstimate(vector=backend.encrypt_zero_vector(length), halvings=0)


def lift_estimate(backend: CipherBackend, estimate: EncryptedEstimate,
                  target_halvings: int) -> EncryptedEstimate:
    """Re-express *estimate* at a larger exponent without changing its value."""
    if target_halvings < estimate.halvings:
        raise GossipError(
            f"cannot lower the exponent of an estimate ({estimate.halvings} -> {target_halvings})"
        )
    if target_halvings == estimate.halvings:
        return estimate
    factor = 1 << (target_halvings - estimate.halvings)
    return EncryptedEstimate(
        vector=backend.multiply_scalar(estimate.vector, factor), halvings=target_halvings
    )


def _lift_and_sum(backend: CipherBackend, first: EncryptedEstimate,
                  second: EncryptedEstimate) -> tuple[int, "EncryptedVector"]:
    """Common exponent and the homomorphic sum of both estimates lifted to it.

    The lift-to-common-exponent-then-add sequence is a single homomorphic
    linear combination with power-of-two factors, which the backend may
    evaluate jointly (Straus multi-exponentiation shares one squaring chain
    across both ciphertexts) while charging exactly the operations the
    historical multiply-then-add path charged.
    """
    if len(first) != len(second):
        raise GossipError(f"estimate lengths differ: {len(first)} vs {len(second)}")
    common = max(first.halvings, second.halvings)
    summed = backend.linear_combination(
        [first.vector, second.vector],
        [1 << (common - first.halvings), 1 << (common - second.halvings)],
    )
    return common, summed


def average_estimates(backend: CipherBackend, first: EncryptedEstimate,
                      second: EncryptedEstimate) -> EncryptedEstimate:
    """Homomorphic pairwise average of two estimates.

    The result represents (value(first) + value(second)) / 2.
    """
    common, summed = _lift_and_sum(backend, first, second)
    return EncryptedEstimate(vector=summed, halvings=common + 1)


def add_estimates(backend: CipherBackend, first: EncryptedEstimate,
                  second: EncryptedEstimate) -> EncryptedEstimate:
    """Homomorphic addition of the values of two estimates (no halving).

    Used by the protocol's "local addition of the encrypted noises to the
    encrypted means" step.
    """
    common, summed = _lift_and_sum(backend, first, second)
    return EncryptedEstimate(vector=summed, halvings=common)


def rerandomize_estimate(backend: CipherBackend,
                         estimate: EncryptedEstimate) -> EncryptedEstimate:
    """Refresh the ciphertext randomness of an estimate (same value, exponent).

    With the fastmath blinder pool this costs one bigint multiplication per
    ciphertext, making per-hop re-randomisation of forwarded estimates
    affordable for unlinkability-sensitive deployments.
    """
    return EncryptedEstimate(
        vector=backend.rerandomize(estimate.vector), halvings=estimate.halvings
    )


def decode_estimate(backend: CipherBackend, estimate: EncryptedEstimate,
                    share_indices: Sequence[int]) -> np.ndarray:
    """Collaboratively decrypt an estimate and undo the public exponent."""
    decoded = backend.decrypt_with_shares(estimate.vector, share_indices)
    return decoded / float(1 << estimate.halvings)


def estimate_payload_bytes(backend: CipherBackend, estimate: EncryptedEstimate) -> int:
    """Serialised size of an estimate (ciphertexts plus the public exponent).

    Charges for the ciphertexts actually carried: with a packed backend that
    is ``ceil(length / slots)`` ciphertexts, which is where the bandwidth
    saving of packing shows up in the cost accounting.
    """
    return (backend.ciphertext_bits // 8) * estimate.vector.n_ciphertexts + 8


def required_headroom_bits(value_bound: float, scale: int, total_halvings: int) -> int:
    """Plaintext bits needed to run *total_halvings* averaging steps safely."""
    if value_bound <= 0 or scale <= 0:
        raise GossipError("value_bound and scale must be positive")
    base_bits = int(np.ceil(np.log2(value_bound * scale + 1)))
    return base_bits + total_halvings + 2  # sign bit + rounding margin


def check_headroom(backend: CipherBackend, value_bound: float, total_halvings: int) -> None:
    """Raise :class:`GossipError` when the backend's plaintext space is too small.

    For packed backends the capacity is one slot's width, so the check also
    guards against a packing layout whose per-slot headroom cannot absorb the
    configured number of gossip halvings.
    """
    needed = required_headroom_bits(value_bound, backend.codec.scale, total_halvings)
    available = backend.plaintext_capacity_bits
    if needed >= available:
        raise GossipError(
            f"plaintext space too small for encrypted gossip: need {needed} bits, "
            f"have {available}; use a larger key, fewer gossip cycles, or a wider "
            "packing layout"
        )


class EncryptedAveragingNode(Node):
    """Node running push-pull averaging over encrypted estimates.

    Exercises the primitive in isolation; the full Chiaroscuro participant
    (:mod:`repro.core.participant`) embeds the same logic inside its
    computation step.

    Every estimate that leaves the node is first passed through
    :func:`rerandomize_estimate`, so an observer of two consecutive hops
    cannot link the forwarded ciphertexts (same plaintexts, fresh
    randomness).  With *wire* enabled the exchange additionally travels as
    serialized byte frames (:mod:`repro.gossip.messages`): the peer's
    contribution to the average is whatever decodes from the received
    bytes, and the network accounts measured frame lengths alongside the
    modelled sizes.
    """

    def __init__(self, node_id: int, backend: CipherBackend,
                 initial_value: Sequence[float] | np.ndarray, overlay: Overlay,
                 wire: bool = False) -> None:
        super().__init__(node_id)
        self.backend = backend
        self.estimate = fresh_estimate(backend, initial_value)
        self.overlay = overlay
        self.wire = bool(wire)
        self.exchanges_done = 0

    def next_cycle(self, engine: CycleEngine, cycle: int) -> None:
        rng = engine.rng_registry.stream(f"gossip.encrypted.{self.node_id}")
        online = set(engine.online_ids())
        peer_id = self.overlay.sample_neighbor(self.node_id, rng, online=online)
        if peer_id is None:
            return
        peer = engine.node(peer_id)
        if not isinstance(peer, EncryptedAveragingNode):
            raise GossipError("encrypted averaging requires homogeneous nodes")
        modelled = estimate_payload_bytes(self.backend, self.estimate)
        # Per-hop unlinkability: the ciphertexts put on the wire are a
        # re-randomized copy, never the node's stored estimate.
        outgoing = rerandomize_estimate(self.backend, self.estimate)
        if self.wire:
            from .messages import EncryptedAvgReply, EncryptedAvgRequest, deserialize

            width = wire_ciphertext_bytes(self.backend)
            frame = EncryptedAvgRequest(
                estimate=outgoing, ciphertext_bytes=width
            ).serialize()
            received = engine.transmit(
                self.node_id, peer_id, "encrypted-avg-request", frame,
                modelled_bytes=modelled,
            )
            if received is None:
                return
            try:
                deserialize(received)
            except WireFormatError:
                return  # corrupted request: the peer cannot serve the exchange
            peer_outgoing = rerandomize_estimate(self.backend, peer.estimate)
            reply_frame = EncryptedAvgReply(
                estimate=peer_outgoing, ciphertext_bytes=width
            ).serialize()
            reply = engine.transmit(
                peer_id, self.node_id, "encrypted-avg-reply", reply_frame,
                modelled_bytes=modelled,
            )
            if reply is None:
                # The pairwise exchange is atomic in the cycle model (the
                # responder has already applied the average); a dropped
                # reply is accounted but still decoded, matching the
                # reference semantics bit for bit.
                reply = reply_frame
            try:
                peer_view = deserialize(reply).estimate
            except WireFormatError:
                return  # corrupted reply: treat like a loss
        else:
            delivered = engine.send(
                self.node_id, peer_id, "encrypted-avg-request", None,
                size_bytes=modelled,
            )
            if not delivered:
                return
            peer_view = rerandomize_estimate(self.backend, peer.estimate)
            engine.send(peer_id, self.node_id, "encrypted-avg-reply", None,
                        size_bytes=modelled)
        averaged = average_estimates(self.backend, self.estimate, peer_view)
        self.estimate = averaged
        peer.estimate = averaged
        self.exchanges_done += 1
        peer.exchanges_done += 1


def encrypted_gossip_average(
    backend: CipherBackend,
    values: np.ndarray,
    cycles: int = 10,
    topology: str = "complete",
    seed: int = 0,
    share_indices: Sequence[int] | None = None,
    wire: str = "auto",
) -> np.ndarray:
    """Run encrypted push-pull averaging and decrypt every node's estimate.

    Returns the ``(n_nodes, dimension)`` matrix of decrypted estimates; used
    by tests and by the gossip-convergence experiment under encryption.
    ``wire="auto"`` (default) moves every exchange as serialized byte
    frames; ``"off"`` reproduces the reference-passing transport.  Both
    produce identical decrypted estimates.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise GossipError(f"values must be two-dimensional, got shape {values.shape}")
    check_positive_int(cycles, "cycles")
    wire_enabled = normalize_wire(wire) != "off"
    n_nodes = values.shape[0]
    value_bound = float(np.abs(values).max()) if values.size else 1.0
    check_headroom(backend, max(value_bound, 1.0), total_halvings=2 * cycles + 2)
    overlay = build_overlay(n_nodes, topology=topology, seed=seed)
    nodes = [
        EncryptedAveragingNode(i, backend, values[i], overlay, wire=wire_enabled)
        for i in range(n_nodes)
    ]
    engine = CycleEngine(nodes, seed=seed)
    engine.run(cycles)
    if share_indices is None:
        share_indices = list(range(1, backend.threshold + 1))
    return np.vstack([
        decode_estimate(backend, node.estimate, share_indices) for node in nodes
    ])
