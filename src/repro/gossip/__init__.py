"""Gossip layer: overlays, cleartext averaging protocols and the encrypted
gossip averaging primitive used by the Chiaroscuro computation step."""

from .encrypted_sum import (
    EncryptedAveragingNode,
    EncryptedEstimate,
    add_estimates,
    average_estimates,
    check_headroom,
    decode_estimate,
    encrypted_gossip_average,
    estimate_payload_bytes,
    fresh_estimate,
    lift_estimate,
    required_headroom_bits,
    rerandomize_estimate,
    zero_estimate,
)
from .overlay import Overlay, build_overlay
from .protocol import (
    PushPullAveragingNode,
    PushSumNode,
    gossip_average,
    max_relative_error,
    mean_relative_error,
)

__all__ = [
    "Overlay",
    "build_overlay",
    "PushPullAveragingNode",
    "PushSumNode",
    "gossip_average",
    "max_relative_error",
    "mean_relative_error",
    "EncryptedEstimate",
    "EncryptedAveragingNode",
    "fresh_estimate",
    "zero_estimate",
    "lift_estimate",
    "average_estimates",
    "add_estimates",
    "rerandomize_estimate",
    "decode_estimate",
    "estimate_payload_bytes",
    "required_headroom_bits",
    "check_headroom",
    "encrypted_gossip_average",
]
