"""Targeted (adversarial, non-random) wire-frame mutations.

The PR 3 corruption fault model flips one *random* bit per frame and relies
on the CRC to catch it.  An adversary is not random: they aim at specific
fields, and — crucially — they can recompute the trailing CRC after
mutating, so the checksum alone is no defence.  This module builds exactly
those mutations, for the conformance suite to assert that the decoder
rejects every one of them with :class:`~repro.exceptions.WireFormatError`
and nothing else, on both transports:

* **version byte** — bumped or zeroed, CRC fixed up: the structural version
  check must reject it;
* **type byte** — unknown message type, CRC fixed up;
* **length varint** — declared body length off by one in either direction,
  CRC fixed up: the length/actual-body consistency check must reject it;
* **CRC** — one bit of the checksum flipped (the classic integrity case);
* **truncation** — body shortened but *declared length and CRC fixed up*,
  so only full-body consumption checks can catch it;
* **slot metadata** — for ciphertext-bearing frames: the ciphertext-width
  varint zeroed or inflated past the wire limit, and the halvings varint
  inflated past its field limit, all with the envelope re-framed (valid
  length + CRC): only the decoder's field validation stands between a
  forged slot layout and a misdecoded ciphertext.

A mutation that *fixes up* the CRC models a man-in-the-middle; one that
does not models line noise.  Both must fail closed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..crypto.wire import MAX_FRAME_BYTES, WIRE_VERSION, WireReader, write_varint
from ..exceptions import WireFormatError
from ..gossip.messages import FRAME_MAGIC

#: Frame types whose body starts with a ciphertext-width varint followed by
#: estimate metadata (see :mod:`repro.gossip.messages`).
_ESTIMATE_FRAME_TYPES = frozenset({0x01, 0x02, 0x03, 0x04, 0x05, 0x06})

#: Limits mirrored from the decoder (kept literal on purpose: the mutations
#: must track what the *wire* rejects, not what the encoder emits).
_WIDTH_LIMIT = 1 << 16
_HALVINGS_LIMIT = 1 << 20


@dataclass(frozen=True)
class TargetedMutation:
    """One adversarial variant of a frame, aimed at a named field."""

    target: str
    frame: bytes
    crc_fixed: bool


def _split_frame(frame: bytes) -> tuple[bytes, bytes]:
    """Split a well-formed frame into (envelope prefix, body); checksum dropped.

    The prefix is magic + version + type (the body-length varint is
    re-encoded by :func:`reframe_body`).
    """
    reader = WireReader(frame)
    if reader.read_bytes(2) != FRAME_MAGIC:
        raise WireFormatError("not a Chiaroscuro wire frame")
    reader.read_bytes(2)  # version + type
    body_length = reader.read_varint(limit=MAX_FRAME_BYTES)
    body_start = len(frame) - reader.remaining
    if body_length + 4 != reader.remaining:
        raise WireFormatError("refusing to mutate an already-inconsistent frame")
    return frame[:4], frame[body_start:body_start + body_length]


def reframe_body(frame: bytes, body: bytes, *, version: int | None = None,
                 type_byte: int | None = None,
                 declared_length: int | None = None) -> bytes:
    """Rebuild a frame around *body* with a *valid* trailing CRC.

    This is the adversary's toolbox: swap in a forged body (or forged
    envelope fields) and recompute the checksum so that only structural
    validation can reject the result.  *declared_length* overrides the
    body-length varint (defaults to the actual body length).
    """
    prefix, _ = _split_frame(frame)
    out = bytearray(FRAME_MAGIC)
    out.append(WIRE_VERSION if version is None else version)
    out.append(prefix[3] if type_byte is None else type_byte)
    write_varint(out, len(body) if declared_length is None else declared_length)
    out.extend(body)
    out.extend(zlib.crc32(out).to_bytes(4, "big"))
    return bytes(out)


def _mutate_leading_varints(frame: bytes, body: bytes) -> list[TargetedMutation]:
    """Slot-metadata mutations for estimate-bearing frames.

    The body of every estimate frame starts with the ciphertext-width
    varint; the halvings varint follows after the frame-specific prelude.
    Rather than tracking each layout, the mutations rewrite the *first*
    varint (always the width) and append a canonical over-limit varint
    where the decoder expects more metadata — both forged layouts must die
    in field validation, whatever the message type.
    """
    mutations: list[TargetedMutation] = []
    reader = WireReader(body)
    try:
        reader.read_varint(limit=_WIDTH_LIMIT)
    except WireFormatError:
        return mutations
    width_end = len(body) - reader.remaining
    rest = body[width_end:]

    zero_width = bytearray()
    write_varint(zero_width, 0)
    mutations.append(TargetedMutation(
        target="slot-width-zero",
        frame=reframe_body(frame, bytes(zero_width) + rest),
        crc_fixed=True,
    ))
    huge_width = bytearray()
    write_varint(huge_width, _WIDTH_LIMIT + 1)
    mutations.append(TargetedMutation(
        target="slot-width-over-limit",
        frame=reframe_body(frame, bytes(huge_width) + rest),
        crc_fixed=True,
    ))
    # Replace everything after the width with one huge halvings varint: the
    # decoder reads halvings right after the frame prelude, and the field
    # limit must reject it before any ciphertext bytes are interpreted.
    huge_halvings = bytearray(body[:width_end])
    write_varint(huge_halvings, _HALVINGS_LIMIT + 1)
    mutations.append(TargetedMutation(
        target="slot-halvings-over-limit",
        frame=reframe_body(frame, bytes(huge_halvings)),
        crc_fixed=True,
    ))
    return mutations


def targeted_mutations(frame: bytes) -> list[TargetedMutation]:
    """Every field-aimed mutation of one well-formed frame.

    Each returned frame must be rejected by
    :func:`repro.gossip.messages.deserialize` with
    :class:`~repro.exceptions.WireFormatError` — never decoded, never any
    other exception.
    """
    _, body = _split_frame(frame)
    mutations = [
        TargetedMutation(
            target="magic",
            frame=b"XX" + frame[2:],
            crc_fixed=False,
        ),
        TargetedMutation(
            target="version-bumped",
            frame=reframe_body(frame, body, version=WIRE_VERSION + 1),
            crc_fixed=True,
        ),
        TargetedMutation(
            target="version-zero",
            frame=reframe_body(frame, body, version=0),
            crc_fixed=True,
        ),
        TargetedMutation(
            target="type-unknown",
            frame=reframe_body(frame, body, type_byte=0xEE),
            crc_fixed=True,
        ),
        TargetedMutation(
            target="length-over",
            frame=reframe_body(frame, body, declared_length=len(body) + 1),
            crc_fixed=True,
        ),
        TargetedMutation(
            target="crc-bit-flip",
            frame=frame[:-1] + bytes([frame[-1] ^ 0x01]),
            crc_fixed=False,
        ),
        TargetedMutation(
            target="truncated-reframed",
            frame=reframe_body(frame, body[:-1]) if body else
            reframe_body(frame, body, declared_length=1),
            crc_fixed=True,
        ),
    ]
    if body:
        mutations.append(TargetedMutation(
            target="length-under",
            frame=reframe_body(frame, body, declared_length=len(body) - 1),
            crc_fixed=True,
        ))
    if frame[3] in _ESTIMATE_FRAME_TYPES:
        mutations.extend(_mutate_leading_varints(frame, body))
    return mutations
