"""Socket records: the envelope the live runner puts around wire frames.

A TCP stream has no message boundaries, so every record the multi-process
runner exchanges — protocol frames, control commands, bootstrap metadata —
travels inside a length-prefixed envelope::

    offset  size  field
    0       4     record length L (big-endian, excluding these 4 bytes)
    4       1     kind: 0x01 control, 0x02 frame
    5       8     correlation id (big-endian; pairs a reply with its request)
    13      1     flags (bit 0: reply; bit 1: payload is a BatchEnvelope)
    14      4     header length H (big-endian)
    18      H     header: canonical JSON object (UTF-8)
    18+H    ...   payload: for ``frame`` records, one serialized wire frame
                  (see :mod:`repro.gossip.messages`); empty or opaque bytes
                  for ``control`` records

The envelope is deliberately *not* part of the protocol wire format: the
frames it carries are the exact bytes the cycle simulation transports, and
only those frame bytes are charged to the protocol's traffic accounting.
Envelope and control bytes are runner overhead, reported separately by the
live runner's socket statistics.

Python's ``json`` round-trips finite floats exactly (``repr``-based
encoding), which the live runner relies on when centroids or profiles
travel in control headers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..crypto.wire import MAX_FRAME_BYTES
from ..exceptions import ReproError

#: Record kinds.
KIND_CONTROL = 0x01
KIND_FRAME = 0x02

_KINDS = (KIND_CONTROL, KIND_FRAME)

#: Flag bits.
FLAG_REPLY = 0x01
#: The payload is a :class:`~repro.gossip.messages.BatchEnvelope` frame
#: packing several protocol frames.  Decoders ignore unknown flag bits, so
#: this bit is backward compatible: a record without it is byte-identical
#: to what the unbatched runner has always produced.
FLAG_BATCH = 0x02

#: Upper bound on one record: any frame the protocol wire format accepts
#: must fit, plus generous room for the envelope fields and JSON header —
#: a maximum-size frame must never be transportable in cycle mode but not
#: over a socket.
MAX_RECORD_BYTES = MAX_FRAME_BYTES + (1 << 20)

#: Default high-water mark (bytes) on a record connection's transport write
#: buffer: a writer racing ahead of a slow reader parks in ``drain()`` once
#: this much is queued, instead of buffering records without bound.  64 KiB
#: holds a handful of typical diptych frames — deep enough to pipeline,
#: shallow enough that backpressure engages before memory does.
#: ``RuntimeConfig.write_buffer_limit`` (which overrides this per run)
#: defaults to the same value.
DEFAULT_WRITE_BUFFER_LIMIT = 1 << 16

_PREFIX_BYTES = 4
_FIXED_BYTES = 1 + 8 + 1 + 4  # kind + correlation id + flags + header length


class EnvelopeError(ReproError):
    """A malformed socket record (bad kind, length, or header encoding)."""


@dataclass(frozen=True)
class Envelope:
    """One socket record: kind, correlation id, JSON header, byte payload."""

    kind: int
    correlation_id: int
    header: dict[str, Any] = field(default_factory=dict)
    payload: bytes = b""
    is_reply: bool = False
    is_batch: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise EnvelopeError(f"unknown record kind 0x{self.kind:02x}")
        if not 0 <= self.correlation_id < 1 << 64:
            raise EnvelopeError(f"correlation id {self.correlation_id} outside 64 bits")


def encode_envelope(envelope: Envelope) -> bytes:
    """Serialize an envelope, length prefix included."""
    header_bytes = json.dumps(
        envelope.header, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    body_length = _FIXED_BYTES + len(header_bytes) + len(envelope.payload)
    if body_length > MAX_RECORD_BYTES:
        raise EnvelopeError(f"record of {body_length} bytes exceeds the record limit")
    out = bytearray()
    out.extend(body_length.to_bytes(_PREFIX_BYTES, "big"))
    out.append(envelope.kind)
    out.extend(envelope.correlation_id.to_bytes(8, "big"))
    flags = (FLAG_REPLY if envelope.is_reply else 0) | (
        FLAG_BATCH if envelope.is_batch else 0
    )
    out.append(flags)
    out.extend(len(header_bytes).to_bytes(4, "big"))
    out.extend(header_bytes)
    out.extend(envelope.payload)
    return bytes(out)


def decode_envelope(body: bytes) -> Envelope:
    """Decode one record *body* (the bytes after the length prefix)."""
    if len(body) < _FIXED_BYTES:
        raise EnvelopeError(f"record body of {len(body)} bytes is too short")
    kind = body[0]
    if kind not in _KINDS:
        raise EnvelopeError(f"unknown record kind 0x{kind:02x}")
    correlation_id = int.from_bytes(body[1:9], "big")
    flags = body[9]
    header_length = int.from_bytes(body[10:14], "big")
    if _FIXED_BYTES + header_length > len(body):
        raise EnvelopeError(
            f"declared header of {header_length} bytes exceeds the record "
            f"({len(body) - _FIXED_BYTES} bytes available)"
        )
    header_bytes = body[_FIXED_BYTES:_FIXED_BYTES + header_length]
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise EnvelopeError(f"undecodable record header: {exc}") from exc
    if not isinstance(header, dict):
        raise EnvelopeError("record headers must be JSON objects")
    payload = body[_FIXED_BYTES + header_length:]
    return Envelope(
        kind=kind,
        correlation_id=correlation_id,
        header=header,
        payload=payload,
        is_reply=bool(flags & FLAG_REPLY),
        is_batch=bool(flags & FLAG_BATCH),
    )


def read_length_prefix(prefix: bytes) -> int:
    """Validate and decode a 4-byte record length prefix."""
    if len(prefix) != _PREFIX_BYTES:
        raise EnvelopeError(f"length prefix must be {_PREFIX_BYTES} bytes")
    length = int.from_bytes(prefix, "big")
    if not _FIXED_BYTES <= length <= MAX_RECORD_BYTES:
        raise EnvelopeError(f"record length {length} outside the accepted range")
    return length
