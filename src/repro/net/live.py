"""The live runner: Chiaroscuro over real TCP sockets between OS processes.

``repro run --live --processes N`` executes the protocol with *N* worker
processes, each hosting a shard of the participants (round-robin by node
id).  Every protocol exchange — diptych gossip, committee decryption —
moves the exact serialized wire frames of :mod:`repro.gossip.messages` over
asyncio TCP connections between the workers; membership and the threshold
public key are bootstrapped by actually driving the
``MembershipAnnouncement``/``KeyAnnouncement`` frames through
:class:`~repro.net.bootstrap.MembershipDirectory`.

Architecture::

    coordinator (parent process)
      - derives the RunSetup (data, backend+keys, overlay, seeds)
      - forks N workers, serves the control channel
      - stepping="sequential": replays the cycle engine's scheduler stream
        and steps participants one at a time, in the exact global order the
        CycleEngine would use
      - stepping="concurrent": enforces iteration epochs only — one
        run-cycle request per worker per epoch, every worker advancing its
        whole shard with many exchanges in flight
      - collects per-node histories + traffic, assembles the result

    worker i (OS process)
      - hosts participants {id : id % N == i}
      - announces them with MembershipAnnouncement frames, verifies the
        KeyAnnouncement against its (fork-inherited) key material
      - serves gossip/decrypt frames from peer workers over its TCP server
      - accounts traffic for its own nodes only (the authoritative
        byte-count site of :mod:`repro.net.transport`)

Determinism: with the default ``runtime.stepping="sequential"``, stepping
follows the replayed scheduler order, peer sampling uses the same per-node
streams, and homomorphic averaging is commutative in the plaintexts, so a
live run produces *the same clustering results* as ``mode="cycle"`` with
the same seed — bit-identical for every backend, since threshold
decryption is exact integer arithmetic.  With
``runtime.stepping="concurrent"`` that barrier is dropped for throughput:
workers drive their shards with up to ``runtime.concurrency`` node steps
in flight each, the interleaving becomes timing-dependent, and the run is
no longer bit-reproducible — the divergence from the deterministic
reference is measured and reported as the ``envelope`` field of the cost
summary (see :mod:`repro.analysis.envelope`).
The caveats (see README "Live runner"): the two sides of a gossip exchange
hold independently re-randomized ciphertexts rather than one shared
object (identical plaintexts), control-plane records (probes, stepping,
bootstrap) are runner overhead excluded from the protocol byte
accounting, and the fault models (churn, loss, corruption) are not
supported yet.  Per-iteration execution-log cost deltas cover
messages/bytes *and* the crypto-operation counters: each worker meters
its process-global counter around every unit of protocol work
(:class:`_CryptoMeter`), so live runs have the same per-iteration cost
records as cycle runs.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import socket
import sys
import traceback
from dataclasses import dataclass, field, replace
from typing import Any, Awaitable, Callable, Sequence

import numpy as np

from ..config import ChiaroscuroConfig
from ..core.collaborative import (
    build_decrypt_request,
    build_decrypt_response,
    decode_decrypt_response,
    finalize_decryption,
    share_holder_ids,
    share_index_of,
)
from ..core.execution_log import ExecutionLog, IterationRecord
from ..core.participant import (
    ChiaroscuroParticipant,
    Phase,
    gossip_decision,
    peer_sampling_stream,
)
from ..analysis.envelope import nondeterminism_envelope
from ..core.runner import (
    ParticipantOutcome,
    RunSetup,
    assemble_result,
    build_run_setup,
    plan_max_cycles,
    run_chiaroscuro,
    run_log_metadata,
)
from ..crypto.wire import wire_ciphertext_bytes
from ..exceptions import ProtocolError, ThresholdError, WireFormatError
from ..gossip.encrypted_sum import average_estimates, estimate_payload_bytes
from ..gossip.messages import (
    BatchEnvelope,
    DecryptRequest,
    DiptychExchange,
    DiptychReply,
    batch_frames,
    deserialize,
)
from ..simulation.network import Message, Network, TrafficStats
from ..simulation.rng import RngRegistry
from ..timeseries import TimeSeriesCollection
from .bootstrap import MembershipDirectory, key_announcement_for, verify_key_announcement
from .envelope import (
    DEFAULT_WRITE_BUFFER_LIMIT,
    KIND_CONTROL,
    KIND_FRAME,
    Envelope,
    decode_envelope,
    encode_envelope,
    read_length_prefix,
)


# ---------------------------------------------------------------------- sockets
@dataclass
class SocketStats:
    """Runner-level socket I/O of one worker (envelopes included).

    This is deliberately separate from the protocol's
    :class:`~repro.simulation.network.TrafficStats`: protocol accounting
    charges frame bytes only, while these counters measure everything that
    actually crossed the sockets (envelopes, control records, bootstrap).

    ``drain_waits`` counts the writes that found the transport buffer above
    its high-water mark and had to wait for the kernel to drain it — the
    observable signature of backpressure engaging against a slow reader.

    ``batched_records`` / ``batched_frames`` count the outgoing batched
    socket records and the protocol frames they carried: their ratio is the
    record amortisation ``network.batching`` achieved (zero both when
    batching is off).
    """

    bytes_sent: int = 0
    bytes_received: int = 0
    records_sent: int = 0
    records_received: int = 0
    drain_waits: int = 0
    batched_records: int = 0
    batched_frames: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "records_sent": self.records_sent,
            "records_received": self.records_received,
            "drain_waits": self.drain_waits,
            "batched_records": self.batched_records,
            "batched_frames": self.batched_frames,
        }


class FrameConnection:
    """One TCP connection moving length-prefixed envelope records.

    Writes apply backpressure instead of buffering without bound: the
    transport's high-water mark is set to *write_buffer_limit* and every
    write drains after handing its record to the transport, so a writer
    racing ahead of a slow reader parks in ``drain()`` once the buffer
    crosses the mark (counted in ``SocketStats.drain_waits``).  Only the
    ``write()`` call itself is serialized under the lock — records stay
    whole and ordered — while the drain happens outside it, so concurrent
    senders pipeline their records back-to-back onto one connection
    instead of taking turns at full round-trips.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
                 stats: SocketStats,
                 write_buffer_limit: int | None = DEFAULT_WRITE_BUFFER_LIMIT) -> None:
        self._reader = reader
        self._writer = writer
        self._stats = stats
        self._write_lock = asyncio.Lock()
        self._high_water = write_buffer_limit
        if write_buffer_limit is not None:
            writer.transport.set_write_buffer_limits(high=write_buffer_limit)
        # Disable Nagle explicitly: asyncio only does it when sock.proto is
        # IPPROTO_TCP, which connections accepted from a manually created
        # listener (proto 0) fail — and a Nagle'd reply stream interacts
        # with delayed ACKs into ~40ms stalls whenever two small replies go
        # out back to back, which is the normal case under concurrent
        # stepping (sequential ping-pong never trips it).
        sock = writer.get_extra_info("socket")
        if sock is not None and sock.family in (socket.AF_INET, socket.AF_INET6):
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - non-TCP or closed socket
                pass

    async def write(self, envelope: Envelope) -> None:
        record = encode_envelope(envelope)
        async with self._write_lock:
            self._writer.write(record)
            self._stats.bytes_sent += len(record)
            self._stats.records_sent += 1
        if (self._high_water is not None
                and self._writer.transport.get_write_buffer_size() > self._high_water):
            self._stats.drain_waits += 1
        await self._writer.drain()

    async def read(self) -> Envelope:
        prefix = await self._reader.readexactly(4)
        length = read_length_prefix(prefix)
        body = await self._reader.readexactly(length)
        self._stats.bytes_received += 4 + len(body)
        self._stats.records_received += 1
        return decode_envelope(body)

    def close(self) -> None:
        try:
            self._writer.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


class RequestChannel:
    """Request/reply multiplexing over one :class:`FrameConnection`.

    Outgoing requests get a fresh correlation id and an awaitable future;
    incoming records are dispatched by :meth:`pump`: replies resolve their
    future, everything else goes to *handler* (which may return a reply
    envelope to send back, or ``None`` for notifications).
    """

    def __init__(
        self,
        connection: FrameConnection,
        handler: Callable[[Envelope], Awaitable[Envelope | None]] | None = None,
    ) -> None:
        self.connection = connection
        self._handler = handler
        self._pending: dict[int, asyncio.Future[Envelope]] = {}
        self._next_id = 1

    async def request(self, envelope: Envelope) -> Envelope:
        correlation_id = self._next_id
        self._next_id += 1
        envelope = Envelope(
            kind=envelope.kind, correlation_id=correlation_id,
            header=envelope.header, payload=envelope.payload, is_reply=False,
            is_batch=envelope.is_batch,
        )
        future: asyncio.Future[Envelope] = asyncio.get_running_loop().create_future()
        self._pending[correlation_id] = future
        try:
            await self.connection.write(envelope)
            return await future
        finally:
            self._pending.pop(correlation_id, None)

    async def notify(self, envelope: Envelope) -> None:
        await self.connection.write(envelope)

    async def pump(self) -> None:
        """Read records until EOF, dispatching replies and requests.

        Whatever ends the loop — EOF, reset, a handler error — every
        in-flight request on this channel is failed immediately, so callers
        never hang on a dead connection.
        """
        error: BaseException | None = None
        try:
            while True:
                try:
                    envelope = await self.connection.read()
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                if envelope.is_reply:
                    future = self._pending.get(envelope.correlation_id)
                    if future is not None and not future.done():
                        future.set_result(envelope)
                    continue
                if self._handler is None:
                    raise ProtocolError(
                        f"unsolicited record {envelope.header!r} on a request-only link"
                    )
                reply = await self._handler(envelope)
                if reply is not None:
                    await self.connection.write(Envelope(
                        kind=reply.kind, correlation_id=envelope.correlation_id,
                        header=reply.header, payload=reply.payload, is_reply=True,
                        is_batch=reply.is_batch,
                    ))
        except BaseException as exc:
            error = exc
            raise
        finally:
            self.fail_pending(error or ProtocolError("connection closed"))

    def fail_pending(self, error: BaseException) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)


# ---------------------------------------------------------------------- transport
class WorkerTransport:
    """The asyncio TCP transport of one worker: delivery plus accounting.

    The live counterpart of :class:`~repro.net.transport.LoopbackTransport`:
    requests carry one serialized wire frame to a participant (local or on
    a peer worker) and await the frame-carrying reply.  The authoritative
    accounting rule is the transport contract: ``bytes_sent`` of a node is
    charged here, exactly once, on the worker hosting that node — measured
    frame lengths, never envelope or control bytes.
    """

    def __init__(
        self,
        worker_index: int,
        n_nodes: int,
        local_ids: set[int],
        directory: MembershipDirectory,
        handler: "WorkerProtocolHandler",
        stats: SocketStats,
        connect_timeout: float,
        write_buffer_limit: int | None = None,
    ) -> None:
        self.worker_index = worker_index
        self.local_ids = local_ids
        self.directory = directory
        self.handler = handler
        self.socket_stats = stats
        self.connect_timeout = connect_timeout
        self.write_buffer_limit = write_buffer_limit
        self.ledger = Network(n_nodes=n_nodes, drop_probability=0.0)
        self.iteration_traffic: dict[int, dict[str, float]] = {}
        self._peer_channels: dict[tuple[str, int], RequestChannel] = {}
        self._peer_tasks: list[asyncio.Task] = []
        self._dial_locks: dict[tuple[str, int], asyncio.Lock] = {}

    # ------------------------------------------------------------------ accounting
    def _account_send(self, sender: int, recipient: int, kind: str,
                      size_bytes: int, modelled: int | None) -> None:
        self.ledger.account_send(Message(
            sender=sender, recipient=recipient, kind=kind, payload=b"",
            size_bytes=size_bytes, modelled_bytes=modelled,
        ))
        # Per-iteration cost deltas: every send is charged to the iteration
        # its (locally hosted) sender is currently working on, mirroring the
        # cycle engine's per-iteration execution-log records.
        participant = self.handler.participants.get(sender)
        if participant is not None and participant.iteration > 0:
            bucket = self.iteration_traffic.setdefault(
                participant.iteration, {"messages_sent": 0.0, "bytes_sent": 0.0}
            )
            bucket["messages_sent"] += 1.0
            bucket["bytes_sent"] += float(size_bytes)

    def _account_receive(self, sender: int, recipient: int, kind: str,
                         size_bytes: int, modelled: int | None) -> None:
        self.ledger.account_receive(Message(
            sender=sender, recipient=recipient, kind=kind, payload=b"",
            size_bytes=size_bytes, modelled_bytes=modelled,
        ))

    def stats_for(self, node_id: int) -> TrafficStats:
        return self.ledger.stats_for(node_id)

    # ------------------------------------------------------------------ links
    async def _channel_to(self, node_id: int) -> RequestChannel:
        """The (single, reused) request channel to the worker hosting *node_id*.

        One connection per worker pair, created on first use and shared by
        every local node thereafter — concurrent requests pipeline over it
        via their correlation ids.  The per-address dial lock keeps
        concurrent first users from racing to open duplicate connections.
        """
        address = self.directory.address_of(node_id)
        channel = self._peer_channels.get(address)
        if channel is not None:
            return channel
        lock = self._dial_locks.setdefault(address, asyncio.Lock())
        async with lock:
            channel = self._peer_channels.get(address)
            if channel is None:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(address[0], address[1]),
                    timeout=self.connect_timeout,
                )
                channel = RequestChannel(FrameConnection(
                    reader, writer, self.socket_stats,
                    write_buffer_limit=self.write_buffer_limit,
                ))
                self._peer_channels[address] = channel
                self._peer_tasks.append(asyncio.create_task(channel.pump()))
        return channel

    def close(self) -> None:
        for task in self._peer_tasks:
            task.cancel()
        for channel in self._peer_channels.values():
            channel.connection.close()

    # ------------------------------------------------------------------ requests
    async def control_request(self, node_id: int, header: dict[str, Any]) -> dict[str, Any]:
        """Unaccounted control round-trip to the worker hosting *node_id*.

        Control records (gossip state probes) are runner metadata — the
        cycle engine reads peer state from shared memory at zero cost, so
        charging them would break byte parity between the two modes.  They
        do show up in the socket statistics.
        """
        if node_id in self.local_ids:
            return self.handler.handle_control(header)
        channel = await self._channel_to(node_id)
        reply = await channel.request(Envelope(
            kind=KIND_CONTROL, correlation_id=0, header=header,
        ))
        return reply.header

    async def frame_request(
        self, sender: int, recipient: int, kind: str, frame: bytes,
        modelled_bytes: int | None = None,
    ) -> tuple[dict[str, Any], bytes]:
        """One accounted frame round-trip: request frame out, reply frame back.

        Mirrors the two :meth:`CycleEngine.transmit` calls of a cycle-mode
        exchange: the request is charged to *sender* here, received by
        *recipient* on its hosting worker; the reply is charged to
        *recipient* there and received by *sender* here.
        """
        self._account_send(sender, recipient, kind, len(frame), modelled_bytes)
        header = {
            "op": kind, "sender": sender, "recipient": recipient,
            "modelled": modelled_bytes,
        }
        if recipient in self.local_ids:
            self._account_receive(sender, recipient, kind, len(frame), modelled_bytes)
            reply_header, reply_frame = self.handler.handle_frame(header, frame)
            if reply_frame:
                self._account_send(recipient, sender, kind + "-reply",
                                   len(reply_frame), modelled_bytes)
                self._account_receive(recipient, sender, kind + "-reply",
                                      len(reply_frame), modelled_bytes)
            return reply_header, reply_frame
        channel = await self._channel_to(recipient)
        reply = await channel.request(Envelope(
            kind=KIND_FRAME, correlation_id=0, header=header, payload=frame,
        ))
        if reply.payload:
            self._account_receive(recipient, sender, kind + "-reply",
                                  len(reply.payload), modelled_bytes)
        return reply.header, reply.payload

    async def batched_frame_requests(
        self, sender: int, recipients: Sequence[int], kind: str, frame: bytes,
        modelled_bytes: int | None = None, compress: bool = False,
    ) -> list[tuple[dict[str, Any], bytes]]:
        """The same frame to many recipients, one socket record per worker.

        Semantically identical to calling :meth:`frame_request` once per
        recipient — same protocol byte accounting, same per-recipient
        replies, in the same order — but remote recipients hosted on the
        same worker share one :class:`~repro.gossip.messages.BatchEnvelope`
        record instead of one record each (and identical frames compress
        extremely well when *compress* is set).  Only the on-socket bytes
        change; the ledger charges every per-recipient frame exactly as
        the unbatched path does.
        """
        results: dict[int, tuple[dict[str, Any], bytes]] = {}
        remote_groups: dict[tuple[str, int], list[int]] = {}
        for recipient in recipients:
            self._account_send(sender, recipient, kind, len(frame), modelled_bytes)
            if recipient in self.local_ids:
                self._account_receive(sender, recipient, kind, len(frame),
                                      modelled_bytes)
                header = {
                    "op": kind, "sender": sender, "recipient": recipient,
                    "modelled": modelled_bytes,
                }
                reply_header, reply_frame = self.handler.handle_frame(header, frame)
                if reply_frame:
                    self._account_send(recipient, sender, kind + "-reply",
                                       len(reply_frame), modelled_bytes)
                    self._account_receive(recipient, sender, kind + "-reply",
                                          len(reply_frame), modelled_bytes)
                results[recipient] = (reply_header, reply_frame)
            else:
                address = self.directory.address_of(recipient)
                remote_groups.setdefault(address, []).append(recipient)
        # Groups go out sequentially so the ledger and meter see the same
        # deterministic order as the unbatched loop.
        for group in remote_groups.values():
            channel = await self._channel_to(group[0])
            self.socket_stats.batched_records += 1
            self.socket_stats.batched_frames += len(group)
            reply = await channel.request(Envelope(
                kind=KIND_FRAME, correlation_id=0,
                header={"op": kind, "sender": sender, "recipients": group,
                        "modelled": modelled_bytes},
                payload=batch_frames([frame] * len(group), compress=compress),
                is_batch=True,
            ))
            reply_headers = reply.header.get("replies")
            reply_frames: Sequence[bytes] = ()
            if reply.payload:
                try:
                    decoded = deserialize(reply.payload)
                except WireFormatError:
                    decoded = None
                if isinstance(decoded, BatchEnvelope):
                    reply_frames = decoded.frames
            if (not isinstance(reply_headers, list)
                    or len(reply_headers) != len(group)
                    or len(reply_frames) != len(group)):
                # A malformed batched reply degrades into per-recipient
                # losses, the standard corruption-to-loss rule.
                error = {"error": reply.header.get("error", "batch_mismatch")}
                for recipient in group:
                    results[recipient] = (dict(error), b"")
                continue
            for recipient, reply_header, reply_frame in zip(
                group, reply_headers, reply_frames
            ):
                if reply_frame:
                    self._account_receive(recipient, sender, kind + "-reply",
                                          len(reply_frame), modelled_bytes)
                results[recipient] = (dict(reply_header), bytes(reply_frame))
        return [results[recipient] for recipient in recipients]


class _CryptoMeter:
    """Charges a worker's crypto-counter deltas to protocol iterations.

    The backend's operation counter is process-global, so per-iteration
    attribution works like the cycle observer's snapshot diffing: after
    every unit of protocol work on this worker — a local node's step, a
    peer frame served — the counter delta since the last snapshot is
    charged to the iteration of the node the work was done for, into the
    same per-iteration buckets as the message/byte accounting.  Deltas
    outside any iteration (bootstrap) advance the snapshot but are
    dropped, mirroring the traffic rule.
    """

    def __init__(self, counter: Any,
                 buckets: dict[int, dict[str, float]]) -> None:
        self._counter = counter
        self._buckets = buckets
        self._last = counter.as_dict()

    def charge(self, iteration: int) -> None:
        now = self._counter.as_dict()
        delta = {key: value - self._last.get(key, 0)
                 for key, value in now.items()
                 if value != self._last.get(key, 0)}
        self._last = now
        if not delta or iteration <= 0:
            return
        bucket = self._buckets.setdefault(
            iteration, {"messages_sent": 0.0, "bytes_sent": 0.0}
        )
        for key, value in delta.items():
            bucket[key] = bucket.get(key, 0.0) + float(value)


# ---------------------------------------------------------------------- handlers
class WorkerProtocolHandler:
    """Message-driven protocol logic of one worker's participants.

    Every handler is synchronous and self-contained (it never awaits a
    remote peer), which is what makes the request graph deadlock-free: a
    worker can always serve incoming gossip/decrypt frames while one of its
    own participants waits for a reply elsewhere.
    """

    def __init__(self, setup: RunSetup,
                 participants: dict[int, ChiaroscuroParticipant]) -> None:
        self.setup = setup
        self.participants = participants

    # ------------------------------------------------------------------ control
    def handle_control(self, header: dict[str, Any]) -> dict[str, Any]:
        op = header.get("op")
        if op == "probe":
            return self._handle_probe(header)
        raise ProtocolError(f"unknown control operation {op!r}")

    def _handle_probe(self, header: dict[str, Any]) -> dict[str, Any]:
        """Peer-state query: the live stand-in for the cycle engine's
        shared-memory reads, answered by the same shared predicate."""
        peer = self.participants[int(header["recipient"])]
        decision = gossip_decision(peer, int(header["iteration"]))
        if decision == "sync":
            return {"status": "sync", "profiles": peer.final_profiles.tolist()}
        if decision == "adopt":
            return {
                "status": "adopt",
                "iteration": peer.iteration,
                "centroids": peer.centroids.tolist(),
            }
        return {"status": decision}

    # ------------------------------------------------------------------ frames
    def handle_frame(self, header: dict[str, Any],
                     frame: bytes) -> tuple[dict[str, Any], bytes]:
        """Decode and serve one protocol frame; never raises on bad frames.

        A frame that fails to decode is answered with an ``error`` header
        (the initiator treats it as a loss), mirroring the cycle-mode rule
        that corruption degrades into loss and only
        :class:`~repro.exceptions.WireFormatError` is ever raised by
        decoding.
        """
        op = header.get("op")
        try:
            message = deserialize(frame)
        except WireFormatError as exc:
            return {"error": "wire_format", "detail": str(exc)}, b""
        if op == "diptych-exchange":
            return self._handle_exchange(header, message)
        if op == "decrypt-request":
            return self._handle_decrypt(header, message)
        return {"error": "unknown_op", "detail": str(op)}, b""

    def _handle_exchange(self, header: dict[str, Any],
                         message: Any) -> tuple[dict[str, Any], bytes]:
        if not isinstance(message, DiptychExchange):
            return {"error": "unexpected_type", "detail": type(message).__name__}, b""
        peer = self.participants[int(header["recipient"])]
        if peer.phase is not Phase.GOSSIP or peer.diptych is None \
                or peer.iteration != message.iteration:
            return {"error": "state"}, b""
        # The reply carries the peer's *pre-merge* re-randomized estimates
        # (the view that travels), exactly as the cycle-mode responder's
        # reply frame does; then the peer adopts the average of its stored
        # estimates and the received view.  Both sides end up holding the
        # same plaintext average.
        reply_data, reply_noise = peer._forwarded_estimates(peer.diptych)
        _merge_view_into(
            self.setup.backend, peer,
            list(message.data_estimates), list(message.noise_estimates),
        )
        width = wire_ciphertext_bytes(self.setup.backend)
        reply = DiptychReply(
            iteration=peer.iteration,
            data_estimates=tuple(reply_data),
            noise_estimates=tuple(reply_noise),
            ciphertext_bytes=width,
        ).serialize()
        return {}, reply

    def _handle_decrypt(self, header: dict[str, Any],
                        message: Any) -> tuple[dict[str, Any], bytes]:
        if not isinstance(message, DecryptRequest):
            return {"error": "unexpected_type", "detail": type(message).__name__}, b""
        backend = self.setup.backend
        helper_id = int(header["recipient"])
        share_index = share_index_of(helper_id, backend.n_shares)
        if share_index is None:
            return {"error": "no_share"}, b""
        partials = tuple(
            backend.partial_decrypt_vector(share_index, estimate.vector)
            for estimate in message.estimates
        )
        return {}, build_decrypt_response(backend, partials)


def _merge_view_into(backend, participant: ChiaroscuroParticipant,
                     view_data, view_noise) -> None:
    """Adopt the pairwise average of the stored diptych and a received view."""
    diptych = participant.diptych
    if len(view_data) != diptych.n_clusters or len(view_noise) != diptych.n_clusters:
        raise ProtocolError("peer view does not carry one estimate per cluster")
    for cluster in range(diptych.n_clusters):
        diptych.data_estimates[cluster] = average_estimates(
            backend, diptych.data_estimates[cluster], view_data[cluster]
        )
        diptych.noise_estimates[cluster] = average_estimates(
            backend, diptych.noise_estimates[cluster], view_noise[cluster]
        )


# ---------------------------------------------------------------------- driver
class LiveParticipantDriver:
    """Steps hosted participants, with gossip/decrypt over the transport.

    The assignment and convergence steps run the participant's own local
    code; only the two distributed steps are re-implemented message-driven
    — same decisions, in the same order, from the same random streams as
    the cycle engine's version.
    """

    def __init__(self, setup: RunSetup,
                 participants: dict[int, ChiaroscuroParticipant],
                 transport: WorkerTransport) -> None:
        self.setup = setup
        self.participants = participants
        self.transport = transport
        self.registry = RngRegistry(setup.config.simulation.seed)
        self._online = set(range(setup.n_participants))

    async def step(self, node_id: int) -> dict[str, Any]:
        participant = self.participants[node_id]
        if participant.phase is Phase.ASSIGN:
            participant._assignment_step()
        elif participant.phase is Phase.GOSSIP:
            await self._gossip_step(participant)
        elif participant.phase is Phase.DECRYPT:
            await self._decrypt_step(participant)
        return {"done": participant.is_done, "iteration": participant.iteration}

    # ------------------------------------------------------------------ gossip
    async def _gossip_step(self, participant: ChiaroscuroParticipant) -> None:
        config = self.setup.config
        backend = self.setup.backend
        rng = self.registry.stream(peer_sampling_stream(participant.node_id))
        for _ in range(config.gossip.exchanges_per_cycle):
            peer_id = participant.overlay.sample_neighbor(
                participant.node_id, rng, online=self._online
            )
            if peer_id is None:
                break
            probe = await self.transport.control_request(peer_id, {
                "op": "probe", "recipient": peer_id,
                "sender": participant.node_id,
                "iteration": participant.iteration,
            })
            status = probe.get("status")
            if status == "sync":
                participant.synchronize_with_profiles(probe["profiles"])
                return
            if status == "adopt":
                participant.adopt_peer_state(probe["centroids"],
                                             int(probe["iteration"]))
                if participant.phase is not Phase.GOSSIP:
                    return
                continue
            if status != "merge":
                continue
            diptych = participant.diptych
            payload = sum(
                estimate_payload_bytes(backend, estimate)
                for estimate in diptych.data_estimates + diptych.noise_estimates
            )
            outgoing_data, outgoing_noise = participant._forwarded_estimates(diptych)
            width = wire_ciphertext_bytes(backend)
            frame = DiptychExchange(
                iteration=participant.iteration,
                data_estimates=tuple(outgoing_data),
                noise_estimates=tuple(outgoing_noise),
                ciphertext_bytes=width,
            ).serialize()
            header, reply_frame = await self.transport.frame_request(
                participant.node_id, peer_id, "diptych-exchange", frame,
                modelled_bytes=payload,
            )
            if header.get("error") or not reply_frame:
                continue
            try:
                reply = deserialize(reply_frame)
            except WireFormatError:
                continue
            if not isinstance(reply, DiptychReply):
                continue
            _merge_view_into(
                backend, participant,
                list(reply.data_estimates), list(reply.noise_estimates),
            )
        participant.gossip_cycles_done += 1
        if participant.gossip_cycles_done >= config.gossip.cycles_per_aggregation:
            participant.phase = Phase.DECRYPT

    # ------------------------------------------------------------------ decryption
    async def _decrypt_step(self, participant: ChiaroscuroParticipant) -> None:
        backend = self.setup.backend
        diptych = participant.diptych
        if diptych is None:  # pragma: no cover - state machine guarantees this
            raise ProtocolError("decrypt phase reached without a diptych")
        try:
            if backend.is_packed:
                combined = [
                    participant.combined_estimate(cluster)
                    for cluster in range(participant.n_clusters)
                ]
                decrypted = await self._decrypt_many(participant, combined)
            else:
                decrypted = []
                for cluster in range(participant.n_clusters):
                    values = await self._decrypt_many(
                        participant, [participant.combined_estimate(cluster)]
                    )
                    decrypted.append(values[0])
        except ThresholdError:
            # Not enough usable partial decryptions this round; retry later.
            return
        participant._converge_from_decrypted(decrypted, self.setup.n_participants)

    async def _decrypt_many(self, participant: ChiaroscuroParticipant,
                            estimates: Sequence) -> list[np.ndarray]:
        """One committee round over the transport (the wire-mode pattern)."""
        backend = self.setup.backend
        committee = share_holder_ids(backend.n_shares)
        if len(committee) < backend.threshold:  # pragma: no cover - config-validated
            raise ThresholdError("committee smaller than the threshold")
        helpers = tuple(committee[: backend.threshold])
        modelled = sum(estimate_payload_bytes(backend, estimate) for estimate in estimates)
        request_frame = build_decrypt_request(backend, estimates)
        per_estimate: list[list] = [[] for _ in estimates]
        network = self.setup.config.network
        if network.batching:
            # Every helper receives the same request frame, so helpers
            # hosted on the same worker share one batched socket record.
            responses = await self.transport.batched_frame_requests(
                participant.node_id, helpers, "decrypt-request", request_frame,
                modelled_bytes=modelled, compress=network.compression,
            )
        else:
            responses = []
            for helper_id in helpers:
                responses.append(await self.transport.frame_request(
                    participant.node_id, helper_id, "decrypt-request",
                    request_frame, modelled_bytes=modelled,
                ))
        for header, response_frame in responses:
            if header.get("error") or not response_frame:
                continue
            partials = decode_decrypt_response(response_frame, len(estimates))
            if partials is None:
                continue
            for position, partial in enumerate(partials):
                per_estimate[position].append(partial)
        return finalize_decryption(backend, per_estimate, estimates)


# ---------------------------------------------------------------------- worker
def _collect_node_state(participant: ChiaroscuroParticipant,
                        stats: TrafficStats) -> dict[str, Any]:
    return {
        "node": participant.node_id,
        "iteration": participant.iteration,
        "stop_reason": participant.stop_reason,
        "done": participant.is_done,
        "final_profiles": (
            participant.final_profiles.tolist()
            if participant.final_profiles is not None else None
        ),
        "centroids": participant.centroids.tolist(),
        "assignment_history": [int(a) for a in participant.assignment_history],
        "displacement_history": [float(d) for d in participant.displacement_history],
        "perturbed_means_history": [
            means.tolist() for means in participant.perturbed_means_history
        ],
        "spends": [
            {"epsilon": spend.epsilon, "label": spend.label}
            for spend in participant.accountant
        ],
        "spent_epsilon": participant.accountant.spent_epsilon,
        "traffic": stats.as_dict(),
    }


async def _worker_async(worker_index: int, setup: RunSetup, local_ids: list[int],
                        coordinator_address: tuple[str, int]) -> None:
    config = setup.config
    runtime = config.runtime
    stats = SocketStats()
    participants = {
        node_id: setup.make_participant(node_id) for node_id in local_ids
    }
    handler = WorkerProtocolHandler(setup, participants)
    directory = MembershipDirectory()

    # The pool was prefilled in the coordinator before the fork: discard
    # those blinders — every worker must draw its own randomness, or two
    # workers would encrypt with identical blinders and their ciphertexts
    # would be linkable.  Then refill in the background: real deployments
    # fill encryption pools in idle time, and the worker is the right place
    # to demonstrate it (threads are started after the fork, never
    # inherited).
    pool = getattr(setup.backend, "_pool", None)
    if pool is not None and hasattr(pool, "start_background_refill"):
        pool.reset()
        pool.start_background_refill()

    server_socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server_socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    port = runtime.base_port + 1 + worker_index if runtime.base_port else 0
    server_socket.bind((runtime.host, port))
    host, port = server_socket.getsockname()[:2]

    transport = WorkerTransport(
        worker_index=worker_index,
        n_nodes=setup.n_participants,
        local_ids=set(local_ids),
        directory=directory,
        handler=handler,
        stats=stats,
        connect_timeout=runtime.connect_timeout,
        write_buffer_limit=runtime.write_buffer_limit,
    )
    driver = LiveParticipantDriver(setup, participants, transport)
    meter = _CryptoMeter(setup.backend.counter, transport.iteration_traffic)
    bootstrapped = asyncio.Event()
    shutdown = asyncio.Event()

    async def handle_peer_record(envelope: Envelope) -> Envelope | None:
        if envelope.kind == KIND_FRAME and envelope.is_batch:
            op = str(envelope.header.get("op", ""))
            sender = int(envelope.header["sender"])
            recipients = [int(r) for r in envelope.header.get("recipients", [])]
            modelled = envelope.header.get("modelled")
            try:
                batch = deserialize(envelope.payload)
            except WireFormatError as exc:
                return Envelope(kind=KIND_FRAME, correlation_id=0,
                                header={"error": f"bad batch: {exc}"},
                                is_reply=True, is_batch=True)
            if (not isinstance(batch, BatchEnvelope)
                    or len(batch.frames) != len(recipients)):
                return Envelope(kind=KIND_FRAME, correlation_id=0,
                                header={"error": "batch_mismatch"},
                                is_reply=True, is_batch=True)
            reply_headers: list[dict[str, Any]] = []
            reply_frames: list[bytes] = []
            for recipient, inner in zip(recipients, batch.frames):
                transport._account_receive(sender, recipient, op,
                                           len(inner), modelled)
                reply_header, reply_frame = handler.handle_frame(
                    {"op": op, "sender": sender, "recipient": recipient,
                     "modelled": modelled},
                    inner,
                )
                recipient_participant = handler.participants.get(recipient)
                if recipient_participant is not None:
                    meter.charge(recipient_participant.iteration)
                if reply_frame:
                    transport._account_send(recipient, sender, op + "-reply",
                                            len(reply_frame), modelled)
                reply_headers.append(reply_header)
                reply_frames.append(reply_frame)
            return Envelope(
                kind=KIND_FRAME, correlation_id=0,
                header={"replies": reply_headers},
                payload=batch_frames(reply_frames, compress=batch.compress),
                is_reply=True, is_batch=True,
            )
        if envelope.kind == KIND_FRAME:
            recipient = int(envelope.header["recipient"])
            transport._account_receive(
                int(envelope.header["sender"]), recipient,
                str(envelope.header.get("op", "")), len(envelope.payload),
                envelope.header.get("modelled"),
            )
            reply_header, reply_frame = handler.handle_frame(
                envelope.header, envelope.payload
            )
            # Crypto work serving a peer's frame (decrypt shares, averaging)
            # is charged to the local recipient's current iteration.
            recipient_participant = handler.participants.get(recipient)
            if recipient_participant is not None:
                meter.charge(recipient_participant.iteration)
            if reply_frame:
                transport._account_send(
                    recipient, int(envelope.header["sender"]),
                    str(envelope.header.get("op", "")) + "-reply",
                    len(reply_frame), envelope.header.get("modelled"),
                )
            return Envelope(kind=KIND_FRAME, correlation_id=0,
                            header=reply_header, payload=reply_frame,
                            is_reply=True)
        return Envelope(kind=KIND_CONTROL, correlation_id=0,
                        header=handler.handle_control(envelope.header),
                        is_reply=True)

    async def serve_peer(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        channel = RequestChannel(
            FrameConnection(reader, writer, stats,
                            write_buffer_limit=runtime.write_buffer_limit),
            handle_peer_record,
        )
        try:
            await channel.pump()
        except asyncio.CancelledError:
            # Normal teardown: the worker's loop shuts down while this
            # connection idles in read(); swallowing the cancellation here
            # keeps asyncio's stream callback from logging a spurious
            # traceback for every open peer link.
            pass
        finally:
            channel.connection.close()

    server = await asyncio.start_server(serve_peer, sock=server_socket)

    async def handle_coordinator_record(envelope: Envelope) -> Envelope | None:
        header = envelope.header
        op = header.get("op")
        if envelope.kind == KIND_FRAME:
            if op == "announce":
                address = header.get("address")
                directory.feed(
                    envelope.payload,
                    address=(address[0], int(address[1])) if address else None,
                    worker=header.get("worker"),
                )
                return None
            if op == "key":
                verify_key_announcement(envelope.payload, setup.backend)
                return Envelope(kind=KIND_CONTROL, correlation_id=0,
                                header={"ok": True}, is_reply=True)
            raise ProtocolError(f"unexpected bootstrap frame {op!r}")
        if op == "bootstrap-done":
            expected = int(header["n_nodes"])
            if len(directory) != expected:
                raise ProtocolError(
                    f"membership bootstrap incomplete: {len(directory)} of "
                    f"{expected} nodes announced"
                )
            bootstrapped.set()
            return Envelope(kind=KIND_CONTROL, correlation_id=0,
                            header={"ready": True}, is_reply=True)
        if op == "step":
            if not bootstrapped.is_set():
                raise ProtocolError("step before bootstrap completed")
            stepped = int(header["node"])
            result = await driver.step(stepped)
            # Everything the step executed locally (encrypt, re-randomize,
            # combine) is charged to the stepped node's current iteration.
            meter.charge(participants[stepped].iteration)
            return Envelope(kind=KIND_CONTROL, correlation_id=0,
                            header=result, is_reply=True)
        if op == "run-cycle":
            # Concurrent stepping: drive every not-yet-done local node
            # through one cycle as its own asyncio task, many exchanges in
            # flight at once, bounded by runtime.concurrency.  The crypto
            # meter's per-iteration attribution is approximate under this
            # interleaving (totals stay exact); the accounting contract's
            # byte charging is unaffected because every send is still
            # charged synchronously at its sending node.
            if not bootstrapped.is_set():
                raise ProtocolError("run-cycle before bootstrap completed")
            semaphore = asyncio.Semaphore(runtime.concurrency)

            async def step_node(node_id: int) -> bool:
                async with semaphore:
                    stepped = await driver.step(node_id)
                    meter.charge(participants[node_id].iteration)
                    return bool(stepped["done"])

            outcomes = await asyncio.gather(*(
                step_node(node_id) for node_id in local_ids
                if not participants[node_id].is_done
            ))
            pending = sum(1 for done in outcomes if not done)
            return Envelope(kind=KIND_CONTROL, correlation_id=0,
                            header={"pending": pending,
                                    "stepped": len(outcomes)},
                            is_reply=True)
        if op == "collect":
            payload = {
                "worker": worker_index,
                "nodes": [
                    _collect_node_state(participants[node_id],
                                        transport.stats_for(node_id))
                    for node_id in local_ids
                ],
                "crypto": setup.backend.counter.as_dict(),
                "socket": stats.as_dict(),
                "iteration_traffic": {
                    str(iteration): dict(bucket)
                    for iteration, bucket in transport.iteration_traffic.items()
                },
            }
            return Envelope(kind=KIND_CONTROL, correlation_id=0,
                            header=payload, is_reply=True)
        if op == "shutdown":
            # A notification, not a request: the worker tears down on its
            # own schedule, so no reply can race the connection close.
            shutdown.set()
            return None
        raise ProtocolError(f"unknown coordinator operation {op!r}")

    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(*coordinator_address),
        timeout=runtime.connect_timeout,
    )
    coordinator = RequestChannel(
        FrameConnection(reader, writer, stats,
                        write_buffer_limit=runtime.write_buffer_limit),
        handle_coordinator_record,
    )
    pump_task = asyncio.create_task(coordinator.pump())

    await coordinator.notify(Envelope(
        kind=KIND_CONTROL, correlation_id=0,
        header={"op": "hello", "worker": worker_index,
                "address": [host, port], "nodes": local_ids},
    ))
    # Drive the bootstrap announcements: one MembershipAnnouncement frame
    # per hosted participant, the address riding in the envelope header.
    for node_id in local_ids:
        frame = directory.announce(
            node_id, online=True, cycle=0,
            address=(host, port), worker=worker_index,
        )
        await coordinator.notify(Envelope(
            kind=KIND_FRAME, correlation_id=0,
            header={"op": "announce", "worker": worker_index,
                    "address": [host, port]},
            payload=frame,
        ))

    shutdown_task = asyncio.create_task(shutdown.wait())
    try:
        finished, _ = await asyncio.wait(
            {shutdown_task, pump_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if pump_task in finished and pump_task.exception() is not None:
            raise pump_task.exception()
    finally:
        shutdown_task.cancel()
        if pool is not None and hasattr(pool, "stop_background_refill"):
            pool.stop_background_refill()
        transport.close()
        pump_task.cancel()
        server.close()
        coordinator.connection.close()


def _worker_main(worker_index: int, setup: RunSetup, local_ids: list[int],
                 coordinator_address: tuple[str, int]) -> None:
    try:
        asyncio.run(_worker_async(worker_index, setup, local_ids, coordinator_address))
    except Exception:  # pragma: no cover - surfaced via the coordinator timeout
        traceback.print_exc(file=sys.stderr)
        os._exit(1)


# ---------------------------------------------------------------------- coordinator
@dataclass
class _WorkerLink:
    """Coordinator-side view of one connected worker."""

    channel: RequestChannel
    worker_index: int
    address: tuple[str, int]
    nodes: list[int] = field(default_factory=list)


class LiveRunner:
    """Coordinates one live run: spawn, bootstrap, step, collect."""

    def __init__(self, setup: RunSetup, collection_name: str,
                 max_extra_cycles: int = 50) -> None:
        self.setup = setup
        self.collection_name = collection_name
        self.max_extra_cycles = max_extra_cycles
        config = setup.config
        self.n_processes = min(config.runtime.processes, setup.n_participants)
        self.shards = [
            [node_id for node_id in range(setup.n_participants)
             if node_id % self.n_processes == worker]
            for worker in range(self.n_processes)
        ]

    # ------------------------------------------------------------------ lifecycle
    def run(self) -> "LiveRunOutcome":
        try:
            context = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise ProtocolError(
                "the live runner needs fork-based process spawning (the worker "
                "processes inherit the threshold key material from the "
                "coordinator); this platform does not provide it"
            ) from exc
        runtime = self.setup.config.runtime
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((runtime.host, runtime.base_port))
        listener.listen(self.n_processes)
        address = listener.getsockname()[:2]
        processes = [
            context.Process(
                target=_worker_main,
                args=(worker, self.setup, self.shards[worker], address),
                daemon=True,
            )
            for worker in range(self.n_processes)
        ]
        for process in processes:
            process.start()
        try:
            return asyncio.run(
                asyncio.wait_for(self._coordinate(listener), runtime.run_timeout)
            )
        except asyncio.TimeoutError as exc:
            raise ProtocolError(
                f"live run exceeded runtime.run_timeout={runtime.run_timeout}s"
            ) from exc
        finally:
            listener.close()
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join(timeout=5.0)

    async def _coordinate(self, listener: socket.socket) -> "LiveRunOutcome":
        setup = self.setup
        stats = SocketStats()
        directory = MembershipDirectory()
        links: dict[int, _WorkerLink] = {}
        connected = asyncio.Event()
        pump_tasks: list[asyncio.Task] = []

        def link_handler(link_box: list) -> Callable[[Envelope], Awaitable[Envelope | None]]:
            async def handle(envelope: Envelope) -> Envelope | None:
                header = envelope.header
                op = header.get("op")
                if op == "hello":
                    link = link_box[0]
                    link.worker_index = int(header["worker"])
                    link.address = (header["address"][0], int(header["address"][1]))
                    link.nodes = [int(node) for node in header["nodes"]]
                    links[link.worker_index] = link
                    if len(links) == self.n_processes:
                        connected.set()
                    return None
                if op == "announce" and envelope.kind == KIND_FRAME:
                    address = header.get("address")
                    directory.feed(
                        envelope.payload,
                        address=(address[0], int(address[1])) if address else None,
                        worker=header.get("worker"),
                    )
                    return None
                raise ProtocolError(f"unexpected worker record {op!r}")
            return handle

        async def accept(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
            link = _WorkerLink(
                channel=None,  # type: ignore[arg-type]
                worker_index=-1, address=("", 0),
            )
            box = [link]
            channel = RequestChannel(
                FrameConnection(
                    reader, writer, stats,
                    write_buffer_limit=setup.config.runtime.write_buffer_limit,
                ),
                link_handler(box),
            )
            link.channel = channel
            pump_tasks.append(asyncio.create_task(channel.pump()))

        def raise_if_a_link_died() -> None:
            # A pump task that finished during bootstrap — handler error or
            # plain EOF from a crashed worker — would otherwise leave the
            # coordinator polling until run_timeout with no root cause.
            for task in pump_tasks:
                if task.done():
                    error = task.exception()
                    if error is not None:
                        raise error
                    raise ProtocolError(
                        "a worker connection closed during bootstrap "
                        "(see the worker's stderr for its traceback)"
                    )

        server = await asyncio.start_server(accept, sock=listener)
        try:
            while not connected.is_set():
                raise_if_a_link_died()
                await asyncio.sleep(0.01)
            # Wait for every membership announcement, then replay the full
            # directory (late-joiner catch-up included) and the key frame.
            while len(directory) < setup.n_participants:
                raise_if_a_link_died()
                await asyncio.sleep(0.01)
            key_frame = key_announcement_for(setup.backend).serialize()
            for link in links.values():
                for frame, address, worker in directory.snapshot():
                    await link.channel.notify(Envelope(
                        kind=KIND_FRAME, correlation_id=0,
                        header={"op": "announce", "worker": worker,
                                "address": list(address) if address else None},
                        payload=frame,
                    ))
                reply = await link.channel.request(Envelope(
                    kind=KIND_FRAME, correlation_id=0,
                    header={"op": "key"}, payload=key_frame,
                ))
                if not reply.header.get("ok"):
                    raise ProtocolError(
                        f"worker {link.worker_index} rejected the key announcement"
                    )
            for link in links.values():
                reply = await link.channel.request(Envelope(
                    kind=KIND_CONTROL, correlation_id=0,
                    header={"op": "bootstrap-done",
                            "n_nodes": setup.n_participants},
                ))
                if not reply.header.get("ready"):
                    raise ProtocolError(
                        f"worker {link.worker_index} failed to bootstrap"
                    )

            max_cycles = plan_max_cycles(setup.config, self.max_extra_cycles)
            cycles_run = 0
            if setup.config.runtime.stepping == "concurrent":
                # Concurrent stepping: the coordinator only enforces
                # iteration epochs.  One run-cycle request per worker per
                # epoch, all workers advancing their shards simultaneously
                # with many exchanges in flight; stop when every worker
                # reports zero pending participants.  No scheduler stream
                # is consumed — the interleaving is timing-dependent, which
                # is exactly the nondeterminism the envelope metrics
                # quantify.
                for _ in range(max_cycles):
                    replies = await asyncio.gather(*(
                        link.channel.request(Envelope(
                            kind=KIND_CONTROL, correlation_id=0,
                            header={"op": "run-cycle"},
                        ))
                        for link in links.values()
                    ))
                    cycles_run += 1
                    pending = sum(
                        int(reply.header.get("pending", 0)) for reply in replies
                    )
                    if pending == 0:
                        break
            else:
                # Replay the cycle engine's scheduler stream: same
                # permutations, same global stepping order, one participant
                # at a time — bit-identical to mode="cycle".
                owner = {
                    node_id: links[node_id % self.n_processes]
                    for node_id in range(setup.n_participants)
                }
                scheduler = RngRegistry(setup.config.simulation.seed).stream(
                    "engine.scheduler"
                )
                done = [False] * setup.n_participants
                for _ in range(max_cycles):
                    order = scheduler.permutation(setup.n_participants)
                    for node_index in order:
                        node_id = int(node_index)
                        reply = await owner[node_id].channel.request(Envelope(
                            kind=KIND_CONTROL, correlation_id=0,
                            header={"op": "step", "node": node_id},
                        ))
                        done[node_id] = bool(reply.header.get("done"))
                    cycles_run += 1
                    if all(done):
                        break

            collected: list[dict[str, Any]] = []
            for link in links.values():
                reply = await link.channel.request(Envelope(
                    kind=KIND_CONTROL, correlation_id=0,
                    header={"op": "collect"},
                ))
                collected.append(reply.header)
            for link in links.values():
                await link.channel.notify(Envelope(
                    kind=KIND_CONTROL, correlation_id=0,
                    header={"op": "shutdown"},
                ))
            return LiveRunOutcome(
                workers=collected,
                cycles_run=cycles_run,
                coordinator_socket=stats.as_dict(),
            )
        finally:
            for task in pump_tasks:
                task.cancel()
            server.close()


@dataclass(frozen=True)
class LiveRunOutcome:
    """Raw per-worker collection of one live run, before result assembly."""

    workers: list[dict[str, Any]]
    cycles_run: int
    coordinator_socket: dict[str, int]


# ---------------------------------------------------------------------- assembly
def _rebuild_log(setup: RunSetup, collection_name: str,
                 nodes: list[dict[str, Any]],
                 iteration_traffic: dict[int, dict[str, float]] | None = None,
                 ) -> ExecutionLog:
    """Rebuild the per-iteration execution log from collected histories.

    Mirrors the cycle runner's observer.  ``iteration_traffic`` is the
    merged per-worker cost accounting keyed by iteration number: the
    message/byte deltas (traffic charged to the sending node's current
    iteration) plus the crypto-operation deltas each worker's
    :class:`_CryptoMeter` charged to the iteration the work served, so
    each record's ``costs`` carries the same per-iteration delta keys as
    a cycle run's.
    """
    log = ExecutionLog(metadata=run_log_metadata(setup, collection_name))
    by_id = {int(node["node"]): node for node in nodes}
    ordered = [by_id[node_id] for node_id in sorted(by_id)]
    data = setup.data
    n_clusters = setup.initial_centroids.shape[0]
    previous = setup.initial_centroids.copy()
    completed = max(len(node["perturbed_means_history"]) for node in ordered)
    for index in range(completed):
        reporter = next(
            node for node in ordered
            if len(node["perturbed_means_history"]) > index
        )
        perturbed = np.asarray(reporter["perturbed_means_history"][index], dtype=float)
        means = perturbed.copy()
        assignments = [
            (int(node["node"]), node["assignment_history"][index])
            for node in ordered
            if len(node["assignment_history"]) > index
        ]
        for cluster in range(n_clusters):
            member_ids = [nid for nid, assigned in assignments if assigned == cluster]
            if member_ids:
                means[cluster] = data[member_ids].mean(axis=0)
        tracked = {
            node_id: by_id[node_id]["assignment_history"][index]
            for node_id in setup.tracked_ids
            if len(by_id[node_id]["assignment_history"]) > index
        }
        epsilon = 0.0
        if index < len(reporter["spends"]):
            epsilon = float(reporter["spends"][index]["epsilon"])
        costs = dict((iteration_traffic or {}).get(index + 1, {}))
        log.append(IterationRecord(
            iteration=index + 1,
            epsilon_spent=epsilon,
            centroids_before=previous.copy(),
            perturbed_means=perturbed.copy(),
            noise_free_means=means,
            displacement=float(reporter["displacement_history"][index]),
            tracked_assignments=tracked,
            costs=costs,
        ))
        previous = perturbed.copy()
    return log


def run_live_chiaroscuro(
    collection: TimeSeriesCollection,
    config: ChiaroscuroConfig | None = None,
    normalize: bool = True,
    n_tracked_participants: int = 4,
    max_extra_cycles: int = 50,
) -> Any:
    """Run the protocol over real sockets and return a ChiaroscuroResult.

    The entry point behind ``runtime.mode="live"`` (and the CLI's
    ``--live``).  Accepts the same arguments as
    :func:`~repro.core.runner.run_chiaroscuro` and returns the same result
    type, with ``metadata["live"]`` carrying the runner's process/socket
    statistics: the protocol byte accounting (``costs.bytes_sent``) is
    measured on-socket frame lengths, while ``metadata["live"]["socket"]``
    additionally reports total socket I/O including envelope and
    control-plane overhead.
    """
    config = config if config is not None else ChiaroscuroConfig()
    if config.runtime.mode != "live":
        config = config.with_overrides(runtime={"mode": "live"})
    setup = build_run_setup(
        collection, config, normalize=normalize,
        n_tracked_participants=n_tracked_participants,
    )
    runner = LiveRunner(setup, collection.name, max_extra_cycles=max_extra_cycles)
    outcome = runner.run()

    nodes: list[dict[str, Any]] = []
    crypto_totals: dict[str, int] = {}
    traffic = TrafficStats()
    socket_totals: dict[str, int] = {}
    iteration_traffic: dict[int, dict[str, float]] = {}
    for worker in outcome.workers:
        nodes.extend(worker["nodes"])
        for key, value in worker["crypto"].items():
            crypto_totals[key] = crypto_totals.get(key, 0) + int(value)
        for key, value in worker["socket"].items():
            socket_totals[key] = socket_totals.get(key, 0) + int(value)
        for iteration, bucket in worker.get("iteration_traffic", {}).items():
            merged = iteration_traffic.setdefault(int(iteration), {})
            for key, value in bucket.items():
                merged[key] = merged.get(key, 0.0) + float(value)
        for node in worker["nodes"]:
            for key, value in node["traffic"].items():
                setattr(traffic, key, getattr(traffic, key) + int(value))
    if len(nodes) != setup.n_participants:
        raise ProtocolError(
            f"collected {len(nodes)} of {setup.n_participants} participants"
        )
    outcomes = [
        ParticipantOutcome(
            node_id=int(node["node"]),
            profiles=np.asarray(
                node["final_profiles"] if node["final_profiles"] is not None
                else node["centroids"],
                dtype=float,
            ),
            stop_reason=node["stop_reason"] or "unfinished",
            spent_epsilon=float(node["spent_epsilon"]),
            iteration=int(node["iteration"]),
        )
        for node in nodes
    ]
    log = _rebuild_log(setup, collection.name, nodes,
                       iteration_traffic=iteration_traffic)
    runtime = config.runtime
    extra_metadata = {
        "live": {
            "processes": runner.n_processes,
            "cycles_run": outcome.cycles_run,
            "stepping": runtime.stepping,
            "concurrency": runtime.concurrency,
            "batching": config.network.batching,
            "compression": config.network.compression,
            "socket": socket_totals,
            "coordinator_socket": outcome.coordinator_socket,
        },
    }
    result = assemble_result(
        setup,
        collection.name,
        outcomes,
        messages_sent=traffic.messages_sent,
        bytes_sent=traffic.bytes_sent,
        bytes_modelled=traffic.bytes_modelled,
        crypto_counts=crypto_totals,
        log=log,
        extra_metadata=extra_metadata,
    )
    if runtime.stepping == "concurrent" and runtime.envelope == "auto":
        # Quantify the nondeterminism this run's concurrent interleaving
        # introduced: run the deterministic cycle-mode reference on the
        # same collection/configuration and attach the divergence metrics
        # (see repro.analysis.envelope) to the cost summary.
        reference = run_chiaroscuro(
            collection,
            config.with_overrides(runtime={"mode": "cycle"}),
            normalize=normalize,
            n_tracked_participants=n_tracked_participants,
            max_extra_cycles=max_extra_cycles,
        )
        result.costs = replace(
            result.costs, envelope=nondeterminism_envelope(result, reference)
        )
    return result
