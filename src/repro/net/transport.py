"""The :class:`Transport` abstraction: delivery plus authoritative accounting.

A transport moves protocol messages between participants and is the *single*
place where traffic is counted.  Two implementations exist:

* :class:`LoopbackTransport` — the deterministic in-memory delivery the
  cycle-driven simulation has always used.  :meth:`CycleEngine.send` and
  :meth:`CycleEngine.transmit` delegate here verbatim, so refactoring the
  seam out of the engine changed no behaviour: results, logs and byte
  counts are bit-identical to the pre-transport engine.
* :class:`~repro.net.live.WorkerTransport` (in :mod:`repro.net.live`) — the
  asyncio TCP transport of the multi-process runner, which moves the same
  serialized frames over real sockets between OS processes.

The accounting rule both implementations follow (the "one authoritative
byte-count site"): a message's ``messages_sent``/``bytes_sent``/
``bytes_modelled`` are charged exactly once, by the transport, at the
sending side (``Network.account_send``); ``messages_received``/
``bytes_received`` exactly once at the receiving side
(``Network.account_receive``).  Protocol code never touches the counters.
In the cycle simulation both sides live in one process; in the live runner
each side runs on the worker hosting that node, so per-node counters are
owned by exactly one process and aggregate without double counting.

The rule is stepping-independent: under the live runner's concurrent
stepping every send is still charged synchronously at its sending node, so
totals and per-node counters stay exact.  What concurrency relaxes is only
the *per-iteration* attribution of a worker's process-global crypto-counter
deltas (several interleaved steps share one counter), which becomes
approximate while its sum over iterations remains exact.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import replace
from typing import TYPE_CHECKING

from ..exceptions import SimulationError
from ..simulation.network import Message, Network, TrafficStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from ..simulation.engine import CycleEngine


class Transport(ABC):
    """Moves protocol messages and owns the traffic counters.

    ``send`` carries an opaque object payload with a declared (modelled)
    size — the historical simulation path; ``transmit`` carries a serialized
    wire frame whose *measured* length is charged.  Both return delivery
    information the protocol layer can react to (loss, offline peer).
    """

    @abstractmethod
    def send(self, sender: int, recipient: int, kind: str, payload: object,
             size_bytes: int = 0) -> bool:
        """Deliver an object payload; return False on loss/offline recipient."""

    @abstractmethod
    def transmit(self, sender: int, recipient: int, kind: str, frame: bytes,
                 modelled_bytes: int | None = None) -> bytes | None:
        """Deliver a byte frame; return the bytes as received (None on loss)."""

    @abstractmethod
    def stats_for(self, node_id: int) -> TrafficStats:
        """Traffic counters of one node."""

    @property
    @abstractmethod
    def total(self) -> TrafficStats:
        """Aggregate traffic counters."""


class LoopbackTransport(Transport):
    """Deterministic in-process delivery backed by a :class:`Network` ledger.

    This is the cycle engine's transport: delivery is synchronous (the
    recipient's ``receive`` hook runs before the call returns), loss and
    corruption come from the network fault models, and the accounting site
    is the wrapped :class:`Network`.  The implementation is the exact code
    that used to live inside ``CycleEngine.send``/``CycleEngine.transmit``.
    """

    def __init__(self, engine: "CycleEngine", network: Network) -> None:
        self._engine = engine
        self.network = network

    # ------------------------------------------------------------------ delivery
    def send(self, sender: int, recipient: int, kind: str, payload: object,
             size_bytes: int = 0) -> bool:
        message = Message(
            sender=sender, recipient=recipient, kind=kind, payload=payload,
            size_bytes=size_bytes,
        )
        delivered = self.network.send(message)
        recipient_node = self._engine.node(recipient)
        if not delivered or not recipient_node.online:
            return False
        recipient_node.receive(self._engine, message)
        return True

    def transmit(self, sender: int, recipient: int, kind: str, frame: bytes,
                 modelled_bytes: int | None = None) -> bytes | None:
        if not isinstance(frame, (bytes, bytearray)):
            raise SimulationError("transmit() carries serialized byte frames only")
        frame = bytes(frame)
        message = Message(
            sender=sender, recipient=recipient, kind=kind, payload=frame,
            size_bytes=len(frame), modelled_bytes=modelled_bytes,
        )
        delivered = self.network.send(message)
        recipient_node = self._engine.node(recipient)
        if not delivered or not recipient_node.online:
            return None
        received = self.network.maybe_corrupt(frame, sender=sender)
        if received is not frame:
            message = replace(message, payload=received)
        recipient_node.receive(self._engine, message)
        return received

    # ------------------------------------------------------------------ accounting views
    def stats_for(self, node_id: int) -> TrafficStats:
        return self.network.stats_for(node_id)

    @property
    def total(self) -> TrafficStats:
        return self.network.total
