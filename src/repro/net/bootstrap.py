"""Membership and key bootstrap over the announcement wire frames.

PR 3 defined :class:`~repro.gossip.messages.MembershipAnnouncement` and
:class:`~repro.gossip.messages.KeyAnnouncement` "so the future socket runner
... can exercise membership traffic through the same conformance-tested wire
format"; this module is that future.  The live runner bootstraps in three
steps, all of them carried as serialized announcement frames:

1. every worker announces each participant it hosts with one
   ``MembershipAnnouncement`` frame (the worker's socket address rides in
   the envelope header — the frame itself stays transport-agnostic);
2. the coordinator feeds every announcement into its
   :class:`MembershipDirectory` and replays the full announcement log to
   every worker (including workers that connect *late*: replaying the log
   is exactly how a late joiner catches up via membership gossip);
3. the coordinator broadcasts one ``KeyAnnouncement`` frame carrying the
   public threshold-key parameters; each worker verifies it against the key
   material it holds before serving any protocol traffic.

The directory is deliberately transport-free (it consumes and produces
frame bytes), so the bootstrap protocol is unit-testable without sockets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..crypto.backends import CipherBackend
from ..exceptions import ProtocolError
from ..gossip.messages import KeyAnnouncement, MembershipAnnouncement, deserialize

#: A worker's socket address, as announced next to a membership frame.
Address = tuple[str, int]


@dataclass(frozen=True)
class MemberRecord:
    """What the directory knows about one announced participant."""

    node_id: int
    online: bool
    cycle: int
    address: Address | None = None
    worker: int | None = None


class MembershipDirectory:
    """Routing table built from ``MembershipAnnouncement`` frames.

    The directory keeps the raw announcement log alongside the decoded
    state: replaying :meth:`snapshot` into a fresh directory reproduces it
    exactly, which is how a late-joining worker catches up (and how the
    bootstrap tests exercise catch-up without a socket in sight).
    """

    def __init__(self) -> None:
        self._members: dict[int, MemberRecord] = {}
        self._log: list[tuple[bytes, Address | None, int | None]] = []

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    # ------------------------------------------------------------------ feeding
    def announce(self, node_id: int, online: bool, cycle: int,
                 address: Address | None = None,
                 worker: int | None = None) -> bytes:
        """Build, apply and return one membership announcement frame."""
        frame = MembershipAnnouncement(
            node_id=node_id, online=online, cycle=cycle
        ).serialize()
        self.feed(frame, address=address, worker=worker)
        return frame

    def feed(self, frame: bytes, address: Address | None = None,
             worker: int | None = None) -> MembershipAnnouncement:
        """Apply one received announcement frame to the directory.

        Raises :class:`~repro.exceptions.WireFormatError` for undecodable
        frames and :class:`~repro.exceptions.ProtocolError` when the frame
        decodes to a different message type.
        """
        message = deserialize(frame)
        if not isinstance(message, MembershipAnnouncement):
            raise ProtocolError(
                f"membership bootstrap received a {type(message).__name__} frame"
            )
        if address is not None:
            host, port = address
            address = (str(host), int(port))
        known = self._members.get(message.node_id)
        if known is not None and address is None:
            # A bare join/leave toggle keeps the announced location.
            address = known.address
            worker = known.worker if worker is None else worker
        self._members[message.node_id] = MemberRecord(
            node_id=message.node_id,
            online=message.online,
            cycle=message.cycle,
            address=address,
            worker=worker,
        )
        self._log.append((bytes(frame), address, worker))
        return message

    # ------------------------------------------------------------------ queries
    def record(self, node_id: int) -> MemberRecord:
        """The latest record of one participant."""
        try:
            return self._members[node_id]
        except KeyError as exc:
            raise ProtocolError(f"node {node_id} was never announced") from exc

    def address_of(self, node_id: int) -> Address:
        """Socket address of the worker hosting *node_id*."""
        record = self.record(node_id)
        if record.address is None:
            raise ProtocolError(f"node {node_id} was announced without an address")
        return record.address

    def worker_of(self, node_id: int) -> int:
        """Worker index hosting *node_id*."""
        record = self.record(node_id)
        if record.worker is None:
            raise ProtocolError(f"node {node_id} was announced without a worker")
        return record.worker

    def online_ids(self) -> list[int]:
        """Ids of every announced-online participant (in node-id order)."""
        return sorted(
            node_id for node_id, record in self._members.items() if record.online
        )

    # ------------------------------------------------------------------ replication
    def snapshot(self) -> list[tuple[bytes, Address | None, int | None]]:
        """The full announcement log (frame bytes plus envelope metadata).

        Replaying this into :meth:`catch_up` on an empty directory yields an
        identical directory — membership gossip for late joiners.
        """
        return list(self._log)

    def catch_up(
        self, entries: Iterable[Sequence]
    ) -> int:
        """Replay a snapshot (or any announcement stream); return the count."""
        applied = 0
        for entry in entries:
            frame, address, worker = entry
            if address is not None:
                address = (address[0], int(address[1]))
            self.feed(bytes(frame), address=address, worker=worker)
            applied += 1
        return applied


# ---------------------------------------------------------------------- keys
def key_announcement_for(backend: CipherBackend) -> KeyAnnouncement:
    """The public-key announcement of a backend's threshold key material.

    Real backends announce the RSA modulus and Damgård–Jurik degree; the
    plain simulation backend announces its codec modulus with degree 1 (the
    "public key" of the simulated scheme), so the bootstrap protocol runs
    identically across backends.
    """
    public_key = getattr(backend, "public_key", None)
    if public_key is not None:
        modulus = int(public_key.n)
        degree = int(getattr(public_key, "s", 1))
    else:
        modulus = int(backend.codec.modulus)
        degree = 1
    return KeyAnnouncement(
        modulus=modulus,
        degree=degree,
        threshold=backend.threshold,
        n_shares=backend.n_shares,
    )


def verify_key_announcement(frame: bytes, backend: CipherBackend) -> KeyAnnouncement:
    """Decode a key announcement and check it matches *backend*'s key.

    Raises :class:`~repro.exceptions.WireFormatError` for undecodable
    frames and :class:`~repro.exceptions.ProtocolError` when the announced
    parameters disagree with the locally held key material — a worker must
    refuse to serve a run keyed differently from its own shares.
    """
    message = deserialize(frame)
    if not isinstance(message, KeyAnnouncement):
        raise ProtocolError(
            f"key bootstrap received a {type(message).__name__} frame"
        )
    expected = key_announcement_for(backend)
    if message != expected:
        raise ProtocolError(
            "announced key parameters disagree with the local key material "
            f"(announced degree={message.degree} threshold={message.threshold} "
            f"n_shares={message.n_shares})"
        )
    return message
