"""Transport layer: the seam between protocol logic and message delivery.

This package owns *how bytes move* between participants, independently of
*what the protocol does* with them:

* :mod:`repro.net.transport` — the :class:`~repro.net.transport.Transport`
  abstraction and the deterministic in-process
  :class:`~repro.net.transport.LoopbackTransport` that the cycle engine
  delegates to (bit-identical to the historical engine-internal delivery);
* :mod:`repro.net.envelope` — length-prefixed socket records that carry
  wire frames (and JSON control metadata) over a TCP stream;
* :mod:`repro.net.bootstrap` — the membership/key bootstrap driven by the
  :class:`~repro.gossip.messages.MembershipAnnouncement` and
  :class:`~repro.gossip.messages.KeyAnnouncement` frames;
* :mod:`repro.net.faults` — targeted (adversarial, non-random) frame
  mutations for conformance testing;
* :mod:`repro.net.live` — the multi-process asyncio socket runner
  (imported lazily: it pulls in :mod:`repro.core`, which itself imports
  the transport layer).
"""

from .envelope import (
    DEFAULT_WRITE_BUFFER_LIMIT,
    KIND_CONTROL,
    KIND_FRAME,
    Envelope,
    EnvelopeError,
    decode_envelope,
    encode_envelope,
)
from .transport import LoopbackTransport, Transport

#: Names resolved lazily: bootstrap/faults import :mod:`repro.gossip.messages`,
#: which imports the simulation engine — and the engine imports this package
#: for :class:`LoopbackTransport`.  Deferring the gossip-dependent modules
#: keeps the transport seam importable from inside the engine.
_LAZY = {
    "MembershipDirectory": "bootstrap",
    "key_announcement_for": "bootstrap",
    "verify_key_announcement": "bootstrap",
    "TargetedMutation": "faults",
    "reframe_body": "faults",
    "targeted_mutations": "faults",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), name)

__all__ = [
    "DEFAULT_WRITE_BUFFER_LIMIT",
    "Envelope",
    "EnvelopeError",
    "KIND_CONTROL",
    "KIND_FRAME",
    "LoopbackTransport",
    "MembershipDirectory",
    "TargetedMutation",
    "Transport",
    "decode_envelope",
    "encode_envelope",
    "key_announcement_for",
    "reframe_body",
    "targeted_mutations",
    "verify_key_announcement",
]
