"""The cycle-driven simulation engine (Peersim's cycle-based mode).

The demonstration runs Chiaroscuro inside Peersim: each participant
implements ``nextCycle`` and the simulator calls every participant once per
cycle.  :class:`CycleEngine` reproduces that model:

* nodes are registered once, each with a unique id;
* :meth:`run` executes a number of cycles; within a cycle, online nodes are
  visited in a freshly shuffled order (Peersim's default);
* a simple churn model can take nodes offline and bring them back online
  between cycles (the "possibly faulty computing nodes" of the paper);
* observers are notified after every cycle;
* all traffic goes through a :class:`~repro.simulation.network.Network`
  instance so that per-participant communication costs can be reported.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

import numpy as np

from .._validation import check_non_negative_int, check_probability
from ..exceptions import SimulationError
from ..net.transport import LoopbackTransport
from .network import Network
from .node import Node
from .observers import Observer
from .rng import RngRegistry


class CycleEngine:
    """Cycle-driven scheduler for a population of :class:`Node` objects.

    Parameters
    ----------
    nodes:
        The simulated participants; their ``node_id`` attributes must be
        exactly 0 .. n-1 (any order).
    seed:
        Master seed of the run; every internal stream derives from it.
    churn_rate:
        Per-cycle probability that an online node goes offline.
    rejoin_rate:
        Per-cycle probability that an offline node comes back online.
    drop_probability:
        Per-message loss probability of the network.
    corruption_rate:
        Per-frame probability that a delivered wire frame has one random
        bit flipped (see :meth:`Network.maybe_corrupt`); only byte-frame
        traffic sent through :meth:`transmit` can be corrupted.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        seed: int = 0,
        churn_rate: float = 0.0,
        rejoin_rate: float = 0.5,
        drop_probability: float = 0.0,
        corruption_rate: float = 0.0,
    ) -> None:
        if not nodes:
            raise SimulationError("the engine needs at least one node")
        ids = sorted(node.node_id for node in nodes)
        if ids != list(range(len(nodes))):
            raise SimulationError("node ids must be exactly 0 .. n-1 with no gaps")
        self.nodes: list[Node] = sorted(nodes, key=lambda node: node.node_id)
        self.rng_registry = RngRegistry(check_non_negative_int(seed, "seed"))
        self.churn_rate = check_probability(churn_rate, "churn_rate")
        self.rejoin_rate = check_probability(rejoin_rate, "rejoin_rate")
        self.network = Network(
            n_nodes=len(self.nodes),
            drop_probability=drop_probability,
            rng=self.rng_registry.stream("network.drops"),
            corruption_probability=corruption_rate,
            corruption_rng=self.rng_registry.stream("network.corruption"),
        )
        self.transport = LoopbackTransport(self, self.network)
        self.observers: list[Observer] = []
        self.current_cycle = -1
        self._scheduler_rng = self.rng_registry.stream("engine.scheduler")
        self._churn_rng = self.rng_registry.stream("engine.churn")
        # Incremental online-node index: every node reports its online-flag
        # transitions (including direct ``node.online = ...`` assignments by
        # tests and fault-injection code), so peer sampling never re-scans
        # the whole population.  The sorted view is rebuilt lazily, only
        # after a transition actually happened.
        self._online_ids: set[int] = set()
        self._online_sorted: list[int] | None = None
        for node in self.nodes:
            node._online_listener = self._node_online_changed
            if node.online:
                self._online_ids.add(node.node_id)

    # ------------------------------------------------------------------ topology helpers
    @property
    def n_nodes(self) -> int:
        """Total number of registered nodes (online or not)."""
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        """Return the node with the given id."""
        if not 0 <= node_id < self.n_nodes:
            raise SimulationError(f"node id {node_id} outside [0, {self.n_nodes})")
        return self.nodes[node_id]

    def _node_online_changed(self, node: Node, online: bool) -> None:
        if online:
            self._online_ids.add(node.node_id)
        else:
            self._online_ids.discard(node.node_id)
        self._online_sorted = None

    def _sorted_online_ids(self) -> list[int]:
        if self._online_sorted is None:
            self._online_sorted = sorted(self._online_ids)
        return self._online_sorted

    def online_nodes(self) -> list[Node]:
        """Every node currently online (in node-id order)."""
        return [self.nodes[node_id] for node_id in self._sorted_online_ids()]

    def online_ids(self) -> list[int]:
        """Ids of every node currently online (in node-id order)."""
        return list(self._sorted_online_ids())

    def random_online_peer(self, exclude: int | None = None) -> Node | None:
        """Uniformly random online node, optionally excluding one id.

        Returns ``None`` when no eligible peer exists.  This is the uniform
        peer-sampling service that the gossip layer uses when the overlay is
        the complete graph.  The draw is made over the online index without
        materialising a filtered candidate list; the selected node (and the
        consumed randomness) is identical to the historical list-building
        implementation.
        """
        candidates = self._sorted_online_ids()
        count = len(candidates)
        excluded_position = None
        if exclude is not None and exclude in self._online_ids:
            excluded_position = bisect_left(candidates, exclude)
            count -= 1
        if count <= 0:
            return None
        index = int(self._scheduler_rng.integers(0, count))
        if excluded_position is not None and index >= excluded_position:
            index += 1
        return self.nodes[candidates[index]]

    # ------------------------------------------------------------------ messaging
    def send(self, sender: int, recipient: int, kind: str, payload: object,
             size_bytes: int = 0) -> bool:
        """Send a message through the transport; deliver it immediately.

        Returns False when the network dropped the message or the recipient
        is offline (the message still counts as sent).  Delegates to the
        engine's :class:`~repro.net.transport.LoopbackTransport`, which owns
        delivery and the authoritative traffic accounting.
        """
        return self.transport.send(sender, recipient, kind, payload,
                                   size_bytes=size_bytes)

    def transmit(self, sender: int, recipient: int, kind: str, frame: bytes,
                 modelled_bytes: int | None = None) -> bytes | None:
        """Send a serialized wire frame; return the bytes as received.

        This is the byte-accurate counterpart of :meth:`send`: the payload
        is an opaque frame, ``size_bytes`` is its measured length, and the
        returned value is what the recipient actually got — ``None`` when
        the network dropped the frame or the recipient is offline, the
        (possibly bit-flipped, when the corruption fault model is active)
        frame bytes otherwise.  *modelled_bytes* optionally records what the
        historical size formula would have charged, feeding the
        measured-vs-modelled byte accounting.  Delegates to the engine's
        :class:`~repro.net.transport.LoopbackTransport`.
        """
        return self.transport.transmit(sender, recipient, kind, frame,
                                       modelled_bytes=modelled_bytes)

    # ------------------------------------------------------------------ observers
    def add_observer(self, observer: Observer) -> None:
        """Register an observer notified after every cycle."""
        self.observers.append(observer)

    # ------------------------------------------------------------------ execution
    def _apply_churn(self, cycle: int) -> None:
        # The churn model is only active when nodes can actually fail; nodes
        # taken offline explicitly (e.g. by a test or a fault-injection
        # scenario) must stay offline rather than being "rejoined" here.
        #
        # All per-node uniforms of a cycle come from one vectorised draw; the
        # underlying PCG64 stream consumption is identical to the historical
        # one-``random()``-per-node loop, so seeded runs are unchanged, while
        # the Python-level work shrinks to the (typically few) nodes that
        # actually flip state.
        if self.churn_rate == 0.0:
            return
        if self.rejoin_rate > 0.0:
            subjects = self.nodes
            draws = self._churn_rng.random(len(subjects))
            thresholds = np.where(
                np.fromiter((node.online for node in subjects), dtype=bool, count=len(subjects)),
                self.churn_rate,
                self.rejoin_rate,
            )
        else:
            # Historically only online nodes drew randomness when rejoining
            # was impossible; preserve that stream shape exactly.
            subjects = self.online_nodes()
            draws = self._churn_rng.random(len(subjects))
            thresholds = np.full(len(subjects), self.churn_rate)
        for position in np.nonzero(draws < thresholds)[0]:
            node = subjects[int(position)]
            if node.online:
                node.online = False
                node.on_offline(self, cycle)
            else:
                node.online = True
                node.on_online(self, cycle)

    def run_cycle(self) -> int:
        """Run exactly one cycle and return its index."""
        self.current_cycle += 1
        cycle = self.current_cycle
        self._apply_churn(cycle)
        order = self._scheduler_rng.permutation(self.n_nodes)
        for node_index in order:
            node = self.nodes[int(node_index)]
            if node.online:
                node.next_cycle(self, cycle)
        for observer in self.observers:
            observer.after_cycle(self, cycle)
        return cycle

    def run(self, cycles: int, stop_when: "StopCondition | None" = None) -> int:
        """Run up to *cycles* cycles; stop early when *stop_when* returns True.

        Returns the number of cycles actually executed.
        """
        check_non_negative_int(cycles, "cycles")
        executed = 0
        for _ in range(cycles):
            self.run_cycle()
            executed += 1
            if stop_when is not None and stop_when(self):
                break
        return executed


#: Signature of the optional early-stopping predicate of :meth:`CycleEngine.run`.
StopCondition = "Callable[[CycleEngine], bool]"


def run_until(engine: CycleEngine, predicate, max_cycles: int = 10_000) -> int:
    """Run *engine* until *predicate(engine)* holds or *max_cycles* is reached.

    Returns the number of cycles executed; raises :class:`SimulationError`
    when the predicate never became true.
    """
    for executed in range(1, max_cycles + 1):
        engine.run_cycle()
        if predicate(engine):
            return executed
    raise SimulationError(f"predicate still false after {max_cycles} cycles")
