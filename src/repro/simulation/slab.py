"""Struct-of-arrays population slabs for the million-node engine.

Cycle mode's object engine instantiates one Python participant per node,
which tops out around thousands of nodes.  This module holds the population
state in struct-of-arrays NumPy slabs instead — estimates, online flags,
assignments, per-node RNG-draw counters — and executes gossip rounds as
vectorised slab operations, optionally sharded across worker processes over
a shared-memory segment.  The protocol-level loop that drives these slabs
lives in :mod:`repro.core.slab_runner`.

Determinism contract
--------------------
* :func:`slab_churn_step` consumes its random stream with exactly the same
  shapes as :meth:`~repro.simulation.engine.CycleEngine._apply_churn` (one
  vectorised draw over all nodes when rejoining is possible, over online
  nodes only otherwise), so the two implementations flip the same nodes
  given the same stream state.
* :func:`pair_online` derives the round's random matching from a single
  permutation draw; :class:`ShardCoordinator` never draws randomness — the
  coordinator makes every draw, workers only execute deterministic
  elementwise averaging over disjoint pair ranges.  Results are therefore
  invariant under the shard count by construction.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from .._validation import check_positive_int, check_probability
from ..exceptions import SimulationError


@dataclass
class PopulationSlabs:
    """Struct-of-arrays state of a slab-engine population.

    Attributes
    ----------
    data:
        ``(n, series_length)`` participant series (read-only input).
    estimates:
        ``(n, n_clusters * (series_length + 1))`` per-node gossip estimates:
        for each cluster a ``series_length``-sum block followed by one count
        slot (the layout of the protocol's per-cluster estimates).
    online:
        ``(n,)`` boolean online flags driven by the churn model.
    assigned:
        ``(n,)`` current cluster assignment of every node.
    rng_draws:
        ``(n,)`` number of churn/pairing uniforms consumed on behalf of
        each node — the audit trail the determinism tests check.
    last_pairing:
        The ``(pairs, 2)`` node-index matching of the most recent gossip
        round (empty before the first round).
    """

    data: np.ndarray
    estimates: np.ndarray
    online: np.ndarray
    assigned: np.ndarray
    rng_draws: np.ndarray
    last_pairing: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )

    @classmethod
    def allocate(cls, data: np.ndarray, n_clusters: int,
                 estimates: np.ndarray | None = None) -> "PopulationSlabs":
        """Allocate fresh slabs for *data* (*estimates* may be pre-owned,
        e.g. a :class:`ShardCoordinator`'s shared-memory view)."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise SimulationError(f"slab data must be 2-D, got shape {data.shape}")
        check_positive_int(n_clusters, "n_clusters")
        n, series_length = data.shape
        width = n_clusters * (series_length + 1)
        if estimates is None:
            estimates = np.zeros((n, width), dtype=np.float64)
        if estimates.shape != (n, width):
            raise SimulationError(
                f"estimates slab shape {estimates.shape} != {(n, width)}"
            )
        return cls(
            data=data,
            estimates=estimates,
            online=np.ones(n, dtype=bool),
            assigned=np.zeros(n, dtype=np.int32),
            rng_draws=np.zeros(n, dtype=np.int64),
        )

    @property
    def n_nodes(self) -> int:
        return int(self.data.shape[0])


def slab_churn_step(
    online: np.ndarray,
    churn_rate: float,
    rejoin_rate: float,
    rng: np.random.Generator,
    rng_draws: np.ndarray | None = None,
) -> np.ndarray:
    """Apply one churn cycle to the *online* slab in place.

    Mirrors :meth:`CycleEngine._apply_churn` stream shape for stream shape:
    no draw at all when ``churn_rate == 0``; one uniform per node (in node-id
    order) when ``rejoin_rate > 0``; one uniform per *online* node otherwise.
    Returns the node ids whose flag flipped this cycle.
    """
    check_probability(churn_rate, "churn_rate")
    check_probability(rejoin_rate, "rejoin_rate")
    if churn_rate == 0.0:
        return np.empty(0, dtype=np.int64)
    if rejoin_rate > 0.0:
        subjects = np.arange(online.shape[0], dtype=np.int64)
        draws = rng.random(subjects.shape[0])
        thresholds = np.where(online, churn_rate, rejoin_rate)
    else:
        subjects = np.nonzero(online)[0]
        draws = rng.random(subjects.shape[0])
        thresholds = np.full(subjects.shape[0], churn_rate)
    if rng_draws is not None:
        rng_draws[subjects] += 1
    flipped = subjects[draws < thresholds]
    online[flipped] = ~online[flipped]
    return flipped


def pair_online(
    online: np.ndarray,
    rng: np.random.Generator,
    rng_draws: np.ndarray | None = None,
) -> np.ndarray:
    """Draw one random gossip matching of the online nodes.

    A uniformly random perfect matching (one permutation draw, consecutive
    entries paired; a leftover odd node sits the round out) — the vectorised
    equivalent of every online node initiating one push-pull exchange with a
    uniformly sampled online peer.  Returns a ``(pairs, 2)`` index matrix.
    """
    candidates = np.nonzero(online)[0]
    if candidates.shape[0] < 2:
        return np.empty((0, 2), dtype=np.int64)
    order = rng.permutation(candidates)
    if rng_draws is not None:
        rng_draws[candidates] += 1
    n_pairs = order.shape[0] // 2
    return order[: 2 * n_pairs].reshape(n_pairs, 2).astype(np.int64, copy=False)


def average_pairs_inplace(estimates: np.ndarray, pairs: np.ndarray) -> None:
    """Average the estimate rows of each (disjoint) pair, in place.

    This is one gossip exchange for every pair at once: both members adopt
    the elementwise mean of their estimates, which preserves the global sum
    exactly (the mass-conservation invariant of gossip averaging).
    """
    if pairs.shape[0] == 0:
        return
    left = pairs[:, 0]
    right = pairs[:, 1]
    mean = 0.5 * (estimates[left] + estimates[right])
    estimates[left] = mean
    estimates[right] = mean


def _shard_worker(
    connection: Any,
    estimates_name: str,
    estimates_shape: tuple[int, int],
    pairs_name: str,
    pairs_capacity: int,
) -> None:  # pragma: no cover - exercised via ShardCoordinator in subprocesses
    """Worker loop: average disjoint pair ranges of the shared estimate slab."""
    estimates_shm = shared_memory.SharedMemory(name=estimates_name)
    pairs_shm = shared_memory.SharedMemory(name=pairs_name)
    try:
        estimates = np.ndarray(estimates_shape, dtype=np.float64, buffer=estimates_shm.buf)
        pairs = np.ndarray((pairs_capacity, 2), dtype=np.int64, buffer=pairs_shm.buf)
        while True:
            command = connection.recv()
            if command is None:
                break
            start, end = command
            average_pairs_inplace(estimates, pairs[start:end])
            connection.send((start, end))
    finally:
        estimates_shm.close()
        pairs_shm.close()


class ShardCoordinator:
    """Owns the estimate slab and fans pair-averaging out to worker shards.

    With ``shards == 1`` (the default, and the fallback when the platform
    cannot fork) everything runs in-process on a private array.  With more
    shards the slab lives in a :mod:`multiprocessing.shared_memory` segment;
    long-lived forked workers each average a contiguous, disjoint slice of
    the round's pair list, so the floating-point result is bit-identical to
    the single-shard path regardless of the shard count.
    """

    def __init__(self, n_rows: int, n_cols: int, shards: int = 1) -> None:
        check_positive_int(n_rows, "n_rows")
        check_positive_int(n_cols, "n_cols")
        check_positive_int(shards, "shards")
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.shards = min(shards, max(1, n_rows // 2))
        self._workers: list[Any] = []
        self._pipes: list[Any] = []
        self._estimates_shm: shared_memory.SharedMemory | None = None
        self._pairs_shm: shared_memory.SharedMemory | None = None
        if self.shards > 1:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:
                self.shards = 1
        if self.shards == 1:
            self.estimates = np.zeros((n_rows, n_cols), dtype=np.float64)
            self._pairs = None
            return
        self._estimates_shm = shared_memory.SharedMemory(
            create=True, size=n_rows * n_cols * 8
        )
        self.estimates = np.ndarray(
            (n_rows, n_cols), dtype=np.float64, buffer=self._estimates_shm.buf
        )
        self.estimates[:] = 0.0
        pairs_capacity = max(1, n_rows // 2)
        self._pairs_shm = shared_memory.SharedMemory(
            create=True, size=pairs_capacity * 2 * 8
        )
        self._pairs = np.ndarray(
            (pairs_capacity, 2), dtype=np.int64, buffer=self._pairs_shm.buf
        )
        for _ in range(self.shards):
            parent, child = context.Pipe()
            worker = context.Process(
                target=_shard_worker,
                args=(
                    child,
                    self._estimates_shm.name,
                    (n_rows, n_cols),
                    self._pairs_shm.name,
                    pairs_capacity,
                ),
                daemon=True,
            )
            worker.start()
            child.close()
            self._workers.append(worker)
            self._pipes.append(parent)

    def average_pairs(self, pairs: np.ndarray) -> None:
        """Run one vectorised gossip round over the given disjoint pairs."""
        count = int(pairs.shape[0])
        if count == 0:
            return
        if self.shards == 1 or count < 2 * self.shards:
            average_pairs_inplace(self.estimates, pairs)
            return
        assert self._pairs is not None
        self._pairs[:count] = pairs
        bounds = np.linspace(0, count, self.shards + 1).astype(int)
        active = []
        for shard in range(self.shards):
            start, end = int(bounds[shard]), int(bounds[shard + 1])
            if start < end:
                self._pipes[shard].send((start, end))
                active.append(shard)
        for shard in active:
            self._pipes[shard].recv()

    def close(self) -> None:
        """Shut down workers and release the shared-memory segments."""
        for pipe in self._pipes:
            try:
                pipe.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.join(timeout=5)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
        for pipe in self._pipes:
            pipe.close()
        self._workers = []
        self._pipes = []
        if self._estimates_shm is not None or self._pairs_shm is not None:
            # Drop views into the segments before unlinking them.
            self.estimates = np.empty((0, 0), dtype=np.float64)
            self._pairs = None
        for segment in (self._estimates_shm, self._pairs_shm):
            if segment is not None:
                segment.close()
                segment.unlink()
        self._estimates_shm = None
        self._pairs_shm = None

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
