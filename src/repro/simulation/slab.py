"""Struct-of-arrays population slabs for the million-node engine.

Cycle mode's object engine instantiates one Python participant per node,
which tops out around thousands of nodes.  This module holds the population
state in struct-of-arrays NumPy slabs instead — estimates, online flags,
assignments, per-node RNG-draw counters — and executes gossip rounds as
vectorised slab operations, optionally sharded across worker processes over
shared mappings.  The protocol-level loop that drives these slabs lives in
:mod:`repro.core.slab_runner`.

Out-of-core layout
------------------
The estimate slab is the engine's one population-sized mutable array
(``(n, k * (series_length + 1))``).  Three independent knobs bound its cost:

* ``dtype`` — ``float64`` (bit-identical to the object engine's arithmetic)
  or ``float32`` (half the footprint, reduced precision).
* ``backing`` — ``memory`` (a private array or, under sharding, a
  :mod:`multiprocessing.shared_memory` segment) or ``mmap:<dir>`` (an
  anonymous-by-unlink :class:`numpy.memmap` file; processed row ranges are
  released from resident memory with ``madvise(MADV_DONTNEED)``, so resident
  size stays bounded by the chunk size rather than the population).
* ``chunk_rows`` — upper bound on the rows materialised at once by the
  elementwise phases (contribution scatter, pair averaging).  ``0`` means
  whole-phase vectorised operation.

Determinism contract
--------------------
* :func:`slab_churn_step` consumes its random stream with exactly the same
  shapes as :meth:`~repro.simulation.engine.CycleEngine._apply_churn` (one
  vectorised draw over all nodes when rejoining is possible, over online
  nodes only otherwise), so the two implementations flip the same nodes
  given the same stream state.
* :func:`pair_online` derives the round's random matching from a single
  permutation draw; :class:`ShardCoordinator` never draws randomness — the
  coordinator makes every draw, workers only execute deterministic block
  operations over disjoint row ranges.  Results are therefore invariant
  under the shard count by construction.
* Every *reduction* (the online-mean of the estimate slab, per-cluster data
  sums, inertia) and the assignment pass run over the fixed canonical
  partition of :data:`REDUCE_BLOCK_ROWS`-row blocks regardless of the chunk
  or shard configuration, so their floating-point result depends only on
  the population, never on how the work was split.  Populations that fit a
  single canonical block (``n <= REDUCE_BLOCK_ROWS``) degenerate to the
  exact dense whole-array expressions.
* The elementwise phases (scatter, pair averaging) are per-row/per-pair
  exact, hence trivially chunk- and shard-invariant.
"""

from __future__ import annotations

import mmap
import multiprocessing
import os
import tempfile
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Iterator

import numpy as np

from .._validation import (
    check_non_negative_int,
    check_positive_int,
    check_probability,
)
from ..clustering.kmeans import assign_to_centroids
from ..exceptions import SimulationError

#: Fixed row-block size of the canonical reduction partition.  Reductions
#: and assignment always run block by block over this partition, so their
#: results are invariant under ``chunk_rows`` and the shard count; runs with
#: ``n <= REDUCE_BLOCK_ROWS`` see exactly the dense whole-array arithmetic.
REDUCE_BLOCK_ROWS = 65536

#: Pair-averaging advise cadence for memmap-backed slabs.  Scattered gossip
#: gathers on a fully page-cached file are amplified by the kernel's
#: fault-around (each touched row maps a window of neighbouring cached
#: pages, MADV_RANDOM notwithstanding), so resident growth between two
#: MADV_DONTNEED releases is proportional to the pair chunk — measured ~6
#: pages per touched row on a warm 4 GiB slab, i.e. ~3.5 GiB per 65536-pair
#: chunk versus ~1.1 GiB at 8192.  The chunk partition never changes the
#: arithmetic (pairs are disjoint), so capping the advised step is free.
ADVISE_PAIR_CHUNK = 8192

#: Element dtypes the estimate slab supports (mirrors config.SLAB_DTYPES).
_SLAB_NUMPY_DTYPES = {"float64": np.float64, "float32": np.float32}


def slab_numpy_dtype(name: str) -> np.dtype:
    """Map a ``runtime.slab_dtype`` string onto the numpy dtype."""
    try:
        return np.dtype(_SLAB_NUMPY_DTYPES[name])
    except KeyError:
        raise SimulationError(
            f"unsupported slab dtype {name!r}; expected one of "
            f"{sorted(_SLAB_NUMPY_DTYPES)}"
        ) from None


def parse_slab_backing(backing: str) -> tuple[str, str | None]:
    """Split a ``runtime.slab_backing`` string into ``(kind, directory)``.

    ``"memory"`` -> ``("memory", None)``; ``"mmap:<dir>"`` ->
    ``("mmap", "<dir>")``.
    """
    if backing == "memory":
        return "memory", None
    prefix, _, directory = backing.partition(":")
    if prefix == "mmap" and directory:
        return "mmap", directory
    raise SimulationError(
        f"slab backing must be 'memory' or 'mmap:<dir>', got {backing!r}"
    )


def canonical_blocks(n_rows: int) -> Iterator[tuple[int, int]]:
    """Yield the ``(start, end)`` row ranges of the canonical partition."""
    for start in range(0, n_rows, REDUCE_BLOCK_ROWS):
        yield start, min(n_rows, start + REDUCE_BLOCK_ROWS)


def n_canonical_blocks(n_rows: int) -> int:
    """Number of canonical blocks covering *n_rows* rows."""
    return max(1, -(-n_rows // REDUCE_BLOCK_ROWS))


def _block_rows(block: int, n_rows: int) -> tuple[int, int]:
    start = block * REDUCE_BLOCK_ROWS
    return start, min(n_rows, start + REDUCE_BLOCK_ROWS)


def advise_dontneed(
    array: np.ndarray, start_row: int | None = None, end_row: int | None = None
) -> None:
    """Release a memmap-backed array's resident pages (whole map or rows).

    A no-op for regular in-memory arrays and on platforms without
    ``MADV_DONTNEED``.  For ``MAP_SHARED`` file mappings the advice drops
    the pages from this process's resident set without discarding dirty
    data (it is written back through the page cache), which is what keeps
    out-of-core slab runs inside a bounded RSS.
    """
    mapping = getattr(array, "_mmap", None)
    if mapping is None or not hasattr(mmap, "MADV_DONTNEED"):
        return
    if start_row is None or end_row is None:
        mapping.madvise(mmap.MADV_DONTNEED)
        return
    row_bytes = array.strides[0]
    page = mmap.PAGESIZE
    begin = -(-(start_row * row_bytes) // page) * page
    finish = min(end_row * row_bytes // page * page, len(mapping))
    if finish > begin:
        mapping.madvise(mmap.MADV_DONTNEED, begin, finish - begin)


def advise_random(array: np.ndarray) -> None:
    """Mark a memmap-backed array as randomly accessed (no readahead).

    Without this, every ``MADV_DONTNEED`` release is undone by the kernel's
    fault-around/readahead on the next scattered gossip gather: touching
    ~1% of a multi-GB slab's rows faults essentially the whole file back
    into the resident set (measured: a 131k-row gather re-faulted 3.9 GiB
    of a 4 GiB slab, versus 0.7 GiB with ``MADV_RANDOM``).  A per-VMA flag,
    so forked shard workers inherit it.  No-op for in-memory arrays and on
    platforms without ``MADV_RANDOM``.
    """
    mapping = getattr(array, "_mmap", None)
    if mapping is None or not hasattr(mmap, "MADV_RANDOM"):
        return
    mapping.madvise(mmap.MADV_RANDOM)


@dataclass
class PopulationSlabs:
    """Struct-of-arrays state of a slab-engine population.

    Attributes
    ----------
    data:
        ``(n, series_length)`` participant series (read-only input).
    estimates:
        ``(n, n_clusters * (series_length + 1))`` per-node gossip estimates:
        for each cluster a ``series_length``-sum block followed by one count
        slot (the layout of the protocol's per-cluster estimates).
    online:
        ``(n,)`` boolean online flags driven by the churn model.
    assigned:
        ``(n,)`` current cluster assignment of every node.
    rng_draws:
        ``(n,)`` number of churn/pairing uniforms consumed on behalf of
        each node — the audit trail the determinism tests check.
    last_pairing:
        The ``(pairs, 2)`` node-index matching of the most recent gossip
        round (empty before the first round).
    """

    data: np.ndarray
    estimates: np.ndarray
    online: np.ndarray
    assigned: np.ndarray
    rng_draws: np.ndarray
    last_pairing: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )

    @classmethod
    def allocate(
        cls,
        data: np.ndarray,
        n_clusters: int,
        estimates: np.ndarray | None = None,
        online: np.ndarray | None = None,
        assigned: np.ndarray | None = None,
    ) -> "PopulationSlabs":
        """Allocate fresh slabs for *data* (*estimates*, *online* and
        *assigned* may be pre-owned, e.g. a :class:`ShardCoordinator`'s
        shared views).  ``float32`` data is kept as-is (the out-of-core
        reduced-precision path); everything else is coerced to float64."""
        data = np.asarray(data)
        if data.dtype != np.float32:
            data = np.ascontiguousarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise SimulationError(f"slab data must be 2-D, got shape {data.shape}")
        check_positive_int(n_clusters, "n_clusters")
        n, series_length = data.shape
        width = n_clusters * (series_length + 1)
        if estimates is None:
            estimates = np.zeros((n, width), dtype=np.float64)
        if estimates.shape != (n, width):
            raise SimulationError(
                f"estimates slab shape {estimates.shape} != {(n, width)}"
            )
        if online is None:
            online = np.ones(n, dtype=bool)
        if online.shape != (n,):
            raise SimulationError(f"online slab shape {online.shape} != {(n,)}")
        if assigned is None:
            assigned = np.zeros(n, dtype=np.int32)
        if assigned.shape != (n,):
            raise SimulationError(f"assigned slab shape {assigned.shape} != {(n,)}")
        return cls(
            data=data,
            estimates=estimates,
            online=online,
            assigned=assigned,
            rng_draws=np.zeros(n, dtype=np.int64),
        )

    @property
    def n_nodes(self) -> int:
        return int(self.data.shape[0])


def slab_churn_step(
    online: np.ndarray,
    churn_rate: float,
    rejoin_rate: float,
    rng: np.random.Generator,
    rng_draws: np.ndarray | None = None,
) -> np.ndarray:
    """Apply one churn cycle to the *online* slab in place.

    Mirrors :meth:`CycleEngine._apply_churn` stream shape for stream shape:
    no draw at all when ``churn_rate == 0``; one uniform per node (in node-id
    order) when ``rejoin_rate > 0``; one uniform per *online* node otherwise.
    Returns the node ids whose flag flipped this cycle.
    """
    check_probability(churn_rate, "churn_rate")
    check_probability(rejoin_rate, "rejoin_rate")
    if churn_rate == 0.0:
        return np.empty(0, dtype=np.int64)
    if rejoin_rate > 0.0:
        subjects = np.arange(online.shape[0], dtype=np.int64)
        draws = rng.random(subjects.shape[0])
        thresholds = np.where(online, churn_rate, rejoin_rate)
    else:
        subjects = np.nonzero(online)[0]
        draws = rng.random(subjects.shape[0])
        thresholds = np.full(subjects.shape[0], churn_rate)
    if rng_draws is not None:
        rng_draws[subjects] += 1
    flipped = subjects[draws < thresholds]
    online[flipped] = ~online[flipped]
    return flipped


def pair_online(
    online: np.ndarray,
    rng: np.random.Generator,
    rng_draws: np.ndarray | None = None,
) -> np.ndarray:
    """Draw one random gossip matching of the online nodes.

    A uniformly random perfect matching (one permutation draw, consecutive
    entries paired; a leftover odd node sits the round out) — the vectorised
    equivalent of every online node initiating one push-pull exchange with a
    uniformly sampled online peer.  Returns a ``(pairs, 2)`` index matrix.
    """
    candidates = np.nonzero(online)[0]
    if candidates.shape[0] < 2:
        return np.empty((0, 2), dtype=np.int64)
    order = rng.permutation(candidates)
    if rng_draws is not None:
        rng_draws[candidates] += 1
    n_pairs = order.shape[0] // 2
    return order[: 2 * n_pairs].reshape(n_pairs, 2).astype(np.int64, copy=False)


def average_pairs_inplace(
    estimates: np.ndarray,
    pairs: np.ndarray,
    chunk_rows: int = 0,
    advise: bool = False,
) -> None:
    """Average the estimate rows of each (disjoint) pair, in place.

    This is one gossip exchange for every pair at once: both members adopt
    the elementwise mean of their estimates, which preserves the global sum
    exactly (the mass-conservation invariant of gossip averaging).  With
    ``chunk_rows > 0`` at most that many pairs are materialised per step —
    the per-pair arithmetic is identical, so chunking never changes the
    result.  ``advise`` releases the touched (randomly scattered) pages of a
    memmap-backed slab after every step.
    """
    count = int(pairs.shape[0])
    if count == 0:
        return
    step = chunk_rows if chunk_rows > 0 else count
    if advise:
        step = min(step, ADVISE_PAIR_CHUNK)
    for start in range(0, count, step):
        chunk = pairs[start:start + step]
        left = chunk[:, 0]
        right = chunk[:, 1]
        mean = 0.5 * (estimates[left] + estimates[right])
        estimates[left] = mean
        estimates[right] = mean
        if advise:
            advise_dontneed(estimates)


def half_average_pairs_inplace(
    estimates: np.ndarray,
    pairs: np.ndarray,
    chunk_rows: int = 0,
    advise: bool = False,
) -> None:
    """Apply the responder half of an interrupted push-pull exchange.

    The responder (right column) received the initiator's estimate and
    adopted the pair mean before its reply was lost or corrupted; the
    initiator (left column) keeps its old estimate.  Mass conservation is
    deliberately broken here — that is the fault being modelled.
    """
    count = int(pairs.shape[0])
    if count == 0:
        return
    step = chunk_rows if chunk_rows > 0 else count
    if advise:
        step = min(step, ADVISE_PAIR_CHUNK)
    for start in range(0, count, step):
        chunk = pairs[start:start + step]
        left = chunk[:, 0]
        right = chunk[:, 1]
        estimates[right] = 0.5 * (estimates[left] + estimates[right])
        if advise:
            advise_dontneed(estimates)


@dataclass(frozen=True)
class PairFaultPlan:
    """Outcome of the bulk fault model for one gossip exchange.

    ``full_pairs`` completed the push-pull exchange (both adopt the mean);
    ``half_pairs`` lost or corrupted the reply frame (responder adopted the
    mean, initiator keeps its old estimate); every other pair lost its
    request frame and is skipped entirely.
    """

    full_pairs: np.ndarray
    half_pairs: np.ndarray
    requests_sent: int
    replies_sent: int
    dropped_frames: int
    corrupted_frames: int

    @property
    def messages_sent(self) -> int:
        return self.requests_sent + self.replies_sent


def plan_pair_faults(
    pairs: np.ndarray,
    frame_bits: int,
    drop_probability: float,
    corruption_rate: float,
    loss_rng: np.random.Generator,
    corruption_rng: np.random.Generator,
) -> PairFaultPlan:
    """Draw per-frame loss/corruption outcomes for one gossip exchange.

    Mirrors the object engine's fault policy draw shape for draw shape, on
    the slab's own streams: one loss uniform per *sent* message (requests in
    pair order, then replies for the intact requests), one corruption gate
    uniform per *delivered* frame, plus one bit-position draw per corrupted
    frame (the slab path does not materialise frames, so a corrupted frame
    is simply discarded by the receiver — the checksum rejection path).
    With both rates zero, no randomness is consumed and every pair completes
    (bit-identical to the fault-free engine).
    """
    check_probability(drop_probability, "drop_probability")
    check_probability(corruption_rate, "corruption_rate")
    n_pairs = int(pairs.shape[0])
    empty = np.empty((0, 2), dtype=np.int64)
    if n_pairs == 0:
        return PairFaultPlan(pairs, empty, 0, 0, 0, 0)
    if drop_probability == 0.0 and corruption_rate == 0.0:
        return PairFaultPlan(pairs, empty, n_pairs, n_pairs, 0, 0)

    def _deliver(count: int) -> np.ndarray:
        if drop_probability > 0.0:
            return loss_rng.random(count) >= drop_probability
        return np.ones(count, dtype=bool)

    def _survive(delivered: np.ndarray) -> np.ndarray:
        intact = delivered.copy()
        if corruption_rate > 0.0:
            index = np.nonzero(delivered)[0]
            corrupted = corruption_rng.random(index.shape[0]) < corruption_rate
            hits = int(np.count_nonzero(corrupted))
            if hits:
                # One bit position per corrupted frame, as the wire-level
                # model draws; the flipped bit always invalidates the frame
                # checksum here, so only the draw shape matters.
                corruption_rng.integers(0, frame_bits, size=hits)
            intact[index[corrupted]] = False
        return intact

    request_delivered = _deliver(n_pairs)
    request_intact = _survive(request_delivered)
    responders = np.nonzero(request_intact)[0]
    replies_sent = int(responders.shape[0])
    reply_delivered = _deliver(replies_sent)
    reply_intact = _survive(reply_delivered)
    answered = pairs[responders]
    dropped = int(np.count_nonzero(~request_delivered)) + int(
        np.count_nonzero(~reply_delivered)
    )
    corrupted = int(np.count_nonzero(request_delivered & ~request_intact)) + int(
        np.count_nonzero(reply_delivered & ~reply_intact)
    )
    return PairFaultPlan(
        full_pairs=np.ascontiguousarray(answered[reply_intact]),
        half_pairs=np.ascontiguousarray(answered[~reply_intact]),
        requests_sent=n_pairs,
        replies_sent=replies_sent,
        dropped_frames=dropped,
        corrupted_frames=corrupted,
    )


def scatter_rows(
    estimates: np.ndarray,
    data: np.ndarray,
    assigned: np.ndarray,
    start: int,
    end: int,
    chunk_rows: int = 0,
) -> None:
    """Write rows ``[start, end)`` of the plain contribution layout.

    Layout per node: for the assigned cluster ``c``, columns
    ``[c*(T+1), c*(T+1)+T)`` hold the series values and column
    ``c*(T+1)+T`` holds the membership count 1; every other column is 0 —
    exactly the per-cluster sum/count estimate vector of the protocol.
    Pure per-row placement (no arithmetic), so any chunking is exact.
    """
    series_length = data.shape[1]
    step = chunk_rows if chunk_rows > 0 else max(1, end - start)
    offsets = np.arange(series_length + 1, dtype=np.int64)[None, :]
    for s in range(start, end, step):
        e = min(end, s + step)
        block = estimates[s:e]
        block[:] = 0.0
        base = assigned[s:e].astype(np.int64) * (series_length + 1)
        columns = base[:, None] + offsets
        payload = np.concatenate(
            [data[s:e], np.ones((e - s, 1), dtype=data.dtype)], axis=1
        )
        np.put_along_axis(block, columns, payload, axis=1)


def _assign_block_range(
    data: np.ndarray,
    centroids: np.ndarray,
    assigned: np.ndarray,
    block_start: int,
    block_end: int,
) -> None:
    """Nearest-centroid assignment over canonical blocks (written in place)."""
    n = data.shape[0]
    for block in range(block_start, block_end):
        s, e = _block_rows(block, n)
        assigned[s:e] = assign_to_centroids(data[s:e], centroids)


def _scatter_block_range(
    estimates: np.ndarray,
    data: np.ndarray,
    assigned: np.ndarray,
    block_start: int,
    block_end: int,
    chunk_rows: int,
    advise: bool,
) -> None:
    """Contribution scatter over canonical blocks (rows released if mmap)."""
    n = data.shape[0]
    for block in range(block_start, block_end):
        s, e = _block_rows(block, n)
        scatter_rows(estimates, data, assigned, s, e, chunk_rows)
        if advise:
            advise_dontneed(estimates, s, e)


def _reduce_block_range(
    estimates: np.ndarray,
    online: np.ndarray,
    block_start: int,
    block_end: int,
    advise: bool,
) -> list[tuple[np.ndarray | None, int]]:
    """Per-canonical-block online sums of the estimate slab.

    Returns ``(sum_vector, online_count)`` per block; sums accumulate in
    float64 regardless of the slab dtype.
    """
    n = estimates.shape[0]
    partials: list[tuple[np.ndarray | None, int]] = []
    for block in range(block_start, block_end):
        s, e = _block_rows(block, n)
        rows = estimates[s:e][online[s:e]]
        count = int(rows.shape[0])
        vector = rows.sum(axis=0, dtype=np.float64) if count else None
        partials.append((vector, count))
        if advise:
            advise_dontneed(estimates, s, e)
    return partials


def blockwise_assign(
    data: np.ndarray, centroids: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Nearest-centroid assignment over the canonical block partition.

    Identical to ``assign_to_centroids(data, centroids)`` for populations
    that fit one canonical block; larger populations are processed block by
    block so the distance temporaries stay bounded.
    """
    n = data.shape[0]
    if out is None:
        out = np.empty(n, dtype=np.int64)
    _assign_block_range(data, centroids, out, 0, n_canonical_blocks(n))
    return out


def blockwise_inertia(
    data: np.ndarray, centroids: np.ndarray, assignments: np.ndarray
) -> float:
    """Intra-cluster inertia accumulated over the canonical block partition."""
    total: float | None = None
    for s, e in canonical_blocks(data.shape[0]):
        diffs = data[s:e] - centroids[assignments[s:e]]
        partial = float(np.sum(diffs * diffs))
        total = partial if total is None else total + partial
    return float(total if total is not None else 0.0)


def blockwise_cluster_sums(
    data: np.ndarray, assignments: np.ndarray, n_clusters: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cluster data sums and member counts over the canonical partition.

    Sums accumulate in float64; dividing ``sums[c] / counts[c]`` reproduces
    ``data[assignments == c].mean(axis=0)`` bitwise for single-block
    float64 populations.
    """
    sums: np.ndarray | None = None
    counts = np.zeros(n_clusters, dtype=np.int64)
    for s, e in canonical_blocks(data.shape[0]):
        block = data[s:e]
        labels = assignments[s:e]
        block_sums = np.zeros((n_clusters, data.shape[1]), dtype=np.float64)
        for cluster in range(n_clusters):
            members = labels == cluster
            if members.any():
                block_sums[cluster] = block[members].sum(axis=0, dtype=np.float64)
        counts += np.bincount(labels.astype(np.int64, copy=False),
                              minlength=n_clusters)
        sums = block_sums if sums is None else sums + block_sums
    assert sums is not None
    return sums, counts


def _slab_worker(
    connection: Any,
    data: np.ndarray | None,
    estimates: np.ndarray,
    pairs: np.ndarray,
    online: np.ndarray,
    assigned: np.ndarray,
    chunk_rows: int,
) -> None:  # pragma: no cover - exercised via ShardCoordinator in subprocesses
    """Worker loop: execute slab phases over disjoint pair/block ranges.

    All arrays arrive through the fork (shared-memory segments and memmaps
    stay shared mappings; the read-only data matrix is inherited
    copy-on-write), so no bytes are pickled per command beyond the tiny
    command tuples themselves.
    """
    advise = getattr(estimates, "_mmap", None) is not None
    try:
        while True:
            command = connection.recv()
            if command is None:
                break
            tag = command[0]
            if tag == "pairs":
                _, start, end = command
                average_pairs_inplace(
                    estimates, pairs[start:end], chunk_rows, advise=advise
                )
                connection.send(("ok", None))
            elif tag == "assign":
                _, block_start, block_end, centroids = command
                _assign_block_range(data, centroids, assigned, block_start, block_end)
                connection.send(("ok", None))
            elif tag == "scatter":
                _, block_start, block_end = command
                _scatter_block_range(
                    estimates, data, assigned, block_start, block_end,
                    chunk_rows, advise,
                )
                connection.send(("ok", None))
            elif tag == "reduce":
                _, block_start, block_end = command
                partials = _reduce_block_range(
                    estimates, online, block_start, block_end, advise
                )
                connection.send(("ok", partials))
            else:
                connection.send(("error", f"unknown command {tag!r}"))
    finally:
        connection.close()


class ShardCoordinator:
    """Owns the population slabs and fans bulk phases out to worker shards.

    With ``shards == 1`` (the default, and the fallback when the platform
    cannot fork) everything runs in-process.  With more shards the mutable
    slabs (estimates, pairs, online, assigned) live in shared mappings;
    long-lived forked workers execute disjoint pair ranges (averaging) or
    contiguous canonical-block ranges (assignment, contribution scatter,
    online-sum reduction), and the coordinator combines reduction partials
    in global block order — so every result is bit-identical to the
    single-shard path regardless of the shard count.

    ``dtype``/``backing``/``chunk_rows`` select the out-of-core layout of
    the estimate slab (see the module docstring).  ``data`` (the normalised
    population matrix) is only required for the assignment/scatter phases.
    """

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        shards: int = 1,
        *,
        dtype: str = "float64",
        backing: str = "memory",
        chunk_rows: int = 0,
        data: np.ndarray | None = None,
    ) -> None:
        check_positive_int(n_rows, "n_rows")
        check_positive_int(n_cols, "n_cols")
        check_positive_int(shards, "shards")
        check_non_negative_int(chunk_rows, "chunk_rows")
        if data is not None and data.shape[0] != n_rows:
            raise SimulationError(
                f"data has {data.shape[0]} rows, coordinator expects {n_rows}"
            )
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.dtype = slab_numpy_dtype(dtype)
        self.backing, self._backing_dir = parse_slab_backing(backing)
        self.chunk_rows = int(chunk_rows)
        self.shards = min(shards, max(1, n_rows // 2))
        self._data = data
        self._n_blocks = n_canonical_blocks(n_rows)
        self._workers: list[Any] = []
        self._pipes: list[Any] = []
        self._estimates_shm: shared_memory.SharedMemory | None = None
        self._shared_shm: shared_memory.SharedMemory | None = None
        self._pairs: np.ndarray | None = None
        context = None
        if self.shards > 1:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:
                self.shards = 1
        self.estimates = self._allocate_estimates()
        self._advise = getattr(self.estimates, "_mmap", None) is not None
        if self.shards == 1:
            self.online = np.ones(n_rows, dtype=bool)
            self.assigned = np.zeros(n_rows, dtype=np.int32)
            return
        # One segment for the small shared slabs: the pair buffer, the
        # online flags and the assignment vector.
        pairs_capacity = max(1, n_rows // 2)
        pairs_bytes = pairs_capacity * 2 * 8
        online_bytes = -(-n_rows // 8) * 8  # pad to keep the int32 view aligned
        assigned_bytes = n_rows * 4
        self._shared_shm = shared_memory.SharedMemory(
            create=True, size=pairs_bytes + online_bytes + assigned_bytes
        )
        buffer = self._shared_shm.buf
        self._pairs = np.ndarray(
            (pairs_capacity, 2), dtype=np.int64, buffer=buffer, offset=0
        )
        self.online = np.ndarray(
            (n_rows,), dtype=bool, buffer=buffer, offset=pairs_bytes
        )
        self.assigned = np.ndarray(
            (n_rows,), dtype=np.int32, buffer=buffer,
            offset=pairs_bytes + online_bytes,
        )
        self.online[:] = True
        self.assigned[:] = 0
        for _ in range(self.shards):
            parent, child = context.Pipe()
            worker = context.Process(
                target=_slab_worker,
                args=(
                    child,
                    self._data,
                    self.estimates,
                    self._pairs,
                    self.online,
                    self.assigned,
                    self.chunk_rows,
                ),
                daemon=True,
            )
            worker.start()
            child.close()
            self._workers.append(worker)
            self._pipes.append(parent)

    # ------------------------------------------------------------- allocation
    def _allocate_estimates(self) -> np.ndarray:
        if self.backing == "mmap":
            directory = self._backing_dir
            assert directory is not None
            os.makedirs(directory, exist_ok=True)
            descriptor, path = tempfile.mkstemp(
                prefix="slab-estimates-", suffix=".bin", dir=directory
            )
            try:
                size = self.n_rows * self.n_cols * self.dtype.itemsize
                os.ftruncate(descriptor, size)
                estimates = np.memmap(
                    path, dtype=self.dtype, mode="r+",
                    shape=(self.n_rows, self.n_cols),
                )
            finally:
                os.close(descriptor)
                # Unlink immediately: the mapping keeps the inode alive for
                # this process and its forked workers, and a crash leaves no
                # stray multi-GB file behind.  A fresh sparse file reads as
                # zeros, so no page-dirtying initialisation pass is needed.
                os.unlink(path)
            advise_random(estimates)
            return estimates
        if self.shards > 1:
            self._estimates_shm = shared_memory.SharedMemory(
                create=True, size=self.n_rows * self.n_cols * self.dtype.itemsize
            )
            estimates = np.ndarray(
                (self.n_rows, self.n_cols), dtype=self.dtype,
                buffer=self._estimates_shm.buf,
            )
            estimates[:] = 0.0
            return estimates
        return np.zeros((self.n_rows, self.n_cols), dtype=self.dtype)

    # ---------------------------------------------------------------- phases
    def _fan_out_blocks(self, make_command: Any) -> list[Any]:
        """Send contiguous canonical-block ranges to every worker, collect
        replies in shard (= global block) order."""
        bounds = np.linspace(0, self._n_blocks, self.shards + 1).astype(int)
        active: list[int] = []
        for shard in range(self.shards):
            start, end = int(bounds[shard]), int(bounds[shard + 1])
            if start < end:
                self._pipes[shard].send(make_command(start, end))
                active.append(shard)
        replies = []
        for shard in active:
            status, payload = self._pipes[shard].recv()
            if status != "ok":  # pragma: no cover - defensive
                raise SimulationError(f"slab worker failed: {payload}")
            replies.append(payload)
        return replies

    def average_pairs(self, pairs: np.ndarray) -> None:
        """Run one vectorised gossip round over the given disjoint pairs."""
        count = int(pairs.shape[0])
        if count == 0:
            return
        if self.shards == 1 or count < 2 * self.shards:
            average_pairs_inplace(
                self.estimates, pairs, self.chunk_rows, advise=self._advise
            )
            return
        assert self._pairs is not None
        self._pairs[:count] = pairs
        bounds = np.linspace(0, count, self.shards + 1).astype(int)
        active = []
        for shard in range(self.shards):
            start, end = int(bounds[shard]), int(bounds[shard + 1])
            if start < end:
                self._pipes[shard].send(("pairs", start, end))
                active.append(shard)
        for shard in active:
            self._pipes[shard].recv()

    def half_average_pairs(self, pairs: np.ndarray) -> None:
        """Apply interrupted (reply-lost) exchanges; see
        :func:`half_average_pairs_inplace`.  Runs in-process — fault
        survivors are a small fraction of a round and the rows are disjoint
        from every other pair, so this is shard-safe by construction."""
        half_average_pairs_inplace(
            self.estimates, pairs, self.chunk_rows, advise=self._advise
        )

    def assign(self, centroids: np.ndarray) -> np.ndarray:
        """Nearest-centroid assignment of every row into ``self.assigned``."""
        if self._data is None:
            raise SimulationError(
                "this coordinator was created without the data matrix; "
                "pass data=... to use the assignment phase"
            )
        if self.shards == 1:
            _assign_block_range(
                self._data, centroids, self.assigned, 0, self._n_blocks
            )
        else:
            self._fan_out_blocks(
                lambda start, end: ("assign", start, end, centroids)
            )
        return self.assigned

    def scatter(self) -> None:
        """Write every node's plain contribution into the estimate slab."""
        if self._data is None:
            raise SimulationError(
                "this coordinator was created without the data matrix; "
                "pass data=... to use the scatter phase"
            )
        if self.shards == 1:
            _scatter_block_range(
                self.estimates, self._data, self.assigned, 0, self._n_blocks,
                self.chunk_rows, self._advise,
            )
        else:
            self._fan_out_blocks(lambda start, end: ("scatter", start, end))

    def online_mean(self) -> tuple[np.ndarray, int]:
        """Mean estimate vector over the online nodes (float64), plus count.

        Per-canonical-block partial sums are combined in global block order,
        so the result is shard-count-invariant; single-block populations
        reproduce ``estimates[online].mean(axis=0)`` bitwise for float64
        slabs.
        """
        if self.shards == 1:
            partials = _reduce_block_range(
                self.estimates, self.online, 0, self._n_blocks, self._advise
            )
        else:
            partials = [
                partial
                for payload in self._fan_out_blocks(
                    lambda start, end: ("reduce", start, end)
                )
                for partial in payload
            ]
        total: np.ndarray | None = None
        count = 0
        for vector, block_count in partials:
            if block_count == 0:
                continue
            assert vector is not None
            total = vector.copy() if total is None else total + vector
            count += block_count
        if count == 0 or total is None:
            return np.full(self.n_cols, np.nan), 0
        return total / count, count

    def advise_dontneed(self) -> None:
        """Release the whole estimate slab from resident memory (mmap only)."""
        if self._advise:
            advise_dontneed(self.estimates)

    # --------------------------------------------------------------- teardown
    def close(self) -> None:
        """Shut down workers and release shared mappings."""
        for pipe in self._pipes:
            try:
                pipe.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.join(timeout=5)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
        for pipe in self._pipes:
            pipe.close()
        self._workers = []
        self._pipes = []
        if self._estimates_shm is not None or self._shared_shm is not None \
                or self._advise:
            # Drop views into the segments before unlinking them.
            self.estimates = np.empty((0, 0), dtype=self.dtype)
            self.online = np.empty(0, dtype=bool)
            self.assigned = np.empty(0, dtype=np.int32)
            self._pairs = None
            self._advise = False
        for segment in (self._estimates_shm, self._shared_shm):
            if segment is not None:
                segment.close()
                segment.unlink()
        self._estimates_shm = None
        self._shared_shm = None

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
