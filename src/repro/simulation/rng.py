"""Named, reproducible random streams for the simulation.

Every stochastic component of the simulation (peer sampling, churn, noise
shares, dataset jitter, ...) draws from its own named stream derived from a
single master seed.  This keeps runs exactly reproducible while making sure
that changing how one component consumes randomness does not silently shift
the randomness seen by the others.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .._validation import check_non_negative_int
from ..exceptions import SimulationError


class RngRegistry:
    """Factory of named :class:`numpy.random.Generator` streams.

    Each distinct name deterministically maps to an independent stream; the
    same (seed, name) pair always produces the same stream.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = check_non_negative_int(master_seed, "master_seed")
        self._streams: dict[str, np.random.Generator] = {}

    def _seed_for(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream registered under *name*."""
        if not name:
            raise SimulationError("stream names must not be empty")
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self._seed_for(name))
        return self._streams[name]

    def spawn(self, name: str) -> np.random.Generator:
        """Return a fresh stream for *name*, independent of previous calls.

        Unlike :meth:`stream`, repeated calls with the same name return
        different generators (each seeded from the call count), which is what
        per-run components such as repeated experiments want.
        """
        count = sum(1 for key in self._streams if key == name or key.startswith(f"{name}#"))
        unique = f"{name}#{count}"
        self._streams[unique] = np.random.default_rng(self._seed_for(unique))
        return self._streams[unique]

    def names(self) -> tuple[str, ...]:
        """Names of every stream created so far."""
        return tuple(sorted(self._streams))
